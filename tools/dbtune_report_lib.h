#ifndef DBTUNE_TOOLS_DBTUNE_REPORT_LIB_H_
#define DBTUNE_TOOLS_DBTUNE_REPORT_LIB_H_

#include <cstddef>
#include <string>
#include <vector>

namespace dbtune_report {

/// One parsed session-JSONL line (see obs::SessionLogger for the
/// producer). Base fields are always present; `has_diagnostics` marks
/// lines that carried the versioned `diag_v` extension.
struct IterationRow {
  size_t iteration = 0;
  double suggest_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double observe_seconds = 0.0;
  double score = 0.0;
  double best_score = 0.0;
  double improvement_percent = 0.0;

  bool has_diagnostics = false;
  int diag_version = 0;
  bool has_prediction = false;
  double standardized_residual = 0.0;
  double nlpd = 0.0;
  double coverage68 = 0.0;
  double coverage95 = 0.0;
  double simple_regret = 0.0;
  double cumulative_regret = 0.0;
  size_t stall_iterations = 0;
  double improvement_ewma = 0.0;
  double acquisition_best = 0.0;
  double acquisition_spread = 0.0;
  double incremental_fit_rate = 0.0;
  unsigned long long sparse_escalations = 0;
  unsigned long long hyperopt_runs = 0;
};

/// One session file's parsed content.
struct SessionData {
  std::string name;  // display name (file path or label)
  std::vector<IterationRow> rows;
  size_t malformed_lines = 0;
};

/// Parses a session JSONL blob. Lines that do not carry the base fields
/// count as malformed and are skipped (the report prints the count).
SessionData ParseSessionJsonl(const std::string& name,
                              const std::string& content);

/// Unicode block sparkline of `values`, downsampled to at most
/// `max_points` buckets (bucket mean). Empty input → "".
std::string Sparkline(const std::vector<double>& values, size_t max_points);

/// Nearest-rank percentile of `sorted_values` (ascending). q in [0,1].
double Percentile(const std::vector<double>& sorted_values, double q);

/// Renders the markdown report over all sessions: best-score sparkline
/// table, convergence and calibration summaries when diagnostics are
/// present, and per-phase latency percentiles. Deterministic: same
/// inputs → byte-identical output.
std::string RenderMarkdownReport(const std::vector<SessionData>& sessions);

/// Durable-store contents, flattened to plain data so this library stays
/// independent of the dbtune library (the CLI opens the store and fills
/// this in).
struct StoreSummary {
  std::string path;
  struct Session {
    std::string id;
    size_t dimension = 0;
    size_t observations = 0;
    bool finished = false;
  };
  std::vector<Session> sessions;
  size_t tasks = 0;
  unsigned long long last_lsn = 0;
  bool loaded_snapshot = false;
  bool recovered_torn_tail = false;
};

/// Renders the "Durable store" markdown section. Deterministic.
std::string RenderStoreSummary(const StoreSummary& summary);

}  // namespace dbtune_report

#endif  // DBTUNE_TOOLS_DBTUNE_REPORT_LIB_H_
