// dbtune-lint — repo-invariant linter for the dbtune source tree.
//
// Usage: dbtune_lint <root-dir> [<root-dir>...]
//
// Walks every .h/.cc under each root and enforces the rules documented
// in dbtune_lint_lib.h (deterministic seeding, no naked new/delete, no
// `using namespace std`, DBTUNE_<PATH>_H_ include guards, no <iostream>
// outside util/logging). Exits non-zero when any violation is found, so
// it doubles as the `lint`-labeled ctest. Suppress one line with
// `// dbtune-lint: allow(<rule>)`.

#include <cstdio>

#include "dbtune_lint_lib.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <root-dir> [<root-dir>...]\n", argv[0]);
    return 2;
  }
  int total = 0;
  for (int i = 1; i < argc; ++i) {
    const std::vector<dbtune_lint::Finding> findings =
        dbtune_lint::LintTree(argv[i]);
    for (const dbtune_lint::Finding& finding : findings) {
      std::fprintf(stderr, "%s\n",
                   dbtune_lint::FormatFinding(finding).c_str());
    }
    total += static_cast<int>(findings.size());
  }
  if (total > 0) {
    std::fprintf(stderr, "dbtune-lint: %d violation(s)\n", total);
    return 1;
  }
  std::printf("dbtune-lint: clean\n");
  return 0;
}
