// CLI: dbtune_report [-o report.md] [--store wal] [session.jsonl ...]
//
// Ingests session JSONL files written by obs::SessionLogger and renders
// a markdown report (best-score sparklines, diagnostics summary, latency
// percentiles). With --store, appends a summary of the durable
// observation store at that path (sessions, recovery state, base-task
// pool). Writes to stdout unless -o is given. Exits nonzero when an
// input cannot be read or the output cannot be written in full.

#include "dbtune_report_lib.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "store/observation_store.h"

namespace {

constexpr char kUsage[] =
    "usage: dbtune_report [-o report.md] [--store wal] [session.jsonl ...]\n";

/// Flattens the opened store into the report library's plain-data form.
dbtune_report::StoreSummary SummarizeStore(
    const dbtune::store::ObservationStore& store) {
  dbtune_report::StoreSummary summary;
  summary.path = store.path();
  const dbtune::store::StoreStats stats = store.stats();
  summary.last_lsn = stats.last_lsn;
  summary.loaded_snapshot = stats.loaded_snapshot;
  summary.recovered_torn_tail = stats.recovered_torn_tail;
  summary.tasks = store.num_tasks();
  for (const dbtune::store::StoredSessionInfo& info : store.ListSessions()) {
    dbtune_report::StoreSummary::Session session;
    session.id = info.id;
    session.dimension = info.dimension;
    session.observations = info.observations;
    session.finished = info.finished;
    summary.sessions.push_back(std::move(session));
  }
  return summary;
}

/// Writes `report` to `path` ("" = stdout), checking every byte landed.
int WriteReport(const std::string& report, const std::string& path) {
  if (path.empty()) {
    const size_t written =
        std::fwrite(report.data(), 1, report.size(), stdout);
    if (written != report.size() || std::fflush(stdout) != 0) {
      std::fprintf(stderr, "dbtune_report: short write to stdout\n");
      return 1;
    }
    return 0;
  }
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "dbtune_report: cannot write %s\n", path.c_str());
    return 1;
  }
  const size_t written = std::fwrite(report.data(), 1, report.size(), out);
  const bool closed = std::fclose(out) == 0;
  if (written != report.size() || !closed) {
    std::fprintf(stderr, "dbtune_report: short write to %s\n", path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output_path;
  std::string store_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::fprintf(stderr, "%s", kUsage);
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() && store_path.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  std::vector<dbtune_report::SessionData> sessions;
  sessions.reserve(inputs.size());
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "dbtune_report: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sessions.push_back(
        dbtune_report::ParseSessionJsonl(path, buffer.str()));
  }

  std::string report;
  if (!sessions.empty()) {
    report = dbtune_report::RenderMarkdownReport(sessions);
  }
  if (!store_path.empty()) {
    auto opened = dbtune::store::ObservationStore::Open(store_path);
    if (!opened.ok()) {
      std::fprintf(stderr, "dbtune_report: cannot open store %s: %s\n",
                   store_path.c_str(),
                   opened.status().ToString().c_str());
      return 1;
    }
    if (!report.empty()) report += "\n";
    report += dbtune_report::RenderStoreSummary(SummarizeStore(**opened));
  }
  return WriteReport(report, output_path);
}
