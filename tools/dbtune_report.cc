// CLI: dbtune_report [-o report.md] session.jsonl [more.jsonl ...]
//
// Ingests session JSONL files written by obs::SessionLogger and renders
// a markdown report (best-score sparklines, diagnostics summary, latency
// percentiles). Writes to stdout unless -o is given. Exits nonzero when
// an input file cannot be read.

#include "dbtune_report_lib.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::string output_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" && i + 1 < argc) {
      output_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      std::fprintf(stderr,
                   "usage: dbtune_report [-o report.md] session.jsonl ...\n");
      return 0;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: dbtune_report [-o report.md] session.jsonl ...\n");
    return 2;
  }

  std::vector<dbtune_report::SessionData> sessions;
  sessions.reserve(inputs.size());
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "dbtune_report: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    sessions.push_back(
        dbtune_report::ParseSessionJsonl(path, buffer.str()));
  }

  const std::string report =
      dbtune_report::RenderMarkdownReport(sessions);
  if (output_path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
  }
  std::FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "dbtune_report: cannot write %s\n",
                 output_path.c_str());
    return 1;
  }
  std::fwrite(report.data(), 1, report.size(), out);
  std::fclose(out);
  return 0;
}
