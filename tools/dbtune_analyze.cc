// dbtune_analyze — determinism-aware static analyzer CLI.
//
// Usage:
//   dbtune_analyze [--format=text|json] [--baseline=FILE] [--output=FILE]
//                  [--list-checks] <root-dir>...
//
// Analyzes every .h/.cc under each root (skipping lint_fixtures/, build/
// and hidden directories). Exit codes: 0 = clean (all findings baselined
// or none), 1 = non-baselined findings, 2 = usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dbtune_analyze_lib.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: dbtune_analyze [--format=text|json] [--baseline=FILE]"
               " [--output=FILE] [--list-checks] <root-dir>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  std::string baseline_path;
  std::string output_path;
  bool list_checks = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(std::strlen("--format="));
      if (format != "text" && format != "json") return Usage();
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(std::strlen("--baseline="));
    } else if (arg.rfind("--output=", 0) == 0) {
      output_path = arg.substr(std::strlen("--output="));
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }

  if (list_checks) {
    for (const dbtune_analyze::CheckInfo& check : dbtune_analyze::Checks()) {
      std::printf("%-25s %-8s %s\n", check.id, check.severity, check.summary);
    }
    return 0;
  }
  if (roots.empty()) return Usage();

  std::vector<dbtune_analyze::BaselineEntry> baseline;
  if (!baseline_path.empty() &&
      !dbtune_analyze::LoadBaselineFile(baseline_path, &baseline)) {
    std::fprintf(stderr, "dbtune_analyze: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }

  std::vector<dbtune_analyze::Diagnostic> diagnostics;
  size_t files_analyzed = 0;
  for (const std::string& root : roots) {
    dbtune_analyze::TreeReport report = dbtune_analyze::AnalyzeTree(root);
    files_analyzed += report.files_analyzed;
    diagnostics.insert(diagnostics.end(), report.diagnostics.begin(),
                       report.diagnostics.end());
  }
  dbtune_analyze::ApplyBaseline(baseline, &diagnostics);

  size_t fresh = 0;
  for (const dbtune_analyze::Diagnostic& d : diagnostics) {
    if (!d.baselined) ++fresh;
  }

  const std::string rendered =
      format == "json"
          ? dbtune_analyze::ReportJson(diagnostics, files_analyzed)
          : std::string();
  if (!output_path.empty()) {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "dbtune_analyze: cannot write %s\n",
                   output_path.c_str());
      return 2;
    }
    out << (format == "json" ? rendered : std::string());
    if (format == "text") {
      for (const dbtune_analyze::Diagnostic& d : diagnostics) {
        out << dbtune_analyze::FormatDiagnostic(d) << "\n";
      }
    }
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "dbtune_analyze: short write to %s\n",
                   output_path.c_str());
      return 2;
    }
  }

  if (format == "json") {
    if (output_path.empty()) std::printf("%s\n", rendered.c_str());
    // Humans reading CI logs still get the findings on stderr.
    for (const dbtune_analyze::Diagnostic& d : diagnostics) {
      if (d.baselined) continue;
      std::fprintf(stderr, "%s\n",
                   dbtune_analyze::FormatDiagnostic(d).c_str());
    }
  } else {
    for (const dbtune_analyze::Diagnostic& d : diagnostics) {
      if (d.baselined) continue;
      std::printf("%s\n", dbtune_analyze::FormatDiagnostic(d).c_str());
    }
  }

  if (fresh > 0) {
    std::fprintf(stderr,
                 "dbtune_analyze: %zu non-baselined finding(s) across %zu "
                 "file(s)\n",
                 fresh, files_analyzed);
    return 1;
  }
  std::fprintf(stderr, "dbtune_analyze: clean (%zu files, %zu baselined)\n",
               files_analyzed, diagnostics.size());
  return 0;
}
