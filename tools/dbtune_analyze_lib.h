#ifndef DBTUNE_TOOLS_DBTUNE_ANALYZE_LIB_H_
#define DBTUNE_TOOLS_DBTUNE_ANALYZE_LIB_H_

#include <string>
#include <vector>

/// dbtune_analyze — determinism-aware static analyzer for the dbtune
/// source tree. Successor of the line-regex dbtune_lint: one token
/// pipeline (comment / string / raw-string aware), a per-file scope and
/// lambda-capture pass, a check registry with structured diagnostics
/// (check id, severity, fix hint), machine-readable JSON output, and a
/// committed baseline file with per-line and per-file entries.
///
/// Pipeline: tokenize -> declaration pass (thread_local / unordered
/// containers / GUARDED_BY members / Status- and Result-returning
/// functions) -> scope pass (braces, loops, lambdas with capture lists,
/// ParallelFor/Submit call context, MutexLock scopes) -> checks ->
/// baseline filter.
///
/// Check ids (see Checks() for severity and fix hints):
///
/// Determinism & concurrency (grounded in real bug classes):
///   thread-local-capture  — a thread_local variable declared outside a
///                           lambda is named inside a lambda passed to
///                           ParallelFor/ThreadPool::Submit. On a pool
///                           worker the name resolves to the *worker's*
///                           own (empty, never-resized) instance, not the
///                           caller's — the PR 6 latent OOB write.
///   unordered-iteration   — a range-for over std::unordered_map/set
///                           whose body accumulates (+=/-=) or writes
///                           order-dependent output (push_back, <<,
///                           printf family). Hash order is unspecified,
///                           so results differ across toolchains/runs.
///   parallel-reduction-order — += / -= on a by-reference capture (or
///                           any non-local) inside a ParallelFor/Submit
///                           lambda body. The accumulation order depends
///                           on thread scheduling; reduce into per-chunk
///                           partial sums and combine chunk-ascending on
///                           one thread instead.
///   ignored-status        — a call to a Status/Result-returning function
///                           whose value is discarded: a bare expression
///                           statement, a (void)/static_cast<void> cast,
///                           or the comma operator (the forms that slip
///                           past [[nodiscard]]).
///   mutex-guard-gap       — a member annotated DBTUNE_GUARDED_BY is
///                           touched in a scope with no MutexLock /
///                           AssertHeld (and no DBTUNE_REQUIRES on the
///                           enclosing function). Complements clang's
///                           -Wthread-safety, which only runs on clang
///                           builds.
///
/// Repo invariants (migrated from dbtune_lint, identical findings):
///   random-seed   — std::rand/srand/time() seeding or std::random_device
///                   outside src/util/random; randomness must flow
///                   through the seeded Rng for reproducibility
///   naked-new     — raw `new` / `delete` expressions (`= delete` for
///                   deleted functions is fine); use make_unique etc.
///   using-namespace-std — `using namespace std` at any scope
///   include-guard — header guards must be DBTUNE_<PATH>_H_ (when a tree
///                   root other than src/ is analyzed, a root-qualified
///                   DBTUNE_<ROOT>_<PATH>_H_ form is also accepted, e.g.
///                   DBTUNE_TOOLS_... for this header)
///   iostream      — no <iostream> in library code outside util/logging
///   raw-timing    — no std::chrono clock reads outside src/obs and
///                   bench_util.h; timing must flow through obs/clock
///   predict-in-loop — scalar PredictMeanVar inside a loop under
///                   src/optimizer; score batches via PredictMeanVarBatch
///   gp-construction — direct GaussianProcess/SparseGaussianProcess use
///                   under src/optimizer; obtain GP surrogates from
///                   surrogate_factory's CreateGpSurrogate
///   metrics-export — MetricsSnapshot/ToJson outside src/obs; render
///                   metrics through obs/metrics_export
///
/// Persistence paths (store/, obs/, benchmk/, the report and analyzer
/// CLIs — the files whose writes ARE the durable state):
///   unchecked-write — the result of fwrite/fprintf/fputs/fflush/fclose
///                   is discarded (bare statement, (void) cast,
///                   static_cast<void>, or comma operator), or an
///                   ofstream is written but its state never checked.
///                   A full disk or dead descriptor then fails silently
///                   and truncates WAL/snapshot/dataset files. Writes to
///                   stderr are exempt (best-effort diagnostics).
///
/// Scheduler paths (serve/ — the batch loop multiplexing every session):
///   blocking-in-scheduler — a blocking call on a serve/ path: C stdio
///                   (fopen/fread/fwrite/.../fclose), std file streams
///                   (ifstream/ofstream/fstream), sleeps (sleep_for,
///                   sleep_until, usleep, nanosleep, sleep), or a
///                   ThreadPool WaitAll. One blocked scheduler turn
///                   stalls every concurrent session; durable writes
///                   belong behind the ObservationStore API and the only
///                   sanctioned join is ParallelFor's internal one.
///
/// Suppressions (one syntax for every check):
///   * Single line — a trailing comment on the offending line:
///       ... code ...  // dbtune-lint: allow(<check>)
///   * Whole file — anywhere in the file, on its own comment line:
///       // dbtune-lint: allow-file(<check>)
///     File-level suppression is for generated code or files whose role
///     exempts them wholesale (e.g. a benchmark harness that must read
///     raw clocks); prefer the single-line form so the next edit to the
///     file is still checked.
///   * Baseline — a committed file (tools/dbtune_analyze_baseline.txt)
///     of `<path>[:<line>] <check>` entries for pre-existing findings.
///     CI fails when the baseline grows; it may only shrink.
namespace dbtune_analyze {

/// One finding at a specific line, with the registry metadata attached.
struct Diagnostic {
  std::string path;      // as reported: root-relative for tree runs
  int line = 0;          // 1-based
  std::string check;     // check id, e.g. "thread-local-capture"
  std::string severity;  // "error" | "warning"
  std::string message;
  std::string fix_hint;
  bool baselined = false;  // matched a baseline entry (does not fail CI)
};

/// Registry metadata for one check.
struct CheckInfo {
  const char* id;
  const char* severity;  // "error" | "warning"
  const char* summary;   // one-line rationale
  const char* fix_hint;  // canonical remediation
};

/// Every registered check, in stable (documentation) order.
const std::vector<CheckInfo>& Checks();

/// Analyzes one translation unit given its content. `relpath` is the
/// path relative to the analyzed root (used for path-scoped checks and
/// the expected include-guard name); `display_path` is what diagnostics
/// report. `guard_prefix` (e.g. "TOOLS_") names an additionally accepted
/// include-guard form DBTUNE_<prefix><PATH>_H_.
std::vector<Diagnostic> AnalyzeSource(const std::string& display_path,
                                      const std::string& relpath,
                                      const std::string& content,
                                      const std::string& guard_prefix = "");

/// Reads and analyzes one file on disk.
std::vector<Diagnostic> AnalyzeFile(const std::string& path,
                                    const std::string& relpath,
                                    const std::string& guard_prefix = "");

/// A whole-tree run: diagnostics plus how many files were analyzed.
struct TreeReport {
  std::vector<Diagnostic> diagnostics;
  size_t files_analyzed = 0;
};

/// Recursively analyzes every .h/.cc under `root` with tree-wide context:
/// Status/Result-returning names are indexed across the whole tree, and
/// GUARDED_BY members declared in a header also apply to the sibling
/// source file (same stem). Diagnostics report `<root-basename>/<relpath>`
/// so baselines stay machine-independent. Directories named
/// `lint_fixtures` (intentionally-bad check fixtures), `build`, and
/// hidden directories are skipped.
TreeReport AnalyzeTree(const std::string& root);

/// One baseline entry: `path check` (whole file, line == 0) or
/// `path:line check`.
struct BaselineEntry {
  std::string path;
  int line = 0;  // 0 = any line in the file
  std::string check;
};

/// Parses baseline text: one entry per line, `#` comments and blank
/// lines ignored.
std::vector<BaselineEntry> ParseBaselineText(const std::string& text);

/// Reads and parses a baseline file. Returns false when unreadable.
bool LoadBaselineFile(const std::string& path,
                      std::vector<BaselineEntry>* entries);

/// Marks diagnostics matching a baseline entry; returns how many matched.
size_t ApplyBaseline(const std::vector<BaselineEntry>& baseline,
                     std::vector<Diagnostic>* diagnostics);

/// "path:line: severity: [check] message" for human / CI output.
std::string FormatDiagnostic(const Diagnostic& diagnostic);

/// Machine-readable report: {"version":1,"tool":...,"checks":[...],
/// "summary":{...},"findings":[...]} with deterministic field order.
std::string ReportJson(const std::vector<Diagnostic>& diagnostics,
                       size_t files_analyzed);

}  // namespace dbtune_analyze

#endif  // DBTUNE_TOOLS_DBTUNE_ANALYZE_LIB_H_
