#include "dbtune_report_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dbtune_report {

namespace {

/// Finds `"key":` in `line` and parses the number that follows. Returns
/// false when the key is absent or not followed by a number.
bool FindNumber(const std::string& line, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  return true;
}

std::string FormatNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

SessionData ParseSessionJsonl(const std::string& name,
                              const std::string& content) {
  SessionData session;
  session.name = name;
  std::istringstream stream(content);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    IterationRow row;
    double value = 0.0;
    const bool base_ok =
        FindNumber(line, "iter", &value) &&
        (row.iteration = static_cast<size_t>(value), true) &&
        FindNumber(line, "suggest_s", &row.suggest_seconds) &&
        FindNumber(line, "evaluate_s", &row.evaluate_seconds) &&
        FindNumber(line, "observe_s", &row.observe_seconds) &&
        FindNumber(line, "score", &row.score) &&
        FindNumber(line, "best_score", &row.best_score) &&
        FindNumber(line, "improvement_pct", &row.improvement_percent);
    if (!base_ok) {
      ++session.malformed_lines;
      continue;
    }
    if (FindNumber(line, "diag_v", &value)) {
      row.has_diagnostics = true;
      row.diag_version = static_cast<int>(value);
      if (FindNumber(line, "pred", &value)) {
        row.has_prediction = value != 0.0;
      }
      FindNumber(line, "zres", &row.standardized_residual);
      FindNumber(line, "nlpd", &row.nlpd);
      FindNumber(line, "cov68", &row.coverage68);
      FindNumber(line, "cov95", &row.coverage95);
      FindNumber(line, "regret", &row.simple_regret);
      FindNumber(line, "cum_regret", &row.cumulative_regret);
      if (FindNumber(line, "stall", &value)) {
        row.stall_iterations = static_cast<size_t>(value);
      }
      FindNumber(line, "ewma_improve", &row.improvement_ewma);
      FindNumber(line, "acq_best", &row.acquisition_best);
      FindNumber(line, "acq_spread", &row.acquisition_spread);
      FindNumber(line, "inc_fit_rate", &row.incremental_fit_rate);
      if (FindNumber(line, "sparse_escalations", &value)) {
        row.sparse_escalations = static_cast<unsigned long long>(value);
      }
      if (FindNumber(line, "hyperopt_runs", &value)) {
        row.hyperopt_runs = static_cast<unsigned long long>(value);
      }
    }
    session.rows.push_back(row);
  }
  return session;
}

std::string Sparkline(const std::vector<double>& values, size_t max_points) {
  if (values.empty() || max_points == 0) return "";
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  // Downsample to at most max_points buckets by bucket mean.
  std::vector<double> points;
  const size_t buckets = std::min(max_points, values.size());
  points.reserve(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    const size_t begin = b * values.size() / buckets;
    const size_t end = (b + 1) * values.size() / buckets;
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += values[i];
    points.push_back(sum / static_cast<double>(end - begin));
  }
  double lo = points.front();
  double hi = points.front();
  for (double p : points) {
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  const double span = hi - lo;
  std::string out;
  for (double p : points) {
    size_t level = 0;
    if (span > 0.0) {
      level = static_cast<size_t>((p - lo) / span * 7.0 + 0.5);
      level = std::min<size_t>(level, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

double Percentile(const std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: ceil(q * n), 1-based.
  const double n = static_cast<double>(sorted_values.size());
  size_t rank = static_cast<size_t>(std::ceil(q * n));
  if (rank == 0) rank = 1;
  return sorted_values[rank - 1];
}

std::string RenderMarkdownReport(const std::vector<SessionData>& sessions) {
  std::string out = "# dbtune session report\n\n";

  out += "## Sessions\n\n";
  out += "| session | iterations | best score | improvement % | "
         "best-score trend |\n";
  out += "|---|---|---|---|---|\n";
  for (const SessionData& session : sessions) {
    std::vector<double> best_trace;
    best_trace.reserve(session.rows.size());
    for (const IterationRow& row : session.rows) {
      best_trace.push_back(row.best_score);
    }
    const IterationRow* last =
        session.rows.empty() ? nullptr : &session.rows.back();
    out += "| " + session.name + " | " +
           std::to_string(session.rows.size()) + " | " +
           (last ? FormatNumber(last->best_score) : "-") + " | " +
           (last ? FormatNumber(last->improvement_percent) : "-") + " | " +
           Sparkline(best_trace, 24) + " |\n";
    if (session.malformed_lines > 0) {
      out += "\n> " + std::to_string(session.malformed_lines) +
             " malformed line(s) skipped in " + session.name + "\n";
    }
  }
  out += "\n";

  for (const SessionData& session : sessions) {
    const bool any_diag =
        std::any_of(session.rows.begin(), session.rows.end(),
                    [](const IterationRow& r) { return r.has_diagnostics; });
    if (!any_diag) continue;
    const IterationRow& last = session.rows.back();

    out += "## Diagnostics: " + session.name + "\n\n";

    out += "### Convergence\n\n";
    std::vector<double> regret;
    regret.reserve(session.rows.size());
    for (const IterationRow& row : session.rows) {
      regret.push_back(row.simple_regret);
    }
    out += "- simple regret trend: " + Sparkline(regret, 24) + "\n";
    out += "- cumulative regret: " + FormatNumber(last.cumulative_regret) +
           "\n";
    out += "- iterations since improvement: " +
           std::to_string(last.stall_iterations) + "\n";
    out += "- improvement EWMA: " + FormatNumber(last.improvement_ewma) +
           "\n\n";

    out += "### Calibration\n\n";
    size_t predicted = 0;
    for (const IterationRow& row : session.rows) {
      if (row.has_prediction) ++predicted;
    }
    out += "- predicted iterations: " + std::to_string(predicted) + " / " +
           std::to_string(session.rows.size()) + "\n";
    out += "- 68% interval coverage: " + FormatNumber(last.coverage68) +
           " (nominal 0.683)\n";
    out += "- 95% interval coverage: " + FormatNumber(last.coverage95) +
           " (nominal 0.95)\n\n";

    out += "### Model health\n\n";
    out += "- incremental fit rate: " +
           FormatNumber(last.incremental_fit_rate) + "\n";
    out += "- sparse-tier escalations: " +
           std::to_string(last.sparse_escalations) + "\n";
    out += "- hyper-parameter searches: " +
           std::to_string(last.hyperopt_runs) + "\n";
    out += "- acquisition best / spread: " +
           FormatNumber(last.acquisition_best) + " / " +
           FormatNumber(last.acquisition_spread) + "\n\n";
  }

  out += "## Latency percentiles (seconds)\n\n";
  out += "| session | phase | p50 | p95 | p99 |\n";
  out += "|---|---|---|---|---|\n";
  for (const SessionData& session : sessions) {
    const struct {
      const char* phase;
      double IterationRow::* field;
    } kPhases[] = {{"suggest", &IterationRow::suggest_seconds},
                   {"evaluate", &IterationRow::evaluate_seconds},
                   {"observe", &IterationRow::observe_seconds}};
    for (const auto& phase : kPhases) {
      std::vector<double> values;
      values.reserve(session.rows.size());
      for (const IterationRow& row : session.rows) {
        values.push_back(row.*phase.field);
      }
      std::sort(values.begin(), values.end());
      out += "| " + session.name + " | " + phase.phase + " | " +
             FormatNumber(Percentile(values, 0.50)) + " | " +
             FormatNumber(Percentile(values, 0.95)) + " | " +
             FormatNumber(Percentile(values, 0.99)) + " |\n";
    }
  }
  return out;
}

std::string RenderStoreSummary(const StoreSummary& summary) {
  std::string out = "## Durable store\n\n";
  out += "- path: `" + summary.path + "`\n";
  out += "- last LSN: " + std::to_string(summary.last_lsn) + "\n";
  out += "- recovery: ";
  out += summary.loaded_snapshot ? "snapshot + wal replay" : "wal replay";
  if (summary.recovered_torn_tail) out += " (torn tail truncated)";
  out += "\n";
  out += "- persisted base tasks: " + std::to_string(summary.tasks) + "\n\n";
  if (summary.sessions.empty()) {
    out += "No recorded sessions.\n";
    return out;
  }
  out += "| session | dims | observations | state |\n";
  out += "|---|---|---|---|\n";
  for (const StoreSummary::Session& session : summary.sessions) {
    out += "| " + session.id + " | " + std::to_string(session.dimension) +
           " | " + std::to_string(session.observations) + " | " +
           (session.finished ? "finished" : "in-flight") + " |\n";
  }
  return out;
}

}  // namespace dbtune_report
