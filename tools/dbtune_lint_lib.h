#ifndef DBTUNE_TOOLS_DBTUNE_LINT_LIB_H_
#define DBTUNE_TOOLS_DBTUNE_LINT_LIB_H_

#include <string>
#include <vector>

namespace dbtune_lint {

/// One rule violation at a specific line.
struct Finding {
  std::string file;   // display path (as passed / discovered)
  int line = 0;       // 1-based
  std::string rule;   // rule id, e.g. "naked-new"
  std::string message;
};

/// Rule ids enforced by the linter:
///   random-seed   — std::rand/srand/std::random_device/time()-based
///                   seeding outside src/util/random (all randomness must
///                   flow through the seeded Rng for reproducibility)
///   naked-new     — raw `new` / `delete` expressions (`= delete` for
///                   deleted functions is fine); use make_unique etc.
///   using-namespace-std — `using namespace std` at any scope
///   include-guard — header guards must be DBTUNE_<PATH>_H_
///   iostream      — no <iostream> in library code outside util/logging
///   raw-timing    — no std::chrono clock reads (steady_clock,
///                   system_clock, high_resolution_clock) outside src/obs
///                   and bench_util.h; timing must flow through obs/clock
///                   so every latency lands in the metrics registry and
///                   tests can swap in the deterministic fake clock
///   gp-construction — no direct GaussianProcess/SparseGaussianProcess
///                   use in src/optimizer; GP surrogates must come from
///                   surrogate_factory's CreateGpSurrogate so the sparse
///                   escalation policy applies everywhere
///
/// Any rule can be suppressed for one line with a trailing comment:
///   ... code ...  // dbtune-lint: allow(<rule>)

/// Lints one translation unit given its content. `relpath` is the path
/// relative to the linted root (used for path-scoped rules and the
/// expected include-guard name); `display_path` is what findings report.
std::vector<Finding> LintSource(const std::string& display_path,
                                const std::string& relpath,
                                const std::string& content);

/// Reads and lints one file on disk.
std::vector<Finding> LintFile(const std::string& path,
                              const std::string& relpath);

/// Recursively lints every .h/.cc file under `root`.
std::vector<Finding> LintTree(const std::string& root);

/// "file:line: [rule] message" for human / CI output.
std::string FormatFinding(const Finding& finding);

}  // namespace dbtune_lint

#endif  // DBTUNE_TOOLS_DBTUNE_LINT_LIB_H_
