#include "dbtune_analyze_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace dbtune_analyze {

namespace {

// ---------------------------------------------------------------------------
// Check registry
// ---------------------------------------------------------------------------

const std::vector<CheckInfo>& Registry() {
  static const std::vector<CheckInfo> checks = {
      {"thread-local-capture", "error",
       "thread_local declared outside a ParallelFor/Submit lambda is named "
       "inside it; pool workers resolve the name to their own instance",
       "capture a pointer to the thread_local by value before the lambda "
       "(or declare the thread_local inside the lambda body)"},
      {"unordered-iteration", "error",
       "range-for over std::unordered_map/set accumulates or writes "
       "output; hash order is unspecified",
       "copy the keys into a sorted vector (or use std::map) before "
       "accumulating or emitting"},
      {"parallel-reduction-order", "error",
       "+=/-= on shared state inside a ParallelFor/Submit lambda; the "
       "accumulation order depends on thread scheduling",
       "accumulate into per-chunk partials indexed by chunk, then reduce "
       "chunk-ascending on one thread"},
      {"ignored-status", "error",
       "Status/Result-returning call discarded (bare statement, (void) "
       "cast, or comma operator) — the forms [[nodiscard]] misses",
       "handle the Status: DBTUNE_RETURN_IF_ERROR, check .ok(), or store "
       "the result"},
      {"mutex-guard-gap", "error",
       "member annotated DBTUNE_GUARDED_BY touched with no MutexLock / "
       "AssertHeld in scope",
       "take a MutexLock on the guarding mutex, or annotate the method "
       "DBTUNE_REQUIRES(mu)"},
      {"random-seed", "error",
       "non-deterministic seeding outside src/util/random",
       "route all randomness through the seeded util/random Rng"},
      {"naked-new", "warning", "raw new/delete expression",
       "use std::make_unique/std::make_shared or a container"},
      {"using-namespace-std", "warning",
       "`using namespace std` pollutes every including scope",
       "qualify names or use narrow using-declarations"},
      {"include-guard", "warning",
       "header guard must be the path-derived DBTUNE_<PATH>_H_",
       "rename the #ifndef/#define pair to the path-derived guard"},
      {"iostream", "warning",
       "<iostream> drags static iostream initializers into library code",
       "log through util/logging instead"},
      {"raw-timing", "warning",
       "std::chrono clock read outside src/obs and bench_util.h",
       "measure time through obs/clock (MonotonicNanos/MonotonicSeconds)"},
      {"predict-in-loop", "warning",
       "scalar PredictMeanVar inside a loop under src/optimizer",
       "score candidate batches through PredictMeanVarBatch"},
      {"gp-construction", "warning",
       "direct GaussianProcess/SparseGaussianProcess use under "
       "src/optimizer",
       "obtain GP surrogates through surrogate_factory's CreateGpSurrogate "
       "so long histories escalate to the sparse tier"},
      {"metrics-export", "warning",
       "direct registry snapshot/serialization outside src/obs",
       "render metrics through obs/metrics_export "
       "(RenderPrometheus/WritePrometheusSnapshot)"},
      {"unchecked-write", "error",
       "write/flush/close result discarded on a persistence path; a full "
       "disk or dead descriptor fails silently and truncates durable state",
       "check the return of fwrite/fprintf/fflush/fclose (or the stream "
       "state after writing) and surface the failure"},
      {"blocking-in-scheduler", "error",
       "blocking call (file I/O, sleep, WaitAll) on a serve scheduler "
       "path; the batch loop multiplexes every session, so one blocking "
       "call stalls all of them",
       "persist through the ObservationStore API, join parallel work via "
       "ParallelFor, and drive timeouts from the idle sweep's clock "
       "instead of sleeping"},
      {"io", "error", "file could not be read",
       "check that the path exists and is readable"},
  };
  return checks;
}

const CheckInfo* FindCheck(const std::string& id) {
  for (const CheckInfo& check : Registry()) {
    if (id == check.id) return &check;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Small string helpers
// ---------------------------------------------------------------------------

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct };
  Kind kind;
  std::string text;
  int line;
};

struct Directive {
  int line;          // line of the leading '#'
  std::string text;  // directive text, comments stripped, continuations joined
};

struct FileScan {
  std::vector<Token> tokens;
  std::vector<Directive> directives;
  std::map<int, std::set<std::string>> line_allows;
  std::set<std::string> file_allows;
};

/// Collects `dbtune-lint: allow(<check>)` / `allow-file(<check>)` tags
/// from one comment. `base_line` is the line the comment starts on;
/// embedded newlines shift the attribution line.
void ParseAllowTags(const std::string& comment, int base_line,
                    FileScan* scan) {
  static const std::string kLineTag = "dbtune-lint: allow(";
  static const std::string kFileTag = "dbtune-lint: allow-file(";
  for (int pass = 0; pass < 2; ++pass) {
    const std::string& tag = pass == 0 ? kLineTag : kFileTag;
    size_t pos = 0;
    while ((pos = comment.find(tag, pos)) != std::string::npos) {
      const size_t open = pos + tag.size();
      const size_t close = comment.find(')', open);
      if (close == std::string::npos) break;
      const std::string check = comment.substr(open, close - open);
      if (pass == 0) {
        const int line = base_line + static_cast<int>(std::count(
                                         comment.begin(),
                                         comment.begin() +
                                             static_cast<long>(pos),
                                         '\n'));
        scan->line_allows[line].insert(check);
      } else {
        scan->file_allows.insert(check);
      }
      pos = close + 1;
    }
  }
}

/// True when the identifier ending right before a '"' marks a raw string
/// (R, u8R, uR, LR, UR).
bool IsRawStringPrefix(const std::string& ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "LR" ||
         ident == "UR";
}

FileScan Scan(const std::string& src) {
  FileScan scan;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  bool line_start = true;  // only whitespace seen since the last newline

  auto peek = [&](size_t k) { return k < n ? src[k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(i + 1) == '/') {
      const size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      ParseAllowTags(src.substr(start, i - start), line, &scan);
      continue;
    }
    // Block comment.
    if (c == '/' && peek(i + 1) == '*') {
      const size_t start = i;
      const int start_line = line;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      ParseAllowTags(src.substr(start, i - start), start_line, &scan);
      continue;
    }
    // Preprocessor directive (only when '#' leads the line).
    if (c == '#' && line_start) {
      const int start_line = line;
      std::string text;
      ++i;
      while (i < n) {
        if (src[i] == '\\' && peek(i + 1) == '\n') {
          text.push_back(' ');
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;  // the newline itself is reprocessed
        if (src[i] == '/' && peek(i + 1) == '/') {
          const size_t cstart = i;
          while (i < n && src[i] != '\n') ++i;
          ParseAllowTags(src.substr(cstart, i - cstart), line, &scan);
          break;
        }
        if (src[i] == '/' && peek(i + 1) == '*') {
          const size_t cstart = i;
          const int cline = line;
          i += 2;
          while (i < n && !(src[i] == '*' && peek(i + 1) == '/')) {
            if (src[i] == '\n') ++line;
            ++i;
          }
          if (i < n) i += 2;
          ParseAllowTags(src.substr(cstart, i - cstart), cline, &scan);
          text.push_back(' ');
          continue;
        }
        text.push_back(src[i]);
        ++i;
      }
      scan.directives.push_back(Directive{start_line, text});
      continue;
    }
    line_start = false;
    // Identifier (possibly a raw-string prefix).
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      const std::string ident = src.substr(start, i - start);
      if (peek(i) == '"' && IsRawStringPrefix(ident)) {
        // Raw string: R"delim( ... )delim"
        ++i;  // consume the quote
        std::string delim;
        while (i < n && src[i] != '(') delim.push_back(src[i++]);
        if (i < n) ++i;  // consume '('
        const std::string closer = ")" + delim + "\"";
        const size_t end = src.find(closer, i);
        const int string_line = line;
        const size_t stop = end == std::string::npos ? n : end + closer.size();
        line += static_cast<int>(
            std::count(src.begin() + static_cast<long>(i),
                       src.begin() + static_cast<long>(stop), '\n'));
        i = stop;
        scan.tokens.push_back(Token{Token::kString, "", string_line});
        continue;
      }
      scan.tokens.push_back(Token{Token::kIdent, ident, line});
      continue;
    }
    // Number (handles digit separators, hex, exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' &&
         std::isdigit(static_cast<unsigned char>(peek(i + 1))) != 0)) {
      const size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if (d == '\'' && IsIdentChar(peek(i + 1))) {
          i += 2;  // digit separator
        } else if ((d == '+' || d == '-') &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      scan.tokens.push_back(
          Token{Token::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int string_line = line;
      ++i;
      while (i < n) {
        if (src[i] == '\\') {
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line count honest
        if (src[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      scan.tokens.push_back(Token{Token::kString, "", string_line});
      continue;
    }
    // Punctuation: longest match of the multi-char set we care about.
    static const char* kMulti[] = {"<<=", ">>=", "->*", "...", "::", "->",
                                   "+=",  "-=",  "*=",  "/=",  "%=", "&=",
                                   "|=",  "^=",  "==",  "!=",  "<=", ">=",
                                   "&&",  "||",  "<<",  ">>",  "++", "--"};
    std::string punct(1, c);
    for (const char* m : kMulti) {
      const size_t len = std::char_traits<char>::length(m);
      if (src.compare(i, len, m) == 0) {
        punct = m;
        break;
      }
    }
    scan.tokens.push_back(Token{Token::kPunct, punct, line});
    i += punct.size();
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Declaration pass
// ---------------------------------------------------------------------------

struct Decls {
  std::set<std::string> unordered_vars;  // names declared as unordered_{map,set}
  std::set<std::string> guarded;         // members annotated GUARDED_BY
  std::set<size_t> skip_tokens;  // declaration-site tokens exempt from checks
  std::set<std::string> status_fns;  // functions returning Status/Result<...>
  // Functions this file declares with a non-Status return type. They
  // override the tree-wide Status index — a file's own `int Build(...)`
  // must not be confused with some other class's Result-returning Build.
  std::set<std::string> nonstatus_fns;
};

/// Skips a balanced template argument list starting at tokens[i] == "<".
/// Returns the index just past the matching ">". ">>" closes two levels.
size_t SkipTemplateArgs(const std::vector<Token>& tokens, size_t i) {
  int depth = 0;
  while (i < tokens.size()) {
    const Token& t = tokens[i];
    if (t.kind == Token::kPunct) {
      if (t.text == "<") ++depth;
      if (t.text == ">") --depth;
      if (t.text == ">>") depth -= 2;
      if (t.text == ";") return i;  // malformed; bail out
    }
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

Decls CollectDecls(const FileScan& scan) {
  Decls decls;
  const std::vector<Token>& tokens = scan.tokens;
  const size_t n = tokens.size();
  auto is_punct = [&](size_t k, const char* text) {
    return k < n && tokens[k].kind == Token::kPunct && tokens[k].text == text;
  };
  for (size_t i = 0; i < n; ++i) {
    const Token& t = tokens[i];
    if (t.kind != Token::kIdent) continue;

    // `std::unordered_map<K, V> name` — record `name`.
    if (t.text == "unordered_map" || t.text == "unordered_set") {
      size_t j = i + 1;
      if (is_punct(j, "<")) j = SkipTemplateArgs(tokens, j);
      while (j < n && tokens[j].kind == Token::kPunct &&
             (tokens[j].text == "&" || tokens[j].text == "*" ||
              tokens[j].text == "&&")) {
        ++j;
      }
      while (j < n && tokens[j].kind == Token::kIdent &&
             tokens[j].text == "const") {
        ++j;
      }
      if (j < n && tokens[j].kind == Token::kIdent) {
        decls.unordered_vars.insert(tokens[j].text);
      }
      continue;
    }

    // `member DBTUNE_GUARDED_BY(mu)` — record `member`, exempt the
    // declaration tokens themselves.
    if (t.text == "DBTUNE_GUARDED_BY" || t.text == "DBTUNE_PT_GUARDED_BY" ||
        t.text == "GUARDED_BY") {
      if (i > 0 && tokens[i - 1].kind == Token::kIdent) {
        decls.guarded.insert(tokens[i - 1].text);
        decls.skip_tokens.insert(i - 1);
      }
      size_t j = i + 1;
      if (is_punct(j, "(")) {
        int depth = 0;
        for (; j < n; ++j) {
          decls.skip_tokens.insert(j);
          if (is_punct(j, "(")) ++depth;
          if (is_punct(j, ")") && --depth == 0) break;
        }
      }
      continue;
    }

    // `Status Name(` / `Result<T> Name(` / `Status Klass::Name(` — record
    // the terminal name as a Status-returning function.
    if (t.text == "Status" || t.text == "Result") {
      size_t j = i + 1;
      if (t.text == "Result") {
        if (!is_punct(j, "<")) continue;
        j = SkipTemplateArgs(tokens, j);
      }
      if (j >= n || tokens[j].kind != Token::kIdent) continue;
      std::string name = tokens[j].text;
      while (j + 2 < n && is_punct(j + 1, "::") &&
             tokens[j + 2].kind == Token::kIdent) {
        j += 2;
        name = tokens[j].text;
      }
      if (is_punct(j + 1, "(")) decls.status_fns.insert(name);
      continue;
    }

    // `Type Name(` / `Type Klass::Name(` declarations with a non-Status
    // return type — record the name as a local override.
    if (is_punct(i + 1, "(") && i > 0) {
      // Walk the qualifier chain back to its head.
      size_t head = i;
      while (head >= 2 && is_punct(head - 1, "::") &&
             tokens[head - 2].kind == Token::kIdent) {
        head -= 2;
      }
      if (head == 0) continue;
      size_t before = head - 1;
      // Skip pointer/reference declarators back to the type name.
      while (before > 0 && tokens[before].kind == Token::kPunct &&
             (tokens[before].text == "*" || tokens[before].text == "&" ||
              tokens[before].text == "&&")) {
        --before;
      }
      bool is_result_template = false;
      if (tokens[before].kind == Token::kPunct && tokens[before].text == ">") {
        // `Tmpl<...> Name(` — find the template name before the matching <.
        int depth = 0;
        size_t k = before;
        while (true) {
          if (tokens[k].kind == Token::kPunct) {
            if (tokens[k].text == ">") ++depth;
            if (tokens[k].text == ">>") depth += 2;
            if (tokens[k].text == "<" && --depth == 0) break;
          }
          if (k == 0) break;
          --k;
        }
        if (k > 0 && tokens[k - 1].kind == Token::kIdent) {
          is_result_template = tokens[k - 1].text == "Result";
          before = k - 1;
        } else {
          continue;
        }
      }
      if (tokens[before].kind != Token::kIdent) continue;
      static const std::set<std::string> kNotTypes = {
          "return", "else",      "case",     "delete",   "new",      "do",
          "goto",   "throw",     "co_return", "co_await", "co_yield",
          "if",     "while",     "for",      "switch",   "catch",
          "operator", "sizeof",  "alignof",  "typeid",   "not",
          "and",    "or"};
      if (kNotTypes.count(tokens[before].text) != 0) continue;
      if (tokens[before].text == "Status" || is_result_template) continue;
      decls.nonstatus_fns.insert(tokens[i].text);
    }
  }
  return decls;
}

// ---------------------------------------------------------------------------
// Scope / check pass
// ---------------------------------------------------------------------------

struct PathRules {
  bool random = true;          // random-seed applies
  bool timing = true;          // raw-timing applies
  bool optimizer = false;      // predict-in-loop / gp-construction apply
  bool metrics_export = true;  // metrics-export applies
  bool persistence = false;    // unchecked-write applies
  bool scheduler = false;      // blocking-in-scheduler applies
};

class Analyzer {
 public:
  Analyzer(const FileScan& scan, const Decls& decls,
           const std::set<std::string>& guarded,
           const std::set<std::string>& status_fns, const PathRules& rules,
           const std::string& display_path, std::vector<Diagnostic>* out)
      : scan_(scan),
        tokens_(scan.tokens),
        decls_(decls),
        guarded_(guarded),
        status_fns_(status_fns),
        rules_(rules),
        display_path_(display_path),
        out_(out) {
    skip_ = decls.skip_tokens;
    paren_match_.resize(tokens_.size(), 0);
    std::vector<size_t> stack;
    for (size_t i = 0; i < tokens_.size(); ++i) {
      if (IsPunct(i, "(")) stack.push_back(i);
      if (IsPunct(i, ")") && !stack.empty()) {
        paren_match_[stack.back()] = i;
        paren_match_[i] = stack.back();
        stack.pop_back();
      }
    }
  }

  void Run() {
    Scope file_scope;
    file_scope.kind = Scope::kFile;
    scopes_.push_back(file_scope);
    ScopeWalk();
    StatusDiscardPass();
    UncheckedWritePass();
  }

 private:
  struct Scope {
    enum Kind { kFile, kBlock, kFunction, kLambda, kLoopBody };
    Kind kind = kBlock;
    bool has_lock = false;
    bool parallel = false;     // lambda spawned via ParallelFor / Submit
    bool ref_default = false;  // lambda capture default is [&]
    bool unordered = false;    // loop body iterating an unordered container
    std::set<std::string> ref_caps;
    std::set<std::string> tl_names;  // thread_locals declared in this scope
    std::set<std::string> locals;    // heuristic local declarations
  };

  bool IsPunct(size_t i, const char* text) const {
    return i < tokens_.size() && tokens_[i].kind == Token::kPunct &&
           tokens_[i].text == text;
  }
  bool IsIdent(size_t i) const {
    return i < tokens_.size() && tokens_[i].kind == Token::kIdent;
  }
  bool IsIdent(size_t i, const char* text) const {
    return IsIdent(i) && tokens_[i].text == text;
  }

  void Report(int line, const std::string& check, const std::string& message) {
    if (scan_.file_allows.count(check) != 0) return;
    const auto allows = scan_.line_allows.find(line);
    if (allows != scan_.line_allows.end() && allows->second.count(check) != 0) {
      return;
    }
    const CheckInfo* info = FindCheck(check);
    out_->push_back(Diagnostic{display_path_, line, check,
                               info != nullptr ? info->severity : "error",
                               message,
                               info != nullptr ? info->fix_hint : "", false});
  }

  // ---- scope helpers -------------------------------------------------------

  bool InLoop() const {
    if (loop_body_pending_ || open_loop_headers_ > 0) return true;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kLoopBody) return true;
    }
    return false;
  }

  bool InUnorderedLoop() const {
    if (loop_body_pending_ && pending_unordered_) return true;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kLoopBody && s.unordered) return true;
    }
    return false;
  }

  bool AnyLockInScope() const {
    for (const Scope& s : scopes_) {
      if (s.has_lock) return true;
    }
    return false;
  }

  /// Index of the outermost enclosing parallel lambda, or npos.
  size_t OutermostParallelLambda() const {
    for (size_t k = 0; k < scopes_.size(); ++k) {
      if (scopes_[k].kind == Scope::kLambda && scopes_[k].parallel) return k;
    }
    return static_cast<size_t>(-1);
  }

  // ---- lambda capture parsing ---------------------------------------------

  /// Parses the capture list starting at tokens[open] == "[". Returns the
  /// index of the matching "]" (or open when unterminated).
  size_t ParseCaptures(size_t open) {
    pending_ref_default_ = false;
    pending_ref_caps_.clear();
    int depth = 0;
    size_t close = open;
    for (size_t k = open; k < tokens_.size(); ++k) {
      if (IsPunct(k, "[")) ++depth;
      if (IsPunct(k, "]") && --depth == 0) {
        close = k;
        break;
      }
    }
    // Split top-level commas.
    size_t group_start = open + 1;
    int inner = 0;
    for (size_t k = open + 1; k <= close; ++k) {
      const bool boundary = k == close || (IsPunct(k, ",") && inner == 0);
      if (IsPunct(k, "[") || IsPunct(k, "(") || IsPunct(k, "{")) ++inner;
      if (IsPunct(k, "]") || IsPunct(k, ")") || IsPunct(k, "}")) --inner;
      if (!boundary) continue;
      // Group is [group_start, k).
      if (group_start < k) {
        if (IsPunct(group_start, "&")) {
          if (group_start + 1 == k) {
            pending_ref_default_ = true;
          } else if (IsIdent(group_start + 1)) {
            pending_ref_caps_.insert(tokens_[group_start + 1].text);
          }
        }
      }
      group_start = k + 1;
    }
    return close;
  }

  // ---- declaration helpers -------------------------------------------------

  /// Handles `thread_local ... name ...;` at tokens[i]: records the
  /// declared name into the innermost function-like scope and exempts the
  /// declaration's own tokens from identifier checks.
  void HandleThreadLocal(size_t i) {
    size_t stop = i;
    size_t name_idx = static_cast<size_t>(-1);
    for (size_t k = i + 1; k < std::min(tokens_.size(), i + 64); ++k) {
      if (IsPunct(k, ";") || IsPunct(k, "=") || IsPunct(k, "(") ||
          IsPunct(k, "{")) {
        stop = k;
        break;
      }
      if (IsIdent(k)) name_idx = k;
      stop = k;
    }
    for (size_t k = i; k <= stop; ++k) skip_.insert(k);
    if (name_idx == static_cast<size_t>(-1)) return;
    for (size_t k = scopes_.size(); k-- > 0;) {
      if (scopes_[k].kind == Scope::kLambda ||
          scopes_[k].kind == Scope::kFunction || scopes_[k].kind == Scope::kFile) {
        scopes_[k].tl_names.insert(tokens_[name_idx].text);
        return;
      }
    }
  }

  /// Heuristic local-declaration recording: `Type name =` / `Type name;`
  /// / `Type name,` — and, inside for-headers, `Type name :`.
  void MaybeRecordLocal(size_t i) {
    if (i == 0 || i + 1 >= tokens_.size()) return;
    const Token& prev = tokens_[i - 1];
    const bool decl_prev =
        (prev.kind == Token::kIdent && prev.text != "return" &&
         prev.text != "else" && prev.text != "case" && prev.text != "delete" &&
         prev.text != "new" && prev.text != "do" && prev.text != "goto" &&
         prev.text != "throw" && prev.text != "operator") ||
        (prev.kind == Token::kPunct &&
         (prev.text == ">" || prev.text == "*" || prev.text == "&" ||
          prev.text == "&&"));
    if (!decl_prev) return;
    const Token& next = tokens_[i + 1];
    if (next.kind != Token::kPunct) return;
    const bool decl_next =
        next.text == "=" || next.text == ";" || next.text == "," ||
        (next.text == ":" && open_loop_headers_ > 0) ||
        (next.text == ")" && lambda_param_depth_ > 0);
    if (!decl_next) return;
    scopes_.back().locals.insert(tokens_[i].text);
  }

  // ---- checks --------------------------------------------------------------

  void CheckIdent(size_t i) {
    const Token& t = tokens_[i];
    const std::string& ident = t.text;
    const bool call = IsPunct(i + 1, "(");

    if (rules_.random) {
      if ((ident == "rand" || ident == "srand" || ident == "time") && call) {
        Report(t.line, "random-seed",
               "call to " + ident +
                   "() — all randomness must flow through the seeded "
                   "util/random Rng for reproducibility");
      } else if (ident == "random_device") {
        Report(t.line, "random-seed",
               "std::random_device is non-deterministic — use the seeded "
               "util/random Rng");
      }
    }

    if (rules_.timing &&
        (ident == "steady_clock" || ident == "system_clock" ||
         ident == "high_resolution_clock")) {
      Report(t.line, "raw-timing",
             "std::chrono::" + ident +
                 " read outside src/obs — measure time through obs/clock "
                 "(MonotonicNanos/MonotonicSeconds) so every latency lands "
                 "in the metrics registry");
    }

    if (rules_.optimizer &&
        (ident == "GaussianProcess" || ident == "SparseGaussianProcess")) {
      Report(t.line, "gp-construction",
             "direct " + ident +
                 " use in optimizer code — obtain GP surrogates through "
                 "surrogate_factory's CreateGpSurrogate so long histories "
                 "escalate to the sparse tier");
    }

    if (rules_.metrics_export &&
        (ident == "MetricsSnapshot" || ident == "ToJson")) {
      Report(t.line, "metrics-export",
             "direct registry iteration (" + ident +
                 ") outside src/obs — render metrics through "
                 "obs/metrics_export so exports stay consistently escaped "
                 "and named");
    }

    if (rules_.scheduler) {
      // The serving loop multiplexes every session over the scheduler
      // thread; a blocking call there stalls all of them. File I/O must
      // flow through the ObservationStore API, joins through ParallelFor
      // (whose internal join is the one sanctioned wait), and timeouts
      // through the idle sweep's clock.
      static const std::set<std::string> kBlockingCalls = {
          "fopen",     "fread",       "fwrite", "fprintf",  "fputs",
          "fflush",    "fclose",      "sleep",  "usleep",   "nanosleep",
          "sleep_for", "sleep_until", "WaitAll"};
      const bool stream_type =
          ident == "ifstream" || ident == "ofstream" || ident == "fstream";
      if ((call && kBlockingCalls.count(ident) != 0) || stream_type) {
        Report(t.line, "blocking-in-scheduler",
               "blocking `" + ident +
                   "` on a serve scheduler path — the batch loop "
                   "multiplexes every session, so one blocking call stalls "
                   "all of them; persist through the ObservationStore API, "
                   "join via ParallelFor, and drive timeouts from the idle "
                   "sweep's clock");
      }
    }

    if (ident == "new") {
      Report(t.line, "naked-new",
             "naked new — use std::make_unique/std::make_shared or a "
             "container");
    }
    if (ident == "delete" && !(i > 0 && IsPunct(i - 1, "="))) {
      Report(t.line, "naked-new",
             "naked delete — owning pointers must be smart pointers");
    }

    if (ident == "using" && IsIdent(i + 1, "namespace") &&
        IsIdent(i + 2, "std")) {
      Report(t.line, "using-namespace-std",
             "`using namespace std` pollutes every including scope");
    }

    if (rules_.optimizer && ident == "PredictMeanVar" && call && InLoop()) {
      Report(t.line, "predict-in-loop",
             "scalar PredictMeanVar inside a loop — score candidate "
             "batches through PredictMeanVarBatch instead (per-call "
             "scratch and dispatch overhead dominates acquisition "
             "scoring)");
    }

    if (InUnorderedLoop() && call &&
        (ident == "push_back" || ident == "emplace_back" ||
         ident == "Append" || ident == "fprintf" || ident == "printf")) {
      Report(t.line, "unordered-iteration",
             "output written while iterating an unordered container — the "
             "emission order is the container's hash order, which is "
             "unspecified and toolchain-dependent");
    }

    if (skip_.count(i) == 0) {
      CheckThreadLocalCapture(i);
      CheckGuardGap(i);
    }
  }

  void CheckThreadLocalCapture(size_t i) {
    const size_t lambda = OutermostParallelLambda();
    if (lambda == static_cast<size_t>(-1)) return;
    const std::string& name = tokens_[i].text;
    // Innermost declaration wins: declared at or inside the parallel
    // lambda means each worker legitimately owns its instance.
    for (size_t k = scopes_.size(); k-- > 0;) {
      if (scopes_[k].tl_names.count(name) == 0) continue;
      if (k >= lambda) return;
      Report(tokens_[i].line, "thread-local-capture",
             "thread_local `" + name +
                 "` declared outside this ParallelFor/Submit lambda is "
                 "named inside it — on a pool worker the name resolves to "
                 "the worker's own (empty, never-resized) instance, not "
                 "the caller's buffer (the PR 6 out-of-bounds write)");
      return;
    }
  }

  void CheckGuardGap(size_t i) {
    const std::string& name = tokens_[i].text;
    if (guarded_.count(name) == 0) return;
    if (AnyLockInScope()) return;
    // A local (or thread_local) of the same name shadows the member.
    for (const Scope& s : scopes_) {
      if (s.locals.count(name) != 0 || s.tl_names.count(name) != 0) return;
    }
    Report(tokens_[i].line, "mutex-guard-gap",
           "`" + name +
               "` is annotated DBTUNE_GUARDED_BY but no MutexLock / "
               "AssertHeld is in scope here (and the enclosing function "
               "has no DBTUNE_REQUIRES)");
  }

  void CheckAccumulate(size_t i) {
    // tokens_[i] is "+=" or "-=".
    if (InUnorderedLoop()) {
      Report(tokens_[i].line, "unordered-iteration",
             "accumulation while iterating an unordered container — the "
             "reduction order is the container's hash order, so "
             "floating-point results are unspecified");
    }
    const size_t lambda = OutermostParallelLambda();
    if (lambda == static_cast<size_t>(-1)) return;
    if (i == 0) return;
    // Walk the target chain backwards; indexed targets (`x[i] +=`) write
    // index-owned slots and are the sanctioned pattern.
    size_t idx = i - 1;
    size_t head = static_cast<size_t>(-1);
    while (true) {
      if (IsPunct(idx, "]")) return;  // indexed target
      if (!IsIdent(idx)) return;      // e.g. `) +=` — not a plain target
      head = idx;
      if (idx >= 2 && tokens_[idx - 1].kind == Token::kPunct &&
          (tokens_[idx - 1].text == "." || tokens_[idx - 1].text == "->" ||
           tokens_[idx - 1].text == "::")) {
        idx -= 2;
        continue;
      }
      break;
    }
    const std::string& name = tokens_[head].text;
    // Locals of the lambda (or of scopes nested inside it) are private to
    // one chunk; thread_locals are handled by thread-local-capture.
    for (size_t k = scopes_.size(); k-- > lambda;) {
      if (scopes_[k].locals.count(name) != 0) return;
      if (scopes_[k].tl_names.count(name) != 0) return;
    }
    for (const Scope& s : scopes_) {
      if (s.tl_names.count(name) != 0) return;  // thread-local-capture's case
    }
    Report(tokens_[i].line, "parallel-reduction-order",
           "`" + name + " " + tokens_[i].text +
               "` inside a ParallelFor/Submit lambda accumulates shared "
               "state in scheduling order — results differ across pool "
               "sizes");
  }

  /// Decides whether a loop header range expression iterates an unordered
  /// container: `for (decl : expr)` with `expr` naming a declared
  /// unordered variable (or the container type itself).
  bool HeaderIteratesUnordered(size_t open, size_t close) {
    int depth = 0;
    size_t colon = static_cast<size_t>(-1);
    for (size_t k = open + 1; k < close; ++k) {
      if (IsPunct(k, "(")) ++depth;
      if (IsPunct(k, ")")) --depth;
      if (depth == 0 && IsPunct(k, ":")) {
        colon = k;
        break;
      }
    }
    if (colon == static_cast<size_t>(-1)) return false;
    for (size_t k = colon + 1; k < close; ++k) {
      if (!IsIdent(k)) continue;
      if (tokens_[k].text == "unordered_map" ||
          tokens_[k].text == "unordered_set" ||
          decls_.unordered_vars.count(tokens_[k].text) != 0) {
        return true;
      }
    }
    return false;
  }

  /// Classifies the `{` at tokens[i] and pushes the scope.
  void OpenScope(size_t i) {
    Scope scope;
    scope.kind = Scope::kBlock;
    if (lambda_pending_) {
      scope.kind = Scope::kLambda;
      scope.parallel = parallel_call_depth_ > 0;
      scope.ref_default = pending_ref_default_;
      scope.ref_caps = pending_ref_caps_;
      scope.locals = pending_lambda_locals_;
      lambda_pending_ = false;
      pending_lambda_locals_.clear();
    } else if (loop_body_pending_) {
      scope.kind = Scope::kLoopBody;
      scope.unordered = pending_unordered_;
      loop_body_pending_ = false;
      pending_unordered_ = false;
    } else {
      // Walk back over trailing signature tokens (const, noexcept,
      // override, -> type, ...) looking for the `)` that closed the most
      // recent paren group; its callee decides control vs function.
      size_t j = i;
      bool function_like = false;
      for (int steps = 0; j-- > 0 && steps < 16; ++steps) {
        const Token& b = tokens_[j];
        if (b.kind == Token::kPunct && b.text == ")") {
          if (j == last_rparen_index_) {
            function_like = last_rparen_callee_ != "if" &&
                            last_rparen_callee_ != "switch" &&
                            last_rparen_callee_ != "catch" &&
                            last_rparen_callee_ != "for" &&
                            last_rparen_callee_ != "while";
          }
          break;
        }
        if (b.kind == Token::kIdent ||
            (b.kind == Token::kPunct &&
             (b.text == "::" || b.text == ">" || b.text == "*" ||
              b.text == "&" || b.text == "->"))) {
          continue;
        }
        break;  // `=`/`,`/`;`/`{`/`:`/string — brace-init or type body
      }
      if (function_like) {
        scope.kind = Scope::kFunction;
        // A DBTUNE_REQUIRES annotation on the signature means the caller
        // holds the lock by contract.
        for (size_t k = i; k-- > 0;) {
          const Token& b = tokens_[k];
          if (b.kind == Token::kPunct &&
              (b.text == ";" || b.text == "}" || b.text == "{")) {
            break;
          }
          if (b.kind == Token::kIdent &&
              (b.text == "DBTUNE_REQUIRES" ||
               b.text == "DBTUNE_ASSERT_CAPABILITY" ||
               b.text == "DBTUNE_NO_THREAD_SAFETY_ANALYSIS")) {
            scope.has_lock = true;
            break;
          }
        }
      }
    }
    scopes_.push_back(scope);
  }

  // ---- main walk -----------------------------------------------------------

  void ScopeWalk() {
    const size_t n = tokens_.size();
    for (size_t i = 0; i < n; ++i) {
      const Token& t = tokens_[i];
      if (t.kind == Token::kIdent) {
        if (t.text == "for" || t.text == "while") {
          pending_loop_keyword_ = true;
        } else if (t.text == "do") {
          loop_body_pending_ = true;
        } else if (t.text == "thread_local") {
          HandleThreadLocal(i);
        } else {
          if ((t.text == "MutexLock" || t.text == "AssertHeld" ||
               t.text == "lock_guard" || t.text == "unique_lock" ||
               t.text == "scoped_lock") &&
              (IsIdent(i + 1) || IsPunct(i + 1, "(") || IsPunct(i + 1, "<"))) {
            // `MutexLock lock(...)` / `mu_.AssertHeld()` acquire; a bare
            // mention (forward declaration, friend decl) does not.
            scopes_.back().has_lock = true;
          }
          MaybeRecordLocal(i);
          CheckIdent(i);
        }
        continue;
      }
      if (t.kind != Token::kPunct) continue;
      const std::string& p = t.text;
      if (p == "(") {
        ParenFrame frame;
        frame.open = i;
        if (i > 0 && IsIdent(i - 1)) frame.callee = tokens_[i - 1].text;
        frame.loop_header = pending_loop_keyword_;
        pending_loop_keyword_ = false;
        frame.parallel_call =
            frame.callee == "ParallelFor" || frame.callee == "Submit";
        if (frame.parallel_call) ++parallel_call_depth_;
        if (frame.loop_header) ++open_loop_headers_;
        frame.lambda_params = lambda_pending_ && !lambda_params_seen_;
        if (frame.lambda_params) {
          lambda_params_seen_ = true;
          ++lambda_param_depth_;
        }
        parens_.push_back(frame);
      } else if (p == ")") {
        if (!parens_.empty()) {
          const ParenFrame frame = parens_.back();
          parens_.pop_back();
          if (frame.parallel_call) --parallel_call_depth_;
          if (frame.lambda_params) --lambda_param_depth_;
          last_rparen_index_ = i;
          last_rparen_callee_ = frame.callee;
          if (frame.loop_header) {
            --open_loop_headers_;
            loop_body_pending_ = true;
            pending_unordered_ = HeaderIteratesUnordered(frame.open, i);
          }
        }
      } else if (p == "{") {
        OpenScope(i);
      } else if (p == "}") {
        if (scopes_.size() > 1) scopes_.pop_back();
      } else if (p == "[") {
        HandleBracket(i);
      } else if (p == ";") {
        if (open_loop_headers_ == 0) {
          loop_body_pending_ = false;
          pending_unordered_ = false;
        }
        // A lambda-intro that never reached a body was a misparse.
        if (lambda_pending_ && lambda_param_depth_ == 0) {
          lambda_pending_ = false;
          pending_lambda_locals_.clear();
        }
      } else if (p == "+=" || p == "-=") {
        CheckAccumulate(i);
      } else if (p == "<<") {
        if (InUnorderedLoop()) {
          Report(t.line, "unordered-iteration",
                 "stream output while iterating an unordered container — "
                 "the emission order is the container's hash order");
        }
      }
    }
  }

  void HandleBracket(size_t i) {
    // `[[attribute]]` — skip both brackets; subscript when the previous
    // token can end an expression; otherwise a lambda introducer.
    if (IsPunct(i + 1, "[")) return;
    if (i > 0 && IsPunct(i - 1, "[")) return;
    if (i > 0) {
      const Token& prev = tokens_[i - 1];
      if (prev.kind == Token::kIdent || prev.kind == Token::kNumber ||
          prev.kind == Token::kString ||
          (prev.kind == Token::kPunct &&
           (prev.text == ")" || prev.text == "]"))) {
        return;  // subscript or array declarator
      }
    }
    const size_t close = ParseCaptures(i);
    if (close == i) return;
    lambda_pending_ = true;
    lambda_params_seen_ = false;
    pending_lambda_locals_.clear();
  }

  // ---- discarded-result passes ---------------------------------------------

  /// Classifies how the value of the call at `tokens_[i](...)` (closing
  /// paren at `close`) is thrown away. Returns nullptr when the value is
  /// consumed (assigned, tested, passed on, returned).
  const char* DiscardForm(size_t i, size_t close) const {
    // Walk the qualifier chain (`a.b->c::name`) back to its start.
    size_t start = i;
    while (start >= 2 && tokens_[start - 1].kind == Token::kPunct &&
           (tokens_[start - 1].text == "." ||
            tokens_[start - 1].text == "->" ||
            tokens_[start - 1].text == "::") &&
           tokens_[start - 2].kind == Token::kIdent) {
      start -= 2;
    }
    const bool stmt_start =
        start == 0 || IsPunct(start - 1, ";") || IsPunct(start - 1, "{") ||
        IsPunct(start - 1, "}") || IsIdent(start - 1, "else") ||
        IsIdent(start - 1, "do");

    if (stmt_start && IsPunct(close + 1, ";")) {
      return "the result of a bare call statement";
    }
    if (start >= 3 && IsPunct(start - 1, ")") && IsIdent(start - 2, "void") &&
        IsPunct(start - 3, "(")) {
      return "a (void) cast";
    }
    if (start >= 5 && IsPunct(start - 1, "(") && IsPunct(start - 2, ">") &&
        IsIdent(start - 3, "void") && IsPunct(start - 4, "<") &&
        IsIdent(start - 5, "static_cast")) {
      return "a static_cast<void>";
    }
    if (IsPunct(close + 1, ",")) {
      // Comma counts as a discard only under a *grouping* paren (the
      // comma operator), never in an argument list.
      size_t k = start;
      size_t enclosing = static_cast<size_t>(-1);
      int depth = 0;
      while (k-- > 0) {
        if (IsPunct(k, ")")) ++depth;
        if (IsPunct(k, "(")) {
          if (depth == 0) {
            enclosing = k;
            break;
          }
          --depth;
        }
        if (depth == 0 && (IsPunct(k, ";") || IsPunct(k, "{"))) break;
      }
      if (enclosing != static_cast<size_t>(-1)) {
        const bool call_args =
            enclosing > 0 &&
            (tokens_[enclosing - 1].kind == Token::kIdent ||
             IsPunct(enclosing - 1, ")") || IsPunct(enclosing - 1, "]") ||
             IsPunct(enclosing - 1, ">"));
        if (!call_args) return "the comma operator";
      }
    }
    return nullptr;
  }

  void StatusDiscardPass() {
    const size_t n = tokens_.size();
    for (size_t i = 0; i < n; ++i) {
      if (!IsIdent(i) || !IsPunct(i + 1, "(")) continue;
      if (status_fns_.count(tokens_[i].text) == 0) continue;
      // This file's own non-Status declaration overrides the tree index.
      if (decls_.nonstatus_fns.count(tokens_[i].text) != 0) continue;
      const size_t close = paren_match_[i + 1];
      if (close == 0) continue;
      const char* how = DiscardForm(i, close);
      if (how != nullptr) ReportDiscard(tokens_[i].line, tokens_[i].text, how);
    }
  }

  void UncheckedWritePass() {
    if (!rules_.persistence) return;
    // C stdio calls whose return value reports the write/flush/close
    // failure; discarding it loses the only error signal.
    static const std::set<std::string> kWriteFns = {
        "fwrite", "fprintf", "vfprintf", "fputs",
        "fputc",  "putc",    "fflush",   "fclose"};
    const size_t n = tokens_.size();
    for (size_t i = 0; i < n; ++i) {
      if (!IsIdent(i) || !IsPunct(i + 1, "(")) continue;
      if (kWriteFns.count(tokens_[i].text) == 0) continue;
      const size_t close = paren_match_[i + 1];
      if (close == 0) continue;
      // stderr writes are best-effort diagnostics, not durable state.
      bool to_stderr = false;
      for (size_t k = i + 2; k < close; ++k) {
        if (IsIdent(k, "stderr")) {
          to_stderr = true;
          break;
        }
      }
      if (to_stderr) continue;
      const char* how = DiscardForm(i, close);
      if (how != nullptr) {
        Report(tokens_[i].line, "unchecked-write",
               "result of `" + tokens_[i].text + "()` discarded via " + how +
                   " on a persistence path — a full disk or dead "
                   "descriptor fails silently and truncates durable state");
      }
    }
    // ofstream declared and written but never state-checked anywhere in
    // the file: no `!stream` test and no good()/fail()/bad()/rdstate().
    for (size_t i = 0; i + 1 < n; ++i) {
      if (!IsIdent(i, "ofstream") || !IsIdent(i + 1)) continue;
      const std::string& name = tokens_[i + 1].text;
      bool checked = false;
      for (size_t k = 0; k + 1 < n && !checked; ++k) {
        if (IsPunct(k, "!") && IsIdent(k + 1, name.c_str())) checked = true;
        if (IsIdent(k, name.c_str()) && IsPunct(k + 1, ".") &&
            (IsIdent(k + 2, "good") || IsIdent(k + 2, "fail") ||
             IsIdent(k + 2, "bad") || IsIdent(k + 2, "rdstate"))) {
          checked = true;
        }
      }
      if (!checked) {
        Report(tokens_[i + 1].line, "unchecked-write",
               "ofstream `" + name +
                   "` on a persistence path is written but its state is "
                   "never checked — test good()/fail() (or `!" + name +
                   "`) after writing so short writes are not dropped");
      }
    }
  }

  void ReportDiscard(int line, const std::string& name,
                     const std::string& how) {
    Report(line, "ignored-status",
           "result of Status/Result-returning `" + name +
               "()` discarded via " + how +
               " — handle it (DBTUNE_RETURN_IF_ERROR, .ok(), or store it); "
               "discarding errors silently corrupts trajectories");
  }

  // ---- members -------------------------------------------------------------

  struct ParenFrame {
    size_t open = 0;
    std::string callee;
    bool loop_header = false;
    bool parallel_call = false;
    bool lambda_params = false;
  };

  const FileScan& scan_;
  const std::vector<Token>& tokens_;
  const Decls& decls_;
  const std::set<std::string>& guarded_;
  const std::set<std::string>& status_fns_;
  PathRules rules_;
  std::string display_path_;
  std::vector<Diagnostic>* out_;

  std::vector<size_t> paren_match_;
  std::vector<Scope> scopes_;
  std::vector<ParenFrame> parens_;
  std::set<size_t> skip_;  // declaration tokens exempt from ident checks

  bool pending_loop_keyword_ = false;
  bool loop_body_pending_ = false;
  bool pending_unordered_ = false;
  int open_loop_headers_ = 0;
  int parallel_call_depth_ = 0;

  bool lambda_pending_ = false;
  bool lambda_params_seen_ = false;
  int lambda_param_depth_ = 0;
  bool pending_ref_default_ = false;
  std::set<std::string> pending_ref_caps_;
  std::set<std::string> pending_lambda_locals_;

  size_t last_rparen_index_ = static_cast<size_t>(-1);
  std::string last_rparen_callee_;
};

// ---------------------------------------------------------------------------
// Include-guard / directive checks
// ---------------------------------------------------------------------------

std::string ExpectedGuard(const std::string& relpath,
                          const std::string& prefix) {
  std::string guard = "DBTUNE_" + prefix;
  for (char c : relpath) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

/// First identifier after `directive` in a directive's text, or "".
std::string DirectiveArg(const std::string& text,
                         const std::string& directive) {
  size_t pos = text.find(directive);
  if (pos == std::string::npos) return "";
  pos += directive.size();
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0) {
    ++pos;
  }
  size_t end = pos;
  while (end < text.size() && IsIdentChar(text[end])) ++end;
  return text.substr(pos, end - pos);
}

bool AllowedAt(const FileScan& scan, int line, const std::string& check) {
  if (scan.file_allows.count(check) != 0) return true;
  const auto it = scan.line_allows.find(line);
  return it != scan.line_allows.end() && it->second.count(check) != 0;
}

void CheckDirectives(const FileScan& scan, const std::string& display_path,
                     const std::string& relpath,
                     const std::string& guard_prefix, bool iostream_allowed,
                     std::vector<Diagnostic>* out) {
  const CheckInfo* iostream_info = FindCheck("iostream");
  const CheckInfo* guard_info = FindCheck("include-guard");

  const bool is_header = EndsWith(relpath, ".h");
  const std::string expected = ExpectedGuard(relpath, "");
  const std::string expected_prefixed =
      guard_prefix.empty() ? expected : ExpectedGuard(relpath, guard_prefix);

  bool saw_ifndef = false;
  bool guard_checked = false;
  int ifndef_line = 0;
  std::string ifndef_token;

  for (const Directive& directive : scan.directives) {
    std::string trimmed = directive.text;
    const size_t first = trimmed.find_first_not_of(" \t");
    trimmed = first == std::string::npos ? std::string() : trimmed.substr(first);

    if (!iostream_allowed &&
        trimmed.find("<iostream>") != std::string::npos &&
        !AllowedAt(scan, directive.line, "iostream")) {
      out->push_back(Diagnostic{
          display_path, directive.line, "iostream", iostream_info->severity,
          "<iostream> drags static iostream initializers into library code "
          "— use util/logging instead",
          iostream_info->fix_hint, false});
    }
    if (!is_header) continue;
    if (!saw_ifndef && StartsWith(trimmed, "ifndef")) {
      saw_ifndef = true;
      ifndef_token = DirectiveArg(trimmed, "ifndef");
      ifndef_line = directive.line;
    } else if (saw_ifndef && !guard_checked && StartsWith(trimmed, "define")) {
      guard_checked = true;
      const std::string define_token = DirectiveArg(trimmed, "define");
      const bool matches =
          (ifndef_token == expected && define_token == expected) ||
          (ifndef_token == expected_prefixed &&
           define_token == expected_prefixed);
      if (!matches && !AllowedAt(scan, ifndef_line, "include-guard") &&
          !AllowedAt(scan, directive.line, "include-guard")) {
        out->push_back(Diagnostic{
            display_path, ifndef_line, "include-guard", guard_info->severity,
            "include guard must be " + expected + " (found #ifndef " +
                ifndef_token + " / #define " + define_token + ")",
            guard_info->fix_hint, false});
      }
    }
  }
  if (is_header && !guard_checked &&
      !AllowedAt(scan, saw_ifndef ? ifndef_line : 1, "include-guard")) {
    out->push_back(Diagnostic{display_path, saw_ifndef ? ifndef_line : 1,
                              "include-guard", guard_info->severity,
                              "missing include guard " + expected,
                              guard_info->fix_hint, false});
  }
}

// ---------------------------------------------------------------------------
// Per-file driver
// ---------------------------------------------------------------------------

PathRules RulesFor(const std::string& relpath) {
  PathRules rules;
  rules.random = !StartsWith(relpath, "util/random");
  rules.timing =
      !StartsWith(relpath, "obs/") && !EndsWith(relpath, "bench_util.h");
  rules.optimizer = StartsWith(relpath, "optimizer/");
  rules.metrics_export = !StartsWith(relpath, "obs/");
  // Files whose writes ARE the durable state: the observation store's
  // WAL/snapshots, the obs trace/log/metrics files, dataset I/O, and the
  // CLIs that emit report/analysis artifacts.
  rules.persistence = StartsWith(relpath, "store/") ||
                      StartsWith(relpath, "obs/") ||
                      StartsWith(relpath, "benchmk/") ||
                      relpath.find("dbtune_report") != std::string::npos ||
                      relpath.find("dbtune_analyze") != std::string::npos;
  // The serving layer's scheduler path must never block: every session
  // shares the batch loop.
  rules.scheduler = StartsWith(relpath, "serve/");
  return rules;
}

std::vector<Diagnostic> AnalyzeScanned(
    const FileScan& scan, const Decls& decls,
    const std::set<std::string>& guarded,
    const std::set<std::string>& status_fns, const std::string& display_path,
    const std::string& relpath, const std::string& guard_prefix) {
  std::vector<Diagnostic> out;
  CheckDirectives(scan, display_path, relpath, guard_prefix,
                  StartsWith(relpath, "util/logging"), &out);
  Analyzer analyzer(scan, decls, guarded, status_fns, RulesFor(relpath),
                    display_path, &out);
  analyzer.Run();
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

bool ReadFileText(const std::string& path, std::string* text) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<CheckInfo>& Checks() { return Registry(); }

std::vector<Diagnostic> AnalyzeSource(const std::string& display_path,
                                      const std::string& relpath,
                                      const std::string& content,
                                      const std::string& guard_prefix) {
  const FileScan scan = Scan(content);
  const Decls decls = CollectDecls(scan);
  return AnalyzeScanned(scan, decls, decls.guarded, decls.status_fns,
                        display_path, relpath, guard_prefix);
}

std::vector<Diagnostic> AnalyzeFile(const std::string& path,
                                    const std::string& relpath,
                                    const std::string& guard_prefix) {
  std::string text;
  if (!ReadFileText(path, &text)) {
    const CheckInfo* info = FindCheck("io");
    return {Diagnostic{path, 0, "io", info->severity, "cannot open file",
                       info->fix_hint, false}};
  }
  return AnalyzeSource(path, relpath, text, guard_prefix);
}

TreeReport AnalyzeTree(const std::string& root) {
  namespace fs = std::filesystem;
  TreeReport report;

  std::vector<std::pair<std::string, std::string>> files;  // path, relpath
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    const fs::directory_entry& entry = *it;
    if (entry.is_directory()) {
      const std::string name = entry.path().filename().string();
      if (name == "lint_fixtures" || name == "build" ||
          (!name.empty() && name[0] == '.')) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    files.emplace_back(
        entry.path().string(),
        fs::relative(entry.path(), fs::path(root)).generic_string());
  }
  std::sort(files.begin(), files.end());

  const std::string root_base = fs::path(root).filename().string().empty()
                                    ? fs::path(root).parent_path().filename().string()
                                    : fs::path(root).filename().string();
  std::string guard_prefix;
  for (char c : root_base) {
    guard_prefix.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  guard_prefix.push_back('_');

  // Phase 1: tokenize and collect declarations, building the tree-wide
  // Status/Result index and per-stem GUARDED_BY sets (a header's guarded
  // members also apply to its sibling .cc).
  struct FileState {
    FileScan scan;
    Decls decls;
    bool readable = true;
  };
  std::vector<FileState> states(files.size());
  std::set<std::string> status_index;
  std::set<std::string> nonstatus_index;
  std::map<std::string, std::set<std::string>> guarded_by_stem;
  for (size_t f = 0; f < files.size(); ++f) {
    std::string text;
    if (!ReadFileText(files[f].first, &text)) {
      states[f].readable = false;
      continue;
    }
    states[f].scan = Scan(text);
    states[f].decls = CollectDecls(states[f].scan);
    status_index.insert(states[f].decls.status_fns.begin(),
                        states[f].decls.status_fns.end());
    nonstatus_index.insert(states[f].decls.nonstatus_fns.begin(),
                           states[f].decls.nonstatus_fns.end());
    const std::string stem =
        files[f].second.substr(0, files[f].second.rfind('.'));
    guarded_by_stem[stem].insert(states[f].decls.guarded.begin(),
                                 states[f].decls.guarded.end());
  }

  // Phase 2: run the checks with the merged context.
  const CheckInfo* io_info = FindCheck("io");
  for (size_t f = 0; f < files.size(); ++f) {
    const std::string display = root_base + "/" + files[f].second;
    if (!states[f].readable) {
      report.diagnostics.push_back(Diagnostic{display, 0, "io",
                                              io_info->severity,
                                              "cannot open file",
                                              io_info->fix_hint, false});
      continue;
    }
    ++report.files_analyzed;
    const std::string stem =
        files[f].second.substr(0, files[f].second.rfind('.'));
    // A name declared with a non-Status return type anywhere in the tree
    // is ambiguous — the token pipeline cannot resolve which overload a
    // call binds to — so it stays in this file's index only when the
    // file itself declares the Status-returning form (e.g. the serving
    // layer's `Status Observe(...)` must not flag the optimizer
    // hierarchy's `void Observe(...)` call sites tree-wide).
    std::set<std::string> file_status = status_index;
    for (const std::string& name : nonstatus_index) {
      if (states[f].decls.status_fns.count(name) == 0) {
        file_status.erase(name);
      }
    }
    const std::vector<Diagnostic> file_diags = AnalyzeScanned(
        states[f].scan, states[f].decls, guarded_by_stem[stem], file_status,
        display, files[f].second, guard_prefix);
    report.diagnostics.insert(report.diagnostics.end(), file_diags.begin(),
                              file_diags.end());
  }
  return report;
}

std::vector<BaselineEntry> ParseBaselineText(const std::string& text) {
  std::vector<BaselineEntry> entries;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    const size_t comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    std::istringstream fields(line);
    std::string location, check;
    if (!(fields >> location >> check)) continue;
    BaselineEntry entry;
    entry.check = check;
    const size_t colon = location.rfind(':');
    bool numeric_line = false;
    if (colon != std::string::npos && colon + 1 < location.size()) {
      numeric_line = true;
      for (size_t k = colon + 1; k < location.size(); ++k) {
        if (std::isdigit(static_cast<unsigned char>(location[k])) == 0) {
          numeric_line = false;
          break;
        }
      }
    }
    if (numeric_line) {
      entry.path = location.substr(0, colon);
      entry.line = std::atoi(location.c_str() + colon + 1);
    } else {
      entry.path = location;
      entry.line = 0;
    }
    entries.push_back(entry);
  }
  return entries;
}

bool LoadBaselineFile(const std::string& path,
                      std::vector<BaselineEntry>* entries) {
  std::string text;
  if (!ReadFileText(path, &text)) return false;
  *entries = ParseBaselineText(text);
  return true;
}

size_t ApplyBaseline(const std::vector<BaselineEntry>& baseline,
                     std::vector<Diagnostic>* diagnostics) {
  size_t matched = 0;
  for (Diagnostic& diagnostic : *diagnostics) {
    for (const BaselineEntry& entry : baseline) {
      if (entry.check != diagnostic.check) continue;
      if (entry.path != diagnostic.path) continue;
      if (entry.line != 0 && entry.line != diagnostic.line) continue;
      diagnostic.baselined = true;
      ++matched;
      break;
    }
  }
  return matched;
}

std::string FormatDiagnostic(const Diagnostic& diagnostic) {
  std::ostringstream out;
  out << diagnostic.path << ":" << diagnostic.line << ": "
      << diagnostic.severity << ": [" << diagnostic.check << "] "
      << diagnostic.message;
  return out.str();
}

std::string ReportJson(const std::vector<Diagnostic>& diagnostics,
                       size_t files_analyzed) {
  std::ostringstream out;
  size_t baselined = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.baselined) ++baselined;
  }
  out << "{\"version\":1,\"tool\":\"dbtune_analyze\",\"checks\":[";
  bool first = true;
  for (const CheckInfo& check : Registry()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << JsonEscape(check.id) << "\",\"severity\":\""
        << JsonEscape(check.severity) << "\",\"summary\":\""
        << JsonEscape(check.summary) << "\"}";
  }
  out << "],\"summary\":{\"files\":" << files_analyzed
      << ",\"findings\":" << diagnostics.size()
      << ",\"baselined\":" << baselined
      << ",\"new\":" << diagnostics.size() - baselined << "},\"findings\":[";
  first = true;
  for (const Diagnostic& d : diagnostics) {
    if (!first) out << ",";
    first = false;
    out << "{\"path\":\"" << JsonEscape(d.path) << "\",\"line\":" << d.line
        << ",\"check\":\"" << JsonEscape(d.check) << "\",\"severity\":\""
        << JsonEscape(d.severity) << "\",\"message\":\""
        << JsonEscape(d.message) << "\",\"fix_hint\":\""
        << JsonEscape(d.fix_hint) << "\",\"baselined\":"
        << (d.baselined ? "true" : "false") << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace dbtune_analyze
