// Fixture: direct registry iteration/serialization outside src/obs.
#include <string>

namespace dbtune::obs {
struct MetricsSnapshot;
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();
  std::string ToJson() const;
};
}  // namespace dbtune::obs

std::string DumpMetricsByHand() {
  // Hand-rolled exports bypass the escaping and naming rules.
  return dbtune::obs::MetricsRegistry::Get().ToJson();
}

std::string DumpMetricsSanctioned() {
  return dbtune::obs::MetricsRegistry::Get().ToJson();  // dbtune-lint: allow(metrics-export)
}
