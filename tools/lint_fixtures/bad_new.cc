// Fixture: naked new/delete must fire; deleted functions must not.
struct Widget {
  Widget() = default;
  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;
};

Widget* Make() { return new Widget(); }

void Destroy(Widget* w) { delete w; }
