// The sanctioned patterns next to bad_thread_local_capture.cc: workers
// write through a pointer captured by value (the PR 6 fix), or declare
// the thread_local inside the lambda body so each worker owns it.
#include <cstddef>
#include <vector>

namespace dbtune {

class ThreadPool {
 public:
  template <typename Fn>
  void Submit(Fn fn);
};

template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Fn fn);

// PR 6 fix shape: the caller resizes its thread_local, then captures the
// data pointer by value so every worker writes the caller's buffer.
double PredictFixed(ThreadPool* pool, const std::vector<double>& x) {
  static thread_local std::vector<double> k_star;
  k_star.assign(x.size(), 0.0);
  double* const k_star_out = k_star.data();
  ParallelFor(pool, 0, x.size(), 64,
              [&, k_star_out](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  k_star_out[i] = x[i] * 0.5;
                }
              });
  return k_star.empty() ? 0.0 : k_star[0];
}

// A thread_local declared inside the lambda body is worker-owned state:
// every worker sizes its own instance before using it.
void AccumulateWorkerLocal(ThreadPool* pool, const std::vector<double>& x,
                           std::vector<double>* partials) {
  ParallelFor(pool, 0, x.size(), 64, [&](size_t begin, size_t end) {
    static thread_local std::vector<double> scratch;
    scratch.assign(end - begin, 0.0);
    for (size_t i = begin; i < end; ++i) {
      scratch[i - begin] = x[i];
    }
    (*partials)[begin / 64] = scratch.empty() ? 0.0 : scratch[0];
  });
}

}  // namespace dbtune
