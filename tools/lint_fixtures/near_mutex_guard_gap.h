#ifndef DBTUNE_NEAR_MUTEX_GUARD_GAP_H_
#define DBTUNE_NEAR_MUTEX_GUARD_GAP_H_

// The sanctioned access patterns next to bad_mutex_guard_gap.h: take the
// lock in scope, or push the obligation to the caller via
// DBTUNE_REQUIRES.

namespace dbtune {

class Mutex;
class MutexLock;

class SafeCounter {
 public:
  void Increment() {
    MutexLock lock(&mu_);
    value_ = value_ + 1;
  }
  long Peek() const {
    MutexLock lock(&mu_);
    return value_;
  }
  long PeekLocked() const DBTUNE_REQUIRES(mu_) { return value_; }

 private:
  mutable Mutex* mu_;
  long value_ DBTUNE_GUARDED_BY(mu_) = 0;
};

}  // namespace dbtune

#endif  // DBTUNE_NEAR_MUTEX_GUARD_GAP_H_
