#ifndef DBTUNE_CLEAN_H_
#define DBTUNE_CLEAN_H_

// Fixture: fully conforming file — mentions renewal and deletion only in
// comments and strings, which the scanner must ignore.
#include <memory>
#include <string>

inline std::string Describe() { return "new delete rand() time("; }

inline std::unique_ptr<int> MakeBoxed(int v) {
  return std::make_unique<int>(v);
}

#endif  // DBTUNE_CLEAN_H_
