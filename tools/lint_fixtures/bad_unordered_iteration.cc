// Iterating an unordered container while accumulating floats or writing
// output: the visit order is the hash order, which is unspecified and
// differs across standard libraries — results are not reproducible.
#include <string>
#include <unordered_map>
#include <vector>

namespace dbtune {

double SumScores(const std::unordered_map<std::string, double>& scores) {
  double total = 0.0;
  for (const auto& entry : scores) {
    total += entry.second;  // float reduction in hash order
  }
  return total;
}

void CollectKeys(const std::unordered_map<std::string, double>& scores,
                 std::vector<std::string>* out) {
  for (const auto& entry : scores) {
    out->push_back(entry.first);  // output emitted in hash order
  }
}

}  // namespace dbtune
