// The sanctioned reduction next to bad_parallel_reduction.cc: each chunk
// accumulates into a lambda-local, deposits it into a chunk-indexed slot,
// and one thread reduces the partials chunk-ascending afterwards. The
// result is bitwise identical at any pool size.
#include <cstddef>
#include <vector>

namespace dbtune {

class ThreadPool;

template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Fn fn);

double SumEiDeterministic(ThreadPool* pool, const std::vector<double>& ei) {
  const size_t grain = 64;
  const size_t chunks = (ei.size() + grain - 1) / grain;
  std::vector<double> partials(chunks, 0.0);
  ParallelFor(pool, 0, ei.size(), grain, [&](size_t begin, size_t end) {
    double local = 0.0;
    for (size_t i = begin; i < end; ++i) {
      local += ei[i];  // lambda-local: private to this chunk
    }
    partials[begin / grain] = local;  // chunk-owned slot
  });
  double total = 0.0;
  for (size_t c = 0; c < partials.size(); ++c) {
    total += partials[c];  // sequential, chunk-ascending
  }
  return total;
}

}  // namespace dbtune
