// Fixture: raw std::chrono clock reads outside src/obs (raw-timing rule).

#include <chrono>

double BadNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

long BadWallMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

long BadHighResNanos() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}

long AllowedTick() {
  return std::chrono::steady_clock::now()  // dbtune-lint: allow(raw-timing)
      .time_since_epoch()
      .count();
}
