// Fixture for the gp-construction rule: optimizer code must obtain GP
// surrogates through surrogate_factory's CreateGpSurrogate (the tiered
// escalation path), never by naming a GP class directly; the same
// content under a non-optimizer path is exempt. Never compiled.

void BuildSurrogates(const Space& space) {
  GaussianProcess gp(MakeKernel());                     // finding: direct ctor
  auto owned = std::make_unique<GaussianProcess>(MakeKernel());  // finding
  SparseGaussianProcess sparse(MakeKernel());           // finding: sparse too
  GaussianProcessOptions options;  // ok: the options struct is fine
  auto tiered = CreateGpSurrogate(MakeKernelFactory(), options);  // ok
  GaussianProcess legacy(MakeKernel());  // dbtune-lint: allow(gp-construction)
}
