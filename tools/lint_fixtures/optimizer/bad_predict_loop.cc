// Fixture for the predict-in-loop rule: scalar PredictMeanVar calls
// inside loops in optimizer code must be batched; the same content under
// a non-optimizer path is exempt. Never compiled.

void ScoreCandidates(const Model& model, const Candidates& candidates) {
  double mean = 0.0;
  double var = 0.0;
  for (const auto& u : candidates) {
    model.PredictMeanVar(u, &mean, &var);  // finding: braced for body
  }
  size_t i = 0;
  while (i < candidates.size()) {
    model.PredictMeanVar(candidates[i], &mean, &var);  // finding: while body
    ++i;
  }
  for (const auto& u : candidates)
    model.PredictMeanVar(u, &mean, &var);  // finding: braceless body
  model.PredictMeanVar(candidates[0], &mean, &var);  // ok: outside loops
  for (const auto& u : candidates) {
    model.PredictMeanVar(u, &mean, &var);  // dbtune-lint: allow(predict-in-loop)
    Means means;
    Vars vars;
    model.PredictMeanVarBatch(candidates, &means, &vars);  // ok: batched
  }
}
