// Fixture: the using-namespace-std rule.
#include <string>

using namespace std;

string Greeting() { return "hi"; }
