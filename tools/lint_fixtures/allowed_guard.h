#ifndef LEGACY_GUARD_NAME_H  // dbtune-lint: allow(include-guard)
#define LEGACY_GUARD_NAME_H

// Fixture: a nonconforming guard kept via the escape hatch.
int LegacyGuard();

#endif  // LEGACY_GUARD_NAME_H
