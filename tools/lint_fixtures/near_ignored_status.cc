// Handled Status values next to bad_ignored_status.cc: stored, checked
// inline, wrapped in the error-propagation macro, or returned.
#include <string>

namespace dbtune {

struct Status {
  bool ok() const;
  static Status OK();
};

Status Flush();
Status Append(const std::string& line);

Status SaveAll() {
  Status flushed = Flush();  // stored
  if (!flushed.ok()) return flushed;
  if (!Append("x").ok()) {  // checked inline
    return flushed;
  }
  DBTUNE_RETURN_IF_ERROR(Flush());  // macro argument, not a discard
  return Append("y");               // returned
}

}  // namespace dbtune
