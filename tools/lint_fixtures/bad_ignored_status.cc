// Status/Result values discarded through the forms [[nodiscard]] cannot
// catch: bare statements survive without -Werror, and the cast/comma
// forms are explicit discards that silently swallow errors.
#include <string>

namespace dbtune {

struct Status {
  bool ok() const;
  static Status OK();
};

Status Flush();
Status Append(const std::string& line);

int LoseErrors() {
  Flush();                      // bare call statement
  (void)Append("x");            // (void) cast
  static_cast<void>(Flush());   // static_cast<void>
  int count = (Append("y"), 0); // comma operator
  return count;
}

}  // namespace dbtune
