// Fixture: every rule suppressed by the documented escape hatch — the
// linter must report nothing for this file.
#include <cstdlib>
#include <iostream>  // dbtune-lint: allow(iostream)

using namespace std;  // dbtune-lint: allow(using-namespace-std)

int AllowedRand() { return std::rand(); }  // dbtune-lint: allow(random-seed)

int* AllowedNew() { return new int(7); }  // dbtune-lint: allow(naked-new)

void AllowedDelete(int* p) { delete p; }  // dbtune-lint: allow(naked-new)
