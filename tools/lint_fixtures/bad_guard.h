#ifndef SOME_WRONG_GUARD_H
#define SOME_WRONG_GUARD_H

// Fixture: guard should be DBTUNE_BAD_GUARD_H_ for this path.
int BadGuard();

#endif  // SOME_WRONG_GUARD_H
