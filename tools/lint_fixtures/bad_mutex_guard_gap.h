#ifndef DBTUNE_BAD_MUTEX_GUARD_GAP_H_
#define DBTUNE_BAD_MUTEX_GUARD_GAP_H_

// A member annotated DBTUNE_GUARDED_BY read without its mutex held: the
// unlocked read races every locked writer.

namespace dbtune {

class Mutex;
class MutexLock;

class Counter {
 public:
  void Increment() {
    MutexLock lock(&mu_);
    value_ = value_ + 1;
  }
  long Peek() const { return value_; }  // no MutexLock in scope

 private:
  mutable Mutex* mu_;
  long value_ DBTUNE_GUARDED_BY(mu_) = 0;
};

}  // namespace dbtune

#endif  // DBTUNE_BAD_MUTEX_GUARD_GAP_H_
