// The sanctioned patterns next to bad_unordered_iteration.cc: snapshot
// and sort before accumulating, point lookups, or an ordered std::map.
#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dbtune {

// Sorted snapshot first: the reduction order is defined.
double SumScoresSorted(const std::unordered_map<std::string, double>& scores) {
  std::vector<std::pair<std::string, double>> sorted(scores.begin(),
                                                     scores.end());
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const auto& entry : sorted) {
    total += entry.second;
  }
  return total;
}

// Point lookups against unordered containers are order-free.
double Lookup(const std::unordered_map<std::string, double>& scores,
              const std::string& key) {
  const auto it = scores.find(key);
  return it == scores.end() ? 0.0 : it->second;
}

// std::map iterates in key order; accumulation is reproducible.
double SumOrdered(const std::map<std::string, double>& by_key) {
  double total = 0.0;
  for (const auto& entry : by_key) {
    total += entry.second;
  }
  return total;
}

}  // namespace dbtune
