// Fixture: every form of non-deterministic seeding the random-seed rule
// must catch. Never compiled — consumed by tests/test_lint.cc.
#include <cstdlib>
#include <random>

int UsesRand() { return std::rand(); }

void SeedsFromClock() { std::srand(static_cast<unsigned>(time(nullptr))); }

unsigned UsesRandomDevice() {
  std::random_device device;
  return device();
}
