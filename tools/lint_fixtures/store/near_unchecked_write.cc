// Checked writes next to bad_unchecked_write.cc: results stored or
// tested, stderr diagnostics (exempt), a state-checked ofstream, and
// the inline allow() escape hatch.
#include <cstdio>
#include <fstream>

namespace dbtune {

bool WriteAllChecked(std::FILE* file, const char* buf, size_t n) {
  if (std::fwrite(buf, 1, n, file) != n) return false;  // tested inline
  const int rc = std::fprintf(file, "lsn=%zu\n", n);    // stored
  if (rc < 0) return false;
  bool ok = std::fflush(file) == 0;  // folded into a flag
  ok = std::fclose(file) == 0 && ok;
  std::fprintf(stderr, "wrote %zu bytes\n", n);  // diagnostics: exempt
  std::fflush(stderr);                           // diagnostics: exempt
  return ok;
}

void BestEffortTouch(std::FILE* file) {
  std::fflush(file);  // dbtune-lint: allow(unchecked-write)
}

bool StreamChecked(const char* path) {
  std::ofstream out(path);
  out << "snapshot-payload";
  out.flush();
  return out.good();  // state checked: the heuristic stays quiet
}

}  // namespace dbtune
