// Write results discarded on a persistence path (the store/ relpath
// puts this file in unchecked-write scope): each lost return value here
// is the only signal that the WAL/snapshot bytes actually reached disk.
#include <cstdio>
#include <fstream>

namespace dbtune {

void LoseWriteErrors(std::FILE* file, const char* buf, size_t n) {
  std::fwrite(buf, 1, n, file);             // bare call statement
  std::fprintf(file, "lsn=%zu\n", n);       // bare call statement
  (void)std::fflush(file);                  // (void) cast
  int unused = (std::fputs("x", file), 0);  // comma operator
  static_cast<void>(std::fclose(file));     // static_cast<void>
  (void)unused;
}

void LoseStreamErrors(const char* path) {
  std::ofstream out(path);  // state never checked anywhere in this file
  out << "snapshot-payload";
}

}  // namespace dbtune
