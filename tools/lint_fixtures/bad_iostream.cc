// Fixture: <iostream> is banned in library code outside util/logging.
#include <iostream>

void Print() { std::cout << "hello\n"; }
