// += / -= on shared state inside a ParallelFor/Submit lambda: chunks
// finish in scheduling order, so the floating-point accumulation order
// (and therefore the rounded result) depends on the pool size.
#include <cstddef>
#include <vector>

namespace dbtune {

class ThreadPool {
 public:
  template <typename Fn>
  void Submit(Fn fn);
};

template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Fn fn);

double SumEi(ThreadPool* pool, const std::vector<double>& ei) {
  double ei_sum = 0.0;
  ParallelFor(pool, 0, ei.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ei_sum += ei[i];  // scheduling-order reduction
    }
  });
  return ei_sum;
}

void DriftCorrection(ThreadPool* pool, double correction, double* out) {
  double drift = 0.0;
  pool->Submit([&] {
    drift -= correction;  // same class through Submit
  });
  *out = drift;
}

}  // namespace dbtune
