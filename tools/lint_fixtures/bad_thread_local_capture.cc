// Reproduces the PR 6 crash class: a thread_local scratch buffer sized
// by the caller is named inside a lambda handed to ParallelFor/Submit.
// Each pool worker resolves the name to its OWN (empty, never-resized)
// thread_local instance, so the writes land out of bounds whenever the
// pool actually has workers.
#include <cstddef>
#include <vector>

namespace dbtune {

class ThreadPool {
 public:
  template <typename Fn>
  void Submit(Fn fn);
};

template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Fn fn);

double PredictScratch(ThreadPool* pool, const std::vector<double>& x) {
  static thread_local std::vector<double> k_star;
  k_star.assign(x.size(), 0.0);
  ParallelFor(pool, 0, x.size(), 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      k_star[i] = x[i] * 0.5;  // worker's own empty vector: OOB write
    }
  });
  return k_star.empty() ? 0.0 : k_star[0];
}

void FlushScratch(ThreadPool* io) {
  static thread_local std::vector<double> scratch;
  scratch.resize(16);
  io->Submit([&] {
    scratch[0] = 1.0;  // same bug through ThreadPool::Submit
  });
}

}  // namespace dbtune
