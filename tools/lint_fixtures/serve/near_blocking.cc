// Near-misses for blocking-in-scheduler: the sanctioned serve-path
// shapes must stay quiet. Durable writes flow through the
// ObservationStore API, the only join is ParallelFor's internal one,
// deadlines come from the idle sweep's clock, and non-call mentions of
// banned names (comments, strings, plain variables) are not findings.
namespace dbtune::serve {

struct ObservationStore {
  bool AppendObservation(const char* session, double score);
};

struct Pool {
  template <typename Body>
  void ParallelFor(int begin, int end, Body body);
};

// An ofstream or a WaitAll named in a comment stays quiet, as does the
// banned vocabulary inside a string literal.
const char* kSchedulerDoc = "no fopen, no sleep_for, no WaitAll";

int DrainRound(ObservationStore* store, Pool* pool, double* scores, int n) {
  pool->ParallelFor(0, n, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) scores[i] += 1.0;
  });
  int appended = 0;
  for (int i = 0; i < n; ++i) {
    if (store->AppendObservation("session", scores[i])) ++appended;
  }
  const int sleep = 0;  // a variable named sleep is not a sleep call
  return appended + sleep;
}

}  // namespace dbtune::serve
