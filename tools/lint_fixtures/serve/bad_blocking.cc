// Fixture: blocking-in-scheduler. Every blocking form the check bans,
// as seen from a serve/ scheduler path: C stdio, std file streams,
// sleeps, and a ThreadPool join. Expected findings: 8 (fopen, fwrite,
// fclose, ofstream, ifstream, sleep_for, usleep, WaitAll); the fflush
// carries an allow() and must stay quiet.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

namespace dbtune::serve {

struct Pool;

void DrainRound(Pool* pool, const double* scores, int n) {
  std::FILE* file = std::fopen("/tmp/serve_scratch.bin", "wb");
  const size_t wrote =
      std::fwrite(scores, sizeof(double), static_cast<size_t>(n), file);
  const int flushed = std::fflush(file);  // dbtune-lint: allow(blocking-in-scheduler)
  const int closed = std::fclose(file);
  std::ofstream log("/tmp/serve_scratch.log");
  log << wrote << flushed << closed;
  std::ifstream config("/tmp/serve_config.txt");
  config >> n;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  usleep(10);
  pool->WaitAll();
}

}  // namespace dbtune::serve
