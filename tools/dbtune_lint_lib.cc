#include "dbtune_lint_lib.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace dbtune_lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Collects the rules suppressed on this line via
/// `dbtune-lint: allow(<rule>)` (may appear multiple times per line).
std::set<std::string> ParseAllows(const std::string& raw_line) {
  std::set<std::string> allows;
  const std::string kTag = "dbtune-lint: allow(";
  size_t pos = 0;
  while ((pos = raw_line.find(kTag, pos)) != std::string::npos) {
    const size_t open = pos + kTag.size();
    const size_t close = raw_line.find(')', open);
    if (close == std::string::npos) break;
    allows.insert(raw_line.substr(open, close - open));
    pos = close + 1;
  }
  return allows;
}

/// Replaces comment and string/char-literal contents with spaces so the
/// rule scans never match inside them. `in_block_comment` carries /* */
/// state across lines.
std::string StripLine(const std::string& raw, bool* in_block_comment) {
  std::string out(raw.size(), ' ');
  size_t i = 0;
  while (i < raw.size()) {
    if (*in_block_comment) {
      if (raw.compare(i, 2, "*/") == 0) {
        *in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (raw.compare(i, 2, "//") == 0) break;  // rest of line is comment
    if (raw.compare(i, 2, "/*") == 0) {
      *in_block_comment = true;
      i += 2;
      continue;
    }
    if (raw[i] == '\'' && i > 0 && IsIdentChar(raw[i - 1])) {
      out[i] = raw[i];  // digit separator (1'000'000), not a char literal
      ++i;
      continue;
    }
    if (raw[i] == '"' || raw[i] == '\'') {
      const char quote = raw[i];
      out[i] = quote;
      ++i;
      while (i < raw.size()) {
        if (raw[i] == '\\') {
          i += 2;
          continue;
        }
        if (raw[i] == quote) {
          out[i] = quote;
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out[i] = raw[i];
    ++i;
  }
  return out;
}

/// Next non-space character at or after `pos`, or '\0'.
char NextNonSpace(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos < s.size() ? s[pos] : '\0';
}

/// Last non-space character strictly before `pos`, or '\0'.
char PrevNonSpace(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return s[pos];
  }
  return '\0';
}

std::string ExpectedGuard(const std::string& relpath) {
  std::string guard = "DBTUNE_";
  for (char c : relpath) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      guard.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(c))));
    } else {
      guard.push_back('_');
    }
  }
  guard.push_back('_');
  return guard;
}

/// First identifier token after `directive` on the stripped line
/// ("#ifndef X" -> "X"), or "".
std::string DirectiveArg(const std::string& stripped,
                         const std::string& directive) {
  size_t pos = stripped.find(directive);
  if (pos == std::string::npos) return "";
  pos += directive.size();
  while (pos < stripped.size() &&
         std::isspace(static_cast<unsigned char>(stripped[pos])) != 0) {
    ++pos;
  }
  size_t end = pos;
  while (end < stripped.size() && IsIdentChar(stripped[end])) ++end;
  return stripped.substr(pos, end - pos);
}

struct LineContext {
  const std::string* display_path;
  int line_number;
  const std::set<std::string>* allows;
  std::vector<Finding>* findings;
};

void Report(const LineContext& ctx, const std::string& rule,
            const std::string& message) {
  if (ctx.allows->count(rule) != 0) return;
  ctx.findings->push_back(
      Finding{*ctx.display_path, ctx.line_number, rule, message});
}

/// Scans one stripped line for identifier-token rules (random-seed,
/// naked-new, using-namespace-std, raw-timing, gp-construction,
/// metrics-export).
void ScanTokens(const LineContext& ctx, const std::string& stripped,
                bool random_rules_apply, bool timing_rules_apply,
                bool gp_rules_apply, bool metrics_export_rules_apply) {
  size_t i = 0;
  std::vector<std::string> idents;  // in order, for the using-namespace scan
  while (i < stripped.size()) {
    if (!IsIdentChar(stripped[i])) {
      ++i;
      continue;
    }
    const size_t start = i;
    while (i < stripped.size() && IsIdentChar(stripped[i])) ++i;
    // A token starting with a digit is a numeric literal, not an identifier.
    if (std::isdigit(static_cast<unsigned char>(stripped[start])) != 0) {
      continue;
    }
    const std::string ident = stripped.substr(start, i - start);
    idents.push_back(ident);

    if (random_rules_apply) {
      if ((ident == "rand" || ident == "srand" || ident == "time") &&
          NextNonSpace(stripped, i) == '(') {
        Report(ctx, "random-seed",
               "call to " + ident +
                   "() — all randomness must flow through the seeded "
                   "util/random Rng for reproducibility");
      } else if (ident == "random_device") {
        Report(ctx, "random-seed",
               "std::random_device is non-deterministic — use the seeded "
               "util/random Rng");
      }
    }

    if (timing_rules_apply &&
        (ident == "steady_clock" || ident == "system_clock" ||
         ident == "high_resolution_clock")) {
      Report(ctx, "raw-timing",
             "std::chrono::" + ident +
                 " read outside src/obs — measure time through obs/clock "
                 "(MonotonicNanos/MonotonicSeconds) so latencies share one "
                 "swappable clock and land in the metrics registry");
    }

    if (gp_rules_apply &&
        (ident == "GaussianProcess" || ident == "SparseGaussianProcess")) {
      Report(ctx, "gp-construction",
             "direct " + ident +
                 " use in optimizer code — obtain GP surrogates through "
                 "surrogate_factory's CreateGpSurrogate so long histories "
                 "escalate to the sparse tier");
    }

    if (metrics_export_rules_apply &&
        (ident == "MetricsSnapshot" || ident == "ToJson")) {
      Report(ctx, "metrics-export",
             "direct registry iteration (" + ident +
                 ") outside src/obs — render metrics through "
                 "obs/metrics_export (RenderPrometheus / "
                 "WritePrometheusSnapshot) so exports stay consistently "
                 "escaped and named");
    }

    if (ident == "new") {
      Report(ctx, "naked-new",
             "naked new — use std::make_unique/std::make_shared or a "
             "container");
    }
    if (ident == "delete" && PrevNonSpace(stripped, start) != '=') {
      Report(ctx, "naked-new",
             "naked delete — owning pointers must be smart pointers");
    }
  }

  for (size_t k = 0; idents.size() >= 3 && k <= idents.size() - 3; ++k) {
    if (idents[k] == "using" && idents[k + 1] == "namespace" &&
        idents[k + 2] == "std") {
      Report(ctx, "using-namespace-std",
             "`using namespace std` pollutes every including scope");
    }
  }
}

/// Tracks for/while/do nesting across lines so the predict-in-loop rule
/// can tell whether a call site sits inside a loop body or header.
struct LoopTracker {
  int brace_depth = 0;
  std::vector<int> loop_bodies;  // brace depth of each open braced loop body
  bool in_header = false;        // inside the parens of for(...)/while(...)
  int header_parens = 0;
  bool body_pending = false;     // loop keyword seen, body not yet entered

  bool InLoop() const {
    return !loop_bodies.empty() || in_header || body_pending;
  }
};

/// Scans one stripped line for scalar `PredictMeanVar` calls inside loops
/// (src/optimizer only): per-candidate posterior queries belong on the
/// batched path. `tracker` carries loop-nesting state across lines.
void ScanPredictInLoop(const LineContext& ctx, const std::string& stripped,
                       LoopTracker* tracker) {
  size_t i = 0;
  while (i < stripped.size()) {
    const char c = stripped[i];
    if (IsIdentChar(c)) {
      const size_t start = i;
      while (i < stripped.size() && IsIdentChar(stripped[i])) ++i;
      if (std::isdigit(static_cast<unsigned char>(stripped[start])) != 0) {
        continue;
      }
      const std::string ident = stripped.substr(start, i - start);
      if (ident == "for" || ident == "while") {
        tracker->in_header = true;
        tracker->header_parens = 0;
      } else if (ident == "do") {
        tracker->body_pending = true;
      } else if (ident == "PredictMeanVar" &&
                 NextNonSpace(stripped, i) == '(' && tracker->InLoop()) {
        Report(ctx, "predict-in-loop",
               "scalar PredictMeanVar inside a loop — score candidate "
               "batches through PredictMeanVarBatch instead (per-call "
               "scratch and dispatch overhead dominates acquisition "
               "scoring)");
      }
      continue;
    }
    if (c == '(') {
      if (tracker->in_header) ++tracker->header_parens;
    } else if (c == ')') {
      if (tracker->in_header && tracker->header_parens > 0 &&
          --tracker->header_parens == 0) {
        tracker->in_header = false;
        tracker->body_pending = true;
      }
    } else if (c == '{') {
      ++tracker->brace_depth;
      if (tracker->body_pending) {
        tracker->loop_bodies.push_back(tracker->brace_depth);
        tracker->body_pending = false;
      }
    } else if (c == '}') {
      if (!tracker->loop_bodies.empty() &&
          tracker->loop_bodies.back() == tracker->brace_depth) {
        tracker->loop_bodies.pop_back();
      }
      --tracker->brace_depth;
    } else if (c == ';') {
      // A braceless loop body is a single statement; its terminating
      // semicolon closes the loop.
      if (tracker->body_pending && !tracker->in_header) {
        tracker->body_pending = false;
      }
    }
    ++i;
  }
}

}  // namespace

std::vector<Finding> LintSource(const std::string& display_path,
                                const std::string& relpath,
                                const std::string& content) {
  std::vector<Finding> findings;
  const bool is_header =
      relpath.size() > 2 && relpath.compare(relpath.size() - 2, 2, ".h") == 0;
  const bool random_rules_apply = !StartsWith(relpath, "util/random");
  const bool iostream_allowed = StartsWith(relpath, "util/logging");
  // obs/clock is the sanctioned home of std::chrono clocks; bench_util.h
  // wraps google-benchmark timing helpers.
  const bool timing_rules_apply =
      !StartsWith(relpath, "obs/") && !EndsWith(relpath, "bench_util.h");
  // Acquisition loops live in optimizer/; that is where per-candidate
  // scalar posterior queries must go through the batched path and GP
  // surrogates must come from the tiered factory.
  const bool predict_rules_apply = StartsWith(relpath, "optimizer/");
  const bool gp_rules_apply = StartsWith(relpath, "optimizer/");
  // src/obs owns the registry's snapshot/serialization surface; all other
  // code must export through obs/metrics_export.
  const bool metrics_export_rules_apply = !StartsWith(relpath, "obs/");
  LoopTracker loop_tracker;

  std::istringstream stream(content);
  std::string raw;
  bool in_block_comment = false;
  int line_number = 0;

  // Include-guard state: the first #ifndef/#define pair must spell the
  // path-derived guard name.
  const std::string expected_guard = ExpectedGuard(relpath);
  bool saw_ifndef = false;
  bool guard_checked = false;
  std::set<std::string> ifndef_allows;
  int ifndef_line = 0;
  std::string ifndef_token;

  while (std::getline(stream, raw)) {
    ++line_number;
    const std::set<std::string> allows = ParseAllows(raw);
    const std::string stripped = StripLine(raw, &in_block_comment);
    const LineContext ctx{&display_path, line_number, &allows, &findings};

    const std::string trimmed = [&stripped] {
      size_t b = stripped.find_first_not_of(" \t");
      return b == std::string::npos ? std::string() : stripped.substr(b);
    }();

    if (StartsWith(trimmed, "#")) {
      if (trimmed.find("<iostream>") != std::string::npos &&
          !iostream_allowed) {
        Report(ctx, "iostream",
               "<iostream> drags static iostream initializers into library "
               "code — use util/logging instead");
      }
      if (is_header && !saw_ifndef && StartsWith(trimmed, "#ifndef")) {
        saw_ifndef = true;
        ifndef_token = DirectiveArg(trimmed, "#ifndef");
        ifndef_line = line_number;
        ifndef_allows = allows;
      } else if (is_header && saw_ifndef && !guard_checked &&
                 StartsWith(trimmed, "#define")) {
        guard_checked = true;
        const std::string define_token = DirectiveArg(trimmed, "#define");
        if ((ifndef_token != expected_guard ||
             define_token != expected_guard) &&
            ifndef_allows.count("include-guard") == 0 &&
            allows.count("include-guard") == 0) {
          findings.push_back(Finding{
              display_path, ifndef_line, "include-guard",
              "include guard must be " + expected_guard + " (found #ifndef " +
                  ifndef_token + " / #define " + define_token + ")"});
        }
      }
      continue;  // no token rules on preprocessor lines
    }

    ScanTokens(ctx, stripped, random_rules_apply, timing_rules_apply,
               gp_rules_apply, metrics_export_rules_apply);
    if (predict_rules_apply) {
      ScanPredictInLoop(ctx, stripped, &loop_tracker);
    }
  }

  if (is_header && !guard_checked) {
    // Missing or malformed guard pair entirely.
    findings.push_back(Finding{display_path, saw_ifndef ? ifndef_line : 1,
                               "include-guard",
                               "missing include guard " + expected_guard});
  }
  return findings;
}

std::vector<Finding> LintFile(const std::string& path,
                              const std::string& relpath) {
  std::ifstream in(path);
  if (!in) {
    return {Finding{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LintSource(path, relpath, buffer.str());
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const std::string& file : files) {
    const std::string relpath =
        fs::relative(fs::path(file), fs::path(root)).generic_string();
    std::vector<Finding> file_findings = LintFile(file, relpath);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  return out.str();
}

}  // namespace dbtune_lint
