#include "dbms/workload.h"

#include "util/logging.h"

namespace dbtune {

namespace {

// Table 4 of the paper, extended with the surface-shape parameters.
// `max_gain` values are calibrated so the headline improvements land in
// the paper's ballpark (SYSBENCH ~250% throughput at the tuned optimum,
// JOB ~40% latency reduction).
const WorkloadProfile kProfiles[] = {
    {WorkloadId::kJob, "JOB", WorkloadClass::kAnalytical, 9.3, 21, 1.00,
     ObjectiveKind::kLatencyP95, 0xA11CE001, 5, 0.55, 200.0},
    {WorkloadId::kSysbench, "SYSBENCH", WorkloadClass::kTransactional, 24.8,
     150, 0.43, ObjectiveKind::kThroughput, 0xA11CE002, 20, 1.30, 1200.0},
    {WorkloadId::kTpcc, "TPC-C", WorkloadClass::kTransactional, 17.8, 9, 0.08,
     ObjectiveKind::kThroughput, 0xA11CE003, 16, 0.95, 850.0},
    {WorkloadId::kSeats, "SEATS", WorkloadClass::kTransactional, 12.7, 10,
     0.45, ObjectiveKind::kThroughput, 0xA11CE004, 14, 0.85, 900.0},
    {WorkloadId::kSmallbank, "Smallbank", WorkloadClass::kTransactional, 2.4,
     3, 0.15, ObjectiveKind::kThroughput, 0xA11CE005, 12, 0.90, 2400.0},
    {WorkloadId::kTatp, "TATP", WorkloadClass::kTransactional, 6.3, 4, 0.40,
     ObjectiveKind::kThroughput, 0xA11CE006, 12, 0.80, 3100.0},
    {WorkloadId::kVoter, "Voter", WorkloadClass::kTransactional, 0.00006, 3,
     0.00, ObjectiveKind::kThroughput, 0xA11CE007, 10, 0.70, 4200.0},
    {WorkloadId::kTwitter, "Twitter", WorkloadClass::kWebOriented, 7.9, 5,
     0.009, ObjectiveKind::kThroughput, 0xA11CE008, 14, 0.75, 1600.0},
    {WorkloadId::kSibench, "SIBench", WorkloadClass::kFeatureTesting, 0.0005,
     1, 0.50, ObjectiveKind::kThroughput, 0xA11CE009, 8, 0.60, 5000.0},
};

}  // namespace

const WorkloadProfile& GetWorkloadProfile(WorkloadId id) {
  const size_t index = static_cast<size_t>(id);
  DBTUNE_CHECK(index < sizeof(kProfiles) / sizeof(kProfiles[0]));
  return kProfiles[index];
}

std::vector<WorkloadId> AllWorkloads() {
  std::vector<WorkloadId> out;
  for (const auto& p : kProfiles) out.push_back(p.id);
  return out;
}

std::vector<WorkloadId> OltpWorkloads() {
  return {WorkloadId::kSysbench, WorkloadId::kTpcc,   WorkloadId::kTwitter,
          WorkloadId::kSmallbank, WorkloadId::kSibench, WorkloadId::kVoter,
          WorkloadId::kSeats,    WorkloadId::kTatp};
}

const char* WorkloadName(WorkloadId id) { return GetWorkloadProfile(id).name; }

}  // namespace dbtune
