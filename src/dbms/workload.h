#ifndef DBTUNE_DBMS_WORKLOAD_H_
#define DBTUNE_DBMS_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dbtune {

/// The nine benchmark workloads of the paper's Table 4.
enum class WorkloadId {
  kJob = 0,
  kSysbench,
  kTpcc,
  kSeats,
  kSmallbank,
  kTatp,
  kVoter,
  kTwitter,
  kSibench,
};

/// Workload family (Table 4's "Class" column).
enum class WorkloadClass {
  kAnalytical = 0,
  kTransactional,
  kWebOriented,
  kFeatureTesting,
};

/// What the tuner optimizes for this workload: throughput (maximize, OLTP)
/// or 95th-percentile latency (minimize, OLAP) — the paper's protocol.
enum class ObjectiveKind {
  kThroughput,
  kLatencyP95,
};

/// Static description of a workload: the paper's Table 4 profile plus the
/// parameters that shape its synthetic response surface (see DESIGN.md §2).
struct WorkloadProfile {
  WorkloadId id;
  const char* name;
  WorkloadClass workload_class;
  /// Dataset size in GB (Table 4).
  double size_gb;
  /// Number of tables (Table 4).
  int tables;
  /// Fraction of read-only transactions (Table 4).
  double read_only_fraction;
  ObjectiveKind objective;

  // --- response-surface shape parameters ---
  /// Seed for this workload's surface; different workloads get genuinely
  /// different optima and importance rankings.
  uint64_t surface_seed;
  /// How many knobs carry most of the tunable variance (JOB: few,
  /// SYSBENCH: ~20) — controls the importance-decay rate.
  size_t effective_important_knobs;
  /// Total positive effect available at the surface optimum (log-scale);
  /// e.g. 1.25 ≈ 3.5x throughput over a zero-effect configuration.
  double max_gain;
  /// Baseline objective at zero effect on reference hardware: tps for
  /// OLTP workloads, seconds for OLAP.
  double base_objective;
};

/// Profile for one workload.
const WorkloadProfile& GetWorkloadProfile(WorkloadId id);

/// All nine workloads in Table 4 order.
std::vector<WorkloadId> AllWorkloads();

/// The eight OLTP workloads used in the transfer study (Q3).
std::vector<WorkloadId> OltpWorkloads();

/// Short display name ("JOB", "SYSBENCH", ...).
const char* WorkloadName(WorkloadId id);

}  // namespace dbtune

#endif  // DBTUNE_DBMS_WORKLOAD_H_
