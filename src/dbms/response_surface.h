#ifndef DBTUNE_DBMS_RESPONSE_SURFACE_H_
#define DBTUNE_DBMS_RESPONSE_SURFACE_H_

#include <vector>

#include "dbms/workload.h"
#include "knobs/configuration_space.h"

namespace dbtune {

/// Synthetic configuration-to-performance surface for one workload.
///
/// The surface is a deterministic function of the workload's seed and
/// models the phenomena the paper's evaluation hinges on:
///   * sparsity       — importance decays exponentially with a
///                      workload-specific rate, so only a few knobs carry
///                      most of the tunable variance;
///   * robust defaults— a sizeable share of impactful knobs are "risky":
///                      the default value is already optimal and any change
///                      hurts (high variance, zero tunability), separating
///                      SHAP from variance-based measurements;
///   * interactions   — saddle-shaped pairwise terms whose marginals vanish,
///                      which independent-density optimizers (TPE) cannot
///                      model;
///   * heterogeneity  — categorical knobs have non-ordinal per-category
///                      effects, so ordinal encodings (vanilla BO's RBF
///                      kernel) mis-model them while Hamming kernels do not.
///
/// `Score` returns a log-scale effect: a configuration's objective is
/// base * exp(Score) for throughput or base / exp(Score) for latency.
/// The default configuration scores exactly 0.
class ResponseSurface {
 public:
  /// How a knob's effect responds to moving it off the default.
  enum class EffectShape {
    /// Gaussian bump away from the default: there is a better region.
    kImprovableBump,
    /// Linear trend: pushing one direction gains, the other loses.
    kMonotonic,
    /// Default-optimal parabola: any change degrades performance.
    kRiskyQuadratic,
    /// Categorical: arbitrary non-ordinal per-category effects.
    kCategorical,
  };

  /// One knob's contribution to the surface.
  struct KnobEffect {
    size_t knob_index = 0;
    /// Scale of this knob's contribution (log units).
    double weight = 0.0;
    EffectShape shape = EffectShape::kRiskyQuadratic;
    /// Bump center / trend direction parameter, in unit coordinates.
    double optimum = 0.5;
    /// Bump width in unit coordinates.
    double width = 0.2;
    /// Per-category effect (categorical shape only); entry for the default
    /// category is 0.
    std::vector<double> category_effects;
  };

  /// Pairwise knob interaction. Two kinds:
  ///  * saddle — weight * product of centered unit values (optimal at two
  ///    opposite corners; marginals vanish);
  ///  * joint bump — gain only when BOTH knobs sit near one of two joint
  ///    sweet spots (the paper's tmp_table_size x innodb_thread_concurrency
  ///    dependency shape). Two distinct modes make the good values of the
  ///    two knobs *conditionally* dependent: per-dimension density models
  ///    (TPE) and uniform crossover (GA) recombine values from different
  ///    modes and miss the gain, while tree surrogates keep them apart.
  /// Both are offset so the default configuration contributes 0.
  struct Interaction {
    enum class Kind { kSaddle, kJointBump };
    size_t knob_a = 0;
    size_t knob_b = 0;
    double weight = 0.0;
    Kind kind = Kind::kSaddle;
    double center_a = 0.5;
    double center_b = 0.5;
    /// Second mode of a joint-bump interaction.
    double center_a2 = 0.5;
    double center_b2 = 0.5;
    double width = 0.2;
    double default_offset = 0.0;
  };

  /// Builds the surface for `profile` over `space` (borrowed; must outlive
  /// the surface). Fully determined by `profile.surface_seed`.
  ResponseSurface(const ConfigurationSpace* space,
                  const WorkloadProfile& profile);

  /// Log-scale effect of a configuration. 0 for the default configuration;
  /// positive is better. Deterministic (no noise).
  double Score(const Configuration& config) const;

  /// Same over an already unit-encoded point.
  double ScoreFromUnit(const std::vector<double>& unit) const;

  /// Contribution of a single knob at the given unit position (used by
  /// tests and by ground-truth analyses).
  double KnobContribution(size_t effect_rank,
                          const std::vector<double>& unit) const;

  /// Contribution of one interaction term at the given unit position.
  double InteractionContribution(size_t index,
                                 const std::vector<double>& unit) const;

  /// Ground-truth knob indices ordered by descending effect weight
  /// (variance-style importance: risky knobs count).
  const std::vector<size_t>& importance_ranking() const {
    return importance_ranking_;
  }

  /// Ground-truth knob indices ordered by descending achievable *gain*
  /// over the default (tunability-style importance: risky knobs score 0).
  /// This is the ranking SHAP estimates.
  std::vector<size_t> TunabilityRanking() const;

  /// Achievable gain of the effect at `effect_rank` (0 for risky knobs).
  double AchievableGain(size_t effect_rank) const;

  /// Per-effect (ranked) weights, aligned with `importance_ranking()`.
  const std::vector<KnobEffect>& effects() const { return effects_; }
  const std::vector<Interaction>& interactions() const {
    return interactions_;
  }

  /// Aggregates knob effects into `count` subsystem groups (rank mod
  /// count); feeds the simulator's internal-metric model.
  std::vector<double> GroupEffects(const std::vector<double>& unit,
                                   size_t count) const;

  /// Largest achievable Score over the space (analytic upper bound used
  /// for calibration and tests).
  double max_gain() const { return max_gain_; }

 private:
  const ConfigurationSpace* space_;
  double max_gain_;
  /// Effects ordered by descending weight; effects_[r].knob_index ==
  /// importance_ranking_[r].
  std::vector<KnobEffect> effects_;
  std::vector<Interaction> interactions_;
  std::vector<size_t> importance_ranking_;
  /// Unit encoding of the space's default configuration.
  std::vector<double> default_unit_;
};

}  // namespace dbtune

#endif  // DBTUNE_DBMS_RESPONSE_SURFACE_H_
