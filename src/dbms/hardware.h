#ifndef DBTUNE_DBMS_HARDWARE_H_
#define DBTUNE_DBMS_HARDWARE_H_

#include <cstdint>
#include <vector>

namespace dbtune {

/// The four DBMS instance types of the paper's Table 5.
enum class HardwareInstance { kA = 0, kB, kC, kD };

/// Hardware configuration of a database instance.
struct HardwareProfile {
  HardwareInstance id;
  const char* name;
  int cpu_cores;
  double ram_gb;
  /// Throughput multiplier relative to instance B (the paper's default
  /// deployment target).
  double performance_scale;
};

/// Profile for an instance type.
const HardwareProfile& GetHardwareProfile(HardwareInstance id);

/// All four instance types.
std::vector<HardwareInstance> AllHardwareInstances();

}  // namespace dbtune

#endif  // DBTUNE_DBMS_HARDWARE_H_
