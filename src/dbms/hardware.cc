#include "dbms/hardware.h"

#include "util/logging.h"

namespace dbtune {

namespace {
const HardwareProfile kInstances[] = {
    {HardwareInstance::kA, "A", 4, 8.0, 0.55},
    {HardwareInstance::kB, "B", 8, 16.0, 1.00},
    {HardwareInstance::kC, "C", 16, 32.0, 1.75},
    {HardwareInstance::kD, "D", 32, 64.0, 3.00},
};
}  // namespace

const HardwareProfile& GetHardwareProfile(HardwareInstance id) {
  const size_t index = static_cast<size_t>(id);
  DBTUNE_CHECK(index < sizeof(kInstances) / sizeof(kInstances[0]));
  return kInstances[index];
}

std::vector<HardwareInstance> AllHardwareInstances() {
  return {HardwareInstance::kA, HardwareInstance::kB, HardwareInstance::kC,
          HardwareInstance::kD};
}

}  // namespace dbtune
