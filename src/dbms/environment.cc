#include "dbms/environment.h"

#include <numeric>

#include "util/logging.h"

namespace dbtune {

namespace {
std::vector<size_t> AllIndices(size_t n) {
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  return idx;
}
}  // namespace

TuningEnvironment::TuningEnvironment(DbmsSimulator* simulator)
    : TuningEnvironment(simulator,
                        AllIndices(simulator->space().dimension())) {}

TuningEnvironment::TuningEnvironment(DbmsSimulator* simulator,
                                     std::vector<size_t> knob_indices)
    : simulator_(simulator),
      knob_indices_(std::move(knob_indices)),
      subspace_(simulator->space().Project(knob_indices_)),
      base_config_(simulator->EffectiveDefault()) {
  DBTUNE_CHECK(simulator_ != nullptr);
  // Measure the default before tuning begins.
  EvaluationResult def = simulator_->Evaluate(base_config_);
  DBTUNE_CHECK_MSG(!def.failed, "default configuration must not crash");
  default_objective_ = def.objective;
  default_score_ = ScoreFromObjective(def.objective);
  worst_score_ = default_score_;
  best_score_ = default_score_;
  best_objective_ = default_objective_;
  // The default in subspace coordinates seeds `best_config_`.
  std::vector<double> sub(knob_indices_.size());
  for (size_t i = 0; i < knob_indices_.size(); ++i) {
    sub[i] = base_config_[knob_indices_[i]];
  }
  best_config_ = Configuration(std::move(sub));
}

double TuningEnvironment::ScoreFromObjective(double objective) const {
  if (simulator_->workload().objective == ObjectiveKind::kThroughput) {
    return objective;
  }
  return -objective;
}

Configuration TuningEnvironment::ToFullConfiguration(
    const Configuration& sub_config) const {
  DBTUNE_CHECK(sub_config.size() == knob_indices_.size());
  Configuration full = base_config_;
  for (size_t i = 0; i < knob_indices_.size(); ++i) {
    full[knob_indices_[i]] = sub_config[i];
  }
  return full;
}

Observation TuningEnvironment::Evaluate(const Configuration& sub_config) {
  const Configuration clipped = subspace_.Clip(sub_config);
  EvaluationResult result = simulator_->Evaluate(ToFullConfiguration(clipped));

  Observation obs;
  obs.config = clipped;
  obs.failed = result.failed;
  obs.internal_metrics = std::move(result.internal_metrics);
  if (result.failed) {
    // The paper assigns failed configurations the worst performance ever
    // seen to avoid scaling problems.
    obs.score = worst_score_;
    obs.objective = 0.0;
  } else {
    obs.objective = result.objective;
    obs.score = ScoreFromObjective(result.objective);
    worst_score_ = std::min(worst_score_, obs.score);
    if (obs.score > best_score_) {
      best_score_ = obs.score;
      best_objective_ = obs.objective;
      best_iteration_ = history_.size() + 1;
      best_config_ = clipped;
    }
  }
  history_.push_back(obs);
  return history_.back();
}

Observation TuningEnvironment::Replay(const Observation& recorded) {
  DBTUNE_CHECK(recorded.config.size() == knob_indices_.size());
  simulator_->ReplaySkip(recorded.failed);

  Observation obs;
  obs.config = recorded.config;
  obs.failed = recorded.failed;
  obs.internal_metrics = recorded.internal_metrics;
  if (recorded.failed) {
    obs.score = worst_score_;
    obs.objective = 0.0;
  } else {
    obs.objective = recorded.objective;
    obs.score = ScoreFromObjective(recorded.objective);
    worst_score_ = std::min(worst_score_, obs.score);
    if (obs.score > best_score_) {
      best_score_ = obs.score;
      best_objective_ = obs.objective;
      best_iteration_ = history_.size() + 1;
      best_config_ = obs.config;
    }
  }
  history_.push_back(obs);
  return history_.back();
}

double TuningEnvironment::ImprovementPercent() const {
  return ImprovementPercentOf(best_objective_);
}

double TuningEnvironment::ImprovementPercentOf(double objective) const {
  DBTUNE_CHECK(default_objective_ > 0.0);
  if (simulator_->workload().objective == ObjectiveKind::kThroughput) {
    return (objective - default_objective_) / default_objective_ * 100.0;
  }
  return (default_objective_ - objective) / default_objective_ * 100.0;
}

}  // namespace dbtune
