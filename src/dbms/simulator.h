#ifndef DBTUNE_DBMS_SIMULATOR_H_
#define DBTUNE_DBMS_SIMULATOR_H_

#include <memory>
#include <vector>

#include "dbms/hardware.h"
#include "dbms/response_surface.h"
#include "dbms/workload.h"
#include "knobs/configuration_space.h"
#include "util/random.h"

namespace dbtune {

/// Number of DBMS internal metrics exposed per stress test (counters such
/// as buffer-pool hit ratios, lock waits, ... in the real system). They are
/// the DDPG state and the workload-mapping signature.
inline constexpr size_t kNumInternalMetrics = 40;

/// Outcome of replaying the workload under one configuration.
struct EvaluationResult {
  /// True when the DBMS crashed or could not start under this
  /// configuration (e.g. buffer pool exceeding RAM).
  bool failed = false;
  /// Raw objective value: transactions/second for OLTP workloads,
  /// 95th-percentile latency in seconds for OLAP. Unset when failed.
  double objective = 0.0;
  /// Internal metrics collected during the stress test (zeros when failed).
  std::vector<double> internal_metrics;
  /// Simulated wall-clock cost of this iteration (DBMS restart + 3-minute
  /// stress test), used for the speedup accounting of §8.
  double evaluation_seconds = 0.0;
};

/// A simulated MySQL-5.7-style DBMS under a replayed workload: the
/// substrate that stands in for the paper's RDS MySQL + OLTP-Bench rig
/// (see DESIGN.md §2). Deterministic given (workload, hardware, seed).
class DbmsSimulator {
 public:
  /// Deploys `workload` on `hardware`; `seed` drives observation noise.
  /// Uses the full 197-knob catalog.
  DbmsSimulator(WorkloadId workload, HardwareInstance hardware,
                uint64_t seed = 7);

  /// Same, over a caller-provided configuration space (e.g. the small test
  /// catalog). The space is copied.
  DbmsSimulator(const ConfigurationSpace& space, WorkloadId workload,
                HardwareInstance hardware, uint64_t seed = 7);

  DbmsSimulator(const DbmsSimulator&) = delete;
  DbmsSimulator& operator=(const DbmsSimulator&) = delete;

  const ConfigurationSpace& space() const { return space_; }
  const WorkloadProfile& workload() const { return profile_; }
  const HardwareProfile& hardware() const { return hardware_; }
  const ResponseSurface& surface() const { return *surface_; }

  /// The deployment default: catalog defaults with the buffer pool raised
  /// to 60% of instance RAM (the paper's protocol).
  Configuration EffectiveDefault() const;

  /// Restarts the DBMS with `config` and replays the workload for a
  /// simulated 3 minutes. Invalid values are clipped into their domains
  /// first (as a real controller would refuse to set them).
  EvaluationResult Evaluate(const Configuration& config);

  /// Advances the simulator past one evaluation whose outcome is already
  /// known (durable-store replay): consumes exactly the noise draws and
  /// simulated seconds `Evaluate` would for a failed/successful run, so
  /// the run continues on a bitwise-identical trajectory, without
  /// recomputing the response surface.
  void ReplaySkip(bool failed);

  /// Deterministic crash predicate: true when the configuration's memory
  /// footprint exceeds what the instance can host.
  bool WouldCrash(const Configuration& config) const;

  /// Noise-free objective (used by tests and ground-truth analyses).
  double NoiselessObjective(const Configuration& config) const;

  /// Total simulated seconds spent in `Evaluate` so far.
  double simulated_seconds() const { return simulated_seconds_; }
  /// Number of `Evaluate` calls so far.
  size_t evaluation_count() const { return evaluation_count_; }

 private:
  void ResolveMemoryKnobs();
  double EstimatedMemoryBytes(const Configuration& config) const;
  std::vector<double> ComputeInternalMetrics(const std::vector<double>& unit,
                                             double score);

  ConfigurationSpace space_;
  WorkloadProfile profile_;
  HardwareProfile hardware_;
  std::unique_ptr<ResponseSurface> surface_;
  Rng noise_rng_;

  // Knob indices for the memory/crash model; -1 when absent from the space.
  int buffer_pool_knob_ = -1;
  int max_connections_knob_ = -1;
  std::vector<int> per_session_buffer_knobs_;

  double simulated_seconds_ = 0.0;
  size_t evaluation_count_ = 0;
};

}  // namespace dbtune

#endif  // DBTUNE_DBMS_SIMULATOR_H_
