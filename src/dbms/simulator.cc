#include "dbms/simulator.h"

#include <cmath>

#include "knobs/catalog.h"
#include "util/logging.h"

namespace dbtune {

namespace {

constexpr double kRestartSeconds = 30.0;
constexpr double kStressTestSeconds = 180.0;
constexpr double kFailedProbeSeconds = 45.0;
constexpr double kNoiseSigma = 0.04;
// Fraction of instance RAM the server may use before it fails to start.
constexpr double kMemoryBudgetFraction = 0.90;
// How many sessions actively hold per-session buffers during the stress
// test (OLTP-Bench drives a bounded number of client terminals).
constexpr double kActiveSessions = 64.0;

// Fixed global seed for the internal-metric projection so metric semantics
// are identical across workloads and hardware (required for workload
// mapping to compare them).
constexpr uint64_t kMetricProjectionSeed = 0xDBCAFE01;
constexpr size_t kEffectGroups = 8;

}  // namespace

DbmsSimulator::DbmsSimulator(WorkloadId workload, HardwareInstance hardware,
                             uint64_t seed)
    : DbmsSimulator(MySqlKnobCatalog(), workload, hardware, seed) {}

DbmsSimulator::DbmsSimulator(const ConfigurationSpace& space,
                             WorkloadId workload, HardwareInstance hardware,
                             uint64_t seed)
    : space_(space),
      profile_(GetWorkloadProfile(workload)),
      hardware_(GetHardwareProfile(hardware)),
      surface_(std::make_unique<ResponseSurface>(&space_, profile_)),
      noise_rng_(seed) {
  ResolveMemoryKnobs();
}

void DbmsSimulator::ResolveMemoryKnobs() {
  auto find = [&](const char* name) -> int {
    Result<size_t> idx = space_.KnobIndex(name);
    return idx.ok() ? static_cast<int>(*idx) : -1;
  };
  buffer_pool_knob_ = find("innodb_buffer_pool_size");
  if (buffer_pool_knob_ < 0) buffer_pool_knob_ = find("buffer_pool_size");
  max_connections_knob_ = find("max_connections");
  for (const char* name :
       {"sort_buffer_size", "join_buffer_size", "read_buffer_size",
        "read_rnd_buffer_size"}) {
    const int idx = find(name);
    if (idx >= 0) per_session_buffer_knobs_.push_back(idx);
  }
}

Configuration DbmsSimulator::EffectiveDefault() const {
  Configuration config = space_.Default();
  if (buffer_pool_knob_ >= 0) {
    const Knob& knob = space_.knob(buffer_pool_knob_);
    const double target = 0.60 * hardware_.ram_gb * 1024.0 * 1024.0 * 1024.0;
    config[buffer_pool_knob_] = knob.Clip(target);
  }
  return config;
}

double DbmsSimulator::EstimatedMemoryBytes(const Configuration& config) const {
  double total = 0.0;
  if (buffer_pool_knob_ >= 0) total += config[buffer_pool_knob_];
  double per_session = 0.0;
  for (int idx : per_session_buffer_knobs_) per_session += config[idx];
  double sessions = kActiveSessions;
  if (max_connections_knob_ >= 0) {
    sessions = std::min(sessions, config[max_connections_knob_]);
  }
  total += sessions * per_session;
  return total;
}

bool DbmsSimulator::WouldCrash(const Configuration& config) const {
  const double ram_bytes = hardware_.ram_gb * 1024.0 * 1024.0 * 1024.0;
  return EstimatedMemoryBytes(config) > kMemoryBudgetFraction * ram_bytes;
}

double DbmsSimulator::NoiselessObjective(const Configuration& config) const {
  const Configuration clipped = space_.Clip(config);
  const double score = surface_->Score(clipped);
  if (profile_.objective == ObjectiveKind::kThroughput) {
    return profile_.base_objective * hardware_.performance_scale *
           std::exp(score);
  }
  return profile_.base_objective / hardware_.performance_scale /
         std::exp(score);
}

std::vector<double> DbmsSimulator::ComputeInternalMetrics(
    const std::vector<double>& unit, double score) {
  // Feature vector: effect groups + workload descriptors + hardware.
  std::vector<double> features = surface_->GroupEffects(unit, kEffectGroups);
  features.push_back(score);
  features.push_back(profile_.read_only_fraction);
  features.push_back(std::log10(profile_.size_gb + 1e-6));
  features.push_back(static_cast<double>(profile_.tables) / 150.0);
  for (int c = 0; c < 4; ++c) {
    features.push_back(
        static_cast<int>(profile_.workload_class) == c ? 1.0 : 0.0);
  }
  features.push_back(static_cast<double>(hardware_.cpu_cores) / 32.0);
  features.push_back(hardware_.ram_gb / 64.0);

  // Fixed random projection shared by every simulator instance.
  static const std::vector<std::vector<double>> projection = [] {
    Rng proj_rng(kMetricProjectionSeed);
    std::vector<std::vector<double>> rows(kNumInternalMetrics);
    const size_t kMaxFeatures = 32;
    for (auto& row : rows) {
      row.resize(kMaxFeatures);
      for (double& w : row) w = proj_rng.Gaussian(0.0, 0.8);
    }
    return rows;
  }();

  std::vector<double> metrics(kNumInternalMetrics, 0.0);
  for (size_t m = 0; m < kNumInternalMetrics; ++m) {
    double acc = 0.0;
    const std::vector<double>& row = projection[m];
    for (size_t f = 0; f < features.size() && f < row.size(); ++f) {
      acc += row[f] * features[f];
    }
    metrics[m] = std::tanh(acc) + noise_rng_.Gaussian(0.0, 0.01);
  }
  return metrics;
}

void DbmsSimulator::ReplaySkip(bool failed) {
  ++evaluation_count_;
  if (failed) {
    // The failed path of Evaluate draws no noise.
    simulated_seconds_ += kFailedProbeSeconds;
    return;
  }
  // Mirror Evaluate's draw pattern exactly: one objective-noise draw plus
  // one per internal metric. Rng::Gaussian builds a fresh distribution
  // per call, so engine state (the only thing that matters for the
  // continuation) depends only on the number and parameters of draws.
  (void)noise_rng_.Gaussian(0.0, kNoiseSigma);
  for (size_t m = 0; m < kNumInternalMetrics; ++m) {
    (void)noise_rng_.Gaussian(0.0, 0.01);
  }
  simulated_seconds_ += kRestartSeconds + kStressTestSeconds;
}

EvaluationResult DbmsSimulator::Evaluate(const Configuration& config) {
  EvaluationResult result;
  ++evaluation_count_;
  const Configuration clipped = space_.Clip(config);

  if (WouldCrash(clipped)) {
    result.failed = true;
    result.internal_metrics.assign(kNumInternalMetrics, 0.0);
    result.evaluation_seconds = kFailedProbeSeconds;
    simulated_seconds_ += result.evaluation_seconds;
    return result;
  }

  const std::vector<double> unit = space_.ToUnit(clipped);
  const double score = surface_->ScoreFromUnit(unit);
  const double noise = std::exp(noise_rng_.Gaussian(0.0, kNoiseSigma));
  if (profile_.objective == ObjectiveKind::kThroughput) {
    result.objective = profile_.base_objective * hardware_.performance_scale *
                       std::exp(score) * noise;
  } else {
    result.objective = profile_.base_objective /
                       hardware_.performance_scale / std::exp(score) * noise;
  }
  result.internal_metrics = ComputeInternalMetrics(unit, score);
  result.evaluation_seconds = kRestartSeconds + kStressTestSeconds;
  simulated_seconds_ += result.evaluation_seconds;
  return result;
}

}  // namespace dbtune
