#ifndef DBTUNE_DBMS_ENVIRONMENT_H_
#define DBTUNE_DBMS_ENVIRONMENT_H_

#include <vector>

#include "dbms/simulator.h"
#include "knobs/configuration_space.h"

namespace dbtune {

/// One tuning observation, in maximize direction.
struct Observation {
  /// The configuration as suggested (in the tuned subspace).
  Configuration config;
  /// Maximize-direction score: throughput for OLTP, negated latency for
  /// OLAP. For failed configurations this is the worst score seen so far
  /// (the paper's protocol to avoid scaling problems).
  double score = 0.0;
  /// Raw objective value (tps or seconds); 0 when failed.
  double objective = 0.0;
  bool failed = false;
  /// DBMS internal metrics collected during the stress test.
  std::vector<double> internal_metrics;
};

/// Optimizer-facing view of one tuning task: a simulator plus the paper's
/// evaluation protocol. Handles knob-subset tuning (unselected knobs stay
/// at the deployment default), failure substitution, and bookkeeping of
/// the best configuration found.
///
/// The environment measures the default configuration once at
/// construction, as a real tuning session would before its first
/// iteration.
class TuningEnvironment {
 public:
  /// Tunes every knob of the simulator's space.
  explicit TuningEnvironment(DbmsSimulator* simulator);

  /// Tunes only `knob_indices` (into the simulator's space); all other
  /// knobs are pinned at the effective default.
  TuningEnvironment(DbmsSimulator* simulator,
                    std::vector<size_t> knob_indices);

  TuningEnvironment(const TuningEnvironment&) = delete;
  TuningEnvironment& operator=(const TuningEnvironment&) = delete;

  /// The subspace the optimizer works in.
  const ConfigurationSpace& space() const { return subspace_; }

  DbmsSimulator& simulator() { return *simulator_; }
  const DbmsSimulator& simulator() const { return *simulator_; }

  /// Runs one tuning iteration: applies the (subspace) configuration,
  /// replays the workload, and returns the observation. Appends to
  /// `history()`.
  Observation Evaluate(const Configuration& sub_config);

  /// Re-applies an observation recovered from the durable store without
  /// re-running the stress test: performs the same best/worst bookkeeping
  /// as `Evaluate` (recomputing the failure-substituted score from the
  /// running worst) and advances the simulator via `ReplaySkip`, so a
  /// resumed session continues bitwise-identically. `recorded.config`
  /// must already be clipped into this environment's subspace.
  Observation Replay(const Observation& recorded);

  /// Maximize-direction score of the default configuration.
  double default_score() const { return default_score_; }
  /// Raw objective of the default configuration.
  double default_objective() const { return default_objective_; }

  /// Best score over all iterations so far (default when none succeeded).
  double best_score() const { return best_score_; }
  /// Raw objective of the best configuration (default's when none).
  double best_objective() const { return best_objective_; }
  /// 1-based iteration at which the best score was found; 0 when no
  /// iteration improved over nothing (i.e. no evaluations yet).
  size_t best_iteration() const { return best_iteration_; }
  /// Best configuration found so far (subspace coordinates).
  const Configuration& best_config() const { return best_config_; }

  /// All observations in iteration order.
  const std::vector<Observation>& history() const { return history_; }
  size_t iterations() const { return history_.size(); }

  /// Performance improvement of the best configuration against the
  /// default, in percent: (best-def)/def for throughput workloads,
  /// (def-best)/def for latency workloads.
  double ImprovementPercent() const;

  /// Improvement percent of an arbitrary raw objective value vs. default.
  double ImprovementPercentOf(double objective) const;

  /// Converts a raw objective into maximize direction for this workload.
  double ScoreFromObjective(double objective) const;

 private:
  Configuration ToFullConfiguration(const Configuration& sub_config) const;

  DbmsSimulator* simulator_;
  std::vector<size_t> knob_indices_;
  ConfigurationSpace subspace_;
  Configuration base_config_;  // effective default (full space)

  double default_objective_ = 0.0;
  double default_score_ = 0.0;
  double worst_score_ = 0.0;
  double best_score_ = 0.0;
  double best_objective_ = 0.0;
  size_t best_iteration_ = 0;
  Configuration best_config_;
  std::vector<Observation> history_;
};

}  // namespace dbtune

#endif  // DBTUNE_DBMS_ENVIRONMENT_H_
