#include "dbms/response_surface.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace dbtune {

namespace {

double GaussBump(double u, double center, double width) {
  const double d = (u - center) / width;
  return std::exp(-0.5 * d * d);
}

}  // namespace

ResponseSurface::ResponseSurface(const ConfigurationSpace* space,
                                 const WorkloadProfile& profile)
    : space_(space), max_gain_(profile.max_gain) {
  DBTUNE_CHECK(space_ != nullptr);
  const size_t dim = space_->dimension();
  Rng rng(profile.surface_seed);
  default_unit_ = space_->ToUnit(space_->Default());

  // --- Rank the knobs: a seeded permutation with categorical knobs
  // guaranteed representation near the top (the heterogeneity study needs
  // impactful categorical knobs).
  importance_ranking_ = rng.Permutation(dim);
  {
    // Two windows: a handful of categorical knobs among the very top
    // ranks (MySQL's flush policies and commit modes genuinely matter),
    // and broader representation in the top 30.
    auto ensure_categorical = [&](size_t window, size_t want) {
      size_t have = 0;
      for (size_t r = 0; r < window; ++r) {
        if (space_->knob(importance_ranking_[r]).is_categorical()) ++have;
      }
      for (size_t r = window; r < dim && have < want; ++r) {
        if (!space_->knob(importance_ranking_[r]).is_categorical()) continue;
        for (int attempt = 0; attempt < 16; ++attempt) {
          const size_t slot = rng.Index(window);
          if (!space_->knob(importance_ranking_[slot]).is_categorical()) {
            std::swap(importance_ranking_[slot], importance_ranking_[r]);
            ++have;
            break;
          }
        }
      }
    };
    ensure_categorical(std::min<size_t>(8, dim), 3);
    ensure_categorical(std::min<size_t>(30, dim), 8);
  }

  // --- Assign decaying weights and shapes.
  const double tau =
      static_cast<double>(profile.effective_important_knobs) / 1.6;
  effects_.resize(dim);
  for (size_t r = 0; r < dim; ++r) {
    KnobEffect& e = effects_[r];
    e.knob_index = importance_ranking_[r];
    const Knob& knob = space_->knob(e.knob_index);
    const double decay = std::exp(-static_cast<double>(r) / tau);
    // Long tail: even "unimportant" knobs keep a whisper of effect.
    e.weight = std::max(decay, 0.004) * (0.7 + 0.6 * rng.Uniform());

    // Defaults are robust: the deeper into the tail, the likelier a knob
    // is default-optimal ("risky" to touch). This keeps the fraction of
    // random configurations that beat the default realistically small.
    const double tail_fraction =
        static_cast<double>(r) / static_cast<double>(dim);

    if (knob.is_categorical()) {
      e.shape = EffectShape::kCategorical;
      const size_t k = knob.num_categories();
      const size_t default_cat = static_cast<size_t>(knob.default_value());
      e.category_effects.assign(k, 0.0);
      // Top-ranked categorical knobs often have a category better than the
      // default; tail ones rarely do. Effects are drawn independently per
      // category, so they are non-ordinal in the index.
      const bool improvable = rng.Bernoulli(0.6 - 0.35 * tail_fraction);
      for (size_t c = 0; c < k; ++c) {
        if (c == default_cat) continue;
        e.category_effects[c] = -rng.Uniform(0.2, 1.0);
      }
      if (improvable) {
        // Promote one non-default category to a gain.
        size_t best = default_cat;
        while (best == default_cat) best = rng.Index(k);
        e.category_effects[best] = rng.Uniform(0.5, 1.0);
      }
      continue;
    }

    // Numeric knob: pick the effect shape. Top ranks are ~55% improvable
    // bumps; the share decays along the tail in favour of risky
    // (default-optimal) knobs — the mix that drives the SHAP-vs-variance
    // separation.
    const double p_improvable = 0.58 - 0.38 * tail_fraction;
    const double p_monotonic = 0.04;
    const double roll = rng.Uniform();
    const double ud = default_unit_[e.knob_index];
    if (roll < p_improvable) {
      e.shape = EffectShape::kImprovableBump;
      // Optimum well away from the default, with a narrow good region:
      // gains exist but random sampling rarely lands on them.
      do {
        e.optimum = rng.Uniform(0.05, 0.95);
      } while (std::abs(e.optimum - ud) < 0.25);
      e.width = rng.Uniform(0.04, 0.12);
    } else if (roll < p_improvable + p_monotonic) {
      e.shape = EffectShape::kMonotonic;
      e.optimum = rng.Bernoulli(0.5) ? 1.0 : -1.0;  // trend direction
    } else {
      e.shape = EffectShape::kRiskyQuadratic;
      e.width = rng.Uniform(0.3, 0.8);  // how fast deviation hurts
    }
  }

  // --- Pairwise saddle interactions among the impactful knobs.
  const size_t top = std::min<size_t>(
      std::max<size_t>(profile.effective_important_knobs, 6), dim);
  // A substantial share of the tunable gain lives in interactions: the
  // optimal value of one knob depends on another (e.g. tmp_table_size vs
  // innodb_thread_concurrency in the paper). Saddle terms have vanishing
  // marginals, which per-dimension models (TPE) cannot represent.
  const size_t num_interactions = std::max<size_t>(4, (2 * top) / 3);
  for (size_t i = 0; i < num_interactions; ++i) {
    Interaction inter;
    size_t ra = rng.Index(top);
    size_t rb = rng.Index(top);
    for (int attempt = 0; attempt < 16 && rb == ra; ++attempt) {
      rb = rng.Index(top);
    }
    if (ra == rb) continue;
    inter.knob_a = importance_ranking_[ra];
    inter.knob_b = importance_ranking_[rb];
    inter.weight = rng.Uniform(0.6, 1.2) *
                   std::exp(-static_cast<double>(std::min(ra, rb)) / tau);
    if (rng.Bernoulli(0.3)) {
      inter.kind = Interaction::Kind::kSaddle;
      const double da = 2.0 * default_unit_[inter.knob_a] - 1.0;
      const double db = 2.0 * default_unit_[inter.knob_b] - 1.0;
      inter.default_offset = da * db;
    } else {
      inter.kind = Interaction::Kind::kJointBump;
      inter.center_a = rng.Uniform(0.1, 0.9);
      inter.center_b = rng.Uniform(0.1, 0.9);
      // The second mode coincides with the first (single sweet spot).
      inter.center_a2 = inter.center_a;
      inter.center_b2 = inter.center_b;
      inter.width = rng.Uniform(0.20, 0.35);
      const double da = default_unit_[inter.knob_a];
      const double db = default_unit_[inter.knob_b];
      inter.default_offset =
          0.5 * (GaussBump(da, inter.center_a, inter.width) *
                     GaussBump(db, inter.center_b, inter.width) +
                 GaussBump(da, inter.center_a2, inter.width) *
                     GaussBump(db, inter.center_b2, inter.width));
    }
    interactions_.push_back(inter);
  }

  // --- Normalize: the maximum achievable positive score equals max_gain.
  double achievable = 0.0;
  for (size_t r = 0; r < dim; ++r) {
    const KnobEffect& e = effects_[r];
    switch (e.shape) {
      case EffectShape::kImprovableBump: {
        const double ud = default_unit_[e.knob_index];
        achievable +=
            e.weight *
            (1.0 - GaussBump(ud, e.optimum, e.width) -
             0.30 * std::min(std::abs(e.optimum - ud) / 0.5, 1.0));
        break;
      }
      case EffectShape::kMonotonic: {
        const double ud = default_unit_[e.knob_index];
        achievable +=
            e.weight * (e.optimum > 0 ? (1.0 - ud) : ud);
        break;
      }
      case EffectShape::kCategorical: {
        double best = 0.0;
        for (double c : e.category_effects) best = std::max(best, c);
        achievable += e.weight * best;
        break;
      }
      case EffectShape::kRiskyQuadratic:
        break;  // nothing to gain
    }
  }
  for (const Interaction& inter : interactions_) {
    if (inter.kind == Interaction::Kind::kSaddle) {
      achievable += inter.weight * (1.0 + std::abs(inter.default_offset));
    } else {
      achievable += inter.weight * (1.0 - inter.default_offset);
    }
  }
  DBTUNE_CHECK(achievable > 0.0);
  const double scale = profile.max_gain / achievable;
  for (KnobEffect& e : effects_) e.weight *= scale;
  for (Interaction& inter : interactions_) inter.weight *= scale;
}

double ResponseSurface::AchievableGain(size_t effect_rank) const {
  DBTUNE_CHECK(effect_rank < effects_.size());
  const KnobEffect& e = effects_[effect_rank];
  const double ud = default_unit_[e.knob_index];
  switch (e.shape) {
    case EffectShape::kImprovableBump:
      return e.weight *
             (1.0 - GaussBump(ud, e.optimum, e.width) -
              0.30 * std::min(std::abs(e.optimum - ud) / 0.5, 1.0));
    case EffectShape::kMonotonic:
      return e.weight * (e.optimum > 0 ? (1.0 - ud) : ud);
    case EffectShape::kCategorical: {
      double best = 0.0;
      for (double c : e.category_effects) best = std::max(best, c);
      return e.weight * best;
    }
    case EffectShape::kRiskyQuadratic:
      return 0.0;
  }
  return 0.0;
}

std::vector<size_t> ResponseSurface::TunabilityRanking() const {
  std::vector<double> gains(space_->dimension(), 0.0);
  for (size_t r = 0; r < effects_.size(); ++r) {
    gains[effects_[r].knob_index] = AchievableGain(r);
  }
  // Interactions contribute achievable gain to both partners (half each).
  for (const Interaction& inter : interactions_) {
    double gain = 0.0;
    if (inter.kind == Interaction::Kind::kSaddle) {
      gain = inter.weight * (1.0 + std::abs(inter.default_offset));
    } else {
      gain = inter.weight * (1.0 - inter.default_offset);
    }
    gains[inter.knob_a] += 0.5 * gain;
    gains[inter.knob_b] += 0.5 * gain;
  }
  std::vector<size_t> order(space_->dimension());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return gains[a] > gains[b];
  });
  return order;
}

double ResponseSurface::KnobContribution(size_t effect_rank,
                                         const std::vector<double>& unit) const {
  DBTUNE_CHECK(effect_rank < effects_.size());
  const KnobEffect& e = effects_[effect_rank];
  const double u = unit[e.knob_index];
  const double ud = default_unit_[e.knob_index];
  switch (e.shape) {
    case EffectShape::kImprovableBump: {
      // Gaussian gain region plus a mild off-default penalty: perturbing a
      // tuned subsystem degrades it slightly unless the sweet spot is hit
      // (keeps defaults robust against random sampling).
      const double gain =
          GaussBump(u, e.optimum, e.width) - GaussBump(ud, e.optimum, e.width);
      const double penalty =
          0.30 * std::min(std::abs(u - ud) / 0.5, 1.0);
      return e.weight * (gain - penalty);
    }
    case EffectShape::kMonotonic:
      return e.weight * (e.optimum > 0 ? (u - ud) : (ud - u));
    case EffectShape::kRiskyQuadratic: {
      const double d = (u - ud) / e.width;
      return -e.weight * std::min(d * d, 1.5);
    }
    case EffectShape::kCategorical: {
      const Knob& knob = space_->knob(e.knob_index);
      // `unit` stores the encoded category; decode back to the index.
      const double native = knob.Decode(u);
      const size_t cat = static_cast<size_t>(native);
      DBTUNE_CHECK(cat < e.category_effects.size());
      return e.weight * e.category_effects[cat];
    }
  }
  return 0.0;
}

double ResponseSurface::InteractionContribution(
    size_t index, const std::vector<double>& unit) const {
  DBTUNE_CHECK(index < interactions_.size());
  const Interaction& inter = interactions_[index];
  const double ua = unit[inter.knob_a];
  const double ub = unit[inter.knob_b];
  if (inter.kind == Interaction::Kind::kSaddle) {
    const double a = 2.0 * ua - 1.0;
    const double b = 2.0 * ub - 1.0;
    return inter.weight * (a * b - inter.default_offset);
  }
  // Mean of the two modes: with coincident centers this is exactly the
  // single joint bump, and the achievable gain stays `weight`.
  const double joint =
      0.5 * (GaussBump(ua, inter.center_a, inter.width) *
                 GaussBump(ub, inter.center_b, inter.width) +
             GaussBump(ua, inter.center_a2, inter.width) *
                 GaussBump(ub, inter.center_b2, inter.width));
  return inter.weight * (joint - inter.default_offset);
}

double ResponseSurface::ScoreFromUnit(const std::vector<double>& unit) const {
  DBTUNE_CHECK(unit.size() == space_->dimension());
  double score = 0.0;
  for (size_t r = 0; r < effects_.size(); ++r) {
    score += KnobContribution(r, unit);
  }
  for (size_t i = 0; i < interactions_.size(); ++i) {
    score += InteractionContribution(i, unit);
  }
  return score;
}

double ResponseSurface::Score(const Configuration& config) const {
  return ScoreFromUnit(space_->ToUnit(config));
}

std::vector<double> ResponseSurface::GroupEffects(
    const std::vector<double>& unit, size_t count) const {
  DBTUNE_CHECK(count > 0);
  std::vector<double> groups(count, 0.0);
  for (size_t r = 0; r < effects_.size(); ++r) {
    groups[r % count] += KnobContribution(r, unit);
  }
  return groups;
}

}  // namespace dbtune
