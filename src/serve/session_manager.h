#ifndef DBTUNE_SERVE_SESSION_MANAGER_H_
#define DBTUNE_SERVE_SESSION_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dbms/environment.h"
#include "knobs/configuration_space.h"
#include "optimizer/optimizer.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dbtune::store {
class ObservationStore;
}  // namespace dbtune::store

namespace dbtune::serve {

/// Creation parameters of one served tuning session. The client measures
/// its DBMS default configuration itself and ships the score as
/// `reference_score` — the server never evaluates, it only suggests and
/// learns, exactly mirroring the optimizer-side calls of
/// `RunTuningSession` (SetReferenceScore, Suggest, ObserveWithMetrics)
/// so a served trajectory is bitwise identical to the standalone loop.
struct ServedSessionOptions {
  /// Name of a configuration space registered with the manager.
  std::string space_name;
  OptimizerType optimizer_type = OptimizerType::kVanillaBo;
  uint64_t seed = 1;
  /// Score of the client's default configuration (maximize direction).
  double reference_score = 0.0;
  size_t initial_design = 10;
  size_t acquisition_candidates = 300;
};

struct SessionManagerOptions {
  /// Sessions idle for longer than this (seconds on the obs clock) are
  /// dropped by the no-argument `EvictIdle()`. <= 0 disables the sweep;
  /// the explicit-threshold overload always works.
  double idle_timeout_seconds = 0.0;
  /// Borrowed durable store. When set, every observation is WAL-appended
  /// under the session id, evicted sessions resume bit-identically by
  /// replaying their stored history (the PR 9 replay path), and closing
  /// a session seals it as a transfer base task. The caller keeps
  /// ownership and must outlive the manager.
  store::ObservationStore* store = nullptr;
};

struct ServedSession;  // private per-session state (session_manager.cc)

/// Owns the per-session state of a long-lived multi-session tuning
/// service: create/suggest/observe/close keyed by session id, idle
/// eviction with store-backed resurrection, and `Status` (never abort)
/// on protocol misuse — double close, suggest after close, observe
/// without an outstanding suggestion.
///
/// Thread-safety: all methods are safe to call concurrently *for
/// distinct sessions* — the manager mutex guards only the session map
/// and each session carries its own lock — which is exactly the shape
/// the BatchScheduler exploits (one in-flight request per session per
/// wave). Determinism: per-session RNG lives inside each session's
/// optimizer, so interleaving requests across sessions cannot perturb
/// any individual trajectory.
class SessionManager {
 public:
  explicit SessionManager(SessionManagerOptions options = {});
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Registers a configuration space clients can open sessions over.
  /// Re-registering a name replaces the space (existing sessions keep
  /// their own copy).
  void RegisterSpace(const std::string& name,
                     const ConfigurationSpace& definition);

  /// Opens a session. A new id starts fresh; an id with history in the
  /// durable store (evicted here, or recorded by a previous process)
  /// resumes by replaying that history into a fresh optimizer —
  /// `*replayed` reports how many observations were consumed. Errors:
  /// NotFound (unknown space), FailedPrecondition (id is live or
  /// closed), Internal (stored history diverges from the re-suggested
  /// trajectory, i.e. it was recorded under different code or seed).
  [[nodiscard]] Status CreateSession(const std::string& id,
                                     const ServedSessionOptions& options,
                                     size_t* replayed = nullptr);

  /// Proposes the next configuration for `id`. At most one suggestion
  /// may be outstanding per session (the suggest/observe alternation of
  /// the tuning loop); a second Suggest before Observe is
  /// FailedPrecondition. An evicted session is resurrected first when a
  /// store is attached, FailedPrecondition otherwise.
  [[nodiscard]] Result<Configuration> Suggest(const std::string& id);

  /// Reports the evaluated outcome of the outstanding suggestion.
  /// `observation.config` must be the clipped configuration actually
  /// applied (dimension-checked against the session's space).
  [[nodiscard]] Status Observe(const std::string& id,
                               const Observation& observation);

  /// Closes `id`: with a store attached the trajectory is sealed as a
  /// transfer base task named after the session. Double close and any
  /// later Suggest/Observe are FailedPrecondition.
  [[nodiscard]] Status CloseSession(const std::string& id);

  /// Drops the optimizer state of open sessions idle for more than the
  /// configured (or given) timeout; returns how many were evicted. The
  /// session id stays known: the next touch resurrects it from the
  /// store, or fails with FailedPrecondition when no store is attached.
  size_t EvictIdle();
  size_t EvictIdle(double idle_timeout_seconds);

  /// Open (created, not yet closed) sessions, evicted ones included.
  size_t num_open() const;
  /// Open sessions currently holding live optimizer state.
  size_t num_resident() const;

 private:
  ServedSession* FindSessionLocked(const std::string& id)
      DBTUNE_REQUIRES(mu_);

  const SessionManagerOptions options_;

  mutable Mutex mu_;
  /// Ordered so eviction sweeps and tests are deterministic. Nodes are
  /// never erased (closed/evicted sessions tombstone in place), so raw
  /// session pointers stay valid without holding `mu_`.
  std::map<std::string, std::unique_ptr<ServedSession>> sessions_
      DBTUNE_GUARDED_BY(mu_);
  std::map<std::string, ConfigurationSpace> spaces_ DBTUNE_GUARDED_BY(mu_);
  size_t open_sessions_ DBTUNE_GUARDED_BY(mu_) = 0;
};

}  // namespace dbtune::serve

#endif  // DBTUNE_SERVE_SESSION_MANAGER_H_
