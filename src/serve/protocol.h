#ifndef DBTUNE_SERVE_PROTOCOL_H_
#define DBTUNE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dbtune::serve {

/// Length-prefixed binary request codec for the tuning service (DESIGN.md
/// §"Serving layer"). A frame on the wire is
///
///   [u32 payload_len][payload]
///   payload = [u8 message_type][u64 request_id][body]
///
/// with all integers little-endian and doubles raw IEEE-754 bit patterns
/// (the store's WAL codec convention, so decoded configurations are
/// bitwise identical to what the optimizer suggested). The loopback
/// transport below carries frames between an in-process client and
/// server; a socket listener can adopt the same framing unchanged.

/// Wire message types. The numeric values are part of the protocol —
/// append, never renumber. Requests are odd, their responses even.
enum class MessageType : uint8_t {
  kCreateSession = 1,
  kCreateSessionResponse = 2,
  kSuggest = 3,
  kSuggestResponse = 4,
  kObserve = 5,
  kObserveResponse = 6,
  kCloseSession = 7,
  kCloseSessionResponse = 8,
};

/// One decoded frame: the type tag, the client's request id (echoed in
/// the response so batched replies can be matched up), and the
/// type-specific body bytes.
struct Frame {
  MessageType type = MessageType::kCreateSession;
  uint64_t request_id = 0;
  std::string body;
};

/// Encodes `frame` into its on-wire byte string.
std::string EncodeFrame(const Frame& frame);

/// Attempts to decode one frame from the head of `buffer`. Returns the
/// number of bytes consumed, or 0 when the buffer does not yet hold a
/// complete frame (read more bytes and retry). A syntactically complete
/// frame with a truncated payload is impossible by construction; an
/// oversized length prefix yields InvalidArgument so a corrupt peer
/// cannot make the reader wait forever.
[[nodiscard]] Result<size_t> DecodeFrame(std::string_view buffer, Frame* out);

/// Upper bound on a frame's payload, to bound buffering on corrupt input.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 26;  // 64 MiB

/// Opens a tuning session. `space_name` must have been registered with
/// the serving SessionManager; the client measures its DBMS default
/// configuration itself and ships the score here (the server never
/// evaluates — it only suggests and learns).
struct CreateSessionRequest {
  std::string session_id;
  std::string space_name;
  uint8_t optimizer_type = 0;  // OptimizerType enum value
  uint64_t seed = 1;
  double reference_score = 0.0;
  uint32_t initial_design = 10;
  uint32_t acquisition_candidates = 300;
};

/// Response status shared by every reply: the Status code as a u8 (0 =
/// OK) plus the message for non-OK codes.
struct ResponseHeader {
  uint8_t status_code = 0;
  std::string message;
};

struct CreateSessionResponse {
  ResponseHeader header;
  /// Observations replayed from the durable store (session resumed).
  uint64_t replayed = 0;
};

struct SuggestRequest {
  std::string session_id;
};

struct SuggestResponse {
  ResponseHeader header;
  /// Suggested configuration, native-domain knob values.
  std::vector<double> config;
};

/// Reports an evaluated configuration back. Mirrors dbtune::Observation;
/// `config` must be the clipped configuration actually applied (what the
/// standalone loop's environment records).
struct ObserveRequest {
  std::string session_id;
  std::vector<double> config;
  double score = 0.0;
  double objective = 0.0;
  uint8_t failed = 0;
  std::vector<double> internal_metrics;
};

struct ObserveResponse {
  ResponseHeader header;
};

struct CloseSessionRequest {
  std::string session_id;
};

struct CloseSessionResponse {
  ResponseHeader header;
};

/// Body encoders. Each returns a frame ready for the wire.
std::string EncodeCreateSession(uint64_t request_id,
                                const CreateSessionRequest& request);
std::string EncodeSuggest(uint64_t request_id, const SuggestRequest& request);
std::string EncodeObserve(uint64_t request_id, const ObserveRequest& request);
std::string EncodeCloseSession(uint64_t request_id,
                               const CloseSessionRequest& request);

std::string EncodeCreateSessionResponse(uint64_t request_id,
                                        const CreateSessionResponse& response);
std::string EncodeSuggestResponse(uint64_t request_id,
                                  const SuggestResponse& response);
std::string EncodeObserveResponse(uint64_t request_id,
                                  const ObserveResponse& response);
std::string EncodeCloseSessionResponse(uint64_t request_id,
                                       const CloseSessionResponse& response);

/// Body decoders. The frame's type must match; trailing bytes after the
/// body are an error (catches skewed encoders early).
[[nodiscard]] Result<CreateSessionRequest> DecodeCreateSession(
    const Frame& frame);
[[nodiscard]] Result<SuggestRequest> DecodeSuggest(const Frame& frame);
[[nodiscard]] Result<ObserveRequest> DecodeObserve(const Frame& frame);
[[nodiscard]] Result<CloseSessionRequest> DecodeCloseSession(
    const Frame& frame);

[[nodiscard]] Result<CreateSessionResponse> DecodeCreateSessionResponse(
    const Frame& frame);
[[nodiscard]] Result<SuggestResponse> DecodeSuggestResponse(
    const Frame& frame);
[[nodiscard]] Result<ObserveResponse> DecodeObserveResponse(
    const Frame& frame);
[[nodiscard]] Result<CloseSessionResponse> DecodeCloseSessionResponse(
    const Frame& frame);

/// Maps a Status onto the wire header and back. Unknown wire codes decode
/// to Internal so a skewed peer degrades to a visible error.
ResponseHeader HeaderFromStatus(const Status& status);
Status StatusFromHeader(const ResponseHeader& header);

/// Incremental frame reader: append raw bytes as they arrive, pull
/// complete frames out. Malformed input (oversized length prefix, short
/// payload) surfaces as an error from Next and poisons the reader.
class FrameReader {
 public:
  /// Buffers `bytes` for decoding.
  void Append(std::string_view bytes);

  /// Decodes the next complete frame into `out`. Returns true on a
  /// frame, false when more bytes are needed.
  [[nodiscard]] Result<bool> Next(Frame* out);

  /// Bytes buffered but not yet decoded.
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
};

/// In-process transport: a pair of byte streams (client→server and
/// server→client) with the same append/drain shape a socket event loop
/// would have. Single-threaded by design — the scheduler's determinism
/// comes from draining whole buffers at well-defined points, not from
/// concurrent queues.
class LoopbackTransport {
 public:
  /// Client side: sends request bytes to the server.
  void SendToServer(std::string_view bytes) { to_server_.append(bytes); }
  /// Server side: takes everything the client has sent so far.
  std::string DrainServerInbox() { return std::exchange(to_server_, {}); }

  /// Server side: sends response bytes to the client.
  void SendToClient(std::string_view bytes) { to_client_.append(bytes); }
  /// Client side: takes everything the server has sent so far.
  std::string DrainClientInbox() { return std::exchange(to_client_, {}); }

 private:
  std::string to_server_;
  std::string to_client_;
};

}  // namespace dbtune::serve

#endif  // DBTUNE_SERVE_PROTOCOL_H_
