#include "serve/frame_server.h"

#include <utility>
#include <vector>

namespace dbtune::serve {

namespace {

/// Converts a decoded ObserveRequest's payload into the library's
/// Observation value.
Observation ToObservation(const ObserveRequest& request) {
  Observation observation;
  observation.config = Configuration(request.config);
  observation.score = request.score;
  observation.objective = request.objective;
  observation.failed = request.failed != 0;
  observation.internal_metrics = request.internal_metrics;
  return observation;
}

ServedSessionOptions ToSessionOptions(const CreateSessionRequest& request) {
  ServedSessionOptions options;
  options.space_name = request.space_name;
  options.optimizer_type =
      static_cast<OptimizerType>(request.optimizer_type);
  options.seed = request.seed;
  options.reference_score = request.reference_score;
  options.initial_design = request.initial_design;
  options.acquisition_candidates = request.acquisition_candidates;
  return options;
}

std::string ErrorResponseFor(const Frame& frame, const Status& status) {
  switch (frame.type) {
    case MessageType::kCreateSession: {
      CreateSessionResponse response;
      response.header = HeaderFromStatus(status);
      return EncodeCreateSessionResponse(frame.request_id, response);
    }
    case MessageType::kSuggest: {
      SuggestResponse response;
      response.header = HeaderFromStatus(status);
      return EncodeSuggestResponse(frame.request_id, response);
    }
    case MessageType::kObserve: {
      ObserveResponse response;
      response.header = HeaderFromStatus(status);
      return EncodeObserveResponse(frame.request_id, response);
    }
    default: {
      CloseSessionResponse response;
      response.header = HeaderFromStatus(status);
      return EncodeCloseSessionResponse(frame.request_id, response);
    }
  }
}

}  // namespace

FrameServer::FrameServer(SessionManager* manager, BatchScheduler* scheduler)
    : manager_(manager), scheduler_(scheduler) {}

std::string FrameServer::HandleCreate(const Frame& frame) {
  Result<CreateSessionRequest> request = DecodeCreateSession(frame);
  if (!request.ok()) return ErrorResponseFor(frame, request.status());
  CreateSessionResponse response;
  size_t replayed = 0;
  const Status created = manager_->CreateSession(
      request->session_id, ToSessionOptions(*request), &replayed);
  response.header = HeaderFromStatus(created);
  response.replayed = replayed;
  return EncodeCreateSessionResponse(frame.request_id, response);
}

std::string FrameServer::HandleSuggest(const Frame& frame) {
  Result<SuggestRequest> request = DecodeSuggest(frame);
  if (!request.ok()) return ErrorResponseFor(frame, request.status());
  SuggestResponse response;
  Result<Configuration> suggested = manager_->Suggest(request->session_id);
  if (suggested.ok()) {
    response.config = suggested->values();
  }
  response.header = HeaderFromStatus(suggested.status());
  return EncodeSuggestResponse(frame.request_id, response);
}

std::string FrameServer::HandleObserve(const Frame& frame) {
  Result<ObserveRequest> request = DecodeObserve(frame);
  if (!request.ok()) return ErrorResponseFor(frame, request.status());
  ObserveResponse response;
  response.header = HeaderFromStatus(
      manager_->Observe(request->session_id, ToObservation(*request)));
  return EncodeObserveResponse(frame.request_id, response);
}

std::string FrameServer::HandleClose(const Frame& frame) {
  Result<CloseSessionRequest> request = DecodeCloseSession(frame);
  if (!request.ok()) return ErrorResponseFor(frame, request.status());
  CloseSessionResponse response;
  response.header =
      HeaderFromStatus(manager_->CloseSession(request->session_id));
  return EncodeCloseSessionResponse(frame.request_id, response);
}

std::string FrameServer::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case MessageType::kCreateSession:
      return HandleCreate(frame);
    case MessageType::kSuggest:
      return HandleSuggest(frame);
    case MessageType::kObserve:
      return HandleObserve(frame);
    case MessageType::kCloseSession:
      return HandleClose(frame);
    default:
      return ErrorResponseFor(
          frame, Status::InvalidArgument(
                     "unexpected message type " +
                     std::to_string(static_cast<int>(frame.type))));
  }
}

Status FrameServer::ServeBuffered(LoopbackTransport* transport) {
  reader_.Append(transport->DrainServerInbox());
  std::vector<Frame> frames;
  Frame frame;
  while (true) {
    DBTUNE_ASSIGN_OR_RETURN(const bool got, reader_.Next(&frame));
    if (!got) break;
    frames.push_back(std::move(frame));
  }
  if (frames.empty()) return Status::OK();

  // Responses are delivered in request order; suggest/observe execute
  // through the scheduler (batched across sessions) when one is
  // attached. Create/close act as barriers: the scheduler drains before
  // they run, so a close can never race past the session's own pending
  // requests.
  std::vector<std::string> responses(frames.size());
  if (scheduler_ == nullptr) {
    for (size_t i = 0; i < frames.size(); ++i) {
      responses[i] = HandleFrame(frames[i]);
    }
  } else {
    // Tickets for batched requests, paired with their frame index.
    std::vector<std::pair<size_t, uint64_t>> tickets;
    auto flush = [&] {
      scheduler_->Drain();
      for (const auto& [index, ticket] : tickets) {
        const Frame& request_frame = frames[index];
        if (request_frame.type == MessageType::kSuggest) {
          SuggestResponse response;
          Result<Configuration> suggested = scheduler_->TakeSuggest(ticket);
          if (suggested.ok()) response.config = suggested->values();
          response.header = HeaderFromStatus(suggested.status());
          responses[index] =
              EncodeSuggestResponse(request_frame.request_id, response);
        } else {
          ObserveResponse response;
          response.header =
              HeaderFromStatus(scheduler_->TakeObserve(ticket));
          responses[index] =
              EncodeObserveResponse(request_frame.request_id, response);
        }
      }
      tickets.clear();
    };
    for (size_t i = 0; i < frames.size(); ++i) {
      const Frame& request_frame = frames[i];
      switch (request_frame.type) {
        case MessageType::kSuggest: {
          Result<SuggestRequest> request = DecodeSuggest(request_frame);
          if (!request.ok()) {
            responses[i] = ErrorResponseFor(request_frame, request.status());
            break;
          }
          tickets.emplace_back(
              i, scheduler_->EnqueueSuggest(request->session_id));
          break;
        }
        case MessageType::kObserve: {
          Result<ObserveRequest> request = DecodeObserve(request_frame);
          if (!request.ok()) {
            responses[i] = ErrorResponseFor(request_frame, request.status());
            break;
          }
          tickets.emplace_back(
              i, scheduler_->EnqueueObserve(request->session_id,
                                            ToObservation(*request)));
          break;
        }
        default:
          flush();
          responses[i] = HandleFrame(request_frame);
          break;
      }
    }
    flush();
  }
  for (const std::string& response : responses) {
    transport->SendToClient(response);
  }
  return Status::OK();
}

}  // namespace dbtune::serve
