#ifndef DBTUNE_SERVE_FRAME_SERVER_H_
#define DBTUNE_SERVE_FRAME_SERVER_H_

#include <string>

#include "serve/batch_scheduler.h"
#include "serve/protocol.h"
#include "serve/session_manager.h"
#include "util/status.h"

namespace dbtune::serve {

/// Protocol front-end: decodes request frames, dispatches them to the
/// SessionManager (suggest/observe through the BatchScheduler when one
/// is attached, so concurrent clients batch across sessions), and
/// encodes response frames. The transport below it is the in-process
/// loopback for now; a socket listener speaks the same `Frame` API.
class FrameServer {
 public:
  /// `scheduler` may be null: every request then executes inline in
  /// frame order. Both pointers are borrowed and must outlive the
  /// server.
  explicit FrameServer(SessionManager* manager,
                       BatchScheduler* scheduler = nullptr);

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Handles one request frame synchronously and returns the encoded
  /// response frame. A malformed or unexpected frame yields a response
  /// of the same family with the decode error in its header when the
  /// type is recognisable, and an InvalidArgument CloseSessionResponse
  /// otherwise (the caller should drop the connection).
  std::string HandleFrame(const Frame& frame);

  /// Drains every complete request frame buffered in `transport`'s
  /// server inbox, executes them — suggests/observes batched across
  /// sessions through the scheduler, create/close as ordering barriers —
  /// and writes one response frame per request, in request order, to
  /// the client. Partial frames stay buffered for the next call; a
  /// malformed stream returns the decode error.
  [[nodiscard]] Status ServeBuffered(LoopbackTransport* transport);

 private:
  std::string HandleCreate(const Frame& frame);
  std::string HandleSuggest(const Frame& frame);
  std::string HandleObserve(const Frame& frame);
  std::string HandleClose(const Frame& frame);

  SessionManager* const manager_;
  BatchScheduler* const scheduler_;
  FrameReader reader_;
};

}  // namespace dbtune::serve

#endif  // DBTUNE_SERVE_FRAME_SERVER_H_
