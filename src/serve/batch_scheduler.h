#ifndef DBTUNE_SERVE_BATCH_SCHEDULER_H_
#define DBTUNE_SERVE_BATCH_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "dbms/environment.h"
#include "serve/session_manager.h"
#include "util/status.h"

namespace dbtune {
class ThreadPool;
}  // namespace dbtune

namespace dbtune::serve {

struct SchedulerOptions {
  /// Maximum requests executed per wave (one per session).
  size_t batch_width = 64;
  /// Batched mode fans each wave across the thread pool as whole-session
  /// tasks; unbatched mode dispatches requests one at a time in arrival
  /// order on the calling thread — the single-session baseline the
  /// throughput bench compares against.
  bool batched = true;
  /// Pool for batched waves; null uses the process-wide pool
  /// (DBTUNE_NUM_THREADS).
  ThreadPool* pool = nullptr;
};

/// Cross-session request batcher: the throughput engine of the serving
/// layer. Suggest and observe requests queue per session; each `Pump`
/// assembles one *wave* — at most one request per session, sessions in
/// id order, capped at `batch_width` — and executes it via ParallelFor
/// with one index per session. Whole sessions are the unit of
/// parallelism: a worker runs its session's full Suggest (surrogate fit
/// plus fused PredictMeanVarBatch acquisition scoring, which nests
/// inline on the worker), so the pool is saturated by inter-session
/// work instead of fighting over intra-session scraps.
///
/// Determinism: wave assembly is session-id-ordered, every worker
/// writes only its own result slot, and results scatter back in slot
/// order — so each session sees exactly the same request sequence at
/// any batch width, pool size, or interleaving, and its trajectory is
/// bitwise identical to the standalone in-process loop.
///
/// Threading contract: enqueue/pump/take are called from one driver
/// thread (the server loop); concurrency happens *inside* Pump. The
/// scheduler path must stay non-blocking — no file I/O, no sleeps, no
/// bare waits (the `blocking-in-scheduler` analyzer check enforces
/// this); ParallelFor is the only sanctioned join.
class BatchScheduler {
 public:
  explicit BatchScheduler(SessionManager* manager,
                          SchedulerOptions options = {});

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Queues a suggest for `session_id`; returns the ticket to redeem
  /// with `TakeSuggest` after a pump.
  uint64_t EnqueueSuggest(std::string session_id);

  /// Queues an observe carrying the evaluated outcome.
  uint64_t EnqueueObserve(std::string session_id, Observation observation);

  /// Executes one wave (batched) or every pending request in arrival
  /// order (unbatched). Returns the number of requests executed.
  size_t Pump();

  /// Pumps until no requests are pending; returns the total executed.
  size_t Drain();

  /// Requests enqueued but not yet executed.
  size_t pending() const { return pending_count_; }

  /// Result of a completed suggest ticket (one-shot: the ticket is
  /// consumed). FailedPrecondition when the ticket is unknown or its
  /// request has not been pumped yet.
  [[nodiscard]] Result<Configuration> TakeSuggest(uint64_t ticket);

  /// Outcome of a completed observe ticket (one-shot, as above).
  [[nodiscard]] Status TakeObserve(uint64_t ticket);

 private:
  enum class RequestKind { kSuggest, kObserve };

  struct Request {
    uint64_t ticket = 0;
    RequestKind kind = RequestKind::kSuggest;
    Observation observation;  // kObserve only
  };

  /// Executed outcome, indexed by ticket until taken.
  struct Completed {
    RequestKind kind = RequestKind::kSuggest;
    Status status = Status::OK();
    Configuration config;  // kSuggest, when status is OK
  };

  /// Runs one request against the manager (on a pool worker in batched
  /// mode, inline otherwise).
  Completed Execute(const std::string& session_id, const Request& request);

  size_t PumpBatched();
  size_t PumpUnbatched();

  SessionManager* const manager_;
  const SchedulerOptions options_;

  /// Per-session FIFO queues, id-ordered for deterministic wave
  /// assembly.
  std::map<std::string, std::deque<Request>> queues_;
  /// Arrival order of (session, ticket) for unbatched dispatch.
  std::deque<std::string> arrival_;
  std::map<uint64_t, Completed> completed_;
  uint64_t next_ticket_ = 1;
  size_t pending_count_ = 0;
};

}  // namespace dbtune::serve

#endif  // DBTUNE_SERVE_BATCH_SCHEDULER_H_
