#include "serve/protocol.h"

#include <cstring>

#include "store/wal.h"

namespace dbtune::serve {

namespace {

using store::WalDecoder;
using store::WalEncoder;

/// Little-endian u32, matching the WAL codec convention.
void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (size_t i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out->append(bytes, 4);
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (size_t i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string FinishFrame(MessageType type, uint64_t request_id,
                        const std::string& body) {
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  frame.body = body;
  return EncodeFrame(frame);
}

void PutHeader(WalEncoder* enc, const ResponseHeader& header) {
  enc->PutU8(header.status_code);
  enc->PutString(header.message);
}

[[nodiscard]] Result<ResponseHeader> ReadHeader(WalDecoder* dec) {
  ResponseHeader header;
  DBTUNE_ASSIGN_OR_RETURN(header.status_code, dec->ReadU8());
  DBTUNE_ASSIGN_OR_RETURN(header.message, dec->ReadString());
  return header;
}

/// Every decoder ends with this: trailing bytes mean the peer encoded a
/// newer message shape than we understand.
[[nodiscard]] Status ExpectEnd(const WalDecoder& dec, const char* what) {
  if (!dec.AtEnd()) {
    return Status::InvalidArgument(std::string("trailing bytes after ") +
                                   what + " body");
  }
  return Status::OK();
}

[[nodiscard]] Status ExpectType(const Frame& frame, MessageType want,
                                const char* what) {
  if (frame.type != want) {
    return Status::InvalidArgument(std::string("frame is not a ") + what);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  std::string payload;
  payload.push_back(static_cast<char>(frame.type));
  for (size_t i = 0; i < 8; ++i) {
    payload.push_back(
        static_cast<char>((frame.request_id >> (8 * i)) & 0xFF));
  }
  payload += frame.body;
  std::string out;
  out.reserve(4 + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

Result<size_t> DecodeFrame(std::string_view buffer, Frame* out) {
  if (buffer.size() < 4) return static_cast<size_t>(0);
  const uint32_t payload_len = GetU32(buffer.data());
  if (payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload length " +
                                   std::to_string(payload_len) +
                                   " exceeds protocol maximum");
  }
  if (payload_len < 9) {
    return Status::InvalidArgument(
        "frame payload too short for type tag and request id");
  }
  if (buffer.size() < 4 + static_cast<size_t>(payload_len)) {
    return static_cast<size_t>(0);
  }
  const char* p = buffer.data() + 4;
  out->type = static_cast<MessageType>(static_cast<unsigned char>(p[0]));
  out->request_id = 0;
  for (size_t i = 0; i < 8; ++i) {
    out->request_id |=
        static_cast<uint64_t>(static_cast<unsigned char>(p[1 + i]))
        << (8 * i);
  }
  out->body.assign(p + 9, payload_len - 9);
  return 4 + static_cast<size_t>(payload_len);
}

std::string EncodeCreateSession(uint64_t request_id,
                                const CreateSessionRequest& request) {
  WalEncoder enc;
  enc.PutString(request.session_id);
  enc.PutString(request.space_name);
  enc.PutU8(request.optimizer_type);
  enc.PutU64(request.seed);
  enc.PutDouble(request.reference_score);
  enc.PutU32(request.initial_design);
  enc.PutU32(request.acquisition_candidates);
  return FinishFrame(MessageType::kCreateSession, request_id, enc.bytes());
}

std::string EncodeSuggest(uint64_t request_id, const SuggestRequest& request) {
  WalEncoder enc;
  enc.PutString(request.session_id);
  return FinishFrame(MessageType::kSuggest, request_id, enc.bytes());
}

std::string EncodeObserve(uint64_t request_id, const ObserveRequest& request) {
  WalEncoder enc;
  enc.PutString(request.session_id);
  enc.PutDoubles(request.config);
  enc.PutDouble(request.score);
  enc.PutDouble(request.objective);
  enc.PutU8(request.failed);
  enc.PutDoubles(request.internal_metrics);
  return FinishFrame(MessageType::kObserve, request_id, enc.bytes());
}

std::string EncodeCloseSession(uint64_t request_id,
                               const CloseSessionRequest& request) {
  WalEncoder enc;
  enc.PutString(request.session_id);
  return FinishFrame(MessageType::kCloseSession, request_id, enc.bytes());
}

std::string EncodeCreateSessionResponse(uint64_t request_id,
                                        const CreateSessionResponse& response) {
  WalEncoder enc;
  PutHeader(&enc, response.header);
  enc.PutU64(response.replayed);
  return FinishFrame(MessageType::kCreateSessionResponse, request_id,
                     enc.bytes());
}

std::string EncodeSuggestResponse(uint64_t request_id,
                                  const SuggestResponse& response) {
  WalEncoder enc;
  PutHeader(&enc, response.header);
  enc.PutDoubles(response.config);
  return FinishFrame(MessageType::kSuggestResponse, request_id, enc.bytes());
}

std::string EncodeObserveResponse(uint64_t request_id,
                                  const ObserveResponse& response) {
  WalEncoder enc;
  PutHeader(&enc, response.header);
  return FinishFrame(MessageType::kObserveResponse, request_id, enc.bytes());
}

std::string EncodeCloseSessionResponse(uint64_t request_id,
                                       const CloseSessionResponse& response) {
  WalEncoder enc;
  PutHeader(&enc, response.header);
  return FinishFrame(MessageType::kCloseSessionResponse, request_id,
                     enc.bytes());
}

Result<CreateSessionRequest> DecodeCreateSession(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(
      ExpectType(frame, MessageType::kCreateSession, "CreateSession"));
  WalDecoder dec(frame.body);
  CreateSessionRequest request;
  DBTUNE_ASSIGN_OR_RETURN(request.session_id, dec.ReadString());
  DBTUNE_ASSIGN_OR_RETURN(request.space_name, dec.ReadString());
  DBTUNE_ASSIGN_OR_RETURN(request.optimizer_type, dec.ReadU8());
  DBTUNE_ASSIGN_OR_RETURN(request.seed, dec.ReadU64());
  DBTUNE_ASSIGN_OR_RETURN(request.reference_score, dec.ReadDouble());
  DBTUNE_ASSIGN_OR_RETURN(request.initial_design, dec.ReadU32());
  DBTUNE_ASSIGN_OR_RETURN(request.acquisition_candidates, dec.ReadU32());
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "CreateSession"));
  return request;
}

Result<SuggestRequest> DecodeSuggest(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(ExpectType(frame, MessageType::kSuggest, "Suggest"));
  WalDecoder dec(frame.body);
  SuggestRequest request;
  DBTUNE_ASSIGN_OR_RETURN(request.session_id, dec.ReadString());
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "Suggest"));
  return request;
}

Result<ObserveRequest> DecodeObserve(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(ExpectType(frame, MessageType::kObserve, "Observe"));
  WalDecoder dec(frame.body);
  ObserveRequest request;
  DBTUNE_ASSIGN_OR_RETURN(request.session_id, dec.ReadString());
  DBTUNE_ASSIGN_OR_RETURN(request.config, dec.ReadDoubles());
  DBTUNE_ASSIGN_OR_RETURN(request.score, dec.ReadDouble());
  DBTUNE_ASSIGN_OR_RETURN(request.objective, dec.ReadDouble());
  DBTUNE_ASSIGN_OR_RETURN(request.failed, dec.ReadU8());
  DBTUNE_ASSIGN_OR_RETURN(request.internal_metrics, dec.ReadDoubles());
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "Observe"));
  return request;
}

Result<CloseSessionRequest> DecodeCloseSession(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(
      ExpectType(frame, MessageType::kCloseSession, "CloseSession"));
  WalDecoder dec(frame.body);
  CloseSessionRequest request;
  DBTUNE_ASSIGN_OR_RETURN(request.session_id, dec.ReadString());
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "CloseSession"));
  return request;
}

Result<CreateSessionResponse> DecodeCreateSessionResponse(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(ExpectType(
      frame, MessageType::kCreateSessionResponse, "CreateSessionResponse"));
  WalDecoder dec(frame.body);
  CreateSessionResponse response;
  DBTUNE_ASSIGN_OR_RETURN(response.header, ReadHeader(&dec));
  DBTUNE_ASSIGN_OR_RETURN(response.replayed, dec.ReadU64());
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "CreateSessionResponse"));
  return response;
}

Result<SuggestResponse> DecodeSuggestResponse(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(
      ExpectType(frame, MessageType::kSuggestResponse, "SuggestResponse"));
  WalDecoder dec(frame.body);
  SuggestResponse response;
  DBTUNE_ASSIGN_OR_RETURN(response.header, ReadHeader(&dec));
  DBTUNE_ASSIGN_OR_RETURN(response.config, dec.ReadDoubles());
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "SuggestResponse"));
  return response;
}

Result<ObserveResponse> DecodeObserveResponse(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(
      ExpectType(frame, MessageType::kObserveResponse, "ObserveResponse"));
  WalDecoder dec(frame.body);
  ObserveResponse response;
  DBTUNE_ASSIGN_OR_RETURN(response.header, ReadHeader(&dec));
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "ObserveResponse"));
  return response;
}

Result<CloseSessionResponse> DecodeCloseSessionResponse(const Frame& frame) {
  DBTUNE_RETURN_IF_ERROR(ExpectType(
      frame, MessageType::kCloseSessionResponse, "CloseSessionResponse"));
  WalDecoder dec(frame.body);
  CloseSessionResponse response;
  DBTUNE_ASSIGN_OR_RETURN(response.header, ReadHeader(&dec));
  DBTUNE_RETURN_IF_ERROR(ExpectEnd(dec, "CloseSessionResponse"));
  return response;
}

ResponseHeader HeaderFromStatus(const Status& status) {
  ResponseHeader header;
  header.status_code = static_cast<uint8_t>(status.code());
  header.message = status.ok() ? "" : status.message();
  return header;
}

Status StatusFromHeader(const ResponseHeader& header) {
  const auto code = static_cast<StatusCode>(header.status_code);
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(header.message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(header.message);
    case StatusCode::kNotFound:
      return Status::NotFound(header.message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(header.message);
    case StatusCode::kInternal:
      return Status::Internal(header.message);
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(header.message);
  }
  return Status::Internal("unknown wire status code " +
                          std::to_string(header.status_code));
}

void FrameReader::Append(std::string_view bytes) {
  // Compact once the consumed prefix dominates, so long-lived readers
  // do not grow without bound.
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

Result<bool> FrameReader::Next(Frame* out) {
  const std::string_view view =
      std::string_view(buffer_).substr(consumed_);
  DBTUNE_ASSIGN_OR_RETURN(const size_t used, DecodeFrame(view, out));
  if (used == 0) return false;
  consumed_ += used;
  return true;
}

}  // namespace dbtune::serve
