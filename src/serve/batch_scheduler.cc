#include "serve/batch_scheduler.h"

#include <utility>

#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace dbtune::serve {

namespace {

obs::Histogram& BatchWidthHistogram() {
  static obs::Histogram& hist =
      obs::MetricsRegistry::Get().histogram("serve.batch.width");
  return hist;
}

/// A zero batch width would make every pump a no-op and Drain spin-free
/// but useless; clamp to 1 (degenerate sequential batching).
SchedulerOptions Normalize(SchedulerOptions options) {
  if (options.batch_width == 0) options.batch_width = 1;
  return options;
}

}  // namespace

BatchScheduler::BatchScheduler(SessionManager* manager,
                               SchedulerOptions options)
    : manager_(manager), options_(Normalize(options)) {}

uint64_t BatchScheduler::EnqueueSuggest(std::string session_id) {
  Request request;
  request.ticket = next_ticket_++;
  request.kind = RequestKind::kSuggest;
  const uint64_t ticket = request.ticket;
  queues_[std::move(session_id)].push_back(std::move(request));
  ++pending_count_;
  return ticket;
}

uint64_t BatchScheduler::EnqueueObserve(std::string session_id,
                                        Observation observation) {
  Request request;
  request.ticket = next_ticket_++;
  request.kind = RequestKind::kObserve;
  request.observation = std::move(observation);
  const uint64_t ticket = request.ticket;
  queues_[std::move(session_id)].push_back(std::move(request));
  ++pending_count_;
  return ticket;
}

BatchScheduler::Completed BatchScheduler::Execute(
    const std::string& session_id, const Request& request) {
  Completed done;
  done.kind = request.kind;
  if (request.kind == RequestKind::kSuggest) {
    Result<Configuration> suggested = manager_->Suggest(session_id);
    if (suggested.ok()) {
      done.config = std::move(suggested).value();
    } else {
      done.status = suggested.status();
    }
  } else {
    done.status = manager_->Observe(session_id, request.observation);
  }
  return done;
}

size_t BatchScheduler::PumpBatched() {
  // Wave assembly: at most one request per session, sessions in id
  // order, capped at batch_width — deterministic regardless of enqueue
  // interleaving across sessions.
  std::vector<const std::string*> wave_sessions;
  wave_sessions.reserve(options_.batch_width);
  for (auto& entry : queues_) {
    if (entry.second.empty()) continue;
    wave_sessions.push_back(&entry.first);
    if (wave_sessions.size() >= options_.batch_width) break;
  }
  if (wave_sessions.empty()) return 0;
  if (obs::MetricsEnabled()) {
    BatchWidthHistogram().Record(static_cast<double>(wave_sessions.size()));
  }

  std::vector<Request> wave(wave_sessions.size());
  for (size_t i = 0; i < wave_sessions.size(); ++i) {
    std::deque<Request>& queue = queues_[*wave_sessions[i]];
    wave[i] = std::move(queue.front());
    queue.pop_front();
  }

  // Whole-session fan-out: one index per session, each worker writing
  // only its own result slot (the ParallelFor determinism contract).
  std::vector<Completed> results(wave.size());
  ThreadPool* pool =
      options_.pool != nullptr ? options_.pool : GlobalPool();
  ParallelFor(pool, 0, wave.size(), 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = Execute(*wave_sessions[i], wave[i]);
    }
  });

  // Deterministic scatter: slot order == session-id order.
  for (size_t i = 0; i < wave.size(); ++i) {
    completed_.emplace(wave[i].ticket, std::move(results[i]));
  }
  pending_count_ -= wave.size();
  return wave.size();
}

size_t BatchScheduler::PumpUnbatched() {
  // Arrival-order sequential dispatch: tickets are assigned in arrival
  // order, so repeatedly executing the lowest front ticket replays the
  // exact request order a single-session loop would have issued.
  size_t executed = 0;
  while (pending_count_ > 0) {
    std::deque<Request>* best_queue = nullptr;
    const std::string* best_session = nullptr;
    for (auto& entry : queues_) {
      if (entry.second.empty()) continue;
      if (best_queue == nullptr ||
          entry.second.front().ticket < best_queue->front().ticket) {
        best_queue = &entry.second;
        best_session = &entry.first;
      }
    }
    if (best_queue == nullptr) break;
    Request request = std::move(best_queue->front());
    best_queue->pop_front();
    if (obs::MetricsEnabled()) {
      BatchWidthHistogram().Record(1.0);
    }
    completed_.emplace(request.ticket, Execute(*best_session, request));
    --pending_count_;
    ++executed;
  }
  return executed;
}

size_t BatchScheduler::Pump() {
  return options_.batched ? PumpBatched() : PumpUnbatched();
}

size_t BatchScheduler::Drain() {
  size_t total = 0;
  while (pending_count_ > 0) {
    const size_t executed = Pump();
    if (executed == 0) break;
    total += executed;
  }
  return total;
}

Result<Configuration> BatchScheduler::TakeSuggest(uint64_t ticket) {
  auto it = completed_.find(ticket);
  if (it == completed_.end()) {
    return Status::FailedPrecondition("suggest ticket " +
                                      std::to_string(ticket) +
                                      " is unknown or not yet pumped");
  }
  Completed done = std::move(it->second);
  completed_.erase(it);
  if (done.kind != RequestKind::kSuggest) {
    return Status::InvalidArgument("ticket " + std::to_string(ticket) +
                                   " is not a suggest ticket");
  }
  if (!done.status.ok()) return done.status;
  return std::move(done.config);
}

Status BatchScheduler::TakeObserve(uint64_t ticket) {
  auto it = completed_.find(ticket);
  if (it == completed_.end()) {
    return Status::FailedPrecondition("observe ticket " +
                                      std::to_string(ticket) +
                                      " is unknown or not yet pumped");
  }
  Completed done = std::move(it->second);
  completed_.erase(it);
  if (done.kind != RequestKind::kObserve) {
    return Status::InvalidArgument("ticket " + std::to_string(ticket) +
                                   " is not an observe ticket");
  }
  return done.status;
}

}  // namespace dbtune::serve
