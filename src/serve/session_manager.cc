#include "serve/session_manager.h"

#include <utility>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "store/observation_store.h"

namespace dbtune::serve {

/// Per-session state. Guarded by its own mutex so requests for distinct
/// sessions never serialize on the manager lock during optimizer work;
/// `last_touch_seconds` is the exception (guarded by the manager mutex,
/// written on lookup and read by the eviction sweep).
struct ServedSession {
  Mutex mu;
  ServedSessionOptions options DBTUNE_GUARDED_BY(mu);
  /// The session's own copy of the registered space (stable even if the
  /// registry entry is later replaced).
  ConfigurationSpace space DBTUNE_GUARDED_BY(mu);
  /// Null while evicted; resurrection replays the durable history into a
  /// fresh optimizer.
  std::unique_ptr<Optimizer> optimizer DBTUNE_GUARDED_BY(mu);
  /// Observations applied to `optimizer` (== durable history length).
  size_t observed DBTUNE_GUARDED_BY(mu) = 0;
  /// True between Suggest and the matching Observe.
  bool suggestion_outstanding DBTUNE_GUARDED_BY(mu) = false;
  bool closed DBTUNE_GUARDED_BY(mu) = false;
  /// Guarded by the manager mutex, not `mu` (see above).
  double last_touch_seconds = 0.0;
};

namespace {

obs::Gauge& ActiveGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Get().gauge("serve.sessions.active");
  return gauge;
}

/// Rebuilds the optimizer of a fresh or evicted session and replays the
/// durable history through it — the same call sequence the standalone
/// loop issues (SetReferenceScore, then Suggest/ObserveWithMetrics per
/// iteration), so the resurrected optimizer state is bitwise identical
/// to the pre-eviction one. No-op when the optimizer is already live.
[[nodiscard]] Status ResurrectLocked(store::ObservationStore* store,
                                     const std::string& id, ServedSession* s,
                                     size_t* replayed)
    DBTUNE_REQUIRES(s->mu) {
  if (s->optimizer != nullptr) return Status::OK();
  OptimizerOptions optimizer_options;
  optimizer_options.seed = s->options.seed;
  optimizer_options.initial_design = s->options.initial_design;
  optimizer_options.acquisition_candidates = s->options.acquisition_candidates;
  std::unique_ptr<Optimizer> optimizer = CreateOptimizer(
      s->options.optimizer_type, s->space, optimizer_options);
  optimizer->SetReferenceScore(s->options.reference_score);

  size_t restored = 0;
  if (store != nullptr) {
    DBTUNE_RETURN_IF_ERROR(store->BeginSession(id, s->space.dimension()));
    const store::StoredSession* stored = store->FindSession(id);
    if (stored != nullptr) {
      for (const Observation& recorded : stored->observations) {
        const Configuration suggested = optimizer->Suggest();
        if (!(s->space.Clip(suggested) == recorded.config)) {
          return Status::Internal(
              "stored history for session '" + id +
              "' diverged at iteration " + std::to_string(restored + 1) +
              "; it was recorded under a different optimizer, seed, or "
              "space");
        }
        optimizer->ObserveWithMetrics(recorded.config, recorded.score,
                                      recorded.internal_metrics);
        ++restored;
      }
    }
  }
  if (restored < s->observed) {
    return Status::FailedPrecondition(
        "session '" + id + "' was evicted after " +
        std::to_string(s->observed) +
        " observations and no durable store can restore it");
  }
  // A suggestion outstanding at eviction time: re-advance the optimizer
  // past it. Suggest is deterministic, so this re-derives exactly the
  // configuration the client already holds.
  if (s->suggestion_outstanding) {
    // Optimizer::Suggest returns the Configuration the client already
    // holds, not a Status; the analyzer cannot resolve the overload.
    (void)optimizer->Suggest();  // dbtune-lint: allow(ignored-status)
  }
  s->observed = restored;
  s->optimizer = std::move(optimizer);
  if (replayed != nullptr) *replayed = restored;
  return Status::OK();
}

}  // namespace

SessionManager::SessionManager(SessionManagerOptions manager_options)
    : options_(manager_options) {}

SessionManager::~SessionManager() = default;

void SessionManager::RegisterSpace(const std::string& name,
                                   const ConfigurationSpace& definition) {
  MutexLock lock(&mu_);
  spaces_.insert_or_assign(name, definition);
}

ServedSession* SessionManager::FindSessionLocked(const std::string& id)
    DBTUNE_REQUIRES(mu_) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  it->second->last_touch_seconds = obs::MonotonicSeconds();
  return it->second.get();
}

Status SessionManager::CreateSession(const std::string& id,
                                     const ServedSessionOptions& options,
                                     size_t* replayed) {
  if (replayed != nullptr) *replayed = 0;
  ServedSession* session = nullptr;
  {
    MutexLock lock(&mu_);
    auto space_it = spaces_.find(options.space_name);
    if (space_it == spaces_.end()) {
      return Status::NotFound("unknown configuration space '" +
                              options.space_name + "'");
    }
    ServedSession* existing = FindSessionLocked(id);
    if (existing != nullptr) {
      MutexLock session_lock(&existing->mu);
      if (existing->closed) {
        return Status::FailedPrecondition("session '" + id + "' is closed");
      }
      if (existing->optimizer != nullptr) {
        return Status::FailedPrecondition("session '" + id +
                                          "' already exists");
      }
      // Evicted: adopt the (re)creation parameters and resurrect below.
      // Divergent parameters surface as a replay mismatch, not silence.
      existing->options = options;
      existing->space = space_it->second;
      session = existing;
    } else {
      auto created = std::make_unique<ServedSession>();
      {
        MutexLock session_lock(&created->mu);
        created->options = options;
        created->space = space_it->second;
      }
      created->last_touch_seconds = obs::MonotonicSeconds();
      session = created.get();
      sessions_.emplace(id, std::move(created));
      ++open_sessions_;
      if (obs::MetricsEnabled()) {
        ActiveGauge().Set(static_cast<double>(open_sessions_));
      }
    }
  }
  MutexLock session_lock(&session->mu);
  return ResurrectLocked(options_.store, id, session, replayed);
}

Result<Configuration> SessionManager::Suggest(const std::string& id) {
  static obs::Histogram& latency_hist =
      obs::MetricsRegistry::Get().histogram("serve.suggest.latency");
  obs::ScopedLatency latency(&latency_hist);
  ServedSession* session = nullptr;
  {
    MutexLock lock(&mu_);
    session = FindSessionLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound("unknown session '" + id + "'");
  }
  MutexLock session_lock(&session->mu);
  if (session->closed) {
    return Status::FailedPrecondition("session '" + id + "' is closed");
  }
  DBTUNE_RETURN_IF_ERROR(ResurrectLocked(options_.store, id, session, nullptr));
  if (session->suggestion_outstanding) {
    return Status::FailedPrecondition(
        "session '" + id + "' has an unobserved suggestion outstanding");
  }
  Configuration config = session->optimizer->Suggest();
  session->suggestion_outstanding = true;
  return config;
}

Status SessionManager::Observe(const std::string& id,
                               const Observation& observation) {
  ServedSession* session = nullptr;
  {
    MutexLock lock(&mu_);
    session = FindSessionLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound("unknown session '" + id + "'");
  }
  MutexLock session_lock(&session->mu);
  if (session->closed) {
    return Status::FailedPrecondition("session '" + id + "' is closed");
  }
  DBTUNE_RETURN_IF_ERROR(ResurrectLocked(options_.store, id, session, nullptr));
  if (!session->suggestion_outstanding) {
    return Status::FailedPrecondition(
        "session '" + id + "' has no outstanding suggestion to observe");
  }
  if (observation.config.size() != session->space.dimension()) {
    return Status::InvalidArgument(
        "observation dimension " + std::to_string(observation.config.size()) +
        " does not match session space dimension " +
        std::to_string(session->space.dimension()));
  }
  // Durable append before the optimizer learns, mirroring the standalone
  // loop: a crash between the two re-learns from the WAL on resume.
  if (options_.store != nullptr) {
    DBTUNE_RETURN_IF_ERROR(options_.store->AppendObservation(
        id, session->observed + 1, observation));
  }
  session->optimizer->ObserveWithMetrics(
      observation.config, observation.score, observation.internal_metrics);
  ++session->observed;
  session->suggestion_outstanding = false;
  return Status::OK();
}

Status SessionManager::CloseSession(const std::string& id) {
  ServedSession* session = nullptr;
  {
    MutexLock lock(&mu_);
    session = FindSessionLocked(id);
  }
  if (session == nullptr) {
    return Status::NotFound("unknown session '" + id + "'");
  }
  {
    MutexLock session_lock(&session->mu);
    if (session->closed) {
      return Status::FailedPrecondition("session '" + id +
                                        "' is already closed");
    }
    // Seal non-empty trajectories as a transfer base task named after
    // the session; empty sessions just close (no useless empty task).
    if (options_.store != nullptr && session->observed > 0) {
      DBTUNE_RETURN_IF_ERROR(
          options_.store->FinishSession(id, session->space, id));
    }
    session->optimizer.reset();
    session->closed = true;
  }
  MutexLock lock(&mu_);
  --open_sessions_;
  if (obs::MetricsEnabled()) {
    ActiveGauge().Set(static_cast<double>(open_sessions_));
  }
  return Status::OK();
}

size_t SessionManager::EvictIdle() {
  return EvictIdle(options_.idle_timeout_seconds);
}

size_t SessionManager::EvictIdle(double idle_timeout_seconds) {
  if (idle_timeout_seconds <= 0.0) return 0;
  const double now = obs::MonotonicSeconds();
  MutexLock lock(&mu_);
  size_t evicted = 0;
  for (auto& entry : sessions_) {
    ServedSession* session = entry.second.get();
    if (now - session->last_touch_seconds < idle_timeout_seconds) continue;
    MutexLock session_lock(&session->mu);
    if (session->closed || session->optimizer == nullptr) continue;
    session->optimizer.reset();
    ++evicted;
  }
  return evicted;
}

size_t SessionManager::num_open() const {
  MutexLock lock(&mu_);
  return open_sessions_;
}

size_t SessionManager::num_resident() const {
  MutexLock lock(&mu_);
  size_t resident = 0;
  for (const auto& entry : sessions_) {
    ServedSession* session = entry.second.get();
    MutexLock session_lock(&session->mu);
    if (!session->closed && session->optimizer != nullptr) ++resident;
  }
  return resident;
}

}  // namespace dbtune::serve
