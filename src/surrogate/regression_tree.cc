#include "surrogate/regression_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace dbtune {

RegressionTree::RegressionTree(RegressionTreeOptions options)
    : options_(options), rng_(options.seed) {}

Status RegressionTree::Fit(const FeatureMatrix& x,
                           const std::vector<double>& y) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  num_features_ = x.front().size();
  nodes_.clear();
  split_counts_.assign(num_features_, 0);
  impurity_importance_.assign(num_features_, 0.0);

  std::vector<size_t> indices(x.size());
  std::iota(indices.begin(), indices.end(), size_t{0});
  Build(x, y, indices, 0, indices.size(), 0);
  return Status::OK();
}

namespace {

// Sum and sum-of-squares over a sample range.
struct Moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t n = 0;

  void Add(double v) {
    sum += v;
    sum_sq += v * v;
    ++n;
  }
  double Mean() const { return n ? sum / static_cast<double>(n) : 0.0; }
  // Sum of squared deviations (n * variance).
  double Sse() const {
    if (n == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(n);
  }
};

}  // namespace

int RegressionTree::Build(const FeatureMatrix& x, const std::vector<double>& y,
                          std::vector<size_t>& indices, size_t begin,
                          size_t end, size_t depth) {
  const size_t n = end - begin;
  Moments total;
  for (size_t i = begin; i < end; ++i) total.Add(y[indices[i]]);

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_index].value = total.Mean();

  const bool can_split = n >= options_.min_samples_split &&
                         depth < options_.max_depth && total.Sse() > 1e-12;
  if (!can_split) return node_index;

  // Pick the candidate features for this split.
  size_t tries = options_.max_features == 0
                     ? num_features_
                     : std::min(options_.max_features, num_features_);
  std::vector<size_t> features;
  if (tries == num_features_) {
    features.resize(num_features_);
    std::iota(features.begin(), features.end(), size_t{0});
  } else {
    features = rng_.SampleWithoutReplacement(num_features_, tries);
  }

  double best_gain = 0.0;
  int best_feature = -1;
  double best_threshold = 0.0;

  // Reusable buffer of (feature value, target) for sorting.
  std::vector<std::pair<double, double>> column(n);
  for (size_t f : features) {
    for (size_t i = 0; i < n; ++i) {
      const size_t sample = indices[begin + i];
      column[i] = {x[sample][f], y[sample]};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;

    Moments left;
    Moments right = total;
    // Scan split positions between distinct feature values.
    for (size_t i = 0; i + 1 < n; ++i) {
      left.Add(column[i].second);
      right.sum -= column[i].second;
      right.sum_sq -= column[i].second * column[i].second;
      --right.n;
      if (column[i].first == column[i + 1].first) continue;
      if (left.n < options_.min_samples_leaf ||
          right.n < options_.min_samples_leaf) {
        continue;
      }
      const double gain = total.Sse() - left.Sse() - right.Sse();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_index;

  // Partition indices around the threshold.
  const auto mid_iter = std::partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end), [&](size_t sample) {
        return x[sample][static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_iter - indices.begin());
  if (mid == begin || mid == end) return node_index;  // degenerate split

  ++split_counts_[static_cast<size_t>(best_feature)];
  impurity_importance_[static_cast<size_t>(best_feature)] += best_gain;

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int left_child = Build(x, y, indices, begin, mid, depth + 1);
  nodes_[node_index].left = left_child;
  const int right_child = Build(x, y, indices, mid, end, depth + 1);
  nodes_[node_index].right = right_child;
  return node_index;
}

double RegressionTree::Predict(const std::vector<double>& x) const {
  DBTUNE_CHECK_MSG(fitted(), "Predict before Fit");
  DBTUNE_CHECK(x.size() == num_features_);
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    node = x[static_cast<size_t>(n.feature)] <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].value;
}

void RegressionTree::CollectBoxes(int node, std::vector<double>& lower,
                                  std::vector<double>& upper,
                                  std::vector<LeafBox>* out) const {
  const Node& n = nodes_[node];
  if (n.feature < 0) {
    LeafBox box;
    box.lower = lower;
    box.upper = upper;
    box.value = n.value;
    box.volume = 1.0;
    for (size_t d = 0; d < lower.size(); ++d) {
      box.volume *= std::max(0.0, upper[d] - lower[d]);
    }
    out->push_back(std::move(box));
    return;
  }
  const size_t f = static_cast<size_t>(n.feature);
  const double saved_upper = upper[f];
  const double saved_lower = lower[f];
  upper[f] = std::min(saved_upper, n.threshold);
  CollectBoxes(n.left, lower, upper, out);
  upper[f] = saved_upper;
  lower[f] = std::max(saved_lower, n.threshold);
  CollectBoxes(n.right, lower, upper, out);
  lower[f] = saved_lower;
}

std::vector<RegressionTree::LeafBox> RegressionTree::LeafBoxes() const {
  DBTUNE_CHECK_MSG(fitted(), "LeafBoxes before Fit");
  std::vector<LeafBox> out;
  std::vector<double> lower(num_features_, 0.0);
  std::vector<double> upper(num_features_, 1.0);
  CollectBoxes(0, lower, upper, &out);
  return out;
}

}  // namespace dbtune
