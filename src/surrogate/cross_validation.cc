#include "surrogate/cross_validation.h"

#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

std::vector<size_t> KFoldAssignment(size_t num_samples, size_t k, Rng& rng) {
  DBTUNE_CHECK(k >= 2 && num_samples >= k);
  std::vector<size_t> fold(num_samples);
  for (size_t i = 0; i < num_samples; ++i) fold[i] = i % k;
  rng.Shuffle(fold);
  return fold;
}

Result<RegressionQuality> CrossValidate(const RegressorFactory& factory,
                                        const FeatureMatrix& x,
                                        const std::vector<double>& y, size_t k,
                                        Rng& rng) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  if (k < 2 || x.size() < k) {
    return Status::InvalidArgument("need k >= 2 and at least k samples");
  }
  const std::vector<size_t> fold = KFoldAssignment(x.size(), k, rng);

  std::vector<double> truth;
  std::vector<double> predicted;
  truth.reserve(x.size());
  predicted.reserve(x.size());

  for (size_t f = 0; f < k; ++f) {
    FeatureMatrix train_x, test_x;
    std::vector<double> train_y, test_y;
    for (size_t i = 0; i < x.size(); ++i) {
      if (fold[i] == f) {
        test_x.push_back(x[i]);
        test_y.push_back(y[i]);
      } else {
        train_x.push_back(x[i]);
        train_y.push_back(y[i]);
      }
    }
    std::unique_ptr<Regressor> model = factory();
    DBTUNE_RETURN_IF_ERROR(model->Fit(train_x, train_y));
    for (size_t i = 0; i < test_x.size(); ++i) {
      truth.push_back(test_y[i]);
      predicted.push_back(model->Predict(test_x[i]));
    }
  }

  RegressionQuality quality;
  quality.rmse = Rmse(truth, predicted);
  quality.r_squared = RSquared(truth, predicted);
  return quality;
}

Result<RegressionQuality> TrainTestEvaluate(Regressor* model,
                                            const FeatureMatrix& train_x,
                                            const std::vector<double>& train_y,
                                            const FeatureMatrix& test_x,
                                            const std::vector<double>& test_y) {
  DBTUNE_CHECK(model != nullptr);
  DBTUNE_RETURN_IF_ERROR(model->Fit(train_x, train_y));
  std::vector<double> predicted;
  predicted.reserve(test_x.size());
  for (const auto& row : test_x) predicted.push_back(model->Predict(row));
  RegressionQuality quality;
  quality.rmse = Rmse(test_y, predicted);
  quality.r_squared = RSquared(test_y, predicted);
  return quality;
}

}  // namespace dbtune
