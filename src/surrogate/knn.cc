#include "surrogate/knn.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/matrix.h"

namespace dbtune {

KnnRegressor::KnnRegressor(KnnOptions options) : options_(options) {}

Status KnnRegressor::Fit(const FeatureMatrix& x, const std::vector<double>& y) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  x_ = x;
  y_ = y;
  return Status::OK();
}

double KnnRegressor::Predict(const std::vector<double>& x) const {
  DBTUNE_CHECK_MSG(!x_.empty(), "Predict before Fit");
  const size_t k = std::min(options_.k, x_.size());
  std::vector<std::pair<double, size_t>> distances(x_.size());
  for (size_t i = 0; i < x_.size(); ++i) {
    distances[i] = {SquaredDistance(x_[i], x), i};
  }
  std::partial_sort(distances.begin(),
                    distances.begin() + static_cast<long>(k),
                    distances.end());
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = options_.distance_weighted
                         ? 1.0 / (std::sqrt(distances[i].first) + 1e-8)
                         : 1.0;
    num += w * y_[distances[i].second];
    den += w;
  }
  return num / den;
}

}  // namespace dbtune
