#include "surrogate/random_forest.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

RandomForest::RandomForest(RandomForestOptions options)
    : options_(options), rng_(options.seed) {}

Status RandomForest::Fit(const FeatureMatrix& x, const std::vector<double>& y) {
  static obs::Histogram& fit_hist =
      obs::MetricsRegistry::Get().histogram("forest.fit");
  obs::ScopedLatency fit_latency(&fit_hist);
  DBTUNE_TRACE_SPAN("forest.fit");
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  num_features_ = x.front().size();
  trees_.clear();
  trees_.reserve(options_.num_trees);

  size_t max_features = options_.max_features;
  if (max_features == 0 && options_.sqrt_features) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(std::round(std::sqrt(
               static_cast<double>(num_features_)))) * 2);
    max_features = std::min(max_features, num_features_);
  }

  const size_t n = x.size();
  const size_t num_trees = options_.num_trees;

  // Draw every tree's seed and bootstrap index set from the forest RNG up
  // front, in tree order. Tree fitting then runs data-parallel with no
  // shared random state, so the forest is bit-identical at any pool size
  // (and to the historical sequential implementation).
  std::vector<RegressionTreeOptions> tree_options(num_trees);
  std::vector<std::vector<size_t>> bootstrap_picks(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    tree_options[t].max_depth = options_.max_depth;
    tree_options[t].min_samples_split = options_.min_samples_split;
    tree_options[t].min_samples_leaf = options_.min_samples_leaf;
    tree_options[t].max_features = max_features;
    tree_options[t].seed = rng_.engine()();
    if (options_.bootstrap) {
      bootstrap_picks[t].reserve(n);
      for (size_t i = 0; i < n; ++i) bootstrap_picks[t].push_back(rng_.Index(n));
    }
  }

  std::vector<RegressionTree> trees(num_trees);
  std::vector<Status> statuses(num_trees, Status::OK());
  ParallelFor(GlobalPool(), 0, num_trees, /*grain=*/1,
              [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  RegressionTree tree(tree_options[t]);
                  if (options_.bootstrap) {
                    FeatureMatrix bx;
                    std::vector<double> by;
                    bx.reserve(n);
                    by.reserve(n);
                    for (size_t pick : bootstrap_picks[t]) {
                      bx.push_back(x[pick]);
                      by.push_back(y[pick]);
                    }
                    statuses[t] = tree.Fit(bx, by);
                  } else {
                    statuses[t] = tree.Fit(x, y);
                  }
                  trees[t] = std::move(tree);
                }
              });
  for (size_t t = 0; t < num_trees; ++t) {
    DBTUNE_RETURN_IF_ERROR(statuses[t]);
  }
  trees_ = std::move(trees);
  return Status::OK();
}

double RandomForest::Predict(const std::vector<double>& x) const {
  double mean = 0.0, variance = 0.0;
  PredictMeanVar(x, &mean, &variance);
  return mean;
}

void RandomForest::PredictMeanVar(const std::vector<double>& x, double* mean,
                                  double* variance) const {
  DBTUNE_CHECK_MSG(fitted(), "Predict before Fit");
  std::vector<double> predictions(trees_.size());
  // Indexed writes keep the Mean/Variance reduction order fixed, so the
  // ensemble statistics do not depend on the pool size.
  ParallelFor(GlobalPool(), 0, trees_.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t t = begin; t < end; ++t) {
                  predictions[t] = trees_[t].Predict(x);
                }
              });
  *mean = Mean(predictions);
  *variance = Variance(predictions);
}

std::vector<double> RandomForest::SplitCountImportance() const {
  DBTUNE_CHECK_MSG(fitted(), "importance before Fit");
  std::vector<double> importance(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<size_t>& counts = tree.split_counts();
    for (size_t f = 0; f < num_features_; ++f) {
      importance[f] += static_cast<double>(counts[f]);
    }
  }
  return importance;
}

std::vector<double> RandomForest::ImpurityImportance() const {
  DBTUNE_CHECK_MSG(fitted(), "importance before Fit");
  std::vector<double> importance(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<double>& imp = tree.impurity_importance();
    for (size_t f = 0; f < num_features_; ++f) importance[f] += imp[f];
  }
  return importance;
}

}  // namespace dbtune
