#include "surrogate/random_forest.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

RandomForest::RandomForest(RandomForestOptions options)
    : options_(options), rng_(options.seed) {}

Status RandomForest::Fit(const FeatureMatrix& x, const std::vector<double>& y) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  num_features_ = x.front().size();
  trees_.clear();
  trees_.reserve(options_.num_trees);

  size_t max_features = options_.max_features;
  if (max_features == 0 && options_.sqrt_features) {
    max_features = std::max<size_t>(
        1, static_cast<size_t>(std::round(std::sqrt(
               static_cast<double>(num_features_)))) * 2);
    max_features = std::min(max_features, num_features_);
  }

  const size_t n = x.size();
  for (size_t t = 0; t < options_.num_trees; ++t) {
    RegressionTreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.min_samples_split = options_.min_samples_split;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    tree_options.max_features = max_features;
    tree_options.seed = rng_.engine()();

    RegressionTree tree(tree_options);
    if (options_.bootstrap) {
      FeatureMatrix bx;
      std::vector<double> by;
      bx.reserve(n);
      by.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        const size_t pick = rng_.Index(n);
        bx.push_back(x[pick]);
        by.push_back(y[pick]);
      }
      DBTUNE_RETURN_IF_ERROR(tree.Fit(bx, by));
    } else {
      DBTUNE_RETURN_IF_ERROR(tree.Fit(x, y));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::Predict(const std::vector<double>& x) const {
  double mean = 0.0, variance = 0.0;
  PredictMeanVar(x, &mean, &variance);
  return mean;
}

void RandomForest::PredictMeanVar(const std::vector<double>& x, double* mean,
                                  double* variance) const {
  DBTUNE_CHECK_MSG(fitted(), "Predict before Fit");
  std::vector<double> predictions;
  predictions.reserve(trees_.size());
  for (const RegressionTree& tree : trees_) {
    predictions.push_back(tree.Predict(x));
  }
  *mean = Mean(predictions);
  *variance = Variance(predictions);
}

std::vector<double> RandomForest::SplitCountImportance() const {
  DBTUNE_CHECK_MSG(fitted(), "importance before Fit");
  std::vector<double> importance(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<size_t>& counts = tree.split_counts();
    for (size_t f = 0; f < num_features_; ++f) {
      importance[f] += static_cast<double>(counts[f]);
    }
  }
  return importance;
}

std::vector<double> RandomForest::ImpurityImportance() const {
  DBTUNE_CHECK_MSG(fitted(), "importance before Fit");
  std::vector<double> importance(num_features_, 0.0);
  for (const RegressionTree& tree : trees_) {
    const std::vector<double>& imp = tree.impurity_importance();
    for (size_t f = 0; f < num_features_; ++f) importance[f] += imp[f];
  }
  return importance;
}

}  // namespace dbtune
