#include "surrogate/sparse_gaussian_process.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

namespace {

// Diagonal jitter on the inducing Gram K_mm. Inducing points are spread
// by farthest-point selection, but duplicated history rows can still
// land two identical inducing inputs; the jitter keeps the Cholesky
// positive definite in that case. The same amount is added to A, whose
// conditioning is bounded below by K_mm's.
constexpr double kInducingJitter = 1e-6;

// Row range owned by one accumulation chunk when assembling
// A = K_mm + K_mn Λ⁻¹ K_nm. Chunk boundaries depend only on n — never on
// the pool size — so the chunk-major summation order is fixed and the
// assembled A is bit-identical at any DBTUNE_NUM_THREADS.
constexpr size_t kAccumChunk = 512;

}  // namespace

SparseGaussianProcess::SparseGaussianProcess(
    std::unique_ptr<Kernel> kernel, SparseGaussianProcessOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  DBTUNE_CHECK(kernel_ != nullptr);
  DBTUNE_CHECK(options_.num_inducing > 0);
  DBTUNE_CHECK(!options_.lengthscale_grid.empty());
  DBTUNE_CHECK(!options_.noise_grid.empty());
}

std::vector<size_t> SparseGaussianProcess::SelectInducingIndices(
    const FeatureMatrix& x, size_t m) const {
  const size_t n = x.size();
  std::vector<size_t> chosen;
  chosen.reserve(m);
  chosen.push_back(0);  // deterministic seed: always the oldest observation
  std::vector<char> taken(n, 0);
  taken[0] = 1;
  // min_d2[i] = squared distance from x[i] to its nearest chosen point.
  // The parallel updates write index-owned slots only; the argmax scans
  // sequentially in index order, so ties resolve to the lowest index at
  // any pool size.
  std::vector<double> min_d2(n);
  ParallelFor(GlobalPool(), 0, n, /*grain=*/256,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  min_d2[i] = SquaredDistance(x[i], x[0]);
                }
              });
  while (chosen.size() < m) {
    size_t best = n;
    double best_d2 = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (!taken[i] && min_d2[i] > best_d2) {
        best_d2 = min_d2[i];
        best = i;
      }
    }
    DBTUNE_CHECK(best < n);  // m <= n, so an unchosen index always exists
    chosen.push_back(best);
    taken[best] = 1;
    const std::vector<double>& picked = x[best];
    ParallelFor(GlobalPool(), 0, n, /*grain=*/256,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const double d2 = SquaredDistance(x[i], picked);
                    if (d2 < min_d2[i]) min_d2[i] = d2;
                  }
                });
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

Status SparseGaussianProcess::PrepareLengthscale(
    const FeatureMatrix& x, LengthscaleState* state) const {
  const size_t n = x.size();
  const size_t m = xm_.size();
  // Inducing Gram, assembled like the exact GP's kernel matrix: row j
  // owns pairs (j, j..m), mirrored, so rows parallelize without overlap.
  state->kmm = Matrix(m, m);
  Matrix& kmm = state->kmm;
  ParallelFor(GlobalPool(), 0, m, /*grain=*/8, [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      for (size_t k = j; k < m; ++k) {
        const double v = kernel_->Compute(xm_[j], xm_[k]);
        kmm(j, k) = v;
        kmm(k, j) = v;
      }
    }
  });
  state->lm = kmm;
  state->lm.AddDiagonal(kInducingJitter);
  DBTUNE_RETURN_IF_ERROR(CholeskyFactorize(&state->lm));
  state->logdet_kmm = 0.0;
  for (size_t j = 0; j < m; ++j) {
    state->logdet_kmm += 2.0 * std::log(state->lm(j, j));
  }

  // Cross-covariances, prior diagonal, and the Nyström diagonal
  // q_i = ||L_m⁻¹ k_mi||² in one pass. Each row writes only its own
  // slots; the per-row triangular solve uses chunk-local scratch.
  state->knm = Matrix(n, m);
  state->kdiag.resize(n);
  state->q.resize(n);
  const Matrix& lm = state->lm;
  ParallelFor(GlobalPool(), 0, n, /*grain=*/32, [&](size_t begin, size_t end) {
    std::vector<double> row(m);
    std::vector<double> sol;
    for (size_t i = begin; i < end; ++i) {
      double* knm_row = state->knm.RowPtr(i);
      for (size_t j = 0; j < m; ++j) {
        knm_row[j] = kernel_->Compute(x[i], xm_[j]);
      }
      state->kdiag[i] = kernel_->Compute(x[i], x[i]);
      std::copy(knm_row, knm_row + m, row.begin());
      SolveLowerTriangularInto(lm, row, &sol);
      state->q[i] = Dot(sol, sol);
    }
  });
  return Status::OK();
}

Result<double> SparseGaussianProcess::FactorizeWith(
    const LengthscaleState& ls_state, const std::vector<double>& y_std,
    double noise, FitState* state) const {
  const size_t n = ls_state.knm.rows();
  const size_t m = ls_state.knm.cols();

  // FITC heteroscedastic diagonal Λ_i = k(x_i,x_i) − q_i + σ². The
  // Nyström residual is non-negative in exact arithmetic; clamp the
  // floating-point leftovers so Λ stays positive.
  std::vector<double> lambda(n);
  for (size_t i = 0; i < n; ++i) {
    double residual = ls_state.kdiag[i] - ls_state.q[i];
    if (residual < 0.0) residual = 0.0;
    lambda[i] = residual + noise + 1e-10;
  }

  // A = K_mm + K_mn Λ⁻¹ K_nm, accumulated as fixed-size row chunks into
  // per-chunk partial sums (upper triangles). Chunks parallelize; the
  // reduction below runs chunk-ascending on one thread, so the result is
  // bit-identical at any pool size.
  const size_t num_chunks = (n + kAccumChunk - 1) / kAccumChunk;
  std::vector<double> partials(num_chunks * m * m, 0.0);
  ParallelFor(
      GlobalPool(), 0, num_chunks, /*grain=*/1,
      [&](size_t chunk_begin, size_t chunk_end) {
        for (size_t c = chunk_begin; c < chunk_end; ++c) {
          double* partial = partials.data() + c * m * m;
          const size_t row_end = std::min(n, (c + 1) * kAccumChunk);
          for (size_t i = c * kAccumChunk; i < row_end; ++i) {
            const double w = 1.0 / lambda[i];
            const double* row = ls_state.knm.RowPtr(i);
            for (size_t j = 0; j < m; ++j) {
              const double wj = w * row[j];
              double* partial_row = partial + j * m;
              for (size_t k = j; k < m; ++k) partial_row[k] += wj * row[k];
            }
          }
        }
      });
  Matrix a = ls_state.kmm;
  a.AddDiagonal(kInducingJitter);
  for (size_t c = 0; c < num_chunks; ++c) {
    const double* partial = partials.data() + c * m * m;
    for (size_t j = 0; j < m; ++j) {
      for (size_t k = j; k < m; ++k) a(j, k) += partial[j * m + k];
    }
  }
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = j + 1; k < m; ++k) a(k, j) = a(j, k);
  }

  // b = K_mn Λ⁻¹ y and the Λ-quadratic/log terms of the likelihood;
  // O(n·m) streaming pass, cheap enough to stay sequential.
  std::vector<double> b(m, 0.0);
  double y_quadratic = 0.0;
  double log_lambda_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double wy = y_std[i] / lambda[i];
    const double* row = ls_state.knm.RowPtr(i);
    for (size_t j = 0; j < m; ++j) b[j] += wy * row[j];
    y_quadratic += y_std[i] * wy;
    log_lambda_sum += std::log(lambda[i]);
  }

  Matrix la = a;
  DBTUNE_RETURN_IF_ERROR(CholeskyFactorize(&la));
  std::vector<double> tmp = SolveLowerTriangular(la, b);
  std::vector<double> alpha = SolveUpperTriangularFromLower(la, tmp);

  // FITC log marginal likelihood via the determinant lemma:
  // log|Q + Λ| = log|A| − log|K_mm| + Σ log Λ_i, and
  // yᵀ(Q + Λ)⁻¹y = yᵀΛ⁻¹y − bᵀα.
  double lml = -0.5 * (y_quadratic - Dot(b, alpha));
  for (size_t j = 0; j < m; ++j) lml -= std::log(la(j, j));
  lml += 0.5 * ls_state.logdet_kmm;
  lml -= 0.5 * log_lambda_sum;
  lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);

  state->la = std::move(la);
  state->alpha = std::move(alpha);
  return lml;
}

Result<double> SparseGaussianProcess::FitWith(const FeatureMatrix& x,
                                              const std::vector<double>& y_std,
                                              double lengthscale,
                                              double noise) {
  kernel_->set_lengthscale(lengthscale);
  LengthscaleState ls_state;
  DBTUNE_RETURN_IF_ERROR(PrepareLengthscale(x, &ls_state));
  FitState state;
  DBTUNE_ASSIGN_OR_RETURN(const double lml,
                          FactorizeWith(ls_state, y_std, noise, &state));
  lm_ = std::move(ls_state.lm);
  la_ = std::move(state.la);
  alpha_ = std::move(state.alpha);
  noise_ = noise;
  return lml;
}

Status SparseGaussianProcess::Fit(const FeatureMatrix& x,
                                  const std::vector<double>& y) {
  static obs::Histogram& fit_hist =
      obs::MetricsRegistry::Get().histogram("gp.fit.sparse");
  obs::ScopedLatency fit_latency(&fit_hist);
  DBTUNE_TRACE_SPAN("gp.fit.sparse");
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));

  const size_t n = x.size();
  const size_t m = std::min(options_.num_inducing, n);
  inducing_indices_ = SelectInducingIndices(x, m);
  xm_.clear();
  xm_.reserve(m);
  for (size_t id : inducing_indices_) xm_.push_back(x[id]);

  y_mean_ = Mean(y);
  y_scale_ = StdDev(y);
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  std::vector<double> y_std(n);
  for (size_t i = 0; i < n; ++i) y_std[i] = (y[i] - y_mean_) / y_scale_;

  // Every sparse fit is a full refit (the inducing set moves with the
  // history), so unlike the exact GP there is no append path and no
  // staleness reset — only the hyperopt cadence.
  const bool do_hyperopt = !fitted_ || fits_since_hyperopt_ == 0;
  fits_since_hyperopt_ =
      (fits_since_hyperopt_ + 1) % std::max<size_t>(1, options_.hyperopt_every);

  if (!do_hyperopt) {
    Result<double> lml = FitWith(x, y_std, kernel_->lengthscale(), noise_);
    if (lml.ok()) {
      lml_ = *lml;
      fitted_ = true;
      return Status::OK();
    }
    // Fall through to a full search when the cached choice fails.
  }

  // Grid sweep sharing the per-lengthscale state across the noise grid
  // (K_mm, K_nm, and the Nyström diagonal depend on the lengthscale
  // only; the noise enters through Λ and A).
  double best_lml = -1e300;
  double best_ls = options_.lengthscale_grid.front();
  double best_noise = options_.noise_grid.front();
  Matrix best_lm;
  FitState best_state;
  bool any = false;
  for (double ls : options_.lengthscale_grid) {
    kernel_->set_lengthscale(ls);
    LengthscaleState ls_state;
    if (!PrepareLengthscale(x, &ls_state).ok()) continue;
    for (double noise : options_.noise_grid) {
      FitState state;
      Result<double> lml = FactorizeWith(ls_state, y_std, noise, &state);
      if (!lml.ok()) continue;
      if (!any || *lml > best_lml) {
        any = true;
        best_lml = *lml;
        best_ls = ls;
        best_noise = noise;
        best_lm = ls_state.lm;
        best_state = std::move(state);
      }
    }
  }
  if (!any) {
    return Status::Internal("sparse GP fit failed for all hyper-parameters");
  }
  kernel_->set_lengthscale(best_ls);
  lm_ = std::move(best_lm);
  la_ = std::move(best_state.la);
  alpha_ = std::move(best_state.alpha);
  noise_ = best_noise;
  lml_ = best_lml;
  fitted_ = true;
  return Status::OK();
}

double SparseGaussianProcess::Predict(const std::vector<double>& x) const {
  double mean = 0.0, variance = 0.0;
  PredictMeanVar(x, &mean, &variance);
  return mean;
}

void SparseGaussianProcess::PredictMeanVar(const std::vector<double>& x,
                                           double* mean,
                                           double* variance) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  static obs::Histogram& predict_hist =
      obs::MetricsRegistry::Get().histogram("gp.predict.sparse");
  obs::ScopedLatency predict_latency(&predict_hist);
  // FITC posterior: μ = k_mᵀ α and
  // var = k** − ||L_m⁻¹ k_m||² + ||L_A⁻¹ k_m||² — O(m²), no dependence
  // on n. Scratch is per calling thread; the batch path runs the same
  // routine from pool workers, each with its own scratch.
  static thread_local std::vector<double> k_m;
  static thread_local std::vector<double> v;
  static thread_local std::vector<double> w;
  const size_t m = xm_.size();
  k_m.resize(m);
  for (size_t j = 0; j < m; ++j) k_m[j] = kernel_->Compute(xm_[j], x);

  const double mu = Dot(k_m, alpha_);
  SolveLowerTriangularInto(lm_, k_m, &v);
  SolveLowerTriangularInto(la_, k_m, &w);
  double var = kernel_->Compute(x, x) - Dot(v, v) + Dot(w, w);
  if (var < 1e-12) var = 1e-12;

  *mean = mu * y_scale_ + y_mean_;
  *variance = var * y_scale_ * y_scale_;
}

void SparseGaussianProcess::PredictMeanVarBatch(
    const FeatureMatrix& xs, std::vector<double>* means,
    std::vector<double>* variances) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  static obs::Histogram& batch_hist =
      obs::MetricsRegistry::Get().histogram("gp.predict.sparse");
  obs::ScopedLatency batch_latency(&batch_hist);
  means->resize(xs.size());
  variances->resize(xs.size());
  // Each query is O(m²) with thread-local scratch and writes only its
  // own slot, so the parallel batch is bitwise the scalar loop. The
  // nested scalar entry is not used here to keep the histogram from
  // double-counting.
  ParallelFor(GlobalPool(), 0, xs.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                static thread_local std::vector<double> k_m;
                static thread_local std::vector<double> v;
                static thread_local std::vector<double> w;
                const size_t m = xm_.size();
                for (size_t q = begin; q < end; ++q) {
                  k_m.resize(m);
                  for (size_t j = 0; j < m; ++j) {
                    k_m[j] = kernel_->Compute(xm_[j], xs[q]);
                  }
                  const double mu = Dot(k_m, alpha_);
                  SolveLowerTriangularInto(lm_, k_m, &v);
                  SolveLowerTriangularInto(la_, k_m, &w);
                  double var =
                      kernel_->Compute(xs[q], xs[q]) - Dot(v, v) + Dot(w, w);
                  if (var < 1e-12) var = 1e-12;
                  (*means)[q] = mu * y_scale_ + y_mean_;
                  (*variances)[q] = var * y_scale_ * y_scale_;
                }
              });
}

}  // namespace dbtune
