#include "surrogate/ridge.h"

#include <cmath>

#include "util/logging.h"
#include "util/matrix.h"
#include "util/stats.h"

namespace dbtune {

RidgeRegression::RidgeRegression(RidgeOptions options) : options_(options) {}

Status RidgeRegression::Fit(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  const size_t n = x.size();
  const size_t d = x.front().size();

  feature_mean_.assign(d, 0.0);
  feature_scale_.assign(d, 1.0);
  for (size_t j = 0; j < d; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) sum += x[i][j];
    feature_mean_[j] = sum / static_cast<double>(n);
    double sq = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double c = x[i][j] - feature_mean_[j];
      sq += c * c;
    }
    const double sd = std::sqrt(sq / static_cast<double>(n));
    feature_scale_[j] = sd > 1e-12 ? sd : 1.0;
  }
  intercept_ = Mean(y);

  // Normal equations on standardized features: (Z^T Z + alpha I) w = Z^T r.
  Matrix gram(d, d, 0.0);
  std::vector<double> rhs(d, 0.0);
  std::vector<double> z(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      z[j] = (x[i][j] - feature_mean_[j]) / feature_scale_[j];
    }
    const double r = y[i] - intercept_;
    for (size_t j = 0; j < d; ++j) {
      rhs[j] += z[j] * r;
      for (size_t k = j; k < d; ++k) gram(j, k) += z[j] * z[k];
    }
  }
  for (size_t j = 0; j < d; ++j) {
    for (size_t k = 0; k < j; ++k) gram(j, k) = gram(k, j);
  }
  gram.AddDiagonal(options_.alpha);

  DBTUNE_ASSIGN_OR_RETURN(coef_, SolveSpd(gram, rhs));
  fitted_ = true;
  return Status::OK();
}

double RidgeRegression::Predict(const std::vector<double>& x) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  DBTUNE_CHECK(x.size() == coef_.size());
  double out = intercept_;
  for (size_t j = 0; j < coef_.size(); ++j) {
    out += coef_[j] * (x[j] - feature_mean_[j]) / feature_scale_[j];
  }
  return out;
}

}  // namespace dbtune
