#include "surrogate/surrogate_factory.h"

#include "obs/metrics.h"
#include "util/logging.h"

namespace dbtune {

const char* SurrogateTierName(SurrogateTier tier) {
  switch (tier) {
    case SurrogateTier::kAuto:
      return "auto";
    case SurrogateTier::kExact:
      return "exact";
    case SurrogateTier::kSparse:
      return "sparse";
  }
  return "?";
}

TieredGpSurrogate::TieredGpSurrogate(KernelFactory kernel_factory,
                                     GaussianProcessOptions gp_options,
                                     SurrogateTierOptions tier_options)
    : kernel_factory_(std::move(kernel_factory)),
      gp_options_(gp_options),
      tier_options_(tier_options) {
  DBTUNE_CHECK(kernel_factory_ != nullptr);
  DBTUNE_CHECK(tier_options_.num_inducing > 0);
}

Status TieredGpSurrogate::Fit(const FeatureMatrix& x,
                              const std::vector<double>& y) {
  const bool use_sparse =
      tier_options_.tier == SurrogateTier::kSparse ||
      (tier_options_.tier == SurrogateTier::kAuto &&
       x.size() > tier_options_.sparse_crossover);
  if (use_sparse) {
    if (active_ != nullptr && active_ == exact_.get() &&
        obs::MetricsEnabled()) {
      // First crossing from the exact to the sparse tier.
      static obs::Counter& escalations =
          obs::MetricsRegistry::Get().counter("surrogate.tier.escalations");
      escalations.Increment();
    }
    if (!sparse_) {
      // The sparse tier inherits the exact GP's hyper-parameter search
      // (same grids, same cadence) so escalation changes the fit cost,
      // not the modeling policy.
      SparseGaussianProcessOptions sparse_options;
      sparse_options.num_inducing = tier_options_.num_inducing;
      sparse_options.lengthscale_grid = gp_options_.lengthscale_grid;
      sparse_options.noise_grid = gp_options_.noise_grid;
      sparse_options.hyperopt_every = gp_options_.hyperopt_every;
      sparse_ = std::make_unique<SparseGaussianProcess>(kernel_factory_(),
                                                        sparse_options);
    }
    active_ = sparse_.get();
    return sparse_->Fit(x, y);
  }
  if (!exact_) {
    exact_ =
        std::make_unique<GaussianProcess>(kernel_factory_(), gp_options_);
  }
  active_ = exact_.get();
  return exact_->Fit(x, y);
}

double TieredGpSurrogate::Predict(const std::vector<double>& x) const {
  DBTUNE_CHECK_MSG(active_ != nullptr, "Predict before Fit");
  return active_->Predict(x);
}

void TieredGpSurrogate::PredictMeanVar(const std::vector<double>& x,
                                       double* mean, double* variance) const {
  DBTUNE_CHECK_MSG(active_ != nullptr, "Predict before Fit");
  active_->PredictMeanVar(x, mean, variance);
}

void TieredGpSurrogate::PredictMeanVarBatch(
    const FeatureMatrix& xs, std::vector<double>* means,
    std::vector<double>* variances) const {
  DBTUNE_CHECK_MSG(active_ != nullptr, "Predict before Fit");
  active_->PredictMeanVarBatch(xs, means, variances);
}

std::string TieredGpSurrogate::name() const {
  if (active_ != nullptr) return active_->name();
  return std::string("TieredGP-") + SurrogateTierName(tier_options_.tier);
}

std::unique_ptr<Regressor> CreateGpSurrogate(KernelFactory kernel_factory,
                                             GaussianProcessOptions gp_options,
                                             SurrogateTierOptions tier_options) {
  return std::make_unique<TieredGpSurrogate>(std::move(kernel_factory),
                                             gp_options, tier_options);
}

}  // namespace dbtune
