#ifndef DBTUNE_SURROGATE_SPARSE_GAUSSIAN_PROCESS_H_
#define DBTUNE_SURROGATE_SPARSE_GAUSSIAN_PROCESS_H_

#include <memory>
#include <vector>

#include "surrogate/kernels.h"
#include "surrogate/regressor.h"
#include "util/matrix.h"

namespace dbtune {

/// Hyper-parameters of the sparse (inducing-point) GP surrogate.
struct SparseGaussianProcessOptions {
  /// Number of inducing points m; clamped to the training-set size. Fit
  /// is O(n·m²), predict O(m²) — the whole point of the sparse tier.
  size_t num_inducing = 64;
  /// Lengthscale candidates for marginal-likelihood grid search.
  std::vector<double> lengthscale_grid = {0.1, 0.2, 0.4, 0.8, 1.6};
  /// Noise-variance candidates (targets are standardized).
  std::vector<double> noise_grid = {1e-4, 1e-2, 5e-2};
  /// Re-run the hyper-parameter grid search only every k-th Fit; in
  /// between, reuse the last selected hyper-parameters. 1 = always.
  size_t hyperopt_every = 5;
};

/// FITC sparse Gaussian-process regression (Snelson & Ghahramani 2006;
/// the unifying view of Quiñonero-Candela & Rasmussen 2005): the exact
/// GP's O(n³) fit is replaced by an m-inducing-point approximation with
/// O(n·m²) fit time, O(n·m) memory during fit, and O(m²) per-query
/// predictive cost. Targets are standardized internally; predictive
/// variance is reported in original units, exactly like `GaussianProcess`.
///
/// Inducing points are selected from the training set itself by a greedy
/// farthest-point (k-center) sweep seeded at index 0 with ties resolved
/// to the lowest index — a fully deterministic rule, so fits are
/// reproducible run to run and bit-identical at any `DBTUNE_NUM_THREADS`
/// pool size (all parallel regions write index-owned state; reductions
/// run sequentially in a pool-size-independent order). See DESIGN.md §9.
class SparseGaussianProcess final : public Regressor {
 public:
  /// Takes ownership of `kernel`.
  SparseGaussianProcess(std::unique_ptr<Kernel> kernel,
                        SparseGaussianProcessOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  void PredictMeanVar(const std::vector<double>& x, double* mean,
                      double* variance) const override;
  /// Parallelizes the scalar predictive routine over the query batch;
  /// every query writes only its own slot, so the output is bitwise the
  /// scalar loop's at any pool size.
  void PredictMeanVarBatch(const FeatureMatrix& xs,
                           std::vector<double>* means,
                           std::vector<double>* variances) const override;
  std::string name() const override { return "SparseGP-" + kernel_->name(); }

  /// FITC log marginal likelihood of the current fit (standardized
  /// targets).
  double log_marginal_likelihood() const { return lml_; }
  const Kernel& kernel() const { return *kernel_; }
  /// Effective number of inducing points of the current fit (min of
  /// `num_inducing` and the training-set size).
  size_t num_inducing() const { return inducing_indices_.size(); }
  /// Training-set indices chosen as inducing points, ascending.
  const std::vector<size_t>& inducing_indices() const {
    return inducing_indices_;
  }
  double noise() const { return noise_; }

 private:
  /// Per-lengthscale quantities shared across the noise grid (the sparse
  /// analogue of the exact GP's Gram cache): inducing Gram factor,
  /// cross-covariances, and the FITC diagonal correction.
  struct LengthscaleState {
    Matrix kmm;                 // m×m inducing Gram (no jitter)
    Matrix lm;                  // chol(kmm + jitter I)
    Matrix knm;                 // n×m cross-covariances
    std::vector<double> kdiag;  // k(x_i, x_i)
    std::vector<double> q;      // ||lm^-1 knm_i||², the Nyström diagonal
    double logdet_kmm = 0.0;    // log|kmm + jitter I|
  };
  /// A candidate factorization from the grid sweep; the winner is
  /// installed wholesale.
  struct FitState {
    Matrix la;                  // chol(A), A = Kmm + Knmᵀ Λ⁻¹ Knm
    std::vector<double> alpha;  // A⁻¹ Knmᵀ Λ⁻¹ y
  };

  /// Greedy farthest-point selection of min(m, n) inducing indices.
  std::vector<size_t> SelectInducingIndices(const FeatureMatrix& x,
                                            size_t m) const;
  /// Assembles the per-lengthscale state at the kernel's current
  /// lengthscale. Fails when the inducing Gram is not positive definite.
  [[nodiscard]] Status PrepareLengthscale(const FeatureMatrix& x,
                                          LengthscaleState* state) const;
  /// Builds Λ, A, and alpha for one noise level on top of `ls_state`;
  /// returns the FITC log marginal likelihood. Does not touch members.
  Result<double> FactorizeWith(const LengthscaleState& ls_state,
                               const std::vector<double>& y_std, double noise,
                               FitState* state) const;
  /// Fits at fixed hyper-parameters and installs the result.
  Result<double> FitWith(const FeatureMatrix& x,
                         const std::vector<double>& y_std, double lengthscale,
                         double noise);

  std::unique_ptr<Kernel> kernel_;
  SparseGaussianProcessOptions options_;

  std::vector<size_t> inducing_indices_;
  FeatureMatrix xm_;            // inducing inputs (rows of the last x)
  Matrix lm_;                   // chol(Kmm + jitter I)
  Matrix la_;                   // chol(A)
  std::vector<double> alpha_;   // predictive weights, standardized units
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  double noise_ = 1e-4;
  double lml_ = 0.0;
  size_t fits_since_hyperopt_ = 0;
  bool fitted_ = false;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_SPARSE_GAUSSIAN_PROCESS_H_
