#ifndef DBTUNE_SURROGATE_GRADIENT_BOOSTING_H_
#define DBTUNE_SURROGATE_GRADIENT_BOOSTING_H_

#include <vector>

#include "surrogate/regression_tree.h"
#include "surrogate/regressor.h"

namespace dbtune {

/// Hyper-parameters of the gradient-boosted trees model.
struct GradientBoostingOptions {
  size_t num_rounds = 120;
  double learning_rate = 0.08;
  size_t max_depth = 5;
  size_t min_samples_leaf = 3;
  /// Row subsampling fraction per round (stochastic gradient boosting).
  double subsample = 0.8;
  uint64_t seed = 29;
};

/// Gradient boosting with squared loss: each round fits a shallow CART
/// tree to the current residuals. One of the candidate surrogates of the
/// paper's Table 9 ("GB").
class GradientBoosting final : public Regressor {
 public:
  explicit GradientBoosting(GradientBoostingOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "GB"; }

  bool fitted() const { return !trees_.empty() || base_fitted_; }

 private:
  GradientBoostingOptions options_;
  double base_prediction_ = 0.0;
  bool base_fitted_ = false;
  std::vector<RegressionTree> trees_;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_GRADIENT_BOOSTING_H_
