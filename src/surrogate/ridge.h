#ifndef DBTUNE_SURROGATE_RIDGE_H_
#define DBTUNE_SURROGATE_RIDGE_H_

#include <vector>

#include "surrogate/regressor.h"

namespace dbtune {

/// Hyper-parameters of ridge regression.
struct RidgeOptions {
  double alpha = 1.0;
};

/// L2-regularized linear regression solved in closed form via the normal
/// equations (Cholesky). One of the candidate surrogates of the paper's
/// Table 9 ("RR"). Features are standardized internally.
class RidgeRegression final : public Regressor {
 public:
  explicit RidgeRegression(RidgeOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "RR"; }

  /// Coefficients in standardized-feature space (after Fit).
  const std::vector<double>& coefficients() const { return coef_; }

 private:
  RidgeOptions options_;
  std::vector<double> feature_mean_;
  std::vector<double> feature_scale_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_RIDGE_H_
