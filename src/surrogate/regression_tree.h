#ifndef DBTUNE_SURROGATE_REGRESSION_TREE_H_
#define DBTUNE_SURROGATE_REGRESSION_TREE_H_

#include <cstdint>
#include <vector>

#include "surrogate/regressor.h"
#include "util/random.h"

namespace dbtune {

/// Hyper-parameters of a CART regression tree.
struct RegressionTreeOptions {
  size_t max_depth = 18;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 2;
  /// Number of features tried per split; 0 means all features.
  size_t max_features = 0;
  uint64_t seed = 17;
};

/// CART regression tree with variance-reduction splits. Building block of
/// the random forest and gradient boosting; also exposes the structure
/// needed by fANOVA (leaf partition boxes) and the Gini importance (split
/// counts).
class RegressionTree final : public Regressor {
 public:
  /// An axis-aligned box a leaf covers, with the leaf's prediction.
  /// Bounds default to [0,1] per dimension (unit-encoded inputs).
  struct LeafBox {
    std::vector<double> lower;
    std::vector<double> upper;
    double value = 0.0;
    /// Fraction of unit-cube volume covered (product of side lengths).
    double volume = 1.0;
  };

  explicit RegressionTree(RegressionTreeOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "Tree"; }

  /// Number of times each feature was used in a split.
  const std::vector<size_t>& split_counts() const { return split_counts_; }

  /// Total variance reduction attributed to each feature (impurity
  /// importance).
  const std::vector<double>& impurity_importance() const {
    return impurity_importance_;
  }

  /// Leaf partition boxes over the unit cube (for fANOVA). Input features
  /// are assumed to lie in [0,1].
  std::vector<LeafBox> LeafBoxes() const;

  size_t num_nodes() const { return nodes_.size(); }
  bool fitted() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;          // -1 for leaves
    double threshold = 0.0;    // goes left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    double value = 0.0;        // mean of samples (leaves)
  };

  // Recursively grows the tree over `indices` (sample ids); returns the
  // node index.
  int Build(const FeatureMatrix& x, const std::vector<double>& y,
            std::vector<size_t>& indices, size_t begin, size_t end,
            size_t depth);

  void CollectBoxes(int node, std::vector<double>& lower,
                    std::vector<double>& upper,
                    std::vector<LeafBox>* out) const;

  RegressionTreeOptions options_;
  size_t num_features_ = 0;
  std::vector<Node> nodes_;
  std::vector<size_t> split_counts_;
  std::vector<double> impurity_importance_;
  Rng rng_;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_REGRESSION_TREE_H_
