#ifndef DBTUNE_SURROGATE_RANDOM_FOREST_H_
#define DBTUNE_SURROGATE_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "surrogate/regression_tree.h"
#include "surrogate/regressor.h"
#include "util/random.h"

namespace dbtune {

/// Hyper-parameters of the random forest.
struct RandomForestOptions {
  size_t num_trees = 40;
  /// Features tried per split; 0 = all, otherwise capped at sqrt(d) when
  /// `sqrt_features` is set.
  size_t max_features = 0;
  bool sqrt_features = true;
  size_t max_depth = 18;
  size_t min_samples_split = 4;
  size_t min_samples_leaf = 2;
  /// Bootstrap resampling of the training set per tree.
  bool bootstrap = true;
  uint64_t seed = 23;
};

/// Random forest regressor (Breiman 2001). Serves as:
///   * the SMAC surrogate (predictive mean/variance across trees),
///   * the importance backbone (Gini split counts, fANOVA decomposition),
///   * the §8 tuning-benchmark surrogate.
class RandomForest final : public Regressor {
 public:
  explicit RandomForest(RandomForestOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  /// Empirical mean and variance of the per-tree predictions (SMAC's
  /// Gaussian surrogate assumption).
  void PredictMeanVar(const std::vector<double>& x, double* mean,
                      double* variance) const override;
  std::string name() const override { return "RF"; }

  /// Per-feature split counts summed over trees (Gini importance).
  std::vector<double> SplitCountImportance() const;

  /// Per-feature variance-reduction importance summed over trees.
  std::vector<double> ImpurityImportance() const;

  const std::vector<RegressionTree>& trees() const { return trees_; }
  bool fitted() const { return !trees_.empty(); }

 private:
  RandomForestOptions options_;
  std::vector<RegressionTree> trees_;
  size_t num_features_ = 0;
  Rng rng_;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_RANDOM_FOREST_H_
