#ifndef DBTUNE_SURROGATE_KNN_H_
#define DBTUNE_SURROGATE_KNN_H_

#include <vector>

#include "surrogate/regressor.h"

namespace dbtune {

/// Hyper-parameters of the k-nearest-neighbours regressor.
struct KnnOptions {
  size_t k = 8;
  /// Inverse-distance weighting of neighbour targets (uniform otherwise).
  bool distance_weighted = true;
};

/// Brute-force k-NN regression over Euclidean distance in the encoded
/// space. One of the candidate surrogates of the paper's Table 9 ("KNN").
class KnnRegressor final : public Regressor {
 public:
  explicit KnnRegressor(KnnOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "KNN"; }

 private:
  KnnOptions options_;
  FeatureMatrix x_;
  std::vector<double> y_;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_KNN_H_
