#ifndef DBTUNE_SURROGATE_KERNELS_H_
#define DBTUNE_SURROGATE_KERNELS_H_

#include <memory>
#include <string>
#include <vector>

namespace dbtune {

/// Covariance function over unit-encoded configurations. Distances are
/// dimension-normalized (mean per-dimension contribution) so the same
/// lengthscale grid works across spaces of different sizes.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// k(a, b); inputs must have equal size.
  virtual double Compute(const std::vector<double>& a,
                         const std::vector<double>& b) const = 0;

  /// Shared lengthscale hyper-parameter (tuned by the GP via grid search).
  void set_lengthscale(double lengthscale) { lengthscale_ = lengthscale; }
  double lengthscale() const { return lengthscale_; }

  virtual std::string name() const = 0;

 protected:
  double lengthscale_ = 0.5;
};

/// Squared-exponential kernel (vanilla BO / OtterTune). Assumes a natural
/// ordering of values in every dimension — including categorical ones,
/// which is exactly the weakness the heterogeneity experiment probes.
class RbfKernel final : public Kernel {
 public:
  double Compute(const std::vector<double>& a,
                 const std::vector<double>& b) const override;
  std::string name() const override { return "RBF"; }
};

/// Matérn-5/2 kernel: the standard choice for continuous hyper-parameter
/// surfaces (less smooth than RBF).
class Matern52Kernel final : public Kernel {
 public:
  double Compute(const std::vector<double>& a,
                 const std::vector<double>& b) const override;
  std::string name() const override { return "Matern52"; }
};

/// Hamming kernel for categorical dimensions: exp(-h/ls) where h is the
/// fraction of differing entries. Treats categories as unordered symbols.
class HammingKernel final : public Kernel {
 public:
  double Compute(const std::vector<double>& a,
                 const std::vector<double>& b) const override;
  std::string name() const override { return "Hamming"; }
};

/// The mixed kernel of mixed-kernel BO: Matérn-5/2 over the continuous
/// dimensions times Hamming over the categorical dimensions.
class MixedKernel final : public Kernel {
 public:
  /// `is_categorical[d]` marks dimension d as categorical.
  explicit MixedKernel(std::vector<bool> is_categorical);

  double Compute(const std::vector<double>& a,
                 const std::vector<double>& b) const override;
  std::string name() const override { return "Mixed"; }

 private:
  std::vector<bool> is_categorical_;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_KERNELS_H_
