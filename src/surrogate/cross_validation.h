#ifndef DBTUNE_SURROGATE_CROSS_VALIDATION_H_
#define DBTUNE_SURROGATE_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "surrogate/regressor.h"
#include "util/random.h"

namespace dbtune {

/// Quality of a regression model on held-out data.
struct RegressionQuality {
  double rmse = 0.0;
  double r_squared = 0.0;
};

/// Creates a fresh, unfitted model (cross-validation fits one per fold).
using RegressorFactory = std::function<std::unique_ptr<Regressor>()>;

/// Shuffled k-fold assignment: `fold[i]` in [0, k) for each sample.
std::vector<size_t> KFoldAssignment(size_t num_samples, size_t k, Rng& rng);

/// k-fold cross-validation of a model family on (x, y). Returns pooled
/// out-of-fold RMSE and R² (the paper's Table 9 metrics).
[[nodiscard]] Result<RegressionQuality> CrossValidate(const RegressorFactory& factory,
                                        const FeatureMatrix& x,
                                        const std::vector<double>& y, size_t k,
                                        Rng& rng);

/// Fits on a train split and evaluates on a test split (no folding).
[[nodiscard]] Result<RegressionQuality> TrainTestEvaluate(Regressor* model,
                                            const FeatureMatrix& train_x,
                                            const std::vector<double>& train_y,
                                            const FeatureMatrix& test_x,
                                            const std::vector<double>& test_y);

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_CROSS_VALIDATION_H_
