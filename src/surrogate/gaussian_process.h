#ifndef DBTUNE_SURROGATE_GAUSSIAN_PROCESS_H_
#define DBTUNE_SURROGATE_GAUSSIAN_PROCESS_H_

#include <memory>
#include <vector>

#include "surrogate/kernels.h"
#include "surrogate/regressor.h"
#include "util/matrix.h"

namespace dbtune {

/// Hyper-parameters of the Gaussian-process surrogate.
struct GaussianProcessOptions {
  /// Lengthscale candidates for marginal-likelihood grid search.
  std::vector<double> lengthscale_grid = {0.1, 0.2, 0.4, 0.8, 1.6};
  /// Noise-variance candidates (targets are standardized).
  std::vector<double> noise_grid = {1e-4, 1e-2, 5e-2};
  /// Re-run the hyper-parameter grid search only every k-th Fit; in
  /// between, reuse the last selected hyper-parameters (keeps the cubic
  /// cost of iterative BO in check). 1 = always.
  size_t hyperopt_every = 5;
  /// Extend the cached Cholesky factor by bordered append when a
  /// non-hyperopt `Fit` receives the previous training set plus new rows
  /// (O(n^2) instead of O(n^3); bit-identical to a full refit). Off is
  /// only useful as a baseline for benchmarks and equivalence tests.
  bool enable_incremental = true;
};

/// Gaussian-process regression (Eq. 3 of the paper) with a pluggable
/// kernel and grid-searched hyper-parameters. Targets are standardized
/// internally; predictive variance is reported in original units.
///
/// Sequential fits are incremental: see DESIGN.md §8 for the cache
/// state machine (when the bordered append applies, when it falls back
/// to a full refactorization).
class GaussianProcess final : public Regressor {
 public:
  /// Takes ownership of `kernel`.
  GaussianProcess(std::unique_ptr<Kernel> kernel,
                  GaussianProcessOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  void PredictMeanVar(const std::vector<double>& x, double* mean,
                      double* variance) const override;
  /// Matrix-level batched prediction: assembles K* and runs the
  /// triangular solves per query chunk with reused scratch, bit-identical
  /// to the scalar path at any pool size.
  void PredictMeanVarBatch(const FeatureMatrix& xs,
                           std::vector<double>* means,
                           std::vector<double>* variances) const override;
  std::string name() const override { return "GP-" + kernel_->name(); }

  /// Log marginal likelihood of the current fit (standardized targets).
  double log_marginal_likelihood() const { return lml_; }
  const Kernel& kernel() const { return *kernel_; }
  size_t num_observations() const { return x_.size(); }

  /// Fitted noise variance and factorization internals, exposed so the
  /// incremental-fit tests can assert bitwise equality against a full
  /// refactorization.
  double noise() const { return noise_; }
  const Matrix& cholesky_factor() const { return chol_; }
  const std::vector<double>& alpha() const { return alpha_; }

 private:
  /// A candidate factorization produced during the hyper-parameter grid
  /// sweep; the winner is installed wholesale instead of re-fitting.
  struct FitState {
    Matrix chol;
    std::vector<double> alpha;
  };

  /// Assembles K (no noise diagonal) at the kernel's current lengthscale.
  Matrix AssembleKernelMatrix() const;
  /// Copies `k_base`, adds the noise diagonal, factorizes, and computes
  /// alpha; returns the LML. Does not touch member state.
  Result<double> FactorizeWith(const Matrix& k_base, double noise,
                               FitState* state);
  /// Builds K + noise*I, factorizes, computes alpha, installs the result
  /// into member state; returns the LML.
  Result<double> FitWith(double lengthscale, double noise);
  /// Extends the cached factor with rows [old_n, x_.size()) by bordered
  /// Cholesky append, then recomputes alpha/LML (the targets are
  /// re-standardized every fit). Fails when a pivot is not positive.
  Result<double> FitIncremental(size_t old_n);

  std::unique_ptr<Kernel> kernel_;
  GaussianProcessOptions options_;

  FeatureMatrix x_;
  std::vector<double> y_standardized_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  Matrix chol_;                 // lower Cholesky factor of K + noise I
  std::vector<double> alpha_;   // (K + noise I)^-1 y
  double noise_ = 1e-4;
  double lml_ = 0.0;
  size_t fits_since_hyperopt_ = 0;
  bool fitted_ = false;
  // True only when chol_/alpha_ match x_ and the kernel's current
  // hyper-parameters (i.e. the last Fit succeeded); cleared on entry to
  // Fit so a failed fit can never seed an incremental append.
  bool factor_cached_ = false;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_GAUSSIAN_PROCESS_H_
