#ifndef DBTUNE_SURROGATE_GAUSSIAN_PROCESS_H_
#define DBTUNE_SURROGATE_GAUSSIAN_PROCESS_H_

#include <memory>
#include <vector>

#include "surrogate/kernels.h"
#include "surrogate/regressor.h"
#include "util/matrix.h"

namespace dbtune {

/// Hyper-parameters of the Gaussian-process surrogate.
struct GaussianProcessOptions {
  /// Lengthscale candidates for marginal-likelihood grid search.
  std::vector<double> lengthscale_grid = {0.1, 0.2, 0.4, 0.8, 1.6};
  /// Noise-variance candidates (targets are standardized).
  std::vector<double> noise_grid = {1e-4, 1e-2, 5e-2};
  /// Re-run the hyper-parameter grid search only every k-th Fit; in
  /// between, reuse the last selected hyper-parameters (keeps the cubic
  /// cost of iterative BO in check). 1 = always.
  size_t hyperopt_every = 5;
};

/// Gaussian-process regression (Eq. 3 of the paper) with a pluggable
/// kernel and grid-searched hyper-parameters. Targets are standardized
/// internally; predictive variance is reported in original units.
class GaussianProcess final : public Regressor {
 public:
  /// Takes ownership of `kernel`.
  GaussianProcess(std::unique_ptr<Kernel> kernel,
                  GaussianProcessOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  void PredictMeanVar(const std::vector<double>& x, double* mean,
                      double* variance) const override;
  std::string name() const override { return "GP-" + kernel_->name(); }

  /// Log marginal likelihood of the current fit (standardized targets).
  double log_marginal_likelihood() const { return lml_; }
  const Kernel& kernel() const { return *kernel_; }
  size_t num_observations() const { return x_.size(); }

 private:
  /// Builds K + noise*I, factorizes, computes alpha; returns the LML.
  Result<double> FitWith(double lengthscale, double noise);

  std::unique_ptr<Kernel> kernel_;
  GaussianProcessOptions options_;

  FeatureMatrix x_;
  std::vector<double> y_standardized_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;

  Matrix chol_;                 // lower Cholesky factor of K + noise I
  std::vector<double> alpha_;   // (K + noise I)^-1 y
  double noise_ = 1e-4;
  double lml_ = 0.0;
  size_t fits_since_hyperopt_ = 0;
  bool fitted_ = false;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_GAUSSIAN_PROCESS_H_
