#include "surrogate/kernels.h"

#include <cmath>

#include "util/logging.h"

namespace dbtune {

namespace {
// Mean squared difference per dimension.
double MeanSquaredDiff(const std::vector<double>& a,
                       const std::vector<double>& b) {
  DBTUNE_CHECK(a.size() == b.size() && !a.empty());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s / static_cast<double>(a.size());
}
}  // namespace

double RbfKernel::Compute(const std::vector<double>& a,
                          const std::vector<double>& b) const {
  const double r2 = MeanSquaredDiff(a, b) / (lengthscale_ * lengthscale_);
  return std::exp(-0.5 * r2);
}

double Matern52Kernel::Compute(const std::vector<double>& a,
                               const std::vector<double>& b) const {
  const double r = std::sqrt(MeanSquaredDiff(a, b)) / lengthscale_;
  const double sqrt5_r = std::sqrt(5.0) * r;
  return (1.0 + sqrt5_r + 5.0 * r * r / 3.0) * std::exp(-sqrt5_r);
}

double HammingKernel::Compute(const std::vector<double>& a,
                              const std::vector<double>& b) const {
  DBTUNE_CHECK(a.size() == b.size() && !a.empty());
  size_t differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > 1e-9) ++differing;
  }
  const double h =
      static_cast<double>(differing) / static_cast<double>(a.size());
  return std::exp(-h / lengthscale_);
}

MixedKernel::MixedKernel(std::vector<bool> is_categorical)
    : is_categorical_(std::move(is_categorical)) {}

double MixedKernel::Compute(const std::vector<double>& a,
                            const std::vector<double>& b) const {
  DBTUNE_CHECK(a.size() == b.size() && a.size() == is_categorical_.size());
  double cont_r2 = 0.0;
  size_t cont_n = 0;
  size_t cat_diff = 0;
  size_t cat_n = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (is_categorical_[i]) {
      ++cat_n;
      if (std::abs(a[i] - b[i]) > 1e-9) ++cat_diff;
    } else {
      const double d = a[i] - b[i];
      cont_r2 += d * d;
      ++cont_n;
    }
  }
  double k = 1.0;
  if (cont_n > 0) {
    const double r =
        std::sqrt(cont_r2 / static_cast<double>(cont_n)) / lengthscale_;
    const double sqrt5_r = std::sqrt(5.0) * r;
    k *= (1.0 + sqrt5_r + 5.0 * r * r / 3.0) * std::exp(-sqrt5_r);
  }
  if (cat_n > 0) {
    const double h =
        static_cast<double>(cat_diff) / static_cast<double>(cat_n);
    k *= std::exp(-h / lengthscale_);
  }
  return k;
}

}  // namespace dbtune
