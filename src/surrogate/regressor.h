#ifndef DBTUNE_SURROGATE_REGRESSOR_H_
#define DBTUNE_SURROGATE_REGRESSOR_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dbtune {

/// Feature matrix: one row per sample. All surrogates in this library
/// operate on unit-encoded configurations ([0,1]^d, categorical knobs as
/// encoded indices) unless documented otherwise.
using FeatureMatrix = std::vector<std::vector<double>>;

/// Common interface of the regression surrogates (random forest, gradient
/// boosting, GP, ...). Implementations must be refittable: calling `Fit`
/// again replaces the previous model.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on (x, y). Fails on empty or ragged input.
  [[nodiscard]] virtual Status Fit(const FeatureMatrix& x,
                                   const std::vector<double>& y) = 0;

  /// Point prediction for one sample. Requires a successful `Fit`.
  virtual double Predict(const std::vector<double>& x) const = 0;

  /// Predictive mean and variance. The default implementation returns
  /// `Predict` with zero variance; probabilistic models override it.
  virtual void PredictMeanVar(const std::vector<double>& x, double* mean,
                              double* variance) const {
    *mean = Predict(x);
    *variance = 0.0;
  }

  /// Predictive mean and variance for a batch of queries; `means` and
  /// `variances` are resized to `xs.size()`. The default scores queries
  /// through `PredictMeanVar` in parallel (each query writes only its own
  /// slot, so results are bit-identical to the scalar loop at any pool
  /// size); models with a cheaper matrix-level path override it.
  /// Acquisition loops must use this entry point rather than calling the
  /// scalar `PredictMeanVar` per candidate (enforced by dbtune-lint in
  /// src/optimizer/).
  virtual void PredictMeanVarBatch(const FeatureMatrix& xs,
                                   std::vector<double>* means,
                                   std::vector<double>* variances) const;

  /// Short model name for reports ("RF", "GB", ...).
  virtual std::string name() const = 0;
};

/// Validates a training set: non-empty, consistent widths, matching y.
[[nodiscard]] Status ValidateTrainingData(const FeatureMatrix& x,
                            const std::vector<double>& y);

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_REGRESSOR_H_
