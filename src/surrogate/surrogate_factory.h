#ifndef DBTUNE_SURROGATE_SURROGATE_FACTORY_H_
#define DBTUNE_SURROGATE_SURROGATE_FACTORY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "surrogate/gaussian_process.h"
#include "surrogate/regressor.h"
#include "surrogate/sparse_gaussian_process.h"

namespace dbtune {

/// Builds a fresh kernel instance. The tiered surrogate owns one exact
/// and one sparse model, each with its own kernel (the GP mutates the
/// kernel's lengthscale during hyperopt), so construction goes through a
/// factory rather than a single moved-in kernel.
using KernelFactory = std::function<std::unique_ptr<Kernel>()>;

/// Which GP tier a tiered surrogate uses.
enum class SurrogateTier {
  /// Exact GP while the history is at most `sparse_crossover` rows,
  /// sparse FITC GP above it.
  kAuto = 0,
  /// Always the exact O(n³) GP.
  kExact,
  /// Always the sparse O(n·m²) GP.
  kSparse,
};

const char* SurrogateTierName(SurrogateTier tier);

/// Escalation policy of the tiered GP surrogate.
struct SurrogateTierOptions {
  SurrogateTier tier = SurrogateTier::kAuto;
  /// Largest history size fitted by the exact GP under `kAuto`. At this
  /// size an exact fit costs ~n³/3 flops (≈0.4 GFLOP) while a sparse fit
  /// is >25× cheaper, and the simulator regret study (test_sparse_gp)
  /// shows no measurable regret gap at and below the crossover.
  size_t sparse_crossover = 1024;
  /// Inducing-point budget of the sparse tier.
  size_t num_inducing = 64;
};

/// GP surrogate with automatic tier escalation: every `Fit` dispatches to
/// the exact `GaussianProcess` or the `SparseGaussianProcess` per
/// `SurrogateTierOptions`, and predictions route to whichever model the
/// last fit trained. Both tiers are deterministic and bit-identical at
/// any pool size, so the composite is too. Models are created lazily —
/// a session that never crosses the threshold never builds the sparse
/// model (and vice versa).
class TieredGpSurrogate final : public Regressor {
 public:
  TieredGpSurrogate(KernelFactory kernel_factory,
                    GaussianProcessOptions gp_options = {},
                    SurrogateTierOptions tier_options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  void PredictMeanVar(const std::vector<double>& x, double* mean,
                      double* variance) const override;
  void PredictMeanVarBatch(const FeatureMatrix& xs,
                           std::vector<double>* means,
                           std::vector<double>* variances) const override;
  std::string name() const override;

  /// True when the last `Fit` trained the sparse tier.
  bool sparse_active() const { return active_ == sparse_.get() && sparse_; }
  /// The exact tier, if it has been instantiated.
  const GaussianProcess* exact() const { return exact_.get(); }
  /// The sparse tier, if it has been instantiated.
  const SparseGaussianProcess* sparse() const { return sparse_.get(); }

 private:
  KernelFactory kernel_factory_;
  GaussianProcessOptions gp_options_;
  SurrogateTierOptions tier_options_;
  std::unique_ptr<GaussianProcess> exact_;
  std::unique_ptr<SparseGaussianProcess> sparse_;
  Regressor* active_ = nullptr;
};

/// The construction path every optimizer must use for GP surrogates
/// (enforced by the dbtune-lint `gp-construction` rule in
/// src/optimizer/): returns a tiered surrogate that escalates from the
/// exact to the sparse GP per `tier_options`.
std::unique_ptr<Regressor> CreateGpSurrogate(
    KernelFactory kernel_factory, GaussianProcessOptions gp_options = {},
    SurrogateTierOptions tier_options = {});

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_SURROGATE_FACTORY_H_
