#ifndef DBTUNE_SURROGATE_SVR_H_
#define DBTUNE_SURROGATE_SVR_H_

#include <vector>

#include "surrogate/regressor.h"

namespace dbtune {

/// Hyper-parameters of the support-vector regressor.
struct SvrOptions {
  /// Epsilon-insensitive tube half-width (in standardized target units).
  double epsilon = 0.05;
  /// Regularization strength (inverse of C).
  double lambda = 1e-4;
  size_t epochs = 60;
  double learning_rate = 0.05;
  /// When set, uses random Fourier features of an RBF kernel; a linear
  /// model otherwise. Approximates kernel SVR without a QP solver.
  size_t num_fourier_features = 256;
  double rbf_gamma = 1.0;
  uint64_t seed = 31;
};

/// Epsilon-insensitive support-vector regression trained with averaged
/// stochastic subgradient descent, optionally on random Fourier features
/// (Rahimi-Recht) to approximate the RBF kernel. Stands in for the paper's
/// SVR/NuSVR surrogate candidates (Table 9); both paper variants optimize
/// the same epsilon-insensitive objective, differing only in how the tube
/// width is parameterized.
class SupportVectorRegressor final : public Regressor {
 public:
  explicit SupportVectorRegressor(SvrOptions options = {});

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;
  double Predict(const std::vector<double>& x) const override;
  std::string name() const override { return "SVR"; }

 private:
  std::vector<double> Features(const std::vector<double>& x) const;

  SvrOptions options_;
  size_t input_dim_ = 0;
  // Random Fourier projection (empty when linear).
  FeatureMatrix fourier_w_;
  std::vector<double> fourier_b_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  bool fitted_ = false;
};

}  // namespace dbtune

#endif  // DBTUNE_SURROGATE_SVR_H_
