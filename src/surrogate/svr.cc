#include "surrogate/svr.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace dbtune {

SupportVectorRegressor::SupportVectorRegressor(SvrOptions options)
    : options_(options) {}

std::vector<double> SupportVectorRegressor::Features(
    const std::vector<double>& x) const {
  if (fourier_w_.empty()) return x;
  std::vector<double> out(fourier_w_.size());
  const double scale = std::sqrt(2.0 / static_cast<double>(fourier_w_.size()));
  for (size_t f = 0; f < fourier_w_.size(); ++f) {
    double acc = fourier_b_[f];
    const std::vector<double>& row = fourier_w_[f];
    for (size_t j = 0; j < x.size(); ++j) acc += row[j] * x[j];
    out[f] = scale * std::cos(acc);
  }
  return out;
}

Status SupportVectorRegressor::Fit(const FeatureMatrix& x,
                                   const std::vector<double>& y) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  const size_t n = x.size();
  input_dim_ = x.front().size();

  Rng rng(options_.seed);
  fourier_w_.clear();
  fourier_b_.clear();
  if (options_.num_fourier_features > 0) {
    const double omega_scale = std::sqrt(2.0 * options_.rbf_gamma);
    fourier_w_.resize(options_.num_fourier_features);
    fourier_b_.resize(options_.num_fourier_features);
    for (size_t f = 0; f < options_.num_fourier_features; ++f) {
      fourier_w_[f].resize(input_dim_);
      for (double& w : fourier_w_[f]) w = rng.Gaussian(0.0, omega_scale);
      fourier_b_[f] = rng.Uniform(0.0, 2.0 * M_PI);
    }
  }

  // Standardize targets so epsilon has a consistent meaning.
  y_mean_ = Mean(y);
  y_scale_ = StdDev(y);
  if (y_scale_ < 1e-12) y_scale_ = 1.0;

  // Precompute feature maps once.
  FeatureMatrix phi(n);
  for (size_t i = 0; i < n; ++i) phi[i] = Features(x[i]);
  const size_t d = phi.front().size();

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  std::vector<double> avg_weights(d, 0.0);
  double avg_bias = 0.0;
  size_t updates = 0;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<size_t> order = rng.Permutation(n);
    const double lr = options_.learning_rate /
                      (1.0 + 0.2 * static_cast<double>(epoch));
    for (size_t i : order) {
      const std::vector<double>& f = phi[i];
      double pred = bias_;
      for (size_t j = 0; j < d; ++j) pred += weights_[j] * f[j];
      const double target = (y[i] - y_mean_) / y_scale_;
      const double err = pred - target;
      double g = 0.0;  // subgradient of epsilon-insensitive loss
      if (err > options_.epsilon) {
        g = 1.0;
      } else if (err < -options_.epsilon) {
        g = -1.0;
      }
      for (size_t j = 0; j < d; ++j) {
        weights_[j] -= lr * (g * f[j] + options_.lambda * weights_[j]);
      }
      bias_ -= lr * g;
      // Polyak-Ruppert averaging stabilizes the SGD solution.
      ++updates;
      const double k = 1.0 / static_cast<double>(updates);
      for (size_t j = 0; j < d; ++j) {
        avg_weights[j] += (weights_[j] - avg_weights[j]) * k;
      }
      avg_bias += (bias_ - avg_bias) * k;
    }
  }
  weights_ = std::move(avg_weights);
  bias_ = avg_bias;
  fitted_ = true;
  return Status::OK();
}

double SupportVectorRegressor::Predict(const std::vector<double>& x) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  DBTUNE_CHECK(x.size() == input_dim_);
  const std::vector<double> f = Features(x);
  double pred = bias_;
  for (size_t j = 0; j < f.size(); ++j) pred += weights_[j] * f[j];
  return pred * y_scale_ + y_mean_;
}

}  // namespace dbtune
