#include "surrogate/regressor.h"

#include "util/thread_pool.h"

namespace dbtune {

void Regressor::PredictMeanVarBatch(const FeatureMatrix& xs,
                                    std::vector<double>* means,
                                    std::vector<double>* variances) const {
  means->resize(xs.size());
  variances->resize(xs.size());
  ParallelFor(GlobalPool(), 0, xs.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t q = begin; q < end; ++q) {
                  PredictMeanVar(xs[q], &(*means)[q], &(*variances)[q]);
                }
              });
}

Status ValidateTrainingData(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  const size_t width = x.front().size();
  if (width == 0) return Status::InvalidArgument("zero-width features");
  for (const auto& row : x) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  return Status::OK();
}

}  // namespace dbtune
