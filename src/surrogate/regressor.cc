#include "surrogate/regressor.h"

namespace dbtune {

Status ValidateTrainingData(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  const size_t width = x.front().size();
  if (width == 0) return Status::InvalidArgument("zero-width features");
  for (const auto& row : x) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  return Status::OK();
}

}  // namespace dbtune
