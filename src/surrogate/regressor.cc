#include "surrogate/regressor.h"

#include "util/thread_pool.h"

namespace dbtune {

void Regressor::PredictMeanVarBatch(const FeatureMatrix& xs,
                                    std::vector<double>* means,
                                    std::vector<double>* variances) const {
  means->resize(xs.size());
  variances->resize(xs.size());
  // Tiny batches (single-query acquisition probes) skip the dispatch
  // entirely: GlobalPool() takes a lock per call, which dwarfs a handful
  // of scalar posterior queries. Same arithmetic, same results.
  if (xs.size() < 8) {
    for (size_t q = 0; q < xs.size(); ++q) {
      PredictMeanVar(xs[q], &(*means)[q], &(*variances)[q]);
    }
    return;
  }
  ParallelFor(GlobalPool(), 0, xs.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t q = begin; q < end; ++q) {
                  PredictMeanVar(xs[q], &(*means)[q], &(*variances)[q]);
                }
              });
}

Status ValidateTrainingData(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  if (x.empty()) return Status::InvalidArgument("empty training set");
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y size mismatch");
  }
  const size_t width = x.front().size();
  if (width == 0) return Status::InvalidArgument("zero-width features");
  for (const auto& row : x) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged feature matrix");
    }
  }
  return Status::OK();
}

}  // namespace dbtune
