#include "surrogate/gaussian_process.h"

#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GaussianProcessOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  DBTUNE_CHECK(kernel_ != nullptr);
  DBTUNE_CHECK(!options_.lengthscale_grid.empty());
  DBTUNE_CHECK(!options_.noise_grid.empty());
}

Matrix GaussianProcess::AssembleKernelMatrix() const {
  const size_t n = x_.size();
  Matrix k(n, n);
  // Row i fills k(i, i..n) and mirrors into k(i..n, i): each (i, j) pair
  // is owned by exactly one i, so rows parallelize without overlap. The
  // small grain compensates for the triangular (shrinking) row cost.
  ParallelFor(GlobalPool(), 0, n, /*grain=*/8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i; j < n; ++j) {
        const double v = kernel_->Compute(x_[i], x_[j]);
        k(i, j) = v;
        k(j, i) = v;
      }
    }
  });
  return k;
}

Result<double> GaussianProcess::FactorizeWith(const Matrix& k_base,
                                              double noise, FitState* state) {
  const size_t n = x_.size();
  Matrix k = k_base;
  k.AddDiagonal(noise + 1e-10);
  DBTUNE_RETURN_IF_ERROR(CholeskyFactorize(&k));
  // alpha = K^-1 y via two triangular solves.
  std::vector<double> tmp = SolveLowerTriangular(k, y_standardized_);
  std::vector<double> alpha = SolveUpperTriangularFromLower(k, tmp);

  double lml = -0.5 * Dot(y_standardized_, alpha);
  for (size_t i = 0; i < n; ++i) lml -= std::log(k(i, i));
  lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);

  state->chol = std::move(k);
  state->alpha = std::move(alpha);
  return lml;
}

Result<double> GaussianProcess::FitWith(double lengthscale, double noise) {
  kernel_->set_lengthscale(lengthscale);
  FitState state;
  DBTUNE_ASSIGN_OR_RETURN(const double lml,
                          FactorizeWith(AssembleKernelMatrix(), noise,
                                        &state));
  chol_ = std::move(state.chol);
  alpha_ = std::move(state.alpha);
  noise_ = noise;
  factor_cached_ = true;
  return lml;
}

Result<double> GaussianProcess::FitIncremental(size_t old_n) {
  static obs::Histogram& incremental_hist =
      obs::MetricsRegistry::Get().histogram("gp.fit.incremental");
  obs::ScopedLatency incremental_latency(&incremental_hist);
  const size_t n = x_.size();
  // Grow the factor: the leading old_n x old_n block of L depends only on
  // the leading block of K, so it is copied verbatim (new columns stay
  // zero, matching the zeroed upper triangle of CholeskyFactorize).
  Matrix l(n, n, 0.0);
  for (size_t r = 0; r < old_n; ++r) {
    std::memcpy(l.RowPtr(r), chol_.RowPtr(r), old_n * sizeof(double));
  }
  const double diagonal_jitter = noise_ + 1e-10;  // AddDiagonal's addend
  for (size_t i = old_n; i < n; ++i) {
    double* row_i = l.RowPtr(i);
    // Border of the Gram matrix: k(j, i) for j < i, computed in the
    // argument order the full assembly uses (row j owns pair (j, i)), so
    // the appended values are bitwise those of a from-scratch build.
    ParallelFor(GlobalPool(), 0, i, /*grain=*/64,
                [&](size_t begin, size_t end) {
                  for (size_t j = begin; j < end; ++j) {
                    row_i[j] = kernel_->Compute(x_[j], x_[i]);
                  }
                });
    row_i[i] = kernel_->Compute(x_[i], x_[i]) + diagonal_jitter;
    // Forward-solve the new row against the existing factor; identical
    // inner-loop order to CholeskyFactorize, so the extended factor is
    // bitwise what a full refactorization would produce.
    for (size_t j = 0; j < i; ++j) {
      const double* row_j = l.RowPtr(j);
      double s = row_i[j];
      for (size_t k = 0; k < j; ++k) s -= row_i[k] * row_j[k];
      row_i[j] = s / row_j[j];
    }
    double d = row_i[i];
    for (size_t k = 0; k < i; ++k) d -= row_i[k] * row_i[k];
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::Internal("matrix is not positive definite");
    }
    row_i[i] = std::sqrt(d);
  }

  // Targets are re-standardized every fit, so alpha and the LML are
  // recomputed from scratch — O(n^2), same arithmetic as FactorizeWith.
  std::vector<double> tmp = SolveLowerTriangular(l, y_standardized_);
  std::vector<double> alpha = SolveUpperTriangularFromLower(l, tmp);

  double lml = -0.5 * Dot(y_standardized_, alpha);
  for (size_t i = 0; i < n; ++i) lml -= std::log(l(i, i));
  lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);

  chol_ = std::move(l);
  alpha_ = std::move(alpha);
  factor_cached_ = true;
  return lml;
}

Status GaussianProcess::Fit(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  static obs::Histogram& fit_hist =
      obs::MetricsRegistry::Get().histogram("gp.fit");
  obs::ScopedLatency fit_latency(&fit_hist);
  DBTUNE_TRACE_SPAN("gp.fit");
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));

  // Does the new training set extend the previous one (same rows plus
  // appended ones)? Decides both the incremental-append eligibility and
  // the hyper-parameter staleness reset below; compared bitwise before
  // x_ is overwritten.
  const size_t old_n = x_.size();
  bool extends_history = fitted_ && x.size() >= old_n && old_n > 0 &&
                         x.front().size() == x_.front().size();
  for (size_t r = 0; extends_history && r < old_n; ++r) {
    extends_history = x[r] == x_[r];
  }
  const bool can_append = extends_history && factor_cached_;
  factor_cached_ = false;  // re-established only by a successful fit

  x_ = x;
  y_mean_ = Mean(y);
  y_scale_ = StdDev(y);
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  y_standardized_.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    y_standardized_[i] = (y[i] - y_mean_) / y_scale_;
  }

  // A shrunk or wholesale-replaced training set invalidates the cached
  // hyper-parameters along with the factor (e.g. a TuRBO restart must
  // not inherit a dead trust region's lengthscale): force a fresh grid
  // search instead of trusting the stale schedule.
  if (fitted_ && !extends_history) fits_since_hyperopt_ = 0;

  const bool do_hyperopt = !fitted_ || fits_since_hyperopt_ == 0;
  fits_since_hyperopt_ =
      (fits_since_hyperopt_ + 1) % std::max<size_t>(1, options_.hyperopt_every);

  if (!do_hyperopt) {
    if (options_.enable_incremental && can_append) {
      Result<double> lml = FitIncremental(old_n);
      if (lml.ok()) {
        lml_ = *lml;
        fitted_ = true;
        return Status::OK();
      }
      // Failed pivot: fall through to the full refactorization.
    }
    Result<double> lml = FitWith(kernel_->lengthscale(), noise_);
    if (lml.ok()) {
      lml_ = *lml;
      fitted_ = true;
      return Status::OK();
    }
    // Fall through to a full search when the cached choice fails.
  }

  // Grid sweep with a Gram cache: K depends on the lengthscale only, so
  // it is assembled once per lengthscale and shared across the noise
  // grid (the noise enters through the diagonal of the copy inside
  // FactorizeWith). The winning factorization is kept and installed at
  // the end — no redundant final refit of the best grid point.
  if (obs::MetricsEnabled()) {
    static obs::Counter& hyperopt_runs =
        obs::MetricsRegistry::Get().counter("gp.hyperopt.runs");
    hyperopt_runs.Increment();
  }
  double best_lml = -1e300;
  double best_ls = options_.lengthscale_grid.front();
  double best_noise = options_.noise_grid.front();
  FitState best_state;
  bool any = false;
  for (double ls : options_.lengthscale_grid) {
    kernel_->set_lengthscale(ls);
    const Matrix k_base = AssembleKernelMatrix();
    for (double noise : options_.noise_grid) {
      FitState state;
      Result<double> lml = FactorizeWith(k_base, noise, &state);
      if (!lml.ok()) continue;
      if (!any || *lml > best_lml) {
        any = true;
        best_lml = *lml;
        best_ls = ls;
        best_noise = noise;
        best_state = std::move(state);
      }
    }
  }
  if (!any) return Status::Internal("GP fit failed for all hyper-parameters");
  kernel_->set_lengthscale(best_ls);
  chol_ = std::move(best_state.chol);
  alpha_ = std::move(best_state.alpha);
  noise_ = best_noise;
  lml_ = best_lml;
  factor_cached_ = true;
  fitted_ = true;
  return Status::OK();
}

double GaussianProcess::Predict(const std::vector<double>& x) const {
  double mean = 0.0, variance = 0.0;
  PredictMeanVar(x, &mean, &variance);
  return mean;
}

void GaussianProcess::PredictMeanVar(const std::vector<double>& x,
                                     double* mean, double* variance) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  // No trace span here: predictions run thousands of times per suggest,
  // often from pool workers; a lock-free histogram is all it can afford.
  static obs::Histogram& predict_hist =
      obs::MetricsRegistry::Get().histogram("gp.predict");
  obs::ScopedLatency predict_latency(&predict_hist);
  const size_t n = x_.size();
  // Per-thread scratch: each calling thread owns its own pair, so
  // concurrent callers from the acquisition loops are isolated. The
  // caller's buffer outlives the blocking ParallelFor below; workers
  // must write it through a pointer captured by value — naming the
  // thread_local inside the lambda would resolve to each worker's own
  // (empty, never-resized) instance and write out of bounds.
  static thread_local std::vector<double> k_star;
  static thread_local std::vector<double> v;
  k_star.resize(n);
  double* const k_star_out = k_star.data();
  ParallelFor(GlobalPool(), 0, n, /*grain=*/64,
              [&, k_star_out](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  k_star_out[i] = kernel_->Compute(x_[i], x);
                }
              });

  double mu = Dot(k_star, alpha_);
  // v = L^-1 k_star; var = k(x,x) - v'v.
  SolveLowerTriangularInto(chol_, k_star, &v);
  double var = kernel_->Compute(x, x) - Dot(v, v);
  if (var < 1e-12) var = 1e-12;

  *mean = mu * y_scale_ + y_mean_;
  *variance = var * y_scale_ * y_scale_;
}

void GaussianProcess::PredictMeanVarBatch(
    const FeatureMatrix& xs, std::vector<double>* means,
    std::vector<double>* variances) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  static obs::Histogram& batch_hist =
      obs::MetricsRegistry::Get().histogram("gp.predict.batch");
  obs::ScopedLatency batch_latency(&batch_hist);
  const size_t n = x_.size();
  means->resize(xs.size());
  variances->resize(xs.size());
  // Queries are processed in blocks of kBlock as a multi-RHS triangular
  // solve: K* and V are laid out i-major (query-minor), so each factor
  // row is streamed once per block and the innermost loops run across the
  // block's independent accumulators (SIMD-friendly without FP
  // reassociation). Every query keeps the scalar path's summation order
  // exactly — k ascending in the solve, i ascending in the dots — so
  // results are bitwise equal to PredictMeanVar at any pool size.
  constexpr size_t kBlock = 16;
  ParallelFor(
      GlobalPool(), 0, xs.size(), /*grain=*/kBlock,
      [&](size_t begin, size_t end) {
        std::vector<double> k_block(n * kBlock);  // K*(i, r), i-major
        std::vector<double> v_block(n * kBlock);  // (L^-1 K*)(i, r), i-major
        for (size_t b = begin; b < end; b += kBlock) {
          const size_t m = std::min(kBlock, end - b);
          for (size_t i = 0; i < n; ++i) {
            double* ki = k_block.data() + i * m;
            for (size_t r = 0; r < m; ++r) {
              ki[r] = kernel_->Compute(x_[i], xs[b + r]);
            }
          }
          double acc[kBlock];
          for (size_t i = 0; i < n; ++i) {
            const double* lrow = chol_.RowPtr(i);
            const double* ki = k_block.data() + i * m;
            for (size_t r = 0; r < m; ++r) acc[r] = ki[r];
            for (size_t k = 0; k < i; ++k) {
              const double lik = lrow[k];
              const double* vk = v_block.data() + k * m;
              for (size_t r = 0; r < m; ++r) acc[r] -= lik * vk[r];
            }
            double* vi = v_block.data() + i * m;
            const double diag = lrow[i];
            for (size_t r = 0; r < m; ++r) vi[r] = acc[r] / diag;
          }
          double mu[kBlock], vv[kBlock];
          for (size_t r = 0; r < m; ++r) mu[r] = 0.0;
          for (size_t r = 0; r < m; ++r) vv[r] = 0.0;
          for (size_t i = 0; i < n; ++i) {
            const double* ki = k_block.data() + i * m;
            const double* vi = v_block.data() + i * m;
            const double ai = alpha_[i];
            for (size_t r = 0; r < m; ++r) {
              mu[r] += ki[r] * ai;
              vv[r] += vi[r] * vi[r];
            }
          }
          for (size_t r = 0; r < m; ++r) {
            const std::vector<double>& xq = xs[b + r];
            double var = kernel_->Compute(xq, xq) - vv[r];
            if (var < 1e-12) var = 1e-12;
            (*means)[b + r] = mu[r] * y_scale_ + y_mean_;
            (*variances)[b + r] = var * y_scale_ * y_scale_;
          }
        }
      });
}

}  // namespace dbtune
