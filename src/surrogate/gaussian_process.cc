#include "surrogate/gaussian_process.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

GaussianProcess::GaussianProcess(std::unique_ptr<Kernel> kernel,
                                 GaussianProcessOptions options)
    : kernel_(std::move(kernel)), options_(options) {
  DBTUNE_CHECK(kernel_ != nullptr);
  DBTUNE_CHECK(!options_.lengthscale_grid.empty());
  DBTUNE_CHECK(!options_.noise_grid.empty());
}

Result<double> GaussianProcess::FitWith(double lengthscale, double noise) {
  const size_t n = x_.size();
  kernel_->set_lengthscale(lengthscale);
  Matrix k(n, n);
  // Row i fills k(i, i..n) and mirrors into k(i..n, i): each (i, j) pair
  // is owned by exactly one i, so rows parallelize without overlap. The
  // small grain compensates for the triangular (shrinking) row cost.
  ParallelFor(GlobalPool(), 0, n, /*grain=*/8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i; j < n; ++j) {
        const double v = kernel_->Compute(x_[i], x_[j]);
        k(i, j) = v;
        k(j, i) = v;
      }
    }
  });
  k.AddDiagonal(noise + 1e-10);
  DBTUNE_RETURN_IF_ERROR(CholeskyFactorize(&k));
  // alpha = K^-1 y via two triangular solves.
  std::vector<double> tmp = SolveLowerTriangular(k, y_standardized_);
  std::vector<double> alpha = SolveUpperTriangularFromLower(k, tmp);

  double lml = -0.5 * Dot(y_standardized_, alpha);
  for (size_t i = 0; i < n; ++i) lml -= std::log(k(i, i));
  lml -= 0.5 * static_cast<double>(n) * std::log(2.0 * M_PI);

  chol_ = std::move(k);
  alpha_ = std::move(alpha);
  noise_ = noise;
  return lml;
}

Status GaussianProcess::Fit(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  static obs::Histogram& fit_hist =
      obs::MetricsRegistry::Get().histogram("gp.fit");
  obs::ScopedLatency fit_latency(&fit_hist);
  DBTUNE_TRACE_SPAN("gp.fit");
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  x_ = x;
  y_mean_ = Mean(y);
  y_scale_ = StdDev(y);
  if (y_scale_ < 1e-12) y_scale_ = 1.0;
  y_standardized_.resize(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    y_standardized_[i] = (y[i] - y_mean_) / y_scale_;
  }

  const bool do_hyperopt = !fitted_ || fits_since_hyperopt_ == 0;
  fits_since_hyperopt_ =
      (fits_since_hyperopt_ + 1) % std::max<size_t>(1, options_.hyperopt_every);

  if (!do_hyperopt) {
    Result<double> lml = FitWith(kernel_->lengthscale(), noise_);
    if (lml.ok()) {
      lml_ = *lml;
      fitted_ = true;
      return Status::OK();
    }
    // Fall through to a full search when the cached choice fails.
  }

  double best_lml = -1e300;
  double best_ls = options_.lengthscale_grid.front();
  double best_noise = options_.noise_grid.front();
  bool any = false;
  for (double ls : options_.lengthscale_grid) {
    for (double noise : options_.noise_grid) {
      Result<double> lml = FitWith(ls, noise);
      if (!lml.ok()) continue;
      if (!any || *lml > best_lml) {
        any = true;
        best_lml = *lml;
        best_ls = ls;
        best_noise = noise;
      }
    }
  }
  if (!any) return Status::Internal("GP fit failed for all hyper-parameters");
  DBTUNE_ASSIGN_OR_RETURN(lml_, FitWith(best_ls, best_noise));
  fitted_ = true;
  return Status::OK();
}

double GaussianProcess::Predict(const std::vector<double>& x) const {
  double mean = 0.0, variance = 0.0;
  PredictMeanVar(x, &mean, &variance);
  return mean;
}

void GaussianProcess::PredictMeanVar(const std::vector<double>& x,
                                     double* mean, double* variance) const {
  DBTUNE_CHECK_MSG(fitted_, "Predict before Fit");
  // No trace span here: predictions run thousands of times per suggest,
  // often from pool workers; a lock-free histogram is all it can afford.
  static obs::Histogram& predict_hist =
      obs::MetricsRegistry::Get().histogram("gp.predict");
  obs::ScopedLatency predict_latency(&predict_hist);
  const size_t n = x_.size();
  std::vector<double> k_star(n);
  ParallelFor(GlobalPool(), 0, n, /*grain=*/64,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  k_star[i] = kernel_->Compute(x_[i], x);
                }
              });

  double mu = Dot(k_star, alpha_);
  // v = L^-1 k_star; var = k(x,x) - v'v.
  std::vector<double> v = SolveLowerTriangular(chol_, k_star);
  double var = kernel_->Compute(x, x) - Dot(v, v);
  if (var < 1e-12) var = 1e-12;

  *mean = mu * y_scale_ + y_mean_;
  *variance = var * y_scale_ * y_scale_;
}

}  // namespace dbtune
