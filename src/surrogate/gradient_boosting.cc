#include "surrogate/gradient_boosting.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"

namespace dbtune {

GradientBoosting::GradientBoosting(GradientBoostingOptions options)
    : options_(options) {}

Status GradientBoosting::Fit(const FeatureMatrix& x,
                             const std::vector<double>& y) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(x, y));
  trees_.clear();
  base_prediction_ = Mean(y);
  base_fitted_ = true;

  const size_t n = x.size();
  Rng rng(options_.seed);
  std::vector<double> residuals(n);
  std::vector<double> current(n, base_prediction_);

  const size_t subset =
      std::max<size_t>(2, static_cast<size_t>(options_.subsample *
                                              static_cast<double>(n)));
  for (size_t round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) residuals[i] = y[i] - current[i];

    RegressionTreeOptions tree_options;
    tree_options.max_depth = options_.max_depth;
    tree_options.min_samples_leaf = options_.min_samples_leaf;
    tree_options.min_samples_split = 2 * options_.min_samples_leaf;
    tree_options.seed = rng.engine()();

    RegressionTree tree(tree_options);
    if (subset < n) {
      const std::vector<size_t> rows = rng.SampleWithoutReplacement(n, subset);
      FeatureMatrix sx;
      std::vector<double> sy;
      sx.reserve(subset);
      sy.reserve(subset);
      for (size_t r : rows) {
        sx.push_back(x[r]);
        sy.push_back(residuals[r]);
      }
      DBTUNE_RETURN_IF_ERROR(tree.Fit(sx, sy));
    } else {
      DBTUNE_RETURN_IF_ERROR(tree.Fit(x, residuals));
    }

    for (size_t i = 0; i < n; ++i) {
      current[i] += options_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GradientBoosting::Predict(const std::vector<double>& x) const {
  DBTUNE_CHECK_MSG(base_fitted_, "Predict before Fit");
  double out = base_prediction_;
  for (const RegressionTree& tree : trees_) {
    out += options_.learning_rate * tree.Predict(x);
  }
  return out;
}

}  // namespace dbtune
