#include "obs/clock.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace dbtune::obs {

namespace {

// 1ms per call: large enough that derived "latencies" are visibly
// non-zero in goldens, small enough that a full session stays readable
// in a trace viewer.
constexpr uint64_t kFakeTickNanos = 1000000;

std::atomic<uint64_t> g_fake_tick{0};

bool FakeClockFromEnv() {
  const char* env = std::getenv("DBTUNE_OBS_FAKE_CLOCK");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

std::atomic<bool> g_fake_clock{FakeClockFromEnv()};

}  // namespace

uint64_t MonotonicNanos() {
  if (g_fake_clock.load(std::memory_order_relaxed)) {
    return g_fake_tick.fetch_add(kFakeTickNanos, std::memory_order_relaxed);
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double MonotonicSeconds() {
  return static_cast<double>(MonotonicNanos()) * 1e-9;
}

void EnableFakeClockForTest() {
  g_fake_tick.store(0, std::memory_order_relaxed);
  g_fake_clock.store(true, std::memory_order_relaxed);
}

void DisableFakeClockForTest() {
  g_fake_clock.store(false, std::memory_order_relaxed);
}

bool FakeClockActive() {
  return g_fake_clock.load(std::memory_order_relaxed);
}

}  // namespace dbtune::obs
