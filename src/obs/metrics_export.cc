#include "obs/metrics_export.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/clock.h"
#include "util/logging.h"

namespace dbtune::obs {

namespace {

/// Mangles `raw` into the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]* under the library prefix.
std::string MangleName(const std::string& raw) {
  std::string out = "dbtune_";
  for (char c : raw) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Escapes a Prometheus label value: backslash, quote, newline.
std::string EscapeLabelValue(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

/// Splits a registry name of the form `base{key="value"}` (the
/// LabeledMetricName convention). Anything that does not match exactly is
/// treated as an unlabeled name, so hostile names degrade to mangling
/// rather than malformed exposition.
struct ParsedName {
  std::string family;           // mangled base
  std::string label;            // `key="escaped"` or ""
};

ParsedName ParseName(const std::string& raw) {
  ParsedName parsed;
  const size_t open = raw.find('{');
  if (open == std::string::npos || raw.back() != '}') {
    parsed.family = MangleName(raw);
    return parsed;
  }
  const std::string inner = raw.substr(open + 1, raw.size() - open - 2);
  const size_t eq = inner.find("=\"");
  if (eq == std::string::npos || inner.size() < eq + 3 ||
      inner.back() != '"') {
    parsed.family = MangleName(raw);
    return parsed;
  }
  const std::string key = inner.substr(0, eq);
  const std::string value = inner.substr(eq + 2, inner.size() - eq - 3);
  bool key_ok = !key.empty();
  for (char c : key) {
    key_ok = key_ok && (std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                        c == '_');
  }
  if (!key_ok) {
    parsed.family = MangleName(raw);
    return parsed;
  }
  parsed.family = MangleName(raw.substr(0, open));
  parsed.label = key + "=\"" + EscapeLabelValue(value) + "\"";
  return parsed;
}

void AppendTypeLine(std::string* out, std::string* last_family,
                    const std::string& family, const char* type) {
  if (family == *last_family) return;
  *out += "# TYPE " + family + " " + type + "\n";
  *last_family = family;
}

void AppendSample(std::string* out, const std::string& family,
                  const std::string& labels, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " %.9g\n", value);
  *out += family;
  if (!labels.empty()) *out += "{" + labels + "}";
  *out += buffer;
}

}  // namespace

std::string LabeledMetricName(const std::string& base, const std::string& key,
                              const std::string& value) {
  return base + "{" + key + "=\"" + value + "\"}";
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string last_family;
  for (const auto& counter : snapshot.counters) {
    const ParsedName name = ParseName(counter.name);
    AppendTypeLine(&out, &last_family, name.family, "counter");
    AppendSample(&out, name.family, name.label,
                 static_cast<double>(counter.value));
  }
  last_family.clear();
  for (const auto& gauge : snapshot.gauges) {
    const ParsedName name = ParseName(gauge.name);
    AppendTypeLine(&out, &last_family, name.family, "gauge");
    AppendSample(&out, name.family, name.label, gauge.value);
  }
  last_family.clear();
  for (const auto& histogram : snapshot.histograms) {
    const ParsedName name = ParseName(histogram.name);
    AppendTypeLine(&out, &last_family, name.family, "summary");
    const std::string sep = name.label.empty() ? "" : ",";
    AppendSample(&out, name.family, name.label + sep + "quantile=\"0.5\"",
                 histogram.p50_seconds);
    AppendSample(&out, name.family, name.label + sep + "quantile=\"0.95\"",
                 histogram.p95_seconds);
    AppendSample(&out, name.family, name.label + sep + "quantile=\"0.99\"",
                 histogram.p99_seconds);
    AppendSample(&out, name.family + "_sum", name.label,
                 histogram.sum_seconds);
    AppendSample(&out, name.family + "_count", name.label,
                 static_cast<double>(histogram.count));
  }
  return out;
}

std::string RenderPrometheusRegistry() {
  return RenderPrometheus(MetricsRegistry::Get().Snapshot());
}

Status WritePrometheusSnapshot(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty export path");
  const std::string rendered = RenderPrometheusRegistry();
  // Concurrent snapshotters (the serve loop and the cadence exporter)
  // must not share a temp file: with a fixed ".tmp" name, one writer's
  // fopen("w") truncates another's in-flight bytes and the rename can
  // publish a torn file. A per-call serial gives every writer a private
  // temp; the atomic rename still publishes complete snapshots, with the
  // last writer to rename winning.
  static std::atomic<uint64_t> tmp_serial{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(tmp_serial.fetch_add(1, std::memory_order_relaxed));
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open metrics export file " + tmp);
  }
  const size_t written =
      std::fwrite(rendered.data(), 1, rendered.size(), file);
  const bool flushed = std::fclose(file) == 0;
  if (written != rendered.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to metrics export file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename metrics export file to " + path);
  }
  return Status::OK();
}

MetricsExporter::MetricsExporter(std::string path, double interval_seconds)
    : path_(std::move(path)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 0.0) {}

void MetricsExporter::MaybeExport() {
  if (path_.empty()) return;
  const double now = MonotonicSeconds();
  if (exported_once_ && now - last_export_seconds_ < interval_seconds_) {
    return;
  }
  last_export_seconds_ = now;
  exported_once_ = true;
  const Status written = WritePrometheusSnapshot(path_);
  if (!written.ok()) {
    DBTUNE_LOG(kWarning) << "metrics export disabled: "
                         << written.ToString();
    path_.clear();
  }
}

Status MetricsExporter::ExportNow() {
  if (path_.empty()) return Status::InvalidArgument("exporter disabled");
  return WritePrometheusSnapshot(path_);
}

std::string MetricsExporter::ResolvePath(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("DBTUNE_METRICS_EXPORT");
  return env == nullptr ? "" : env;
}

double MetricsExporter::ResolveIntervalSeconds() {
  const char* env = std::getenv("DBTUNE_METRICS_EXPORT_INTERVAL_S");
  if (env == nullptr || env[0] == '\0') return 10.0;
  char* end = nullptr;
  const double parsed = std::strtod(env, &end);
  if (end == env || parsed < 0.0) return 10.0;
  return parsed;
}

}  // namespace dbtune::obs
