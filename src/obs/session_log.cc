#include "obs/session_log.h"

#include <cstdlib>

#include "util/logging.h"

namespace dbtune::obs {

SessionLogger::SessionLogger(const std::string& path) {
  if (path.empty()) return;
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    DBTUNE_LOG(kWarning) << "session log disabled: cannot open " << path;
  }
}

SessionLogger::~SessionLogger() { Close(); }

SessionLogger::SessionLogger(SessionLogger&& other) noexcept
    : file_(other.file_) {
  other.file_ = nullptr;
}

SessionLogger& SessionLogger::operator=(SessionLogger&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void SessionLogger::Close() {
  if (file_ != nullptr) {
    const bool flushed = std::fflush(file_) == 0;
    const bool closed = std::fclose(file_) == 0;
    if (!flushed || !closed) {
      DBTUNE_LOG(kWarning) << "session log lost buffered data on close";
    }
    file_ = nullptr;
  }
}

void SessionLogger::Log(const SessionIterationRecord& record) {
  if (file_ == nullptr) return;
  // Fixed field order and formats: the line layout is part of the
  // deterministic-output contract. The diagnostics fields are additive
  // and versioned — with diagnostics off, the line is byte-identical to
  // the pre-diagnostics format.
  bool ok =
      std::fprintf(file_,
                   "{\"iter\":%zu,\"suggest_s\":%.9f,\"evaluate_s\":%.9f,"
                   "\"observe_s\":%.9f,\"score\":%.9g,\"best_score\":%.9g,"
                   "\"improvement_pct\":%.9g",
                   record.iteration, record.suggest_seconds,
                   record.evaluate_seconds, record.observe_seconds,
                   record.score, record.best_score,
                   record.improvement_percent) >= 0;
  if (ok && record.has_diagnostics) {
    const IterationDiagnostics& d = record.diagnostics;
    ok = std::fprintf(
             file_,
             ",\"diag_v\":%d,\"pred\":%d,\"zres\":%.9g,\"nlpd\":%.9g,"
             "\"cov68\":%.9g,\"cov95\":%.9g,\"regret\":%.9g,"
             "\"cum_regret\":%.9g,"
             "\"stall\":%zu,\"ewma_improve\":%.9g,\"acq_best\":%.9g,"
             "\"acq_spread\":%.9g,\"inc_fit_rate\":%.9g,"
             "\"sparse_escalations\":%llu,\"hyperopt_runs\":%llu",
             kDiagnosticsSchemaVersion, d.has_prediction ? 1 : 0,
             d.standardized_residual, d.nlpd, d.coverage68, d.coverage95,
             d.simple_regret, d.cumulative_regret,
             d.iterations_since_improvement, d.improvement_ewma,
             d.acquisition_best, d.acquisition_spread,
             d.incremental_fit_rate,
             static_cast<unsigned long long>(d.sparse_escalations),
             static_cast<unsigned long long>(d.hyperopt_runs)) >= 0;
  }
  ok = ok && std::fputs("}\n", file_) >= 0;
  ok = ok && std::fflush(file_) == 0;
  if (!ok) {
    // A half-written line would corrupt every later record's framing, so
    // the logger stops rather than keep appending after the first error.
    DBTUNE_LOG(kWarning) << "session log disabled: write failed";
    Close();
  }
}

std::string SessionLogger::ResolvePath(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("DBTUNE_SESSION_LOG");
  return env == nullptr ? "" : env;
}

}  // namespace dbtune::obs
