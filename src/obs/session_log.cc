#include "obs/session_log.h"

#include <cstdlib>

#include "util/logging.h"

namespace dbtune::obs {

SessionLogger::SessionLogger(const std::string& path) {
  if (path.empty()) return;
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    DBTUNE_LOG(kWarning) << "session log disabled: cannot open " << path;
  }
}

SessionLogger::~SessionLogger() { Close(); }

SessionLogger::SessionLogger(SessionLogger&& other) noexcept
    : file_(other.file_) {
  other.file_ = nullptr;
}

SessionLogger& SessionLogger::operator=(SessionLogger&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void SessionLogger::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void SessionLogger::Log(const SessionIterationRecord& record) {
  if (file_ == nullptr) return;
  // Fixed field order and formats: the line layout is part of the
  // deterministic-output contract.
  std::fprintf(file_,
               "{\"iter\":%zu,\"suggest_s\":%.9f,\"evaluate_s\":%.9f,"
               "\"observe_s\":%.9f,\"score\":%.9g,\"best_score\":%.9g,"
               "\"improvement_pct\":%.9g}\n",
               record.iteration, record.suggest_seconds,
               record.evaluate_seconds, record.observe_seconds, record.score,
               record.best_score, record.improvement_percent);
  std::fflush(file_);
}

std::string SessionLogger::ResolvePath(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("DBTUNE_SESSION_LOG");
  return env == nullptr ? "" : env;
}

}  // namespace dbtune::obs
