#ifndef DBTUNE_OBS_METRICS_EXPORT_H_
#define DBTUNE_OBS_METRICS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace dbtune::obs {

/// Fleet-ready metric exposition: renders a `MetricsSnapshot` in the
/// Prometheus text format (version 0.0.4) and writes atomic-rename
/// snapshot files on a deterministic-clock cadence. Everything outside
/// src/obs must export through this layer (the `metrics-export` lint
/// rule bans direct registry iteration elsewhere) so exports stay
/// internally consistent, escaped, and uniformly named.

/// Registry name carrying one label: `base{key="value"}`. The renderer
/// parses this form back into a Prometheus label pair; the session
/// diagnostics use it to fan per-session series out of shared names.
std::string LabeledMetricName(const std::string& base, const std::string& key,
                              const std::string& value);

/// Renders `snapshot` in Prometheus text exposition format: counters and
/// gauges as single samples, histograms as summaries (p50/p95/p99
/// quantile samples plus `_sum`/`_count`). Metric names are mangled to
/// the Prometheus charset (prefixed `dbtune_`, '.' → '_'), label values
/// are escaped, and families are emitted in sorted order with one
/// `# TYPE` line each — the output is a pure function of the snapshot.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// Renders the process registry (snapshot + RenderPrometheus).
std::string RenderPrometheusRegistry();

/// Writes the registry rendering to `path` via a temporary file and
/// atomic rename, so scrapers never observe a torn snapshot.
[[nodiscard]] Status WritePrometheusSnapshot(const std::string& path);

/// Cadenced snapshot exporter for the session loop. Disabled when the
/// path is empty; when disabled it never reads the clock, so enabling
/// an export path is the only thing that changes clock-read counts.
class MetricsExporter {
 public:
  /// Disabled exporter.
  MetricsExporter() = default;
  /// Exports to `path` at most every `interval_seconds` (plus the final
  /// unconditional `ExportNow`). Empty path → disabled.
  MetricsExporter(std::string path, double interval_seconds);

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Writes a snapshot when the interval has elapsed since the last
  /// write (the first call always writes). No-op when disabled; write
  /// failures are logged once and disable the exporter.
  void MaybeExport();

  /// Unconditional snapshot write (e.g. at session end).
  [[nodiscard]] Status ExportNow();

  /// Export path: `explicit_path` when non-empty, otherwise the
  /// `DBTUNE_METRICS_EXPORT` environment variable, otherwise "".
  static std::string ResolvePath(const std::string& explicit_path);
  /// Export cadence: `DBTUNE_METRICS_EXPORT_INTERVAL_S` when parseable,
  /// otherwise 10 seconds.
  static double ResolveIntervalSeconds();

 private:
  std::string path_;
  double interval_seconds_ = 10.0;
  bool exported_once_ = false;
  double last_export_seconds_ = 0.0;
};

}  // namespace dbtune::obs

#endif  // DBTUNE_OBS_METRICS_EXPORT_H_
