#ifndef DBTUNE_OBS_DIAGNOSTICS_H_
#define DBTUNE_OBS_DIAGNOSTICS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace dbtune::obs {

/// Per-session tuner-quality diagnostics (the online analogue of the
/// paper's evaluation axes): surrogate calibration from one-step-ahead
/// predictions, convergence accounting against the incumbent, and
/// model/infra health read from the metrics registry. Off by default;
/// the session loop records one input per iteration and the collector
/// never reads the clock or consumes randomness, so diagnostics-on
/// trajectories stay bitwise identical to diagnostics-off ones.

/// Version of the additive `diag_*` fields appended to the session JSONL
/// when diagnostics are on (see SessionLogger). Bump on any layout change.
inline constexpr int kDiagnosticsSchemaVersion = 1;

/// What the optimizer knew before the observation: the surrogate's
/// predictive distribution at the suggested point (raw score units) and
/// the acquisition landscape over the candidate pool. All-false when the
/// iteration was a warm-start or random-fallback suggestion.
struct DiagnosticsPrediction {
  bool has_prediction = false;
  double mean = 0.0;
  double variance = 0.0;
  bool has_acquisition = false;
  double acquisition_best = 0.0;
  double acquisition_spread = 0.0;
};

/// One iteration's diagnostics: the per-iteration values plus the
/// running (session-scoped) aggregates they feed.
struct IterationDiagnostics {
  size_t iteration = 0;  // 1-based

  // --- Surrogate calibration (one-step-ahead, raw score units).
  bool has_prediction = false;
  /// (score - predicted mean) / predicted stddev.
  double standardized_residual = 0.0;
  /// Negative log predictive density of the observed score.
  double nlpd = 0.0;
  /// Running share of predicted iterations with |residual| <= 1 (nominal
  /// 68.3% for a calibrated Gaussian surrogate) and <= 1.96 (nominal 95%).
  double coverage68 = 0.0;
  double coverage95 = 0.0;
  /// Running mean NLPD over predicted iterations.
  double mean_nlpd = 0.0;

  // --- Convergence vs. the incumbent.
  /// best-so-far - score (0 when this iteration set a new incumbent).
  double simple_regret = 0.0;
  /// Sum of simple regrets since session start.
  double cumulative_regret = 0.0;
  size_t iterations_since_improvement = 0;
  /// EWMA of the per-iteration incumbent improvement.
  double improvement_ewma = 0.0;

  // --- Acquisition landscape (echoed from the prediction input).
  bool has_acquisition = false;
  double acquisition_best = 0.0;
  double acquisition_spread = 0.0;

  // --- Model/infra health: session-window deltas of the registry's fit
  // counters (zero when metrics recording is off).
  uint64_t gp_fits = 0;
  uint64_t incremental_fits = 0;
  uint64_t sparse_fits = 0;
  uint64_t sparse_escalations = 0;
  uint64_t hyperopt_runs = 0;
  /// incremental_fits / gp_fits within the session window.
  double incremental_fit_rate = 0.0;
};

struct TuningDiagnosticsOptions {
  /// Labels the per-session registry metrics, e.g.
  /// `tuning.regret.simple{session="<label>"}`. Empty → "default".
  std::string session_label;
  /// Smoothing factor of the improvement EWMA.
  double ewma_alpha = 0.2;
};

/// True when `DBTUNE_SESSION_DIAGNOSTICS` is set to a non-empty value
/// other than "0" (the env opt-in mirroring SessionControls::diagnostics).
bool DiagnosticsEnvEnabled();

/// The per-session collector. `Record` is called once per iteration with
/// the pre-observation prediction and the observed score; it returns the
/// iteration's diagnostics and, when metrics recording is on, publishes
/// them to the registry under the session label.
class TuningDiagnostics {
 public:
  explicit TuningDiagnostics(TuningDiagnosticsOptions options = {});

  TuningDiagnostics(const TuningDiagnostics&) = delete;
  TuningDiagnostics& operator=(const TuningDiagnostics&) = delete;

  IterationDiagnostics Record(const DiagnosticsPrediction& prediction,
                              double score);

  /// Diagnostics of the most recent iteration (default when none yet).
  const IterationDiagnostics& last() const { return last_; }
  size_t iterations() const { return iterations_; }
  /// Number of iterations that carried a usable prediction.
  size_t predicted_iterations() const { return predicted_; }
  double coverage68() const { return last_.coverage68; }
  double coverage95() const { return last_.coverage95; }
  double mean_nlpd() const { return last_.mean_nlpd; }

 private:
  void ReadInfraCounters(IterationDiagnostics* out);
  void Publish(const IterationDiagnostics& d);

  TuningDiagnosticsOptions options_;
  IterationDiagnostics last_;

  size_t iterations_ = 0;
  size_t predicted_ = 0;
  size_t covered68_ = 0;
  size_t covered95_ = 0;
  double nlpd_sum_ = 0.0;

  bool has_best_ = false;
  double best_so_far_ = 0.0;
  double cumulative_regret_ = 0.0;
  size_t since_improvement_ = 0;
  double improvement_ewma_ = 0.0;

  // Baselines of the registry's fit counters at collector construction,
  // so health stats are session-window deltas.
  uint64_t base_gp_fits_ = 0;
  uint64_t base_incremental_ = 0;
  uint64_t base_sparse_ = 0;
  uint64_t base_escalations_ = 0;
  uint64_t base_hyperopt_ = 0;

  // Per-session labeled handles, resolved lazily on first publish.
  bool handles_resolved_ = false;
  Gauge* regret_simple_ = nullptr;
  Gauge* regret_cumulative_ = nullptr;
  Gauge* stall_ = nullptr;
  Gauge* improvement_ewma_gauge_ = nullptr;
  Gauge* coverage68_gauge_ = nullptr;
  Gauge* coverage95_gauge_ = nullptr;
  Gauge* nlpd_gauge_ = nullptr;
  Gauge* acq_best_ = nullptr;
  Gauge* acq_spread_ = nullptr;
  Gauge* incremental_rate_ = nullptr;
  Counter* iterations_counter_ = nullptr;
};

}  // namespace dbtune::obs

#endif  // DBTUNE_OBS_DIAGNOSTICS_H_
