#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dbtune::obs {

namespace internal_trace {

namespace {
bool TraceFromEnv() {
  const char* env = std::getenv("DBTUNE_TRACE");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{TraceFromEnv()};

}  // namespace internal_trace

namespace {

struct TraceEvent {
  std::string name;
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
  int tid = 0;
};

struct TraceBuffer {
  Mutex mu;
  std::vector<TraceEvent> events DBTUNE_GUARDED_BY(mu);
};

TraceBuffer& Buffer() {
  // Intentionally leaked: spans may close during static destruction.
  static TraceBuffer* buffer =
      new TraceBuffer();  // dbtune-lint: allow(naked-new)
  return *buffer;
}

// Small sequential ids instead of std::thread::id: stable within a
// thread, dense, and readable in the trace viewer.
int CurrentTid() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

void SetTraceEnabled(bool enabled) {
  internal_trace::g_enabled.store(enabled, std::memory_order_relaxed);
}

std::string TraceEnvPath() {
  const char* env = std::getenv("DBTUNE_TRACE");
  if (env == nullptr || std::strcmp(env, "") == 0 ||
      std::strcmp(env, "0") == 0 || std::strcmp(env, "1") == 0) {
    return "";
  }
  return env;
}

TraceSpan::TraceSpan(const char* name)
    : TraceSpan(std::string(name)) {}

TraceSpan::TraceSpan(std::string name)
    : name_(std::move(name)),
      start_nanos_(0),
      active_(TraceEnabled()) {
  if (active_) start_nanos_ = MonotonicNanos();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t end_nanos = MonotonicNanos();
  TraceEvent event;
  event.name = std::move(name_);
  event.start_nanos = start_nanos_;
  event.duration_nanos =
      end_nanos >= start_nanos_ ? end_nanos - start_nanos_ : 0;
  event.tid = CurrentTid();
  TraceBuffer& buffer = Buffer();
  MutexLock lock(&buffer.mu);
  buffer.events.push_back(std::move(event));
}

size_t TraceEventCount() {
  TraceBuffer& buffer = Buffer();
  MutexLock lock(&buffer.mu);
  return buffer.events.size();
}

void ClearTrace() {
  TraceBuffer& buffer = Buffer();
  MutexLock lock(&buffer.mu);
  buffer.events.clear();
}

std::string TraceToJson() {
  std::vector<TraceEvent> events;
  {
    TraceBuffer& buffer = Buffer();
    MutexLock lock(&buffer.mu);
    events = buffer.events;
  }
  // Parents before children at equal timestamps (longer spans first).
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_nanos != b.start_nanos) {
                return a.start_nanos < b.start_nanos;
              }
              if (a.duration_nanos != b.duration_nanos) {
                return a.duration_nanos > b.duration_nanos;
              }
              if (a.name != b.name) return a.name < b.name;
              return a.tid < b.tid;
            });
  uint64_t base = 0;
  if (!events.empty()) base = events.front().start_nanos;

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buffer[256];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    const uint64_t ts = event.start_nanos - base;
    std::snprintf(
        buffer, sizeof(buffer),
        "%s\n{\"name\":\"%s\",\"cat\":\"dbtune\",\"ph\":\"X\","
        "\"ts\":%llu.%03llu,\"dur\":%llu.%03llu,\"pid\":1,\"tid\":%d}",
        i == 0 ? "" : ",", event.name.c_str(),
        static_cast<unsigned long long>(ts / 1000),
        static_cast<unsigned long long>(ts % 1000),
        static_cast<unsigned long long>(event.duration_nanos / 1000),
        static_cast<unsigned long long>(event.duration_nanos % 1000),
        event.tid);
    out += buffer;
  }
  out += "\n]}\n";
  return out;
}

Status WriteTrace(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace file " + path);
  }
  const std::string json = TraceToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_result = std::fclose(file);
  if (written != json.size() || close_result != 0) {
    return Status::Internal("short write to trace file " + path);
  }
  return Status::OK();
}

}  // namespace dbtune::obs
