#include "obs/diagnostics.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "obs/metrics_export.h"

namespace dbtune::obs {

namespace {

constexpr double kTwoPi = 6.283185307179586;

uint64_t HistogramCount(const char* name) {
  const Histogram* hist = MetricsRegistry::Get().FindHistogram(name);
  return hist == nullptr ? 0 : hist->count();
}

uint64_t CounterValue(const char* name) {
  const Counter* counter = MetricsRegistry::Get().FindCounter(name);
  return counter == nullptr ? 0 : counter->value();
}

}  // namespace

bool DiagnosticsEnvEnabled() {
  const char* env = std::getenv("DBTUNE_SESSION_DIAGNOSTICS");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}

TuningDiagnostics::TuningDiagnostics(TuningDiagnosticsOptions options)
    : options_(std::move(options)) {
  if (options_.session_label.empty()) options_.session_label = "default";
  base_gp_fits_ = HistogramCount("gp.fit");
  base_incremental_ = HistogramCount("gp.fit.incremental");
  base_sparse_ = HistogramCount("gp.fit.sparse");
  base_escalations_ = CounterValue("surrogate.tier.escalations");
  base_hyperopt_ = CounterValue("gp.hyperopt.runs");
}

void TuningDiagnostics::ReadInfraCounters(IterationDiagnostics* out) {
  out->gp_fits = HistogramCount("gp.fit") - base_gp_fits_;
  out->incremental_fits =
      HistogramCount("gp.fit.incremental") - base_incremental_;
  out->sparse_fits = HistogramCount("gp.fit.sparse") - base_sparse_;
  out->sparse_escalations =
      CounterValue("surrogate.tier.escalations") - base_escalations_;
  out->hyperopt_runs = CounterValue("gp.hyperopt.runs") - base_hyperopt_;
  out->incremental_fit_rate =
      out->gp_fits == 0 ? 0.0
                        : static_cast<double>(out->incremental_fits) /
                              static_cast<double>(out->gp_fits);
}

IterationDiagnostics TuningDiagnostics::Record(
    const DiagnosticsPrediction& prediction, double score) {
  IterationDiagnostics d;
  d.iteration = ++iterations_;

  // --- Calibration: one-step-ahead residual against the pre-observation
  // predictive distribution. A non-positive variance cannot score a
  // density, so such iterations are excluded from the coverage base.
  if (prediction.has_prediction && prediction.variance > 0.0) {
    const double sd = std::sqrt(prediction.variance);
    d.has_prediction = true;
    d.standardized_residual = (score - prediction.mean) / sd;
    d.nlpd = 0.5 * std::log(kTwoPi * prediction.variance) +
             0.5 * d.standardized_residual * d.standardized_residual;
    ++predicted_;
    if (std::abs(d.standardized_residual) <= 1.0) ++covered68_;
    if (std::abs(d.standardized_residual) <= 1.96) ++covered95_;
    nlpd_sum_ += d.nlpd;
  }
  if (predicted_ > 0) {
    const double n = static_cast<double>(predicted_);
    d.coverage68 = static_cast<double>(covered68_) / n;
    d.coverage95 = static_cast<double>(covered95_) / n;
    d.mean_nlpd = nlpd_sum_ / n;
  }

  // --- Convergence vs. the incumbent.
  if (!has_best_) {
    has_best_ = true;
    best_so_far_ = score;
    since_improvement_ = 0;
  } else {
    const double improvement = score > best_so_far_ ? score - best_so_far_
                                                    : 0.0;
    since_improvement_ = improvement > 0.0 ? 0 : since_improvement_ + 1;
    improvement_ewma_ = options_.ewma_alpha * improvement +
                        (1.0 - options_.ewma_alpha) * improvement_ewma_;
    if (score > best_so_far_) best_so_far_ = score;
  }
  d.simple_regret = best_so_far_ - score;
  cumulative_regret_ += d.simple_regret;
  d.cumulative_regret = cumulative_regret_;
  d.iterations_since_improvement = since_improvement_;
  d.improvement_ewma = improvement_ewma_;

  d.has_acquisition = prediction.has_acquisition;
  d.acquisition_best = prediction.acquisition_best;
  d.acquisition_spread = prediction.acquisition_spread;

  ReadInfraCounters(&d);
  if (MetricsEnabled()) Publish(d);
  last_ = d;
  return d;
}

void TuningDiagnostics::Publish(const IterationDiagnostics& d) {
  if (!handles_resolved_) {
    MetricsRegistry& registry = MetricsRegistry::Get();
    const auto labeled = [&](const char* base) {
      return LabeledMetricName(base, "session", options_.session_label);
    };
    regret_simple_ = &registry.gauge(labeled("tuning.regret.simple"));
    regret_cumulative_ = &registry.gauge(labeled("tuning.regret.cumulative"));
    stall_ = &registry.gauge(labeled("tuning.stall.iterations"));
    improvement_ewma_gauge_ =
        &registry.gauge(labeled("tuning.improvement.ewma"));
    coverage68_gauge_ =
        &registry.gauge(labeled("tuning.calibration.coverage68"));
    coverage95_gauge_ =
        &registry.gauge(labeled("tuning.calibration.coverage95"));
    nlpd_gauge_ = &registry.gauge(labeled("tuning.calibration.mean_nlpd"));
    acq_best_ = &registry.gauge(labeled("tuning.acquisition.best"));
    acq_spread_ = &registry.gauge(labeled("tuning.acquisition.spread"));
    incremental_rate_ =
        &registry.gauge(labeled("tuning.fit.incremental_rate"));
    iterations_counter_ = &registry.counter(labeled("tuning.iterations"));
    handles_resolved_ = true;
  }
  iterations_counter_->Increment();
  regret_simple_->Set(d.simple_regret);
  regret_cumulative_->Set(d.cumulative_regret);
  stall_->Set(static_cast<double>(d.iterations_since_improvement));
  improvement_ewma_gauge_->Set(d.improvement_ewma);
  coverage68_gauge_->Set(d.coverage68);
  coverage95_gauge_->Set(d.coverage95);
  nlpd_gauge_->Set(d.mean_nlpd);
  if (d.has_acquisition) {
    acq_best_->Set(d.acquisition_best);
    acq_spread_->Set(d.acquisition_spread);
  }
  incremental_rate_->Set(d.incremental_fit_rate);
}

}  // namespace dbtune::obs
