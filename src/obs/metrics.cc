#include "obs/metrics.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace dbtune::obs {

namespace internal_metrics {

namespace {
bool MetricsFromEnv() {
  const char* env = std::getenv("DBTUNE_METRICS");
  return env != nullptr && std::strcmp(env, "0") != 0 &&
         std::strcmp(env, "") != 0;
}
}  // namespace

std::atomic<bool> g_enabled{MetricsFromEnv()};

}  // namespace internal_metrics

void SetMetricsEnabled(bool enabled) {
  internal_metrics::g_enabled.store(enabled, std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  // CAS loop instead of fetch_add: atomic<double>::fetch_add is C++20
  // but not yet universally lock-free; this is portable and contention
  // here is negligible.
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void Gauge::Max(double candidate) {
  double current = value_.load(std::memory_order_relaxed);
  while (candidate > current &&
         !value_.compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
  }
}

size_t Histogram::BucketIndex(uint64_t nanos) {
  if (nanos < kSub) return static_cast<size_t>(nanos);
  const size_t octave = 63 - static_cast<size_t>(std::countl_zero(nanos));
  const uint64_t sub = (nanos >> (octave - kSubBits)) & (kSub - 1);
  return (octave - kSubBits + 1) * kSub + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketLowerNanos(size_t index) {
  if (index < kSub) return index;
  const size_t octave = index / kSub + kSubBits - 1;
  if (octave >= 64) return UINT64_MAX;  // one-past-the-last upper bound
  const uint64_t sub = index % kSub;
  return (uint64_t{1} << octave) + (sub << (octave - kSubBits));
}

void Histogram::Record(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  RecordNanos(static_cast<uint64_t>(seconds * 1e9));
}

void Histogram::RecordNanos(uint64_t nanos) {
  buckets_[BucketIndex(nanos)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

double Histogram::sum_seconds() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

double Histogram::Percentile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < kBuckets; ++i) {
    const auto in_bucket = static_cast<double>(
        buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket > 0.0 && cumulative + in_bucket >= target) {
      const double fraction =
          in_bucket > 0.0 ? (target - cumulative) / in_bucket : 0.0;
      const auto lower = static_cast<double>(BucketLowerNanos(i));
      const auto upper = static_cast<double>(BucketLowerNanos(i + 1));
      return (lower + fraction * (upper - lower)) * 1e-9;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(BucketLowerNanos(kBuckets - 1)) * 1e-9;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Get() {
  // Intentionally leaked: pool workers and static destructors may record
  // after main() returns.
  static MetricsRegistry* registry =
      new MetricsRegistry();  // dbtune-lint: allow(naked-new)
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  MutexLock lock(&mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string JsonEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char raw : value) {
    const auto c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = histogram->count();
    value.sum_seconds = histogram->sum_seconds();
    value.p50_seconds = histogram->Percentile(0.50);
    value.p95_seconds = histogram->Percentile(0.95);
    value.p99_seconds = histogram->Percentile(0.99);
    snapshot.histograms.push_back(std::move(value));
  }
  return snapshot;
}

std::string MetricsRegistry::ToJson() const {
  // Built from a snapshot: names are escaped (they are caller-supplied
  // and may contain quotes or control characters) and values formatted
  // into a fixed-size numeric buffer — a hostile name can no longer
  // truncate the line or break the JSON.
  const MetricsSnapshot snapshot = Snapshot();
  char buffer[192];
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& counter : snapshot.counters) {
    if (!first) out += ',';
    out += '"';
    out += JsonEscape(counter.name);
    std::snprintf(buffer, sizeof(buffer), "\":%llu",
                  static_cast<unsigned long long>(counter.value));
    out += buffer;
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& gauge : snapshot.gauges) {
    if (!first) out += ',';
    out += '"';
    out += JsonEscape(gauge.name);
    std::snprintf(buffer, sizeof(buffer), "\":%.9g", gauge.value);
    out += buffer;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& histogram : snapshot.histograms) {
    if (!first) out += ',';
    out += '"';
    out += JsonEscape(histogram.name);
    std::snprintf(buffer, sizeof(buffer),
                  "\":{\"count\":%llu,\"sum_s\":%.9g,\"p50_s\":%.9g,"
                  "\"p95_s\":%.9g,\"p99_s\":%.9g}",
                  static_cast<unsigned long long>(histogram.count),
                  histogram.sum_seconds, histogram.p50_seconds,
                  histogram.p95_seconds, histogram.p99_seconds);
    out += buffer;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace dbtune::obs
