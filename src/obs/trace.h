#ifndef DBTUNE_OBS_TRACE_H_
#define DBTUNE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace dbtune::obs {

/// Scoped trace spans exported as Chrome trace-event JSON (load the file
/// in chrome://tracing or https://ui.perfetto.dev). Disabled by default;
/// enable with the `DBTUNE_TRACE` environment variable (any value except
/// "0"; a value that is not "1" is treated as the path the tuning
/// session auto-writes the trace to) or `SetTraceEnabled(true)`.
///
/// When disabled, a span construction is one relaxed atomic load — the
/// clock is never read and nothing allocates.

namespace internal_trace {
extern std::atomic<bool> g_enabled;
}  // namespace internal_trace

/// True when span recording is on (fast path: one relaxed load).
inline bool TraceEnabled() {
  return internal_trace::g_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on or off process-wide.
void SetTraceEnabled(bool enabled);

/// The file path carried by `DBTUNE_TRACE` when it names one ("" when the
/// variable is unset, "0", or "1"). Tuning sessions auto-write their
/// trace here at session end.
std::string TraceEnvPath();

/// Records one complete ("ph":"X") event covering its own lifetime.
/// Spans may nest freely; nesting is reconstructed by the viewer from
/// timestamps. Prefer the DBTUNE_TRACE_SPAN macro, which rejects
/// non-literal names at compile time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  /// Dynamic-name overload for per-optimizer labels.
  explicit TraceSpan(std::string name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  std::string name_;
  uint64_t start_nanos_;
  bool active_;
};

/// Number of buffered events (for tests and overflow monitoring).
size_t TraceEventCount();

/// Drops every buffered event.
void ClearTrace();

/// Serializes the buffered events as a Chrome trace-event JSON document.
/// Timestamps are rebased to the earliest event and events are sorted by
/// (start, -duration, name, tid), so single-threaded traces serialize
/// deterministically.
std::string TraceToJson();

/// Writes `TraceToJson()` to `path`.
[[nodiscard]] Status WriteTrace(const std::string& path);

}  // namespace dbtune::obs

/// DBTUNE_TRACE_SPAN("name") — opens a span covering the rest of the
/// enclosing scope. The `"" name` concatenation makes a non-literal
/// argument a compile error, so span names are always static strings.
#define DBTUNE_OBS_CONCAT_INNER(a, b) a##b
#define DBTUNE_OBS_CONCAT(a, b) DBTUNE_OBS_CONCAT_INNER(a, b)
#define DBTUNE_TRACE_SPAN(name)                       \
  const ::dbtune::obs::TraceSpan DBTUNE_OBS_CONCAT(   \
      dbtune_trace_span_, __LINE__)("" name)

#endif  // DBTUNE_OBS_TRACE_H_
