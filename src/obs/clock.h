#ifndef DBTUNE_OBS_CLOCK_H_
#define DBTUNE_OBS_CLOCK_H_

#include <cstdint>

namespace dbtune::obs {

/// The library's single time source. Every latency measurement and trace
/// timestamp flows through these two functions (the `raw-timing` lint
/// rule bans std::chrono clocks outside src/obs), so swapping the clock
/// swaps it everywhere at once.
///
/// Two modes:
///  - real (default): std::chrono::steady_clock, nanosecond resolution.
///  - fake: a process-wide atomic tick that advances by exactly 1ms per
///    call, starting at 0. Enabled with `DBTUNE_OBS_FAKE_CLOCK=1` or
///    `EnableFakeClockForTest()`. With the fake clock, any
///    single-threaded deterministic code path produces byte-identical
///    traces and session logs across runs — the property the obs golden
///    tests assert.

/// Monotonic nanoseconds since an arbitrary epoch (process start order).
uint64_t MonotonicNanos();

/// Monotonic seconds (MonotonicNanos() / 1e9).
double MonotonicSeconds();

/// Switches to the deterministic fake clock and resets its tick to 0.
void EnableFakeClockForTest();

/// Returns to the real steady clock.
void DisableFakeClockForTest();

/// True when the fake clock is active (env switch or test override).
bool FakeClockActive();

}  // namespace dbtune::obs

#endif  // DBTUNE_OBS_CLOCK_H_
