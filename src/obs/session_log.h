#ifndef DBTUNE_OBS_SESSION_LOG_H_
#define DBTUNE_OBS_SESSION_LOG_H_

#include <cstdio>
#include <string>

#include "obs/diagnostics.h"

namespace dbtune::obs {

/// One tuning-loop iteration as logged to the session JSONL file.
struct SessionIterationRecord {
  size_t iteration = 0;  // 1-based
  double suggest_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double observe_seconds = 0.0;
  /// Score of this iteration's configuration (maximize direction).
  double score = 0.0;
  /// Best score observed so far, inclusive of this iteration.
  double best_score = 0.0;
  /// Best-so-far improvement (%) over the default configuration.
  double improvement_percent = 0.0;
  /// When set, the versioned `diag_v` fields are appended to the line.
  /// The base fields above keep their exact byte layout either way.
  bool has_diagnostics = false;
  IterationDiagnostics diagnostics;
};

/// Append-only JSONL sink for per-iteration session records: one JSON
/// object per line, fields always in the same order, so same-seed runs
/// under the fake clock produce byte-identical files (the obs golden
/// tests diff them directly) and `jq`/pandas consume them directly.
///
/// A default-constructed logger is disabled and logs nothing.
class SessionLogger {
 public:
  SessionLogger() = default;
  /// Opens `path` for writing (truncates). Empty path → disabled; a path
  /// that cannot be opened logs a warning and disables itself.
  explicit SessionLogger(const std::string& path);
  ~SessionLogger();

  SessionLogger(SessionLogger&& other) noexcept;
  SessionLogger& operator=(SessionLogger&& other) noexcept;
  SessionLogger(const SessionLogger&) = delete;
  SessionLogger& operator=(const SessionLogger&) = delete;

  bool enabled() const { return file_ != nullptr; }

  /// Writes one record as a single JSON line and flushes it.
  void Log(const SessionIterationRecord& record);

  /// Flushes and closes the file. Idempotent: safe to call repeatedly
  /// and again from the destructor; the logger is disabled afterwards.
  void Close();

  /// Resolves the session-log path: `explicit_path` when non-empty,
  /// otherwise the `DBTUNE_SESSION_LOG` environment variable, otherwise
  /// "" (disabled).
  static std::string ResolvePath(const std::string& explicit_path);

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace dbtune::obs

#endif  // DBTUNE_OBS_SESSION_LOG_H_
