#ifndef DBTUNE_OBS_METRICS_H_
#define DBTUNE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dbtune::obs {

/// Process-wide metrics: counters, gauges, and latency histograms with
/// percentile estimates. Disabled by default; enable with the
/// `DBTUNE_METRICS=1` environment variable or `SetMetricsEnabled(true)`.
///
/// Cost discipline: when disabled, instrumented call sites pay one
/// relaxed atomic load (`MetricsEnabled()`) and never read the clock.
/// When enabled, recording is a relaxed atomic add — no locks on the hot
/// path. The registry mutex is only taken to *look up* a handle, and
/// call sites cache handles in function-local statics.
///
/// Handles returned by the registry are stable for the process lifetime:
/// `Reset()` zeroes values but never invalidates or removes a metric, so
/// cached pointers stay valid.

namespace internal_metrics {
extern std::atomic<bool> g_enabled;
}  // namespace internal_metrics

/// True when metric recording is on (fast path: one relaxed load).
inline bool MetricsEnabled() {
  return internal_metrics::g_enabled.load(std::memory_order_relaxed);
}

/// Turns metric recording on or off process-wide.
void SetMetricsEnabled(bool enabled);

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, incumbent score, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// Adds `delta`; used for accumulated quantities like busy seconds.
  void Add(double delta);
  /// Raises the value to `candidate` when larger (lock-free CAS); used
  /// for running peaks like the pool's maximum queue depth.
  void Max(double candidate);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free latency histogram over log-spaced buckets (4 sub-buckets
/// per octave of nanoseconds, HdrHistogram-style), supporting count, sum,
/// and percentile estimates with <= ~12.5% relative bucket error.
class Histogram {
 public:
  static constexpr size_t kSubBits = 2;
  static constexpr size_t kSub = 1u << kSubBits;          // 4
  static constexpr size_t kBuckets = (64 - kSubBits + 1) * kSub;

  void Record(double seconds);
  void RecordNanos(uint64_t nanos);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_seconds() const;
  /// Approximate quantile (q in [0, 1]) in seconds; 0 when empty.
  double Percentile(double q) const;
  void Reset();

  /// Bucket index of a nanosecond value (exposed for tests).
  static size_t BucketIndex(uint64_t nanos);
  /// Inclusive lower bound (ns) of a bucket (exposed for tests).
  static uint64_t BucketLowerNanos(size_t index);

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// Point-in-time copy of every registered metric, sorted by name. The
/// export layer (obs/metrics_export) renders snapshots rather than
/// walking the registry, so exports are internally consistent and the
/// registry mutex is held only for the copy.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    double sum_seconds = 0.0;
    double p50_seconds = 0.0;
    double p95_seconds = 0.0;
    double p99_seconds = 0.0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// JSON string-escapes `value`: quote, backslash, and control characters
/// (the latter as \u00XX) — metric names are caller-supplied and must not
/// be able to break the exported document.
std::string JsonEscape(const std::string& value);

/// Name-addressed registry of all metrics in the process. Names are
/// stored in sorted maps so every export is deterministically ordered.
class MetricsRegistry {
 public:
  /// The process-wide registry (created on first use, never destroyed).
  static MetricsRegistry& Get();

  /// Returns the metric registered under `name`, creating it on first
  /// use. The returned reference is valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Lookup without registration; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Zeroes every metric's value. Registrations (and handles) survive.
  void Reset();

  /// Consistent point-in-time copy of every metric (sorted by name).
  MetricsSnapshot Snapshot() const;

  /// One-line JSON snapshot with deterministic field ordering:
  /// {"counters":{...},"gauges":{...},"histograms":{...}}. Histograms
  /// report count, sum_s, p50_s, p95_s, p99_s.
  std::string ToJson() const;

 private:
  MetricsRegistry() = default;

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DBTUNE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      DBTUNE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DBTUNE_GUARDED_BY(mu_);
};

/// Records the scope's wall time into `histogram` on destruction; does
/// nothing (and never reads the clock) when metrics are disabled at
/// construction time.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* histogram)
      : histogram_(MetricsEnabled() ? histogram : nullptr),
        start_nanos_(histogram_ != nullptr ? MonotonicNanos() : 0) {}
  ~ScopedLatency() {
    if (histogram_ != nullptr) {
      histogram_->RecordNanos(MonotonicNanos() - start_nanos_);
    }
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_nanos_;
};

/// Test-only RAII guard around the metrics state: flips recording to
/// `enable` for the scope, then restores the previous flag and zeroes
/// every metric value on destruction (handles stay valid — `Reset()`
/// never unregisters). Replaces the save-flag / restore / manual-Reset
/// boilerplate that tests used to hand-roll and routinely forgot.
class ScopedMetricsForTest {
 public:
  explicit ScopedMetricsForTest(bool enable = true)
      : previous_(MetricsEnabled()) {
    SetMetricsEnabled(enable);
    MetricsRegistry::Get().Reset();
  }
  ~ScopedMetricsForTest() {
    SetMetricsEnabled(previous_);
    MetricsRegistry::Get().Reset();
  }

  ScopedMetricsForTest(const ScopedMetricsForTest&) = delete;
  ScopedMetricsForTest& operator=(const ScopedMetricsForTest&) = delete;

 private:
  bool previous_;
};

}  // namespace dbtune::obs

#endif  // DBTUNE_OBS_METRICS_H_
