#ifndef DBTUNE_IMPORTANCE_GINI_H_
#define DBTUNE_IMPORTANCE_GINI_H_

#include "importance/importance.h"
#include "surrogate/random_forest.h"

namespace dbtune {

/// Tuneful's Gini-score ranking: fit a random forest and count how often
/// each knob is used in tree splits — important knobs discriminate more
/// samples and are picked for splits more frequently.
class GiniImportance final : public ImportanceMeasure {
 public:
  explicit GiniImportance(uint64_t seed = 97,
                          RandomForestOptions forest_options = {});

  Result<std::vector<double>> Rank(const ImportanceInput& input) override;
  std::string name() const override { return "Gini"; }

  /// R^2 of the forest fit on the training data (Figure 4 right).
  double last_fit_r_squared() const { return last_r_squared_; }

 private:
  uint64_t seed_;
  RandomForestOptions forest_options_;
  double last_r_squared_ = 0.0;
};

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_GINI_H_
