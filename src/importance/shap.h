#ifndef DBTUNE_IMPORTANCE_SHAP_H_
#define DBTUNE_IMPORTANCE_SHAP_H_

#include "importance/importance.h"

namespace dbtune {

/// SHAP options.
struct ShapOptions {
  /// Configurations to explain (better-than-default preferred).
  size_t max_explained = 24;
  /// Monte-Carlo permutations per explained configuration.
  size_t permutations = 6;
  size_t forest_trees = 30;
};

/// SHAP-based tunability ranking (Lundberg & Lee 2017, applied as in the
/// paper): fit a surrogate, compute Shapley values of well-performing
/// configurations against the *default* configuration as base (the
/// paper's modification), and score each knob by the average of its
/// positive SHAP values. Measures how much tuning the knob away from its
/// default can *gain* — knobs whose changes only hurt get zero.
class ShapImportance final : public ImportanceMeasure {
 public:
  explicit ShapImportance(ShapOptions options = {}, uint64_t seed = 97);

  Result<std::vector<double>> Rank(const ImportanceInput& input) override;
  std::string name() const override { return "SHAP"; }

  double last_fit_r_squared() const { return last_r_squared_; }

 private:
  ShapOptions options_;
  uint64_t seed_;
  double last_r_squared_ = 0.0;
};

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_SHAP_H_
