#ifndef DBTUNE_IMPORTANCE_LASSO_H_
#define DBTUNE_IMPORTANCE_LASSO_H_

#include "importance/importance.h"

namespace dbtune {

/// Lasso options.
struct LassoOptions {
  /// Regularization as a fraction of lambda_max (the smallest lambda that
  /// zeroes every coefficient).
  double lambda_fraction = 0.01;
  size_t max_sweeps = 120;
  double tolerance = 1e-6;
  /// Cross terms are built among the `max_cross_features` knobs most
  /// correlated with the target (the full degree-2 expansion of 197 knobs
  /// would need ~19k columns; OtterTune's datasets are narrower after its
  /// pre-pruning, so this cap preserves the method at our scale).
  size_t max_cross_features = 40;
};

/// OtterTune's Lasso-based knob ranking: L1-regularized linear regression
/// over second-degree polynomial features (linear + squares + capped cross
/// terms), solved by coordinate descent. A knob's importance is the
/// largest absolute standardized coefficient among terms involving it.
class LassoImportance final : public ImportanceMeasure {
 public:
  explicit LassoImportance(LassoOptions options = {}, uint64_t seed = 97);

  Result<std::vector<double>> Rank(const ImportanceInput& input) override;
  std::string name() const override { return "Lasso"; }

  /// R^2 of the final lasso fit on the training data (for the paper's
  /// sensitivity analysis, Figure 4 right).
  double last_fit_r_squared() const { return last_r_squared_; }

 private:
  LassoOptions options_;
  uint64_t seed_;
  double last_r_squared_ = 0.0;
};

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_LASSO_H_
