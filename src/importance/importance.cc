#include "importance/importance.h"

#include "importance/ablation.h"
#include "importance/fanova.h"
#include "importance/gini.h"
#include "importance/lasso.h"
#include "importance/shap.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

const char* MeasurementTypeName(MeasurementType type) {
  switch (type) {
    case MeasurementType::kLasso:
      return "Lasso";
    case MeasurementType::kGini:
      return "Gini";
    case MeasurementType::kFanova:
      return "fANOVA";
    case MeasurementType::kAblation:
      return "Ablation";
    case MeasurementType::kShap:
      return "SHAP";
  }
  return "?";
}

std::vector<size_t> TopKnobs(const std::vector<double>& importance, size_t k) {
  std::vector<size_t> order = ArgSortDescending(importance);
  if (order.size() > k) order.resize(k);
  return order;
}

Result<ImportanceInput> MakeImportanceInput(
    const ConfigurationSpace& space, const std::vector<Configuration>& configs,
    const std::vector<double>& scores, const Configuration& default_config,
    double default_score) {
  if (configs.empty() || configs.size() != scores.size()) {
    return Status::InvalidArgument("configs/scores must be non-empty and "
                                   "aligned");
  }
  ImportanceInput input;
  input.space = &space;
  input.unit_x.reserve(configs.size());
  for (const Configuration& config : configs) {
    if (config.size() != space.dimension()) {
      return Status::InvalidArgument("configuration arity mismatch");
    }
    input.unit_x.push_back(space.ToUnit(config));
  }
  input.scores = scores;
  input.default_unit = space.ToUnit(default_config);
  input.default_score = default_score;
  return input;
}

std::unique_ptr<ImportanceMeasure> CreateImportanceMeasure(
    MeasurementType type, uint64_t seed) {
  switch (type) {
    case MeasurementType::kLasso:
      return std::make_unique<LassoImportance>(LassoOptions{}, seed);
    case MeasurementType::kGini:
      return std::make_unique<GiniImportance>(seed);
    case MeasurementType::kFanova:
      return std::make_unique<FanovaImportance>(FanovaOptions{}, seed);
    case MeasurementType::kAblation:
      return std::make_unique<AblationImportance>(AblationOptions{}, seed);
    case MeasurementType::kShap:
      return std::make_unique<ShapImportance>(ShapOptions{}, seed);
  }
  DBTUNE_CHECK_MSG(false, "unknown measurement type");
  return nullptr;
}

double HoldoutRSquared(const ImportanceInput& input,
                       const std::function<std::unique_ptr<Regressor>()>&
                           factory,
                       uint64_t seed) {
  const size_t n = input.unit_x.size();
  if (n < 8) return 0.0;
  Rng rng(seed ^ 0xF01D);
  std::vector<size_t> order = rng.Permutation(n);
  const size_t train_count = (3 * n) / 4;
  FeatureMatrix train_x, test_x;
  std::vector<double> train_y, test_y;
  for (size_t i = 0; i < n; ++i) {
    if (i < train_count) {
      train_x.push_back(input.unit_x[order[i]]);
      train_y.push_back(input.scores[order[i]]);
    } else {
      test_x.push_back(input.unit_x[order[i]]);
      test_y.push_back(input.scores[order[i]]);
    }
  }
  std::unique_ptr<Regressor> model = factory();
  if (!model->Fit(train_x, train_y).ok()) return 0.0;
  std::vector<double> predicted;
  predicted.reserve(test_x.size());
  for (const auto& row : test_x) predicted.push_back(model->Predict(row));
  return RSquared(test_y, predicted);
}

std::vector<MeasurementType> AllMeasurements() {
  return {MeasurementType::kLasso, MeasurementType::kGini,
          MeasurementType::kFanova, MeasurementType::kAblation,
          MeasurementType::kShap};
}

}  // namespace dbtune
