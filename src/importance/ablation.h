#ifndef DBTUNE_IMPORTANCE_ABLATION_H_
#define DBTUNE_IMPORTANCE_ABLATION_H_

#include "importance/importance.h"

namespace dbtune {

/// Ablation-analysis options.
struct AblationOptions {
  /// How many well-performing target configurations to trace paths to.
  size_t max_targets = 12;
  size_t forest_trees = 30;
};

/// Ablation analysis (Biedenkapp et al. 2017): fit a surrogate, then for
/// each configuration better than the default walk a greedy path from the
/// default to it, flipping at each step the knob whose change the
/// surrogate predicts to help most. A knob's importance is the average
/// predicted improvement credited to its flips.
///
/// Depends on the sample set containing configurations better than the
/// default — its documented weakness when defaults are robust.
class AblationImportance final : public ImportanceMeasure {
 public:
  explicit AblationImportance(AblationOptions options = {},
                              uint64_t seed = 97);

  Result<std::vector<double>> Rank(const ImportanceInput& input) override;
  std::string name() const override { return "Ablation"; }

  double last_fit_r_squared() const { return last_r_squared_; }

 private:
  AblationOptions options_;
  uint64_t seed_;
  double last_r_squared_ = 0.0;
};

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_ABLATION_H_
