#include "importance/shap.h"

#include <algorithm>

#include "surrogate/random_forest.h"
#include "util/random.h"
#include "util/stats.h"

namespace dbtune {

ShapImportance::ShapImportance(ShapOptions options, uint64_t seed)
    : options_(options), seed_(seed) {}

Result<std::vector<double>> ShapImportance::Rank(
    const ImportanceInput& input) {
  RandomForestOptions forest_options;
  forest_options.num_trees = options_.forest_trees;
  forest_options.seed = seed_;
  RandomForest forest(forest_options);
  DBTUNE_RETURN_IF_ERROR(forest.Fit(input.unit_x, input.scores));

  last_r_squared_ = HoldoutRSquared(
      input,
      [&] { return std::make_unique<RandomForest>(forest_options); },
      seed_);

  // Explanation set: prefer configurations that beat the default (their
  // SHAP values say which knob changes push performance up from the
  // default); pad with the best observed otherwise.
  std::vector<size_t> order = ArgSortDescending(input.scores);
  std::vector<size_t> explained;
  for (size_t id : order) {
    if (input.scores[id] > input.default_score ||
        explained.size() < options_.max_explained / 2) {
      explained.push_back(id);
    }
    if (explained.size() >= options_.max_explained) break;
  }

  const size_t d = input.unit_x.front().size();
  Rng rng(seed_ ^ 0x5A4B);
  std::vector<double> positive_sum(d, 0.0);
  std::vector<double> phi(d);

  for (size_t id : explained) {
    const std::vector<double>& x = input.unit_x[id];
    std::fill(phi.begin(), phi.end(), 0.0);

    // Monte-Carlo Shapley: walk random permutations from the default
    // toward x, crediting each knob its marginal prediction delta.
    for (size_t p = 0; p < options_.permutations; ++p) {
      std::vector<size_t> perm = rng.Permutation(d);
      std::vector<double> z = input.default_unit;
      double prev = forest.Predict(z);
      for (size_t j : perm) {
        if (std::abs(z[j] - x[j]) < 1e-12) continue;
        z[j] = x[j];
        const double next = forest.Predict(z);
        phi[j] += next - prev;
        prev = next;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      const double value = phi[j] / static_cast<double>(options_.permutations);
      if (value > 0.0) positive_sum[j] += value;
    }
  }

  if (!explained.empty()) {
    for (double& v : positive_sum) {
      v /= static_cast<double>(explained.size());
    }
  }
  return positive_sum;
}

}  // namespace dbtune
