#include "importance/incremental.h"

#include <algorithm>

#include "dbms/environment.h"
#include "util/logging.h"

namespace dbtune {

IncrementalOptions IncreasingSchedule(size_t iterations_per_phase) {
  IncrementalOptions options;
  options.phase_sizes = {5, 10, 15, 20};
  options.iterations_per_phase = iterations_per_phase;
  return options;
}

IncrementalOptions DecreasingSchedule(size_t iterations_per_phase) {
  IncrementalOptions options;
  options.phase_sizes = {40, 20, 10, 5};
  options.iterations_per_phase = iterations_per_phase;
  return options;
}

Result<IncrementalResult> RunIncrementalSession(
    DbmsSimulator* simulator, const std::vector<size_t>& ranked_knobs,
    const IncrementalOptions& options) {
  if (options.phase_sizes.empty()) {
    return Status::InvalidArgument("phase_sizes must be non-empty");
  }
  for (size_t size : options.phase_sizes) {
    if (size == 0 || size > ranked_knobs.size()) {
      return Status::InvalidArgument("phase size out of range");
    }
  }

  IncrementalResult result;
  double best_objective = 0.0;
  double best_improvement = 0.0;
  bool first_phase = true;

  // Observations carried across phases, in full-space knob/value pairs.
  struct CarriedObservation {
    std::vector<std::pair<size_t, double>> values;  // (full knob id, value)
    double score = 0.0;
  };
  std::vector<CarriedObservation> carried;

  uint64_t phase_seed = options.seed;
  for (size_t size : options.phase_sizes) {
    std::vector<size_t> knobs(ranked_knobs.begin(),
                              ranked_knobs.begin() + static_cast<long>(size));
    TuningEnvironment env(simulator, knobs);
    if (first_phase) {
      best_objective = env.default_objective();
      best_improvement = 0.0;
      first_phase = false;
    }

    OptimizerOptions optimizer_options;
    optimizer_options.seed = phase_seed++;
    std::unique_ptr<Optimizer> optimizer =
        CreateOptimizer(options.optimizer, env.space(), optimizer_options);
    optimizer->SetReferenceScore(env.default_score());

    // Warm start with the previous phase's observations, re-expressed in
    // this phase's subspace (missing knobs at their defaults).
    const Configuration sub_default = env.space().Default();
    for (const CarriedObservation& obs : carried) {
      Configuration sub = sub_default;
      for (const auto& [full_id, value] : obs.values) {
        for (size_t i = 0; i < knobs.size(); ++i) {
          if (knobs[i] == full_id) {
            sub[i] = value;
            break;
          }
        }
      }
      optimizer->Observe(sub, obs.score);
    }

    for (size_t iter = 0; iter < options.iterations_per_phase; ++iter) {
      const Configuration config = optimizer->Suggest();
      const Observation obs = env.Evaluate(config);
      optimizer->ObserveWithMetrics(obs.config, obs.score,
                                    obs.internal_metrics);
      if (!obs.failed) {
        const double improvement = env.ImprovementPercentOf(obs.objective);
        if (improvement > best_improvement) {
          best_improvement = improvement;
          best_objective = obs.objective;
        }
      }
      result.best_objective_trace.push_back(best_objective);
      result.improvement_trace.push_back(best_improvement);
    }

    // Carry this phase's observations forward.
    carried.clear();
    const std::vector<Observation>& history = env.history();
    for (const Observation& obs : history) {
      CarriedObservation c;
      c.score = obs.score;
      for (size_t i = 0; i < knobs.size(); ++i) {
        c.values.emplace_back(knobs[i], obs.config[i]);
      }
      carried.push_back(std::move(c));
    }
  }

  result.final_improvement = best_improvement;
  return result;
}

}  // namespace dbtune
