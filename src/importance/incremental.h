#ifndef DBTUNE_IMPORTANCE_INCREMENTAL_H_
#define DBTUNE_IMPORTANCE_INCREMENTAL_H_

#include <vector>

#include "dbms/simulator.h"
#include "optimizer/optimizer.h"

namespace dbtune {

/// Direction of incremental knob selection: OtterTune grows the knob set
/// over time, Tuneful shrinks it.
enum class IncrementalDirection { kIncrease, kDecrease };

/// Options for an incremental knob-selection session.
struct IncrementalOptions {
  /// Knob-set sizes per phase, in phase order (e.g. {5,10,15,20} for the
  /// increasing heuristic). Sizes index into the importance ranking.
  std::vector<size_t> phase_sizes;
  /// Tuning iterations spent in each phase.
  size_t iterations_per_phase = 50;
  OptimizerType optimizer = OptimizerType::kVanillaBo;
  uint64_t seed = 1;
};

/// Default phase schedules used in the paper's Figure 6 comparison.
IncrementalOptions IncreasingSchedule(size_t iterations_per_phase = 50);
IncrementalOptions DecreasingSchedule(size_t iterations_per_phase = 50);

/// Outcome of an incremental session.
struct IncrementalResult {
  /// Best raw objective after each iteration (global across phases).
  std::vector<double> best_objective_trace;
  /// Best-so-far improvement (%) after each iteration.
  std::vector<double> improvement_trace;
  double final_improvement = 0.0;
};

/// Runs one incremental knob-selection tuning session on `simulator`:
/// each phase tunes the top `phase_sizes[p]` knobs of `ranked_knobs` with
/// a fresh optimizer warm-started from the previous phase's observations
/// (values of knobs leaving the set are dropped; knobs entering start at
/// their defaults).
[[nodiscard]] Result<IncrementalResult> RunIncrementalSession(
    DbmsSimulator* simulator, const std::vector<size_t>& ranked_knobs,
    const IncrementalOptions& options);

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_INCREMENTAL_H_
