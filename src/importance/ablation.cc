#include "importance/ablation.h"

#include <algorithm>
#include <cmath>

#include "surrogate/random_forest.h"
#include "util/stats.h"

namespace dbtune {

AblationImportance::AblationImportance(AblationOptions options, uint64_t seed)
    : options_(options), seed_(seed) {}

Result<std::vector<double>> AblationImportance::Rank(
    const ImportanceInput& input) {
  RandomForestOptions forest_options;
  forest_options.num_trees = options_.forest_trees;
  forest_options.seed = seed_;
  RandomForest forest(forest_options);
  DBTUNE_RETURN_IF_ERROR(forest.Fit(input.unit_x, input.scores));

  last_r_squared_ = HoldoutRSquared(
      input,
      [&] { return std::make_unique<RandomForest>(forest_options); },
      seed_);

  // Targets: configurations observed to beat the default, best first. If
  // none do, fall back to the best observed ones (little signal, which is
  // precisely the measurement's failure mode on robust defaults).
  std::vector<size_t> order = ArgSortDescending(input.scores);
  std::vector<size_t> targets;
  for (size_t id : order) {
    if (input.scores[id] > input.default_score || targets.size() < 3) {
      targets.push_back(id);
    }
    if (targets.size() >= options_.max_targets) break;
  }

  const size_t d = input.unit_x.front().size();
  std::vector<double> importance(d, 0.0);

  for (size_t target_id : targets) {
    const std::vector<double>& target = input.unit_x[target_id];
    std::vector<double> current = input.default_unit;
    double current_pred = forest.Predict(current);

    std::vector<size_t> remaining;
    for (size_t j = 0; j < d; ++j) {
      if (std::abs(target[j] - current[j]) > 1e-9) remaining.push_back(j);
    }

    while (!remaining.empty()) {
      double best_pred = -1e300;
      size_t best_pos = 0;
      for (size_t p = 0; p < remaining.size(); ++p) {
        const size_t j = remaining[p];
        const double saved = current[j];
        current[j] = target[j];
        const double pred = forest.Predict(current);
        current[j] = saved;
        if (pred > best_pred) {
          best_pred = pred;
          best_pos = p;
        }
      }
      const size_t j = remaining[best_pos];
      current[j] = target[j];
      importance[j] += std::max(0.0, best_pred - current_pred);
      current_pred = best_pred;
      remaining.erase(remaining.begin() + static_cast<long>(best_pos));
    }
  }

  if (!targets.empty()) {
    for (double& v : importance) v /= static_cast<double>(targets.size());
  }
  return importance;
}

}  // namespace dbtune
