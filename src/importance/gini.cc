#include "importance/gini.h"

#include "util/stats.h"

namespace dbtune {

GiniImportance::GiniImportance(uint64_t seed,
                               RandomForestOptions forest_options)
    : seed_(seed), forest_options_(forest_options) {}

Result<std::vector<double>> GiniImportance::Rank(
    const ImportanceInput& input) {
  RandomForestOptions options = forest_options_;
  options.seed = seed_;
  options.num_trees = 30;
  RandomForest forest(options);
  DBTUNE_RETURN_IF_ERROR(forest.Fit(input.unit_x, input.scores));

  last_r_squared_ = HoldoutRSquared(
      input,
      [&] { return std::make_unique<RandomForest>(options); },
      seed_);

  return forest.SplitCountImportance();
}

}  // namespace dbtune
