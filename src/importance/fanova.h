#ifndef DBTUNE_IMPORTANCE_FANOVA_H_
#define DBTUNE_IMPORTANCE_FANOVA_H_

#include "importance/importance.h"
#include "surrogate/random_forest.h"

namespace dbtune {

/// fANOVA options.
struct FanovaOptions {
  size_t num_trees = 16;
  size_t min_samples_leaf = 3;
  size_t max_depth = 14;
};

/// Functional ANOVA (Hutter et al. 2014): fits a random forest, then
/// decomposes each tree's variance over the unit cube into per-knob
/// marginal components via the leaf partition boxes. A knob's importance
/// is the average fraction of total variance its unary marginal explains.
class FanovaImportance final : public ImportanceMeasure {
 public:
  explicit FanovaImportance(FanovaOptions options = {}, uint64_t seed = 97);

  Result<std::vector<double>> Rank(const ImportanceInput& input) override;
  std::string name() const override { return "fANOVA"; }

  double last_fit_r_squared() const { return last_r_squared_; }

 private:
  FanovaOptions options_;
  uint64_t seed_;
  double last_r_squared_ = 0.0;
};

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_FANOVA_H_
