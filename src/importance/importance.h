#ifndef DBTUNE_IMPORTANCE_IMPORTANCE_H_
#define DBTUNE_IMPORTANCE_IMPORTANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "knobs/configuration_space.h"
#include "surrogate/regressor.h"
#include "util/status.h"

namespace dbtune {

/// Training data for knob selection: unit-encoded configurations with
/// maximize-direction scores, plus the default configuration's encoding
/// and score (the anchor of the tunability-based measurements).
struct ImportanceInput {
  const ConfigurationSpace* space = nullptr;
  FeatureMatrix unit_x;
  std::vector<double> scores;
  std::vector<double> default_unit;
  double default_score = 0.0;
};

/// The five importance measurements of the paper's Table 2.
enum class MeasurementType {
  kLasso = 0,
  kGini,
  kFanova,
  kAblation,
  kShap,
};

/// Display name ("Lasso", "Gini", "fANOVA", "Ablation", "SHAP").
const char* MeasurementTypeName(MeasurementType type);

/// A knob-importance measurement: maps observations to a non-negative
/// importance score per knob (higher = more worth tuning).
class ImportanceMeasure {
 public:
  virtual ~ImportanceMeasure() = default;

  /// Per-knob importance; size equals the space dimension.
  [[nodiscard]] virtual Result<std::vector<double>> Rank(
      const ImportanceInput& input) = 0;

  virtual std::string name() const = 0;
};

/// Indices of the `k` highest-importance knobs, in descending importance.
std::vector<size_t> TopKnobs(const std::vector<double>& importance, size_t k);

/// Builds an `ImportanceInput` from parallel configuration/score vectors.
[[nodiscard]] Result<ImportanceInput> MakeImportanceInput(
    const ConfigurationSpace& space, const std::vector<Configuration>& configs,
    const std::vector<double>& scores, const Configuration& default_config,
    double default_score);

/// Instantiates one of the five measurements.
std::unique_ptr<ImportanceMeasure> CreateImportanceMeasure(
    MeasurementType type, uint64_t seed = 97);

/// Held-out R² of a model family on the measurement input: fits a fresh
/// model on 75% of the samples and scores the remaining 25% (the paper's
/// Figure 4 validation metric). `factory` creates an unfitted model.
double HoldoutRSquared(const ImportanceInput& input,
                       const std::function<std::unique_ptr<Regressor>()>&
                           factory,
                       uint64_t seed);

/// All five measurement types in Table 2 order.
std::vector<MeasurementType> AllMeasurements();

}  // namespace dbtune

#endif  // DBTUNE_IMPORTANCE_IMPORTANCE_H_
