#include "importance/fanova.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/stats.h"

namespace dbtune {

FanovaImportance::FanovaImportance(FanovaOptions options, uint64_t seed)
    : options_(options), seed_(seed) {}

Result<std::vector<double>> FanovaImportance::Rank(
    const ImportanceInput& input) {
  RandomForestOptions forest_options;
  forest_options.num_trees = options_.num_trees;
  forest_options.min_samples_leaf = options_.min_samples_leaf;
  forest_options.max_depth = options_.max_depth;
  forest_options.seed = seed_;
  RandomForest forest(forest_options);
  DBTUNE_RETURN_IF_ERROR(forest.Fit(input.unit_x, input.scores));

  last_r_squared_ = HoldoutRSquared(
      input,
      [&] { return std::make_unique<RandomForest>(forest_options); },
      seed_);

  const size_t d = input.unit_x.front().size();
  std::vector<double> importance(d, 0.0);
  size_t contributing_trees = 0;

  for (const RegressionTree& tree : forest.trees()) {
    const std::vector<RegressionTree::LeafBox> boxes = tree.LeafBoxes();

    // Total mean/variance of the tree function over the uniform unit cube.
    double mean = 0.0;
    for (const auto& box : boxes) mean += box.value * box.volume;
    double total_var = 0.0;
    for (const auto& box : boxes) {
      total_var += box.value * box.value * box.volume;
    }
    total_var -= mean * mean;
    if (total_var <= 1e-12) continue;
    ++contributing_trees;

    // Unary marginal variance per dimension via a sweep over leaf bounds.
    for (size_t j = 0; j < d; ++j) {
      // Event map: at a bound, the marginal gains/loses value * vol_{-j}.
      std::map<double, double> events;
      bool varies = false;
      for (const auto& box : boxes) {
        const double span = box.upper[j] - box.lower[j];
        if (span <= 0.0) continue;
        const double weight = box.value * box.volume / span;
        events[box.lower[j]] += weight;
        events[box.upper[j]] -= weight;
        if (span < 1.0 - 1e-12) varies = true;
      }
      if (!varies) continue;  // no split on j: zero marginal variance

      double marginal_var = 0.0;
      double level = 0.0;
      double prev = 0.0;
      for (const auto& [position, delta] : events) {
        if (position > prev) {
          const double centered = level - mean;
          marginal_var += centered * centered * (position - prev);
        }
        level += delta;
        prev = position;
      }
      if (prev < 1.0) {
        const double centered = level - mean;
        marginal_var += centered * centered * (1.0 - prev);
      }
      importance[j] += marginal_var / total_var;
    }
  }

  if (contributing_trees > 0) {
    for (double& v : importance) {
      v /= static_cast<double>(contributing_trees);
    }
  }
  return importance;
}

}  // namespace dbtune
