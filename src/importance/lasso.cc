#include "importance/lasso.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/matrix.h"
#include "util/stats.h"

namespace dbtune {

LassoImportance::LassoImportance(LassoOptions options, uint64_t seed)
    : options_(options), seed_(seed) {}

Result<std::vector<double>> LassoImportance::Rank(
    const ImportanceInput& input) {
  DBTUNE_RETURN_IF_ERROR(ValidateTrainingData(input.unit_x, input.scores));
  (void)seed_;  // deterministic; kept for interface symmetry
  const size_t n = input.unit_x.size();
  const size_t d = input.unit_x.front().size();

  // --- Build the degree-2 feature set: linear, squares, capped cross
  // terms. Each column remembers the knob(s) it involves.
  struct Term {
    int a;
    int b;  // -1 for linear/square terms' second slot
  };
  std::vector<Term> terms;
  terms.reserve(2 * d + options_.max_cross_features *
                            (options_.max_cross_features - 1) / 2);
  for (size_t j = 0; j < d; ++j) terms.push_back({static_cast<int>(j), -1});
  for (size_t j = 0; j < d; ++j) {
    terms.push_back({static_cast<int>(j), static_cast<int>(j)});
  }

  // Rank knobs by |correlation| with the target to pick cross-term
  // participants.
  std::vector<double> corr(d, 0.0);
  {
    std::vector<double> column(n);
    for (size_t j = 0; j < d; ++j) {
      for (size_t i = 0; i < n; ++i) column[i] = input.unit_x[i][j];
      corr[j] = std::abs(PearsonCorrelation(column, input.scores));
    }
  }
  std::vector<size_t> cross = ArgSortDescending(corr);
  if (cross.size() > options_.max_cross_features) {
    cross.resize(options_.max_cross_features);
  }
  for (size_t p = 0; p < cross.size(); ++p) {
    for (size_t q = p + 1; q < cross.size(); ++q) {
      terms.push_back(
          {static_cast<int>(cross[p]), static_cast<int>(cross[q])});
    }
  }
  const size_t m = terms.size();

  // --- Materialize standardized columns.
  FeatureMatrix columns(m, std::vector<double>(n));
  for (size_t t = 0; t < m; ++t) {
    for (size_t i = 0; i < n; ++i) {
      const double va = input.unit_x[i][static_cast<size_t>(terms[t].a)];
      columns[t][i] =
          terms[t].b < 0
              ? va
              : va * input.unit_x[i][static_cast<size_t>(terms[t].b)];
    }
    const double mean = Mean(columns[t]);
    double sd = StdDev(columns[t]);
    if (sd < 1e-12) sd = 1.0;
    for (double& v : columns[t]) v = (v - mean) / sd;
  }
  std::vector<double> y(n);
  const double y_mean = Mean(input.scores);
  double y_sd = StdDev(input.scores);
  if (y_sd < 1e-12) y_sd = 1.0;
  for (size_t i = 0; i < n; ++i) y[i] = (input.scores[i] - y_mean) / y_sd;

  // --- Coordinate descent. With standardized columns, each column's
  // squared norm is n.
  std::vector<double> beta(m, 0.0);
  std::vector<double> residual = y;
  double lambda_max = 0.0;
  for (size_t t = 0; t < m; ++t) {
    lambda_max = std::max(lambda_max, std::abs(Dot(columns[t], y)));
  }
  const double lambda = options_.lambda_fraction * lambda_max;
  const double norm_sq = static_cast<double>(n);

  for (size_t sweep = 0; sweep < options_.max_sweeps; ++sweep) {
    double max_change = 0.0;
    for (size_t t = 0; t < m; ++t) {
      const double rho = Dot(columns[t], residual) + beta[t] * norm_sq;
      double next = 0.0;
      if (rho > lambda) {
        next = (rho - lambda) / norm_sq;
      } else if (rho < -lambda) {
        next = (rho + lambda) / norm_sq;
      }
      const double delta = next - beta[t];
      if (delta != 0.0) {
        for (size_t i = 0; i < n; ++i) residual[i] -= delta * columns[t][i];
        beta[t] = next;
        max_change = std::max(max_change, std::abs(delta));
      }
    }
    if (max_change < options_.tolerance) break;
  }

  // Held-out R^2: refit the same lasso on 75% of the rows and score the
  // remaining 25% (the Figure 4 validation metric; with ~2d polynomial
  // columns the training fit is uninformative).
  {
    Rng split_rng(seed_ ^ 0xF01D);
    std::vector<size_t> order = split_rng.Permutation(n);
    const size_t train_count = (3 * n) / 4;
    std::vector<size_t> train(order.begin(),
                              order.begin() + static_cast<long>(train_count));
    std::vector<size_t> test(order.begin() + static_cast<long>(train_count),
                             order.end());

    std::vector<double> beta_cv(m, 0.0);
    std::vector<double> residual_cv(train.size());
    for (size_t i = 0; i < train.size(); ++i) residual_cv[i] = y[train[i]];
    std::vector<double> col(train.size());
    for (size_t sweep = 0; sweep < options_.max_sweeps / 2; ++sweep) {
      double max_change = 0.0;
      for (size_t t = 0; t < m; ++t) {
        double norm_cv = 0.0, rho = 0.0;
        for (size_t i = 0; i < train.size(); ++i) {
          col[i] = columns[t][train[i]];
          norm_cv += col[i] * col[i];
          rho += col[i] * residual_cv[i];
        }
        if (norm_cv < 1e-12) continue;
        rho += beta_cv[t] * norm_cv;
        const double lambda_cv = lambda * norm_cv / norm_sq;
        double next = 0.0;
        if (rho > lambda_cv) {
          next = (rho - lambda_cv) / norm_cv;
        } else if (rho < -lambda_cv) {
          next = (rho + lambda_cv) / norm_cv;
        }
        const double delta = next - beta_cv[t];
        if (delta != 0.0) {
          for (size_t i = 0; i < train.size(); ++i) {
            residual_cv[i] -= delta * col[i];
          }
          beta_cv[t] = next;
          max_change = std::max(max_change, std::abs(delta));
        }
      }
      if (max_change < options_.tolerance) break;
    }
    std::vector<double> truth, predicted;
    for (size_t i : test) {
      double pred = 0.0;
      for (size_t t = 0; t < m; ++t) {
        if (beta_cv[t] != 0.0) pred += beta_cv[t] * columns[t][i];
      }
      truth.push_back(y[i]);
      predicted.push_back(pred);
    }
    last_r_squared_ = RSquared(truth, predicted);
  }

  // --- Importance: max |coefficient| among terms involving the knob.
  std::vector<double> importance(d, 0.0);
  for (size_t t = 0; t < m; ++t) {
    const double magnitude = std::abs(beta[t]);
    importance[static_cast<size_t>(terms[t].a)] =
        std::max(importance[static_cast<size_t>(terms[t].a)], magnitude);
    if (terms[t].b >= 0) {
      importance[static_cast<size_t>(terms[t].b)] =
          std::max(importance[static_cast<size_t>(terms[t].b)], magnitude);
    }
  }
  return importance;
}

}  // namespace dbtune
