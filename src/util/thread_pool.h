#ifndef DBTUNE_UTIL_THREAD_POOL_H_
#define DBTUNE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dbtune {

/// Fixed-size thread pool with a single shared task queue (no work
/// stealing; the library's parallel regions are coarse enough that a
/// plain queue is contention-free in practice).
///
/// A pool of size 1 spawns no threads at all: `Submit` runs the task
/// inline and `ParallelFor` degenerates to a sequential loop, so every
/// call site stays exercisable single-threaded (tests, TSan, valgrind).
class ThreadPool {
 public:
  /// Creates `size` logical execution lanes. `size == 1` (or 0, which is
  /// clamped to 1) means sequential inline execution with no threads.
  explicit ThreadPool(size_t size);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Logical parallelism (>= 1).
  size_t size() const { return size_; }

  /// Enqueues `task` for asynchronous execution (inline when size()==1).
  /// Tasks must not throw; exceptions from `ParallelFor` bodies are
  /// captured and rethrown by `ParallelFor` itself.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers. Used to
  /// run nested parallel regions inline instead of deadlocking the queue.
  bool InWorkerThread() const;

 private:
  void WorkerLoop(size_t worker);

  size_t size_;
  std::vector<std::thread> workers_;
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ DBTUNE_GUARDED_BY(mu_);
  bool shutdown_ DBTUNE_GUARDED_BY(mu_) = false;
};

/// Splits [begin, end) into chunks of at most `grain` indices and runs
/// `fn(chunk_begin, chunk_end)` for each chunk on `pool`, blocking until
/// every chunk finished. Runs sequentially when `pool` is null, has size
/// 1, the range fits in one grain, or the caller is already a pool worker
/// (nested parallelism executes inline — the queue is never waited on
/// from inside itself).
///
/// The first exception thrown by any chunk is rethrown on the calling
/// thread after all chunks have drained.
///
/// Determinism contract: `fn` must only write state owned by its index
/// range; with that discipline results are bit-identical for every pool
/// size, because chunk boundaries never depend on thread scheduling.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Process-wide execution context owning the shared thread pool.
///
/// Pool size resolution order: explicit `SetNumThreads`, the
/// `DBTUNE_NUM_THREADS` environment variable, then
/// `std::thread::hardware_concurrency()`.
class ExecutionContext {
 public:
  /// The process-wide context (created on first use).
  static ExecutionContext& Get();

  /// The shared pool (created lazily at the resolved size).
  ThreadPool& pool();

  /// Resolved parallelism without forcing pool creation.
  size_t num_threads();

  /// Rebuilds the pool at `n` lanes (clamped to >= 1). Intended for
  /// benchmarks and tests that sweep thread counts; do not call while
  /// parallel work is in flight.
  void SetNumThreads(size_t n);

 private:
  ExecutionContext() = default;

  /// Resolves the default size from `DBTUNE_NUM_THREADS`, then hardware
  /// concurrency. Caller must hold `mu_`.
  size_t num_threads_locked() const DBTUNE_REQUIRES(mu_);

  Mutex mu_;
  std::unique_ptr<ThreadPool> pool_ DBTUNE_GUARDED_BY(mu_);
  // 0 = resolve from env/hardware on first use
  size_t configured_ DBTUNE_GUARDED_BY(mu_) = 0;
};

/// Shorthand for `ExecutionContext::Get().pool()`.
ThreadPool* GlobalPool();

}  // namespace dbtune

#endif  // DBTUNE_UTIL_THREAD_POOL_H_
