#include "util/random.h"

#include <numeric>

namespace dbtune {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  DBTUNE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DBTUNE_CHECK_MSG(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  if (total <= 0.0) return Index(weights.size());
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  Shuffle(perm);
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  DBTUNE_CHECK(k <= n);
  // Partial Fisher-Yates: only the first k slots are needed.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace dbtune
