#ifndef DBTUNE_UTIL_MUTEX_H_
#define DBTUNE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace dbtune {

/// A std::mutex annotated as a thread-safety capability. libstdc++'s
/// std::mutex carries no capability attributes, so -Wthread-safety cannot
/// reason about it directly; this wrapper (the LevelDB/abseil pattern)
/// restores static lock-discipline checking at zero runtime cost.
class DBTUNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBTUNE_ACQUIRE() { mu_.lock(); }
  void Unlock() DBTUNE_RELEASE() { mu_.unlock(); }
  /// No-op placebo for code paths that hold the lock by construction;
  /// documents the invariant for the analysis.
  void AssertHeld() const DBTUNE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock holder for Mutex, visible to the thread-safety analysis.
class DBTUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DBTUNE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DBTUNE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to dbtune::Mutex. Wait() requires the mutex
/// held, releases it while blocked, and reacquires before returning —
/// exactly the contract the DBTUNE_REQUIRES annotation states.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) DBTUNE_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's scope
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbtune

#endif  // DBTUNE_UTIL_MUTEX_H_
