#ifndef DBTUNE_UTIL_STATUS_H_
#define DBTUNE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dbtune {

/// Error categories used across the library. The library does not use C++
/// exceptions; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Modeled after absl::Status: cheap to copy in
/// the OK case, carries a code plus message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers for the common error categories.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: holds a `T` on success, a non-OK `Status`
/// otherwise. Accessing `value()` on an error aborts the process.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value marks success.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status marks failure.
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The contained status; OK when holding a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Requires `ok()`.
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::move(std::get<T>(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DBTUNE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::dbtune::Status _dbtune_status = (expr);         \
    if (!_dbtune_status.ok()) return _dbtune_status;  \
  } while (false)

}  // namespace dbtune

#endif  // DBTUNE_UTIL_STATUS_H_
