#ifndef DBTUNE_UTIL_STATUS_H_
#define DBTUNE_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace dbtune {

/// Error categories used across the library. The library does not use C++
/// exceptions; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Modeled after absl::Status: cheap to copy in
/// the OK case, carries a code plus message otherwise.
///
/// The class is [[nodiscard]]: silently dropping a returned Status is a
/// compile warning everywhere and a compile error under DBTUNE_WERROR=ON.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers for the common error categories.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union: holds a `T` on success, a non-OK `Status`
/// otherwise. Accessing `value()` on an error aborts the process with the
/// held status's message (the library is exception-free; misuse of an
/// errored Result is a programmer error, not a recoverable condition).
///
/// Like Status, Result is [[nodiscard]].
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value marks success.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status marks failure.
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The contained status; OK when holding a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Aborts (DBTUNE_CHECK) when holding an error.
  const T& value() const& {
    CheckOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    CheckOk();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    DBTUNE_CHECK_MSG(ok(), "Result::value() on error: " +
                               std::get<Status>(rep_).ToString());
  }

  std::variant<T, Status> rep_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DBTUNE_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::dbtune::Status _dbtune_status = (expr);         \
    if (!_dbtune_status.ok()) return _dbtune_status;  \
  } while (false)

#define DBTUNE_STATUS_CONCAT_IMPL_(x, y) x##y
#define DBTUNE_STATUS_CONCAT_(x, y) DBTUNE_STATUS_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T> expression); on error returns its status
/// from the enclosing function, otherwise moves the value into `lhs`.
/// `lhs` may declare a new variable or assign an existing one:
///   DBTUNE_ASSIGN_OR_RETURN(auto solution, SolveSpd(gram, rhs));
#define DBTUNE_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  DBTUNE_ASSIGN_OR_RETURN_IMPL_(                                             \
      DBTUNE_STATUS_CONCAT_(_dbtune_result_, __LINE__), lhs, rexpr)

#define DBTUNE_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                  \
  if (!result.ok()) return result.status();               \
  lhs = std::move(result).value()

}  // namespace dbtune

#endif  // DBTUNE_UTIL_STATUS_H_
