#include "util/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace dbtune {

namespace {

// Cache-block edge for the i-k-j product kernel: 64x64 doubles = 32 KiB,
// three blocks stay resident in a typical 256 KiB L2.
constexpr size_t kBlock = 64;

// Flop threshold below which parallelizing a product costs more than the
// serial loop (pool dispatch is ~microseconds).
constexpr size_t kParallelFlops = 1u << 21;

}  // namespace

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DBTUNE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  const size_t inner = cols_;
  const size_t out_cols = other.cols_;

  // i-k-j with row-pointer hoisting: the inner loop streams one row of
  // `other` and one row of `out` contiguously. Blocking keeps all three
  // row tiles cache-resident for square sizes past a few hundred.
  auto multiply_rows = [&](size_t row_begin, size_t row_end) {
    for (size_t i0 = row_begin; i0 < row_end; i0 += kBlock) {
      const size_t i_max = std::min(row_end, i0 + kBlock);
      for (size_t k0 = 0; k0 < inner; k0 += kBlock) {
        const size_t k_max = std::min(inner, k0 + kBlock);
        for (size_t j0 = 0; j0 < out_cols; j0 += kBlock) {
          const size_t j_max = std::min(out_cols, j0 + kBlock);
          for (size_t i = i0; i < i_max; ++i) {
            const double* a_row = RowPtr(i);
            double* out_row = out.RowPtr(i);
            for (size_t k = k0; k < k_max; ++k) {
              const double v = a_row[k];
              if (v == 0.0) continue;
              const double* b_row = other.RowPtr(k);
              for (size_t j = j0; j < j_max; ++j) {
                out_row[j] += v * b_row[j];
              }
            }
          }
        }
      }
    }
  };

  // Rows partition the output, so parallel chunks never share a write.
  ThreadPool* pool =
      rows_ * inner * out_cols >= kParallelFlops ? GlobalPool() : nullptr;
  ParallelFor(pool, 0, rows_, kBlock, multiply_rows);
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  DBTUNE_CHECK(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

void Matrix::AddDiagonal(double value) {
  DBTUNE_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

Status CholeskyFactorize(Matrix* a) {
  DBTUNE_CHECK(a != nullptr);
  DBTUNE_CHECK(a->rows() == a->cols());
  const size_t n = a->rows();
  Matrix& m = *a;
  // Row-oriented (Cholesky–Crout) update: both dot products below stream
  // two contiguous row prefixes, so the factorization touches memory
  // strictly row-by-row instead of striding down columns.
  for (size_t j = 0; j < n; ++j) {
    const double* row_j = m.RowPtr(j);
    double d = row_j[j];
    for (size_t k = 0; k < j; ++k) d -= row_j[k] * row_j[k];
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::Internal("matrix is not positive definite");
    }
    const double ljj = std::sqrt(d);
    m(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double* row_i = m.RowPtr(i);
      double s = row_i[j];
      for (size_t k = 0; k < j; ++k) s -= row_i[k] * row_j[k];
      row_i[j] = s / ljj;
    }
    double* row_j_mut = m.RowPtr(j);
    for (size_t c = j + 1; c < n; ++c) row_j_mut[c] = 0.0;
  }
  return Status::OK();
}

std::vector<double> SolveLowerTriangular(const Matrix& l,
                                         const std::vector<double>& b) {
  std::vector<double> x;
  SolveLowerTriangularInto(l, b, &x);
  return x;
}

void SolveLowerTriangularInto(const Matrix& l, const std::vector<double>& b,
                              std::vector<double>* x) {
  DBTUNE_CHECK(x != nullptr && x != &b);
  DBTUNE_CHECK(l.rows() == l.cols() && l.rows() == b.size());
  const size_t n = b.size();
  x->resize(n);
  std::vector<double>& out = *x;
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* row = l.RowPtr(i);
    for (size_t k = 0; k < i; ++k) s -= row[k] * out[k];
    out[i] = s / row[i];
  }
}

std::vector<double> SolveUpperTriangularFromLower(
    const Matrix& l, const std::vector<double>& b) {
  DBTUNE_CHECK(l.rows() == l.cols() && l.rows() == b.size());
  const size_t n = b.size();
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("SolveSpd: shape mismatch");
  }
  Matrix l = a;
  DBTUNE_RETURN_IF_ERROR(CholeskyFactorize(&l));
  std::vector<double> y = SolveLowerTriangular(l, b);
  return SolveUpperTriangularFromLower(l, y);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  DBTUNE_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  DBTUNE_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace dbtune
