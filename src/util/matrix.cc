#include "util/matrix.h"

#include <cmath>

namespace dbtune {

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DBTUNE_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += v * other(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& v) const {
  DBTUNE_CHECK(cols_ == v.size());
  std::vector<double> out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * v[c];
    out[r] = acc;
  }
  return out;
}

void Matrix::AddDiagonal(double value) {
  DBTUNE_CHECK(rows_ == cols_);
  for (size_t i = 0; i < rows_; ++i) (*this)(i, i) += value;
}

Status CholeskyFactorize(Matrix* a) {
  DBTUNE_CHECK(a != nullptr);
  DBTUNE_CHECK(a->rows() == a->cols());
  const size_t n = a->rows();
  Matrix& m = *a;
  for (size_t j = 0; j < n; ++j) {
    double d = m(j, j);
    for (size_t k = 0; k < j; ++k) d -= m(j, k) * m(j, k);
    if (d <= 0.0 || !std::isfinite(d)) {
      return Status::Internal("matrix is not positive definite");
    }
    const double ljj = std::sqrt(d);
    m(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = m(i, j);
      for (size_t k = 0; k < j; ++k) s -= m(i, k) * m(j, k);
      m(i, j) = s / ljj;
    }
    for (size_t c = j + 1; c < n; ++c) m(j, c) = 0.0;
  }
  return Status::OK();
}

std::vector<double> SolveLowerTriangular(const Matrix& l,
                                         const std::vector<double>& b) {
  DBTUNE_CHECK(l.rows() == l.cols() && l.rows() == b.size());
  const size_t n = b.size();
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

std::vector<double> SolveUpperTriangularFromLower(
    const Matrix& l, const std::vector<double>& b) {
  DBTUNE_CHECK(l.rows() == l.cols() && l.rows() == b.size());
  const size_t n = b.size();
  std::vector<double> x(n, 0.0);
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("SolveSpd: shape mismatch");
  }
  Matrix l = a;
  DBTUNE_RETURN_IF_ERROR(CholeskyFactorize(&l));
  std::vector<double> y = SolveLowerTriangular(l, b);
  return SolveUpperTriangularFromLower(l, y);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  DBTUNE_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  DBTUNE_CHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace dbtune
