#ifndef DBTUNE_UTIL_THREAD_ANNOTATIONS_H_
#define DBTUNE_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis attributes (-Wthread-safety), exposed as
/// DBTUNE_* macros that compile to nothing on other compilers. Annotate
/// shared state with DBTUNE_GUARDED_BY(mu_) and lock-discipline contracts
/// with DBTUNE_REQUIRES / DBTUNE_ACQUIRE / DBTUNE_RELEASE so the compiler
/// proves lock coverage statically instead of TSan finding races at run
/// time. See util/mutex.h for the annotated Mutex these attach to.

#if defined(__clang__) && (!defined(SWIG))
#define DBTUNE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DBTUNE_THREAD_ANNOTATION_(x)  // no-op on non-clang compilers
#endif

/// Documents that the member it is attached to is protected by the given
/// capability (mutex); reads and writes then require holding it.
#define DBTUNE_GUARDED_BY(x) DBTUNE_THREAD_ANNOTATION_(guarded_by(x))

/// Documents that the *pointee* of the annotated pointer is protected.
#define DBTUNE_PT_GUARDED_BY(x) DBTUNE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the given capability.
#define DBTUNE_REQUIRES(...) \
  DBTUNE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function acquires / releases the capability (mutex lock/unlock).
#define DBTUNE_ACQUIRE(...) \
  DBTUNE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define DBTUNE_RELEASE(...) \
  DBTUNE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capability (guards
/// against self-deadlock on non-reentrant mutexes).
#define DBTUNE_EXCLUDES(...) \
  DBTUNE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Marks a type as a lockable capability / a scoped lock-holder.
#define DBTUNE_CAPABILITY(x) DBTUNE_THREAD_ANNOTATION_(capability(x))
#define DBTUNE_SCOPED_CAPABILITY DBTUNE_THREAD_ANNOTATION_(scoped_lockable)

/// Return-value annotation: the function returns a reference to the
/// capability that guards the returned data.
#define DBTUNE_RETURN_CAPABILITY(x) \
  DBTUNE_THREAD_ANNOTATION_(lock_returned(x))

/// Assertion that the capability is held (runtime-checked elsewhere).
#define DBTUNE_ASSERT_CAPABILITY(x) \
  DBTUNE_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch for functions whose locking pattern the analysis cannot
/// follow (e.g. publish-then-read phase discipline). Use sparingly and
/// document why at the call site.
#define DBTUNE_NO_THREAD_SAFETY_ANALYSIS \
  DBTUNE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DBTUNE_UTIL_THREAD_ANNOTATIONS_H_
