#include "util/table.h"

#include <cstdio>

#include "util/logging.h"

namespace dbtune {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DBTUNE_CHECK(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(headers_);
  std::string sep = "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dbtune
