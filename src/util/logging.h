#ifndef DBTUNE_UTIL_LOGGING_H_
#define DBTUNE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dbtune {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

namespace internal_logging {

/// Emits one formatted log line to stderr (respects the global level).
void Emit(LogLevel level, const char* file, int line, const std::string& msg);

/// Aborts the process after printing a CHECK failure message.
[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& msg);

/// Stream collector used by the logging macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { Emit(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the minimum severity that is actually printed (default: kWarning,
/// so library internals stay quiet in tests and benches). Thread-safe:
/// the level is stored atomically because pool workers log concurrently,
/// and `Emit` writes each line with a single fwrite so concurrent lines
/// never interleave mid-line.
void SetLogLevel(LogLevel level);

/// Current minimum printed severity.
LogLevel GetLogLevel();

/// Usage: DBTUNE_LOG(kInfo) << "fit took " << ms << "ms";
#define DBTUNE_LOG(severity)                                              \
  ::dbtune::internal_logging::LogMessage(::dbtune::LogLevel::severity,    \
                                         __FILE__, __LINE__)              \
      .stream()

/// Invariant check: aborts with a message when `cond` is false. Used for
/// programmer errors (API misuse inside the library), not for recoverable
/// conditions, which return Status.
#define DBTUNE_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dbtune::internal_logging::CheckFail(__FILE__, __LINE__, #cond, ""); \
    }                                                                       \
  } while (false)

#define DBTUNE_CHECK_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::dbtune::internal_logging::CheckFail(__FILE__, __LINE__, #cond,      \
                                            (msg));                         \
    }                                                                       \
  } while (false)

}  // namespace dbtune

#endif  // DBTUNE_UTIL_LOGGING_H_
