#ifndef DBTUNE_UTIL_TABLE_H_
#define DBTUNE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dbtune {

/// Aligned plain-text table used by the bench harnesses to print the
/// paper's tables/figure series to stdout.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal digits.
  static std::string Num(double value, int precision = 2);

  /// Renders the table with a header separator.
  std::string ToString() const;

  /// Prints `ToString()` to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbtune

#endif  // DBTUNE_UTIL_TABLE_H_
