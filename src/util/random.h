#ifndef DBTUNE_UTIL_RANDOM_H_
#define DBTUNE_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace dbtune {

/// Deterministic pseudo-random source. Every stochastic component in the
/// library takes an `Rng` (or a seed) explicitly so runs are reproducible.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    DBTUNE_CHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Standard normal sample scaled to N(mean, stddev^2).
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Uniformly chosen index in [0, size).
  size_t Index(size_t size) {
    DBTUNE_CHECK(size > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(size) - 1));
  }

  /// Draws an index according to non-negative `weights` (need not sum to 1).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// A random permutation of 0..n-1.
  std::vector<size_t> Permutation(size_t n);

  /// `k` distinct indices sampled uniformly from [0, n). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; use to hand sub-components
  /// their own stream without coupling their consumption patterns.
  Rng Fork() { return Rng(engine_()); }

  /// The underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dbtune

#endif  // DBTUNE_UTIL_RANDOM_H_
