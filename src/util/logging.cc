#include "util/logging.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace dbtune {

namespace {
// Worker threads log concurrently (thread_pool.cc), so the level gate is
// an atomic; relaxed ordering suffices — the level is a filter, not a
// synchronization point.
std::atomic<LogLevel> g_min_level{LogLevel::kWarning};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) <
      static_cast<int>(g_min_level.load(std::memory_order_relaxed))) {
    return;
  }
  // Preformat the whole line and hand it to stderr in one fwrite: stdio
  // locks the stream per call, so concurrent worker-thread log lines can
  // interleave between calls but never mid-line.
  char buffer[1024];
  const int n = std::snprintf(buffer, sizeof(buffer), "[%s %s:%d] %s\n",
                              LevelName(level), file, line, msg.c_str());
  if (n <= 0) return;
  const size_t len = std::min(static_cast<size_t>(n), sizeof(buffer) - 1);
  std::fwrite(buffer, 1, len, stderr);
}

void CheckFail(const char* file, int line, const char* expr,
               const std::string& msg) {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace dbtune
