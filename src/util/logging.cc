#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dbtune {

namespace {
LogLevel g_min_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

void CheckFail(const char* file, int line, const char* expr,
               const std::string& msg) {
  std::fprintf(stderr, "[CHECK FAILED %s:%d] %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace dbtune
