#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace dbtune {

namespace {

// Set while a thread is executing pool work; nested ParallelFor calls on
// such a thread run inline instead of re-entering the queue (waiting on
// the queue from a worker can deadlock once every worker is waiting).
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t size) : size_(std::max<size_t>(1, size)) {
  if (size_ == 1) return;  // sequential fallback: no threads at all
  workers_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DBTUNE_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    if (obs::MetricsEnabled()) {
      static obs::Gauge& depth =
          obs::MetricsRegistry::Get().gauge("pool.queue_depth");
      depth.Set(static_cast<double>(queue_.size()));
      static obs::Gauge& peak =
          obs::MetricsRegistry::Get().gauge("pool.queue_depth_peak");
      peak.Max(static_cast<double>(queue_.size()));
    }
  }
  cv_.NotifyOne();
}

bool ThreadPool::InWorkerThread() const { return t_in_pool_worker; }

void ThreadPool::WorkerLoop(size_t worker) {
  t_in_pool_worker = true;
  // Handles are resolved once per worker; recording is lock-free.
  obs::Gauge& worker_busy = obs::MetricsRegistry::Get().gauge(
      "pool.worker_busy_seconds." + std::to_string(worker));
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (obs::MetricsEnabled()) {
      static obs::Counter& executed =
          obs::MetricsRegistry::Get().counter("pool.tasks_executed");
      const double start = obs::MonotonicSeconds();
      task();
      executed.Increment();
      worker_busy.Add(obs::MonotonicSeconds() - start);
    } else {
      task();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(1, grain);
  const size_t count = end - begin;
  const bool sequential = pool == nullptr || pool->size() == 1 ||
                          count <= grain || pool->InWorkerThread();
  if (sequential) {
    fn(begin, end);
    return;
  }

  // Shared completion state for this region. Chunk boundaries depend only
  // on (begin, end, grain), never on scheduling, so any per-index output
  // written by `fn` is identical for every pool size.
  struct Region {
    Mutex mu;
    CondVar done_cv;
    size_t pending DBTUNE_GUARDED_BY(mu) = 0;
    std::exception_ptr first_error DBTUNE_GUARDED_BY(mu);
  };
  auto region = std::make_shared<Region>();
  const size_t num_chunks = (count + grain - 1) / grain;
  {
    MutexLock lock(&region->mu);
    region->pending = num_chunks;
  }

  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const size_t chunk_begin = begin + chunk * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    pool->Submit([region, chunk_begin, chunk_end, &fn] {
      std::exception_ptr error;
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(&region->mu);
      if (error && !region->first_error) region->first_error = error;
      if (--region->pending == 0) region->done_cv.NotifyAll();
    });
  }

  std::exception_ptr first_error;
  {
    MutexLock lock(&region->mu);
    while (region->pending != 0) region->done_cv.Wait(&region->mu);
    first_error = region->first_error;
  }
  if (first_error) std::rethrow_exception(first_error);
}

size_t ExecutionContext::num_threads_locked() const {
  if (const char* env = std::getenv("DBTUNE_NUM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<size_t>(std::min(parsed, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ExecutionContext& ExecutionContext::Get() {
  // Intentionally leaked so worker threads may outlive static destructors.
  static ExecutionContext* context =
      new ExecutionContext();  // dbtune-lint: allow(naked-new)
  return *context;
}

ThreadPool& ExecutionContext::pool() {
  MutexLock lock(&mu_);
  if (!pool_) {
    if (configured_ == 0) configured_ = num_threads_locked();
    pool_ = std::make_unique<ThreadPool>(configured_);
  }
  return *pool_;
}

size_t ExecutionContext::num_threads() {
  MutexLock lock(&mu_);
  if (configured_ == 0) configured_ = num_threads_locked();
  return configured_;
}

void ExecutionContext::SetNumThreads(size_t n) {
  MutexLock lock(&mu_);
  configured_ = std::max<size_t>(1, n);
  pool_.reset();  // rebuilt lazily at the new size
}

ThreadPool* GlobalPool() { return &ExecutionContext::Get().pool(); }

}  // namespace dbtune
