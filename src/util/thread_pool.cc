#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/logging.h"

namespace dbtune {

namespace {

// Set while a thread is executing pool work; nested ParallelFor calls on
// such a thread run inline instead of re-entering the queue (waiting on
// the queue from a worker can deadlock once every worker is waiting).
thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(size_t size) : size_(std::max<size_t>(1, size)) {
  if (size_ == 1) return;  // sequential fallback: no threads at all
  workers_.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DBTUNE_CHECK(task != nullptr);
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() const { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(1, grain);
  const size_t count = end - begin;
  const bool sequential = pool == nullptr || pool->size() == 1 ||
                          count <= grain || pool->InWorkerThread();
  if (sequential) {
    fn(begin, end);
    return;
  }

  // Shared completion state for this region. Chunk boundaries depend only
  // on (begin, end, grain), never on scheduling, so any per-index output
  // written by `fn` is identical for every pool size.
  struct Region {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending = 0;
    std::exception_ptr first_error;
  };
  auto region = std::make_shared<Region>();
  const size_t num_chunks = (count + grain - 1) / grain;
  region->pending = num_chunks;

  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const size_t chunk_begin = begin + chunk * grain;
    const size_t chunk_end = std::min(end, chunk_begin + grain);
    pool->Submit([region, chunk_begin, chunk_end, &fn] {
      try {
        fn(chunk_begin, chunk_end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(region->mu);
        if (!region->first_error) {
          region->first_error = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lock(region->mu);
      if (--region->pending == 0) region->done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(region->mu);
  region->done_cv.wait(lock, [&region] { return region->pending == 0; });
  if (region->first_error) std::rethrow_exception(region->first_error);
}

size_t ExecutionContext::num_threads_locked() const {
  if (const char* env = std::getenv("DBTUNE_NUM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed >= 1) return static_cast<size_t>(std::min(parsed, 256L));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ExecutionContext& ExecutionContext::Get() {
  static ExecutionContext* context = new ExecutionContext();
  return *context;
}

ThreadPool& ExecutionContext::pool() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!pool_) {
    if (configured_ == 0) configured_ = num_threads_locked();
    pool_ = std::make_unique<ThreadPool>(configured_);
  }
  return *pool_;
}

size_t ExecutionContext::num_threads() {
  std::lock_guard<std::mutex> lock(mu_);
  if (configured_ == 0) configured_ = num_threads_locked();
  return configured_;
}

void ExecutionContext::SetNumThreads(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  configured_ = std::max<size_t>(1, n);
  pool_.reset();  // rebuilt lazily at the new size
}

ThreadPool* GlobalPool() { return &ExecutionContext::Get().pool(); }

}  // namespace dbtune
