#ifndef DBTUNE_UTIL_MATRIX_H_
#define DBTUNE_UTIL_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace dbtune {

/// Dense row-major matrix of doubles. Sized for the library's needs
/// (Gaussian-process kernels and ridge normal equations with a few hundred
/// rows): the product kernel is cache-blocked and multi-threaded for that
/// regime, without reaching for a full BLAS.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    DBTUNE_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    DBTUNE_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage, row-major.
  const std::vector<double>& data() const { return data_; }

  /// Contiguous row `r` (no per-element bounds checks; hot loops only).
  double* RowPtr(size_t r) {
    DBTUNE_CHECK(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    DBTUNE_CHECK(r < rows_);
    return data_.data() + r * cols_;
  }

  Matrix Transpose() const;

  /// Matrix product; requires `cols() == other.rows()`.
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires `cols() == v.size()`.
  std::vector<double> MultiplyVector(const std::vector<double>& v) const;

  /// Adds `value` to every diagonal entry (requires square).
  void AddDiagonal(double value);

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// In-place Cholesky factorization of a symmetric positive-definite matrix.
/// On success `*a` holds the lower-triangular factor L (upper part zeroed).
/// Fails with Internal status when the matrix is not positive definite.
[[nodiscard]] Status CholeskyFactorize(Matrix* a);

/// Solves L * x = b for lower-triangular L (forward substitution).
std::vector<double> SolveLowerTriangular(const Matrix& l,
                                         const std::vector<double>& b);

/// As `SolveLowerTriangular`, writing into caller-owned storage (resized
/// to `b.size()`); `x` must not alias `b`. Identical arithmetic order, so
/// results are bitwise equal to the allocating variant.
void SolveLowerTriangularInto(const Matrix& l, const std::vector<double>& b,
                              std::vector<double>* x);

/// Solves L^T * x = b for lower-triangular L (back substitution).
std::vector<double> SolveUpperTriangularFromLower(const Matrix& l,
                                                  const std::vector<double>& b);

/// Solves (A) x = b via Cholesky, where A is symmetric positive definite.
/// Returns InvalidArgument on shape mismatch, Internal when not SPD.
[[nodiscard]] Result<std::vector<double>> SolveSpd(const Matrix& a,
                                     const std::vector<double>& b);

/// Dot product; requires equal sizes.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Squared Euclidean distance between two equally sized vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

}  // namespace dbtune

#endif  // DBTUNE_UTIL_MATRIX_H_
