#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "util/logging.h"

namespace dbtune {

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double Variance(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  // Sample (Bessel-corrected) variance: every consumer treats the input
  // as a sample — TPE's Scott bandwidth, score standardization, the
  // forest's cross-tree predictive variance — so dividing by n would
  // systematically understate spread (badly so at the n=2..10 sizes the
  // tuning loop actually sees).
  return acc / static_cast<double>(values.size() - 1);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::vector<double> values, double q) {
  DBTUNE_CHECK(!values.empty());
  DBTUNE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(const std::vector<double>& values) {
  return Quantile(values, 0.5);
}

std::vector<size_t> ArgSortAscending(const std::vector<double>& values) {
  std::vector<size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](size_t a, size_t b) { return values[a] < values[b]; });
  return idx;
}

std::vector<size_t> ArgSortDescending(const std::vector<double>& values) {
  std::vector<size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](size_t a, size_t b) { return values[a] > values[b]; });
  return idx;
}

std::vector<double> Ranks(const std::vector<double>& values) {
  const std::vector<size_t> order = ArgSortAscending(values);
  std::vector<double> ranks(values.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                       + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  DBTUNE_CHECK(a.size() == b.size());
  if (a.size() < 2) return 0.0;
  const double ma = Mean(a);
  const double mb = Mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(Ranks(a), Ranks(b));
}

double RSquared(const std::vector<double>& truth,
                const std::vector<double>& predicted) {
  DBTUNE_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  const double m = Mean(truth);
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  if (ss_tot <= 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double Rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted) {
  DBTUNE_CHECK(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

double IntersectionOverUnion(const std::vector<size_t>& a,
                             const std::vector<size_t>& b) {
  std::set<size_t> sa(a.begin(), a.end());
  std::set<size_t> sb(b.begin(), b.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (size_t v : sa) inter += sb.count(v);
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace dbtune
