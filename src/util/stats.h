#ifndef DBTUNE_UTIL_STATS_H_
#define DBTUNE_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace dbtune {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& values);

/// Sample variance (Bessel's n−1 divisor); 0 for fewer than two values.
double Variance(const std::vector<double>& values);

/// Sample standard deviation (sqrt of `Variance`).
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile, q in [0, 1]. Requires non-empty input.
double Quantile(std::vector<double> values, double q);

/// Median (Quantile 0.5).
double Median(const std::vector<double>& values);

/// Indices that would sort `values` ascending (stable).
std::vector<size_t> ArgSortAscending(const std::vector<double>& values);

/// Indices that would sort `values` descending (stable).
std::vector<size_t> ArgSortDescending(const std::vector<double>& values);

/// Fractional ranks (1 = smallest); ties get the average rank.
std::vector<double> Ranks(const std::vector<double>& values);

/// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation; 0 when either side is constant.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Coefficient of determination of predictions vs. targets.
double RSquared(const std::vector<double>& truth,
                const std::vector<double>& predicted);

/// Root mean squared error of predictions vs. targets.
double Rmse(const std::vector<double>& truth,
            const std::vector<double>& predicted);

/// Intersection-over-union of two index sets (the paper's "similarity
/// score" for comparing top-k knob rankings). 1 when both are empty.
double IntersectionOverUnion(const std::vector<size_t>& a,
                             const std::vector<size_t>& b);

}  // namespace dbtune

#endif  // DBTUNE_UTIL_STATS_H_
