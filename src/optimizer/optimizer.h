#ifndef DBTUNE_OPTIMIZER_OPTIMIZER_H_
#define DBTUNE_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "knobs/configuration_space.h"
#include "surrogate/regressor.h"
#include "util/random.h"
#include "util/status.h"

namespace dbtune {

/// Options shared by all configuration optimizers.
struct OptimizerOptions {
  uint64_t seed = 1;
  /// LHS warm-start size for the model-based optimizers (the paper
  /// initializes every BO-based session with 10 LHS configurations).
  size_t initial_design = 10;
  /// Candidate pool size when maximizing the acquisition function.
  size_t acquisition_candidates = 300;
};

/// The seven optimizer families compared in Section 6 (plus random
/// search as a sanity baseline).
enum class OptimizerType {
  kVanillaBo = 0,
  kMixedKernelBo,
  kSmac,
  kTpe,
  kTurbo,
  kDdpg,
  kGa,
  kRandomSearch,
};

/// Display name ("Vanilla BO", "SMAC", ...).
const char* OptimizerTypeName(OptimizerType type);

/// What the optimizer believed about its latest suggestion, for the
/// session diagnostics layer: the surrogate's predictive distribution at
/// the suggested point (raw score units) and the acquisition landscape
/// over the candidate pool. Model-free optimizers and warm-start /
/// random-fallback iterations leave everything false/zero. Filling this
/// never consumes randomness or reads the clock.
struct SuggestInfo {
  bool has_prediction = false;
  /// Predictive mean at the suggested point, raw score units.
  double predicted_mean = 0.0;
  /// Predictive variance at the suggested point, raw score units squared.
  double predicted_variance = 0.0;
  bool has_acquisition = false;
  /// Acquisition value of the chosen candidate.
  double acquisition_best = 0.0;
  /// Population stddev of acquisition values over the candidate pool.
  double acquisition_spread = 0.0;
  /// Size of the scored candidate pool.
  size_t acquisition_pool = 0;
};

/// Iterative suggest/observe configuration optimizer (the paper's
/// configuration-optimization module).
///
/// Protocol: call `Suggest()`, evaluate the configuration on the DBMS,
/// then report the outcome via `Observe` (or `ObserveWithMetrics` when
/// internal metrics are available — DDPG requires them for its state).
/// Scores are in maximize direction.
class Optimizer {
 public:
  Optimizer(const ConfigurationSpace& space, OptimizerOptions options);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Proposes the next configuration to evaluate.
  virtual Configuration Suggest() = 0;

  /// Reports the score of an evaluated configuration. The base class
  /// records it into the shared history.
  virtual void Observe(const Configuration& config, double score);

  /// Reports score plus DBMS internal metrics. Defaults to `Observe`.
  virtual void ObserveWithMetrics(const Configuration& config, double score,
                                  const std::vector<double>& metrics);

  /// Score of the default configuration, when known before tuning starts.
  /// No-op for most optimizers; DDPG anchors its reward on it.
  virtual void SetReferenceScore(double score) { (void)score; }

  virtual std::string name() const = 0;

  const ConfigurationSpace& space() const { return space_; }
  size_t num_observations() const { return scores_.size(); }
  /// Best observed score; requires at least one observation.
  double best_score() const;
  /// Configuration achieving `best_score()`.
  const Configuration& best_config() const;

  /// Diagnostics of the most recent `Suggest()` call. Default (all
  /// false/zero) until a model-based suggestion has been made.
  const SuggestInfo& last_suggest_info() const { return suggest_info_; }

 protected:
  /// True while LHS warm-start configurations remain to be suggested.
  bool InitPending() const {
    return options_.initial_design > 0 &&
           (!init_generated_ || init_cursor_ < init_queue_.size());
  }
  /// Next LHS warm-start configuration (lazily generates the design).
  Configuration NextInit();

  /// Standardized copy of `scores_` (mean 0, stddev 1).
  std::vector<double> StandardizedScores() const;

  /// The standardization applied by `StandardizedScores` (identical
  /// guard: stddev < 1e-12 → 1). Used to map z-space surrogate
  /// predictions back to raw score units for `SuggestInfo`.
  struct ScoreMoments {
    double mean = 0.0;
    double sd = 1.0;
  };
  ScoreMoments CurrentScoreMoments() const;

  ConfigurationSpace space_;
  OptimizerOptions options_;
  Rng rng_;

  /// Written by each model-based `Suggest()`; cleared on non-model paths.
  SuggestInfo suggest_info_;

  /// Unit-encoded evaluated configurations, observation order.
  FeatureMatrix unit_history_;
  std::vector<Configuration> configs_;
  std::vector<double> scores_;

 private:
  std::vector<Configuration> init_queue_;
  size_t init_cursor_ = 0;
  bool init_generated_ = false;
};

/// Expected improvement of predictive (mean, variance) over `best`, for
/// maximization.
double ExpectedImprovement(double mean, double variance, double best);

/// Candidate pool for acquisition maximization: uniform random points plus
/// local perturbations of the best observed configurations. Used by the
/// transfer-framework optimizers; `scores` aligns with `unit_history`.
std::vector<std::vector<double>> BuildAcquisitionCandidates(
    const ConfigurationSpace& space, Rng& rng,
    const FeatureMatrix& unit_history, const std::vector<double>& scores,
    size_t total);

/// Instantiates an optimizer of the given type over `space`.
std::unique_ptr<Optimizer> CreateOptimizer(OptimizerType type,
                                           const ConfigurationSpace& space,
                                           OptimizerOptions options = {});

/// All optimizer types compared in Figure 7 / Table 7 (no random search).
std::vector<OptimizerType> PaperOptimizers();

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_OPTIMIZER_H_
