#ifndef DBTUNE_OPTIMIZER_MIXED_KERNEL_BO_H_
#define DBTUNE_OPTIMIZER_MIXED_KERNEL_BO_H_

#include "optimizer/gp_bo.h"

namespace dbtune {

/// Mixed-kernel BO: GP with Matérn-5/2 over continuous knobs times a
/// Hamming kernel over categorical knobs, which models heterogeneous
/// spaces without assuming category ordering.
class MixedKernelBoOptimizer final : public GpBoOptimizer {
 public:
  MixedKernelBoOptimizer(const ConfigurationSpace& space,
                         OptimizerOptions options);
  std::string name() const override { return "Mixed-Kernel BO"; }
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_MIXED_KERNEL_BO_H_
