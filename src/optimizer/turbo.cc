#include "optimizer/turbo.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

TurboOptimizer::TurboOptimizer(const ConfigurationSpace& space,
                               OptimizerOptions options,
                               TurboOptions turbo_options)
    : Optimizer(space, options), turbo_options_(turbo_options) {
  regions_.resize(turbo_options_.num_trust_regions);
  for (TrustRegion& region : regions_) RestartRegion(&region);
}

void TurboOptimizer::RestartRegion(TrustRegion* region) {
  const size_t d = space_.dimension();
  region->center.resize(d);
  for (double& v : region->center) v = rng_.Uniform();
  region->length = turbo_options_.initial_length;
  region->best_score = -1e300;
  region->successes = 0;
  region->failures = 0;
}

std::vector<size_t> TurboOptimizer::PointsInRegion(
    const TrustRegion& region) const {
  std::vector<size_t> ids;
  const double half = region.length / 2.0;
  for (size_t i = 0; i < unit_history_.size(); ++i) {
    bool inside = true;
    for (size_t j = 0; j < region.center.size(); ++j) {
      if (std::abs(unit_history_[i][j] - region.center[j]) > half) {
        inside = false;
        break;
      }
    }
    if (inside) ids.push_back(i);
  }
  return ids;
}

Configuration TurboOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.turbo");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("turbo.suggest");
  suggest_info_ = {};
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());
  const size_t d = space_.dimension();
  const std::vector<double> z = StandardizedScores();

  // Anchor each region's center on the best point inside it (or the
  // global best when empty).
  size_t global_best = 0;
  for (size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[global_best]) global_best = i;
  }

  double best_sample = -1e300;
  std::vector<double> best_unit;
  int best_region = -1;
  double best_mean_z = 0.0;
  double best_var_z = 0.0;
  double sample_sum = 0.0;
  double sample_sumsq = 0.0;
  size_t sample_count = 0;

  for (size_t r = 0; r < regions_.size(); ++r) {
    TrustRegion& region = regions_[r];
    std::vector<size_t> inside = PointsInRegion(region);
    if (!inside.empty()) {
      size_t local_best = inside.front();
      for (size_t id : inside) {
        if (z[id] > z[local_best]) local_best = id;
      }
      region.center = unit_history_[local_best];
      inside = PointsInRegion(region);
    } else {
      region.center = unit_history_[global_best];
      inside = PointsInRegion(region);
    }

    // Local GP over the points in the region; fall back to the nearest
    // subset when too few points fall inside.
    FeatureMatrix local_x;
    std::vector<double> local_y;
    if (inside.size() >= 4) {
      for (size_t id : inside) {
        local_x.push_back(unit_history_[id]);
        local_y.push_back(z[id]);
      }
    } else {
      local_x = unit_history_;
      local_y = z;
    }
    GaussianProcessOptions gp_options;
    gp_options.hyperopt_every = 1;
    gp_options.lengthscale_grid = {0.1, 0.3, 0.8};
    const std::unique_ptr<Regressor> gp = CreateGpSurrogate(
        [] { return std::make_unique<Matern52Kernel>(); }, gp_options,
        turbo_options_.surrogate_tier);
    if (!gp->Fit(local_x, local_y).ok()) continue;

    // Thompson sampling over perturbation candidates within the box. All
    // RNG draws (perturbations and the posterior-sample normals) happen
    // sequentially in candidate order first, so the stream matches the
    // sequential implementation; the GP posterior queries — the actual
    // cost — then run in parallel over the candidate batch.
    const double half = region.length / 2.0;
    const double perturb_prob =
        std::min(1.0, 20.0 / static_cast<double>(d));
    const size_t num_candidates = turbo_options_.candidates_per_region;
    std::vector<std::vector<double>> units(num_candidates);
    std::vector<double> normals(num_candidates);
    for (size_t c = 0; c < num_candidates; ++c) {
      std::vector<double> u = region.center;
      bool changed = false;
      for (size_t j = 0; j < d; ++j) {
        if (rng_.Bernoulli(perturb_prob)) {
          u[j] = std::clamp(region.center[j] + rng_.Uniform(-half, half),
                            0.0, 1.0);
          changed = true;
        }
      }
      if (!changed) {
        const size_t j = rng_.Index(d);
        u[j] = std::clamp(region.center[j] + rng_.Uniform(-half, half), 0.0,
                          1.0);
      }
      units[c] = std::move(u);
      normals[c] = rng_.Gaussian();
    }
    std::vector<double> means, variances;
    gp->PredictMeanVarBatch(units, &means, &variances);
    for (size_t c = 0; c < num_candidates; ++c) {
      const double sample = means[c] + std::sqrt(variances[c]) * normals[c];
      sample_sum += sample;
      sample_sumsq += sample * sample;
      ++sample_count;
      if (sample > best_sample) {
        best_sample = sample;
        best_unit = units[c];
        best_region = static_cast<int>(r);
        best_mean_z = means[c];
        best_var_z = variances[c];
      }
    }
  }

  if (best_region < 0) {
    last_region_ = -1;
    return space_.SampleUniform(rng_);
  }
  last_region_ = best_region;

  const ScoreMoments moments = CurrentScoreMoments();
  suggest_info_.has_prediction = true;
  suggest_info_.predicted_mean = moments.mean + moments.sd * best_mean_z;
  suggest_info_.predicted_variance = moments.sd * moments.sd * best_var_z;
  suggest_info_.has_acquisition = true;
  // Thompson samples are the acquisition values here: the winner and the
  // spread of the sampled posterior draws across all regions.
  suggest_info_.acquisition_best = best_sample;
  const double n = static_cast<double>(sample_count);
  const double sample_mean = sample_sum / n;
  suggest_info_.acquisition_spread = std::sqrt(
      std::max(0.0, sample_sumsq / n - sample_mean * sample_mean));
  suggest_info_.acquisition_pool = sample_count;
  return space_.FromUnit(best_unit);
}

void TurboOptimizer::Observe(const Configuration& config, double score) {
  Optimizer::Observe(config, score);
  if (last_region_ < 0 ||
      last_region_ >= static_cast<int>(regions_.size())) {
    return;
  }
  TrustRegion& region = regions_[static_cast<size_t>(last_region_)];
  if (score > region.best_score + 1e-12) {
    region.best_score = score;
    ++region.successes;
    region.failures = 0;
  } else {
    ++region.failures;
    region.successes = 0;
  }
  if (region.successes >= turbo_options_.success_tolerance) {
    region.length = std::min(2.0 * region.length, turbo_options_.max_length);
    region.successes = 0;
  } else if (region.failures >= turbo_options_.failure_tolerance) {
    region.length /= 2.0;
    region.failures = 0;
    if (region.length < turbo_options_.min_length) {
      RestartRegion(&region);
    }
  }
  last_region_ = -1;
}

}  // namespace dbtune
