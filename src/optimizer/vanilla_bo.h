#ifndef DBTUNE_OPTIMIZER_VANILLA_BO_H_
#define DBTUNE_OPTIMIZER_VANILLA_BO_H_

// Vanilla BO lives with the shared GP-BO machinery.
#include "optimizer/gp_bo.h"  // IWYU pragma: export

#endif  // DBTUNE_OPTIMIZER_VANILLA_BO_H_
