#include "optimizer/random_search.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dbtune {

RandomSearchOptimizer::RandomSearchOptimizer(const ConfigurationSpace& space,
                                             OptimizerOptions options)
    : Optimizer(space, options) {}

Configuration RandomSearchOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.random_search");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("random_search.suggest");
  return space_.SampleUniform(rng_);
}

}  // namespace dbtune
