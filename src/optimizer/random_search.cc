#include "optimizer/random_search.h"

namespace dbtune {

RandomSearchOptimizer::RandomSearchOptimizer(const ConfigurationSpace& space,
                                             OptimizerOptions options)
    : Optimizer(space, options) {}

Configuration RandomSearchOptimizer::Suggest() {
  return space_.SampleUniform(rng_);
}

}  // namespace dbtune
