#ifndef DBTUNE_OPTIMIZER_TURBO_H_
#define DBTUNE_OPTIMIZER_TURBO_H_

#include <memory>
#include <vector>

#include "optimizer/optimizer.h"
#include "surrogate/surrogate_factory.h"

namespace dbtune {

/// TuRBO-specific options (Eriksson et al. 2019).
struct TurboOptions {
  size_t num_trust_regions = 2;
  double initial_length = 0.4;
  double min_length = 0.01;
  double max_length = 1.0;
  size_t success_tolerance = 3;
  size_t failure_tolerance = 5;
  size_t candidates_per_region = 50;
  /// Escalation policy of the per-region local GPs. Regions usually hold
  /// few points, but the fallback fit over the whole history benefits
  /// from the sparse tier in long sessions.
  SurrogateTierOptions surrogate_tier;
};

/// Trust-region Bayesian optimization: several local GP models, each
/// confined to a shrinking/expanding box around its incumbent; Thompson
/// sampling arbitrates between regions (the multi-armed-bandit strategy).
/// Local modeling avoids the over-exploration global GPs suffer in high
/// dimensions.
class TurboOptimizer final : public Optimizer {
 public:
  TurboOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                 TurboOptions turbo_options = {});

  Configuration Suggest() override;
  void Observe(const Configuration& config, double score) override;
  std::string name() const override { return "TuRBO"; }

 private:
  struct TrustRegion {
    std::vector<double> center;  // unit coordinates
    double length = 0.4;
    double best_score = -1e300;
    size_t successes = 0;
    size_t failures = 0;
  };

  void RestartRegion(TrustRegion* region);
  /// Sample ids whose unit points fall inside the region's box.
  std::vector<size_t> PointsInRegion(const TrustRegion& region) const;

  TurboOptions turbo_options_;
  std::vector<TrustRegion> regions_;
  /// Region that produced the last suggestion (for counter updates).
  int last_region_ = -1;
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_TURBO_H_
