#include "optimizer/ddpg.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dbtune {

namespace {

std::vector<size_t> BuildLayers(size_t input, const std::vector<size_t>& hidden,
                                size_t output) {
  std::vector<size_t> layers;
  layers.push_back(input);
  layers.insert(layers.end(), hidden.begin(), hidden.end());
  layers.push_back(output);
  return layers;
}

std::vector<Activation> BuildActivations(size_t hidden_layers,
                                         Activation final_activation) {
  std::vector<Activation> acts(hidden_layers, Activation::kRelu);
  acts.push_back(final_activation);
  return acts;
}

}  // namespace

DdpgOptimizer::DdpgOptimizer(const ConfigurationSpace& space,
                             OptimizerOptions options,
                             DdpgOptions ddpg_options)
    : Optimizer(space, options),
      ddpg_options_(ddpg_options),
      actor_(BuildLayers(ddpg_options.state_dim, ddpg_options.actor_hidden,
                         space.dimension()),
             BuildActivations(ddpg_options.actor_hidden.size(),
                              Activation::kSigmoid),
             options.seed ^ 0xAC7011),
      critic_(BuildLayers(ddpg_options.state_dim + space.dimension(),
                          ddpg_options.critic_hidden, 1),
              BuildActivations(ddpg_options.critic_hidden.size(),
                               Activation::kNone),
              options.seed ^ 0xC1171C),
      actor_target_(actor_),
      critic_target_(critic_),
      actor_opt_(actor_.num_params(), ddpg_options.actor_lr),
      critic_opt_(critic_.num_params(), ddpg_options.critic_lr),
      state_(ddpg_options.state_dim, 0.0) {}

Configuration DdpgOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.ddpg");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("ddpg.suggest");
  std::vector<double> action = actor_.Forward(state_);
  // Exploration noise with linear decay, scaled down in high dimensions
  // (perturbing 197 knobs at full strength would keep the agent in the
  // crash region forever).
  const double progress =
      std::min(1.0, static_cast<double>(suggestions_) /
                        ddpg_options_.noise_decay_iterations);
  const double dim_scale = std::min(
      1.0, std::sqrt(24.0 / static_cast<double>(space_.dimension())));
  const double sigma =
      (ddpg_options_.noise_sigma_initial +
       progress * (ddpg_options_.noise_sigma_final -
                   ddpg_options_.noise_sigma_initial)) *
      dim_scale;
  for (double& a : action) {
    a = std::clamp(a + rng_.Gaussian(0.0, sigma), 0.0, 1.0);
  }
  ++suggestions_;
  last_action_ = action;
  has_pending_action_ = true;
  return space_.FromUnit(action);
}

double DdpgOptimizer::ComputeReward(double score) {
  if (!has_reference_) {
    reference_score_ = score;
    has_reference_ = true;
  }
  const double ref_mag = std::max(std::abs(reference_score_), 1e-9);
  double reward = (score - reference_score_) / ref_mag;
  if (has_previous_) {
    const double prev_mag = std::max(std::abs(previous_score_), 1e-9);
    reward += 0.3 * (score - previous_score_) / prev_mag;
  }
  previous_score_ = score;
  has_previous_ = true;
  return std::clamp(reward, -3.0, 3.0);
}

void DdpgOptimizer::Observe(const Configuration& config, double score) {
  ObserveWithMetrics(config, score,
                     std::vector<double>(ddpg_options_.state_dim, 0.0));
}

void DdpgOptimizer::ObserveWithMetrics(const Configuration& config,
                                       double score,
                                       const std::vector<double>& metrics) {
  Optimizer::Observe(config, score);

  std::vector<double> next_state = metrics;
  next_state.resize(ddpg_options_.state_dim, 0.0);

  if (has_pending_action_) {
    Transition transition;
    transition.state = state_;
    transition.action = last_action_;
    transition.reward = ComputeReward(score);
    transition.next_state = next_state;
    if (replay_.size() < ddpg_options_.replay_capacity) {
      replay_.push_back(std::move(transition));
    } else {
      replay_[replay_cursor_] = std::move(transition);
      replay_cursor_ = (replay_cursor_ + 1) % ddpg_options_.replay_capacity;
    }
    has_pending_action_ = false;
  }
  state_ = std::move(next_state);

  if (replay_.size() >= ddpg_options_.batch_size) {
    for (size_t s = 0; s < ddpg_options_.train_steps_per_observe; ++s) {
      TrainStep();
    }
  }
}

void DdpgOptimizer::TrainStep() {
  const size_t batch = std::min(ddpg_options_.batch_size, replay_.size());
  const size_t action_dim = space_.dimension();

  std::vector<double> critic_grad(critic_.num_params(), 0.0);
  std::vector<double> actor_grad(actor_.num_params(), 0.0);
  const double inv_batch = 1.0 / static_cast<double>(batch);

  for (size_t b = 0; b < batch; ++b) {
    const Transition& t = replay_[rng_.Index(replay_.size())];

    // --- Critic target: y = r + gamma * Q'(s', mu'(s')).
    const std::vector<double> next_action =
        actor_target_.Forward(t.next_state);
    std::vector<double> target_input = t.next_state;
    target_input.insert(target_input.end(), next_action.begin(),
                        next_action.end());
    const double next_q = critic_target_.Forward(target_input)[0];
    const double y = t.reward + ddpg_options_.gamma * next_q;

    // --- Critic loss: (Q(s,a) - y)^2.
    std::vector<double> critic_input = t.state;
    critic_input.insert(critic_input.end(), t.action.begin(), t.action.end());
    Mlp::Tape critic_tape;
    const double q = critic_.Forward(critic_input, &critic_tape)[0];
    const std::vector<double> dq = {2.0 * (q - y) * inv_batch};
    critic_.Backward(critic_tape, dq, &critic_grad);

    // --- Actor loss: -Q(s, mu(s)).
    Mlp::Tape actor_tape;
    const std::vector<double> mu = actor_.Forward(t.state, &actor_tape);
    std::vector<double> q_input = t.state;
    q_input.insert(q_input.end(), mu.begin(), mu.end());
    Mlp::Tape q_tape;
    critic_.Forward(q_input, &q_tape);
    std::vector<double> scratch(critic_.num_params(), 0.0);
    const std::vector<double> dq_dinput =
        critic_.Backward(q_tape, {1.0}, &scratch);
    // Gradient w.r.t. the action slice, negated for ascent on Q.
    std::vector<double> dmu(action_dim);
    for (size_t j = 0; j < action_dim; ++j) {
      dmu[j] = -dq_dinput[ddpg_options_.state_dim + j] * inv_batch;
    }
    actor_.Backward(actor_tape, dmu, &actor_grad);
  }

  critic_opt_.Step(&critic_.mutable_params(), critic_grad);
  actor_opt_.Step(&actor_.mutable_params(), actor_grad);
  actor_target_.SoftUpdateFrom(actor_, ddpg_options_.tau);
  critic_target_.SoftUpdateFrom(critic_, ddpg_options_.tau);
}

DdpgOptimizer::Weights DdpgOptimizer::ExportWeights() const {
  return Weights{actor_.params(), critic_.params()};
}

Status DdpgOptimizer::ImportWeights(const Weights& weights) {
  if (weights.actor.size() != actor_.num_params() ||
      weights.critic.size() != critic_.num_params()) {
    return Status::InvalidArgument("weight shape mismatch");
  }
  actor_.mutable_params() = weights.actor;
  critic_.mutable_params() = weights.critic;
  actor_target_ = actor_;
  critic_target_ = critic_;
  return Status::OK();
}

}  // namespace dbtune
