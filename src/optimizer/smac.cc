#include "optimizer/smac.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

namespace {
RandomForestOptions SmacForestOptions(uint64_t seed) {
  RandomForestOptions options;
  options.num_trees = 30;
  options.min_samples_leaf = 2;
  options.min_samples_split = 4;
  options.max_depth = 20;
  options.seed = seed;
  return options;
}
}  // namespace

SmacOptimizer::SmacOptimizer(const ConfigurationSpace& space,
                             OptimizerOptions options,
                             SmacOptions smac_options)
    : Optimizer(space, options),
      smac_options_(smac_options),
      forest_(SmacForestOptions(options.seed ^ 0x5AC)) {}

std::vector<double> SmacOptimizer::MutateNeighbor(
    const std::vector<double>& unit, const std::vector<double>& dim_weights) {
  std::vector<double> u = unit;
  // Change a small number of knobs, one to three, like SMAC's
  // one-exchange neighbourhood, biased toward dimensions the surrogate
  // considers informative.
  const size_t changes = 1 + rng_.Index(3);
  for (size_t c = 0; c < changes; ++c) {
    const size_t j = rng_.WeightedIndex(dim_weights);
    if (space_.knob(j).is_categorical()) {
      u[j] = rng_.Uniform();  // decodes to a uniform random category
    } else {
      u[j] = std::clamp(u[j] + rng_.Gaussian(0.0, 0.1), 0.0, 1.0);
    }
  }
  return u;
}

Configuration SmacOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.smac");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("smac.suggest");
  suggest_info_ = {};
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());
  if (rng_.Bernoulli(smac_options_.random_interleave)) {
    return space_.SampleUniform(rng_);
  }

  const std::vector<double> z = StandardizedScores();
  Status fit = forest_.Fit(unit_history_, z);
  if (!fit.ok()) return space_.SampleUniform(rng_);
  const double best = *std::max_element(z.begin(), z.end());

  // Dimension weights from the forest's split counts (smoothed so every
  // dimension keeps some probability mass).
  std::vector<double> dim_weights = forest_.SplitCountImportance();
  for (double& w : dim_weights) w += 1.0;

  // Incumbents: top-k observed configurations.
  std::vector<size_t> order = ArgSortDescending(z);
  const size_t incumbents =
      std::min(smac_options_.num_incumbents, order.size());

  std::vector<std::vector<double>> candidates;
  candidates.reserve(smac_options_.random_candidates +
                     incumbents * smac_options_.local_neighbors);
  for (size_t i = 0; i < incumbents; ++i) {
    const std::vector<double>& center = unit_history_[order[i]];
    for (size_t c = 0; c < smac_options_.local_neighbors; ++c) {
      candidates.push_back(MutateNeighbor(center, dim_weights));
    }
  }
  const size_t d = space_.dimension();
  for (size_t c = 0; c < smac_options_.random_candidates; ++c) {
    std::vector<double> u(d);
    for (double& v : u) v = rng_.Uniform();
    candidates.push_back(std::move(u));
  }

  auto ei_of = [&](const std::vector<double>& unit) {
    double mean = 0.0, var = 0.0;
    forest_.PredictMeanVar(space_.SnapUnit(unit), &mean, &var);
    return ExpectedImprovement(mean, var, best);
  };

  // The candidate pool is scored through the batched predict path
  // (parallel, independent forest queries); the hill climb below stays
  // sequential because each probe depends on the previous accept/reject
  // decision and the shared RNG.
  std::vector<std::vector<double>> snapped(candidates.size());
  ParallelFor(GlobalPool(), 0, candidates.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c) {
                  snapped[c] = space_.SnapUnit(candidates[c]);
                }
              });
  std::vector<double> means, variances;
  forest_.PredictMeanVarBatch(snapped, &means, &variances);
  std::vector<double> ei(candidates.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    ei[c] = ExpectedImprovement(means[c], variances[c], best);
  }

  // Hill-climb from the most promising candidates (SMAC's local search):
  // fine-grained neighbours around the top EI points.
  std::vector<size_t> ei_order = ArgSortDescending(ei);
  double best_ei = ei[ei_order.front()];
  std::vector<double> best_unit = candidates[ei_order.front()];
  const size_t starts = std::min<size_t>(5, ei_order.size());
  for (size_t s = 0; s < starts; ++s) {
    std::vector<double> current = candidates[ei_order[s]];
    double current_ei = ei[ei_order[s]];
    // Scale the search length with dimensionality (SMAC's one-exchange
    // neighbourhood sweeps every parameter).
    const int steps = static_cast<int>(std::max<size_t>(24, 2 * d));
    for (int step = 0; step < steps; ++step) {
      std::vector<double> probe = current;
      const size_t j = rng_.WeightedIndex(dim_weights);
      if (space_.knob(j).is_categorical()) {
        probe[j] = rng_.Uniform();
      } else {
        probe[j] = std::clamp(probe[j] + rng_.Gaussian(0.0, 0.05), 0.0, 1.0);
      }
      const double probe_ei = ei_of(probe);
      if (probe_ei > current_ei) {
        current = std::move(probe);
        current_ei = probe_ei;
      }
    }
    if (current_ei > best_ei) {
      best_ei = current_ei;
      best_unit = current;
    }
  }

  // One deterministic posterior query at the winner (it may have moved
  // during the hill climb), de-standardized to raw score units.
  double win_mean = 0.0;
  double win_var = 0.0;
  forest_.PredictMeanVar(space_.SnapUnit(best_unit), &win_mean, &win_var);
  const ScoreMoments moments = CurrentScoreMoments();
  suggest_info_.has_prediction = true;
  suggest_info_.predicted_mean = moments.mean + moments.sd * win_mean;
  suggest_info_.predicted_variance = moments.sd * moments.sd * win_var;
  suggest_info_.has_acquisition = true;
  suggest_info_.acquisition_best = best_ei;
  double ei_sum = 0.0;
  double ei_sumsq = 0.0;
  for (double v : ei) {
    ei_sum += v;
    ei_sumsq += v * v;
  }
  const double pool = static_cast<double>(ei.size());
  const double ei_mean = ei_sum / pool;
  suggest_info_.acquisition_spread =
      std::sqrt(std::max(0.0, ei_sumsq / pool - ei_mean * ei_mean));
  suggest_info_.acquisition_pool = ei.size();
  return space_.FromUnit(best_unit);
}

}  // namespace dbtune
