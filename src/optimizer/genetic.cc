#include "optimizer/genetic.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sampling/latin_hypercube.h"
#include "util/logging.h"

namespace dbtune {

GeneticOptimizer::GeneticOptimizer(const ConfigurationSpace& space,
                                   OptimizerOptions options,
                                   GeneticOptions ga_options)
    : Optimizer(space, options), ga_options_(ga_options) {
  // Initial population: a space-filling LHS design.
  const auto units = LatinHypercubeUnit(ga_options_.population_size,
                                        space_.dimension(), rng_);
  population_.resize(ga_options_.population_size);
  for (size_t i = 0; i < units.size(); ++i) population_[i].unit = units[i];
}

const GeneticOptimizer::Individual& GeneticOptimizer::Tournament(
    const std::vector<Individual>& pool) {
  size_t best = rng_.Index(pool.size());
  for (size_t t = 1; t < ga_options_.tournament_size; ++t) {
    const size_t challenger = rng_.Index(pool.size());
    if (pool[challenger].fitness > pool[best].fitness) best = challenger;
  }
  return pool[best];
}

void GeneticOptimizer::BreedNextGeneration() {
  const size_t d = space_.dimension();
  std::vector<Individual> parents = population_;
  std::sort(parents.begin(), parents.end(),
            [](const Individual& a, const Individual& b) {
              return a.fitness > b.fitness;
            });

  std::vector<Individual> next;
  next.reserve(population_.size());
  // Elitism: re-evaluate the top individuals' genomes in the new
  // generation (their slots carry over unchanged).
  for (size_t e = 0; e < ga_options_.elites && e < parents.size(); ++e) {
    Individual elite;
    elite.unit = parents[e].unit;
    next.push_back(std::move(elite));
  }

  const double mutation_rate =
      ga_options_.mutation_rate > 0.0
          ? ga_options_.mutation_rate
          : std::min(0.5, 2.0 / static_cast<double>(d));
  while (next.size() < population_.size()) {
    const Individual& a = Tournament(parents);
    const Individual& b = Tournament(parents);
    Individual child;
    child.unit.resize(d);
    const bool crossover = rng_.Bernoulli(ga_options_.crossover_rate);
    for (size_t j = 0; j < d; ++j) {
      child.unit[j] = (crossover && rng_.Bernoulli(0.5)) ? b.unit[j]
                                                         : a.unit[j];
      if (rng_.Bernoulli(mutation_rate)) {
        if (space_.knob(j).is_categorical()) {
          child.unit[j] = rng_.Uniform();
        } else {
          child.unit[j] = std::clamp(
              child.unit[j] + rng_.Gaussian(0.0, ga_options_.mutation_sigma),
              0.0, 1.0);
        }
      }
    }
    next.push_back(std::move(child));
  }
  population_ = std::move(next);
  cursor_ = 0;
}

Configuration GeneticOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.genetic");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("genetic.suggest");
  if (cursor_ >= population_.size()) BreedNextGeneration();
  pending_ = static_cast<int>(cursor_);
  ++cursor_;
  return space_.FromUnit(population_[static_cast<size_t>(pending_)].unit);
}

void GeneticOptimizer::Observe(const Configuration& config, double score) {
  Optimizer::Observe(config, score);
  if (pending_ >= 0 &&
      pending_ < static_cast<int>(population_.size())) {
    Individual& individual = population_[static_cast<size_t>(pending_)];
    individual.fitness = score;
    individual.evaluated = true;
  }
  pending_ = -1;
}

}  // namespace dbtune
