#ifndef DBTUNE_OPTIMIZER_RANDOM_SEARCH_H_
#define DBTUNE_OPTIMIZER_RANDOM_SEARCH_H_

#include "optimizer/optimizer.h"

namespace dbtune {

/// Uniform random search — the sanity baseline every model-based
/// optimizer must beat.
class RandomSearchOptimizer final : public Optimizer {
 public:
  RandomSearchOptimizer(const ConfigurationSpace& space,
                        OptimizerOptions options);

  Configuration Suggest() override;
  std::string name() const override { return "Random"; }
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_RANDOM_SEARCH_H_
