#ifndef DBTUNE_OPTIMIZER_SMAC_H_
#define DBTUNE_OPTIMIZER_SMAC_H_

#include "optimizer/optimizer.h"
#include "surrogate/random_forest.h"

namespace dbtune {

/// SMAC-specific options.
struct SmacOptions {
  /// Probability of interleaving a pure random configuration (SMAC's
  /// exploration guarantee).
  double random_interleave = 0.10;
  /// Local-search neighbours generated around each of the top incumbents.
  size_t local_neighbors = 50;
  size_t num_incumbents = 3;
  /// Random candidates added to the acquisition pool.
  size_t random_candidates = 300;
};

/// SMAC (Hutter et al. 2011): Bayesian optimization with a random-forest
/// surrogate (mean/variance across trees as the Gaussian model) and EI
/// maximized by combined random + local search. Handles high-dimensional
/// and categorical inputs natively — the paper's overall winner.
class SmacOptimizer final : public Optimizer {
 public:
  SmacOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                SmacOptions smac_options = {});

  Configuration Suggest() override;
  std::string name() const override { return "SMAC"; }

 private:
  /// Mutates 1-3 dimensions of `unit`, chosen proportionally to the
  /// forest's split counts (the model tells the local search which knobs
  /// matter — the mechanism behind SMAC's robustness in high dimensions).
  std::vector<double> MutateNeighbor(const std::vector<double>& unit,
                                     const std::vector<double>& dim_weights);

  SmacOptions smac_options_;
  RandomForest forest_;
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_SMAC_H_
