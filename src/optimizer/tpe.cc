#include "optimizer/tpe.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

TpeOptimizer::TpeOptimizer(const ConfigurationSpace& space,
                           OptimizerOptions options, TpeOptions tpe_options)
    : Optimizer(space, options), tpe_options_(tpe_options) {}

TpeOptimizer::DimensionDensity TpeOptimizer::FitDimension(
    size_t dim, const std::vector<size_t>& sample_ids) const {
  DimensionDensity density;
  const Knob& knob = space_.knob(dim);
  if (knob.is_categorical()) {
    density.categorical = true;
    const size_t k = knob.num_categories();
    // Laplace-smoothed category frequencies over the native indices.
    density.category_probs.assign(k, 1.0);
    double total = static_cast<double>(k);
    for (size_t id : sample_ids) {
      const size_t cat = static_cast<size_t>(configs_[id][dim]);
      DBTUNE_CHECK(cat < k);
      density.category_probs[cat] += 1.0;
      total += 1.0;
    }
    for (double& p : density.category_probs) p /= total;
    return density;
  }

  density.categorical = false;
  density.centers.reserve(sample_ids.size());
  for (size_t id : sample_ids) {
    density.centers.push_back(unit_history_[id][dim]);
  }
  // Scott-style bandwidth with a floor to avoid spiky estimators.
  const double sd = StdDev(density.centers);
  const double n = static_cast<double>(density.centers.size());
  density.bandwidth =
      std::max(0.08, 1.06 * std::max(sd, 0.05) * std::pow(n, -0.2));
  return density;
}

double TpeOptimizer::SampleFromDimension(const DimensionDensity& density,
                                         size_t dim) {
  const Knob& knob = space_.knob(dim);
  if (density.categorical) {
    const size_t cat = rng_.WeightedIndex(density.category_probs);
    return knob.Encode(static_cast<double>(cat));
  }
  // Hyperopt-style estimator: the uniform prior is one mixture component,
  // so a fraction of samples stays exploratory.
  const size_t n = density.centers.size();
  if (n == 0 || rng_.Index(n + 1) == n) return rng_.Uniform();
  const size_t pick = rng_.Index(n);
  return std::clamp(
      density.centers[pick] + rng_.Gaussian(0.0, density.bandwidth), 0.0, 1.0);
}

double TpeOptimizer::DensityAt(const DimensionDensity& density, double value,
                               size_t num_categories) {
  if (density.categorical) {
    // `value` is the encoded category; recover the index.
    const size_t k = num_categories;
    size_t cat = static_cast<size_t>(
        std::clamp(std::floor(value * static_cast<double>(k)), 0.0,
                   static_cast<double>(k - 1)));
    return density.category_probs[cat];
  }
  if (density.centers.empty()) return 1.0;
  // Mixture of the kernels plus the uniform prior component.
  double acc = 0.0;
  const double inv = 1.0 / density.bandwidth;
  for (double c : density.centers) {
    const double zd = (value - c) * inv;
    acc += std::exp(-0.5 * zd * zd) * inv / std::sqrt(2.0 * M_PI);
  }
  acc = (acc + 1.0) / static_cast<double>(density.centers.size() + 1);
  return std::max(acc, 1e-12);
}

Configuration TpeOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.tpe");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("tpe.suggest");
  suggest_info_ = {};
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());

  // Split history into good and bad by the gamma quantile.
  std::vector<size_t> order = ArgSortDescending(scores_);
  size_t num_good = std::max(
      tpe_options_.min_good,
      static_cast<size_t>(tpe_options_.gamma *
                          static_cast<double>(order.size())));
  num_good = std::min(num_good, order.size());
  std::vector<size_t> good(order.begin(),
                           order.begin() + static_cast<long>(num_good));
  std::vector<size_t> bad(order.begin() + static_cast<long>(num_good),
                          order.end());
  if (bad.empty()) bad = good;

  const size_t d = space_.dimension();
  std::vector<DimensionDensity> l(d), g(d);
  for (size_t j = 0; j < d; ++j) {
    l[j] = FitDimension(j, good);
    g[j] = FitDimension(j, bad);
  }

  // Sample candidates from l and keep the one maximizing l/g — each
  // dimension independently (the defining approximation of TPE).
  double best_ratio = -1e300;
  std::vector<double> best_unit(d);
  double ratio_sum = 0.0;
  double ratio_sumsq = 0.0;
  for (size_t c = 0; c < tpe_options_.num_candidates; ++c) {
    std::vector<double> unit(d);
    double log_ratio = 0.0;
    for (size_t j = 0; j < d; ++j) {
      unit[j] = SampleFromDimension(l[j], j);
      const size_t k = space_.knob(j).num_categories();
      log_ratio += std::log(DensityAt(l[j], unit[j], k)) -
                   std::log(DensityAt(g[j], unit[j], k));
    }
    ratio_sum += log_ratio;
    ratio_sumsq += log_ratio * log_ratio;
    if (log_ratio > best_ratio) {
      best_ratio = log_ratio;
      best_unit = std::move(unit);
    }
  }
  // TPE has no predictive distribution over scores — only the density
  // ratio acquisition, reported on the log scale.
  suggest_info_.has_acquisition = true;
  suggest_info_.acquisition_best = best_ratio;
  const double pool = static_cast<double>(tpe_options_.num_candidates);
  const double ratio_mean = ratio_sum / pool;
  suggest_info_.acquisition_spread = std::sqrt(
      std::max(0.0, ratio_sumsq / pool - ratio_mean * ratio_mean));
  suggest_info_.acquisition_pool = tpe_options_.num_candidates;
  return space_.FromUnit(best_unit);
}

}  // namespace dbtune
