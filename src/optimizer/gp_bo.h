#ifndef DBTUNE_OPTIMIZER_GP_BO_H_
#define DBTUNE_OPTIMIZER_GP_BO_H_

#include <memory>

#include "optimizer/optimizer.h"
#include "surrogate/surrogate_factory.h"

namespace dbtune {

/// Shared machinery of the GP-based Bayesian optimizers: LHS warm start,
/// GP refit on the (standardized) history each iteration, and Expected
/// Improvement maximized over a random + local candidate pool. Subclasses
/// only choose the kernel; the surrogate itself comes from
/// `CreateGpSurrogate`, so long histories escalate to the sparse tier
/// automatically (see SurrogateTierOptions).
class GpBoOptimizer : public Optimizer {
 public:
  /// `kernel_factory` builds the surrogate's kernel(s); `gp_options`
  /// tunes the exact tier (tests use it to compare the incremental and
  /// full fit paths); `tier_options` sets the escalation policy.
  GpBoOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                KernelFactory kernel_factory,
                GaussianProcessOptions gp_options = {},
                SurrogateTierOptions tier_options = {});

  Configuration Suggest() override;

 protected:
  std::unique_ptr<Regressor> gp_;
};

/// Vanilla BO (iTuned / OtterTune style): GP with an RBF kernel over the
/// scaled encoding, which imposes a natural ordering on categorical knobs.
class VanillaBoOptimizer final : public GpBoOptimizer {
 public:
  VanillaBoOptimizer(const ConfigurationSpace& space,
                     OptimizerOptions options);
  std::string name() const override { return "Vanilla BO"; }
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_GP_BO_H_
