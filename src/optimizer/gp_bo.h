#ifndef DBTUNE_OPTIMIZER_GP_BO_H_
#define DBTUNE_OPTIMIZER_GP_BO_H_

#include <memory>

#include "optimizer/optimizer.h"
#include "surrogate/gaussian_process.h"

namespace dbtune {

/// Shared machinery of the GP-based Bayesian optimizers: LHS warm start,
/// GP refit on the (standardized) history each iteration, and Expected
/// Improvement maximized over a random + local candidate pool. Subclasses
/// only choose the kernel.
class GpBoOptimizer : public Optimizer {
 public:
  /// Takes ownership of the kernel. `gp_options` tunes the surrogate
  /// (tests use it to compare the incremental and full fit paths).
  GpBoOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                std::unique_ptr<Kernel> kernel,
                GaussianProcessOptions gp_options = {});

  Configuration Suggest() override;

 protected:
  GaussianProcess gp_;
};

/// Vanilla BO (iTuned / OtterTune style): GP with an RBF kernel over the
/// scaled encoding, which imposes a natural ordering on categorical knobs.
class VanillaBoOptimizer final : public GpBoOptimizer {
 public:
  VanillaBoOptimizer(const ConfigurationSpace& space,
                     OptimizerOptions options);
  std::string name() const override { return "Vanilla BO"; }
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_GP_BO_H_
