#ifndef DBTUNE_OPTIMIZER_DDPG_H_
#define DBTUNE_OPTIMIZER_DDPG_H_

#include <memory>
#include <vector>

#include "nn/adam.h"
#include "nn/mlp.h"
#include "optimizer/optimizer.h"

namespace dbtune {

/// DDPG-specific options (network sizes follow CDBTune's small MLPs).
struct DdpgOptions {
  size_t state_dim = 40;  // number of DBMS internal metrics
  std::vector<size_t> actor_hidden = {64, 64};
  std::vector<size_t> critic_hidden = {64, 64};
  double actor_lr = 1e-3;
  double critic_lr = 2e-3;
  double gamma = 0.9;
  /// Polyak factor for target-network soft updates.
  double tau = 0.05;
  size_t batch_size = 32;
  size_t replay_capacity = 4096;
  size_t train_steps_per_observe = 8;
  double noise_sigma_initial = 0.5;
  double noise_sigma_final = 0.03;
  double noise_decay_iterations = 150;
};

/// Deep Deterministic Policy Gradient tuner (CDBTune / QTune style): the
/// actor maps DBMS internal metrics (state) to a configuration (action);
/// the critic scores state-action pairs against the reward derived from
/// performance deltas versus the default and the previous iteration.
///
/// Feed observations through `ObserveWithMetrics`; plain `Observe` uses a
/// zero state (the optimizer still works but degenerates to a contextual
/// bandit).
class DdpgOptimizer final : public Optimizer {
 public:
  DdpgOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                DdpgOptions ddpg_options = {});

  Configuration Suggest() override;
  void Observe(const Configuration& config, double score) override;
  void ObserveWithMetrics(const Configuration& config, double score,
                          const std::vector<double>& metrics) override;
  std::string name() const override { return "DDPG"; }

  /// Performance of the default configuration; anchors the reward. When
  /// unset, the first observed score is used.
  void SetReferenceScore(double score) override {
    reference_score_ = score;
    has_reference_ = true;
  }

  /// Actor/critic parameters, for pre-training + fine-tuning transfer.
  struct Weights {
    std::vector<double> actor;
    std::vector<double> critic;
  };
  Weights ExportWeights() const;
  /// Loads pre-trained weights (architecture must match; fails otherwise).
  [[nodiscard]] Status ImportWeights(const Weights& weights);

 private:
  struct Transition {
    std::vector<double> state;
    std::vector<double> action;  // unit-encoded configuration
    double reward = 0.0;
    std::vector<double> next_state;
  };

  double ComputeReward(double score);
  void TrainStep();

  DdpgOptions ddpg_options_;
  Mlp actor_;
  Mlp critic_;
  Mlp actor_target_;
  Mlp critic_target_;
  AdamOptimizer actor_opt_;
  AdamOptimizer critic_opt_;

  std::vector<Transition> replay_;
  size_t replay_cursor_ = 0;

  std::vector<double> state_;        // current state (last metrics)
  std::vector<double> last_action_;  // action awaiting its observation
  bool has_pending_action_ = false;

  double reference_score_ = 0.0;
  bool has_reference_ = false;
  double previous_score_ = 0.0;
  bool has_previous_ = false;
  size_t suggestions_ = 0;
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_DDPG_H_
