#include "optimizer/gp_bo.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dbtune {

GpBoOptimizer::GpBoOptimizer(const ConfigurationSpace& space,
                             OptimizerOptions options,
                             KernelFactory kernel_factory,
                             GaussianProcessOptions gp_options,
                             SurrogateTierOptions tier_options)
    : Optimizer(space, options),
      gp_(CreateGpSurrogate(std::move(kernel_factory), gp_options,
                            tier_options)) {}

Configuration GpBoOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.gp_bo");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("gp_bo.suggest");
  suggest_info_ = {};
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());

  const std::vector<double> z = StandardizedScores();
  Status fit = gp_->Fit(unit_history_, z);
  if (!fit.ok()) {
    // Degenerate geometry (e.g. duplicated points): fall back to random.
    return space_.SampleUniform(rng_);
  }
  const double best = *std::max_element(z.begin(), z.end());

  // Candidate pool: global random samples plus local perturbations of the
  // incumbent.
  const size_t d = space_.dimension();
  size_t best_index = 0;
  for (size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[best_index]) best_index = i;
  }
  const std::vector<double>& incumbent = unit_history_[best_index];

  std::vector<std::vector<double>> candidates;
  candidates.reserve(options_.acquisition_candidates);
  const size_t local = options_.acquisition_candidates / 4;
  for (size_t c = 0; c < local; ++c) {
    std::vector<double> u = incumbent;
    for (size_t j = 0; j < d; ++j) {
      if (rng_.Bernoulli(std::min(1.0, 3.0 / static_cast<double>(d)))) {
        u[j] = std::clamp(u[j] + rng_.Gaussian(0.0, 0.15), 0.0, 1.0);
      }
    }
    candidates.push_back(std::move(u));
  }
  while (candidates.size() < options_.acquisition_candidates) {
    std::vector<double> u(d);
    for (double& v : u) v = rng_.Uniform();
    candidates.push_back(std::move(u));
  }

  // Snap every candidate to the feasible configuration it decodes to
  // (the GP must judge the point that will actually be evaluated), then
  // score the whole pool through the batched predict path — one blocked
  // pass over the factor instead of a posterior query per candidate.
  // The sequential reduction keeps ties resolving to the lowest index
  // regardless of pool size.
  std::vector<std::vector<double>> snapped(candidates.size());
  ParallelFor(GlobalPool(), 0, candidates.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c) {
                  snapped[c] = space_.SnapUnit(candidates[c]);
                }
              });
  std::vector<double> means, variances;
  gp_->PredictMeanVarBatch(snapped, &means, &variances);
  double best_ei = -1.0;
  size_t best_candidate = 0;
  double ei_sum = 0.0;
  double ei_sumsq = 0.0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const double ei = ExpectedImprovement(means[c], variances[c], best);
    ei_sum += ei;
    ei_sumsq += ei * ei;
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = c;
    }
  }
  // The snapped candidate is the configuration that will be evaluated, so
  // its (de-standardized) posterior is the one-step-ahead prediction.
  const ScoreMoments moments = CurrentScoreMoments();
  suggest_info_.has_prediction = true;
  suggest_info_.predicted_mean =
      moments.mean + moments.sd * means[best_candidate];
  suggest_info_.predicted_variance =
      moments.sd * moments.sd * variances[best_candidate];
  suggest_info_.has_acquisition = true;
  suggest_info_.acquisition_best = best_ei;
  const double pool = static_cast<double>(candidates.size());
  const double ei_mean = ei_sum / pool;
  const double ei_var = std::max(0.0, ei_sumsq / pool - ei_mean * ei_mean);
  suggest_info_.acquisition_spread = std::sqrt(ei_var);
  suggest_info_.acquisition_pool = candidates.size();
  return space_.FromUnit(candidates[best_candidate]);
}

VanillaBoOptimizer::VanillaBoOptimizer(const ConfigurationSpace& space,
                                       OptimizerOptions options)
    : GpBoOptimizer(space, options,
                    [] { return std::make_unique<RbfKernel>(); }) {}

}  // namespace dbtune
