#ifndef DBTUNE_OPTIMIZER_PROJECTED_OPTIMIZER_H_
#define DBTUNE_OPTIMIZER_PROJECTED_OPTIMIZER_H_

#include <functional>
#include <memory>
#include <string>

#include "knobs/projected_space.h"
#include "optimizer/optimizer.h"

namespace dbtune {

/// Builds the inner optimizer over the projection's low-dimensional box.
using OptimizerFactory =
    std::function<std::unique_ptr<Optimizer>(const ConfigurationSpace&)>;

/// Runs any optimizer in a HeSBO-style random subspace of the full
/// configuration space (LlamaTune): the inner optimizer searches the
/// projection's low-dimensional unit box, every suggestion is decoded to
/// a full configuration for the DBMS, and observed scores are fed back
/// at the low-dimensional point that produced them. Opt in per session
/// via `SessionControls::projection_dims`.
///
/// The adapter assumes the strict suggest/observe alternation the
/// session loop follows: each `Observe` credits the score to the most
/// recent `Suggest`'s low-dimensional point. Scores observed without a
/// pending suggestion (e.g. externally injected history) update only the
/// full-space bookkeeping.
class ProjectedOptimizer final : public Optimizer {
 public:
  /// Projects `space` and builds an inner optimizer of `inner_type` over
  /// the box via `CreateOptimizer`.
  ProjectedOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                     OptimizerType inner_type,
                     ProjectionOptions projection = {});
  /// As above with a caller-supplied inner-optimizer factory.
  ProjectedOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                     const OptimizerFactory& inner_factory,
                     ProjectionOptions projection = {});

  Configuration Suggest() override;
  void Observe(const Configuration& config, double score) override;
  void ObserveWithMetrics(const Configuration& config, double score,
                          const std::vector<double>& metrics) override;
  void SetReferenceScore(double score) override;
  std::string name() const override;

  const ProjectedConfigurationSpace& projection() const { return projection_; }
  const Optimizer& inner() const { return *inner_; }

 private:
  ProjectedConfigurationSpace projection_;
  std::unique_ptr<Optimizer> inner_;
  Configuration pending_low_;  // inner-box point of the last Suggest
  bool has_pending_ = false;
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_PROJECTED_OPTIMIZER_H_
