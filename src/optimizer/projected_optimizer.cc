#include "optimizer/projected_optimizer.h"

#include "util/logging.h"

namespace dbtune {

ProjectedOptimizer::ProjectedOptimizer(const ConfigurationSpace& space,
                                       OptimizerOptions options,
                                       OptimizerType inner_type,
                                       ProjectionOptions projection)
    : ProjectedOptimizer(
          space, options,
          [&](const ConfigurationSpace& box) {
            return CreateOptimizer(inner_type, box, options);
          },
          projection) {}

ProjectedOptimizer::ProjectedOptimizer(const ConfigurationSpace& space,
                                       OptimizerOptions options,
                                       const OptimizerFactory& inner_factory,
                                       ProjectionOptions projection)
    // The base copies the full space into `space_`, which outlives (and
    // is initialized before) the projection view over it.
    : Optimizer(space, options),
      projection_(&space_, projection),
      inner_(inner_factory(projection_.box())) {
  DBTUNE_CHECK(inner_ != nullptr);
}

Configuration ProjectedOptimizer::Suggest() {
  const Configuration low = inner_->Suggest();
  // The projection is score-preserving, so the inner optimizer's
  // prediction applies unchanged to the decoded configuration.
  suggest_info_ = inner_->last_suggest_info();
  pending_low_ = low;
  has_pending_ = true;
  return projection_.Decode(projection_.box().ToUnit(low));
}

void ProjectedOptimizer::Observe(const Configuration& config, double score) {
  Optimizer::Observe(config, score);
  if (has_pending_) {
    inner_->Observe(pending_low_, score);
    has_pending_ = false;
  }
}

void ProjectedOptimizer::ObserveWithMetrics(
    const Configuration& config, double score,
    const std::vector<double>& metrics) {
  Optimizer::Observe(config, score);
  if (has_pending_) {
    inner_->ObserveWithMetrics(pending_low_, score, metrics);
    has_pending_ = false;
  }
}

void ProjectedOptimizer::SetReferenceScore(double score) {
  inner_->SetReferenceScore(score);
}

std::string ProjectedOptimizer::name() const {
  return "Projected(" + inner_->name() + ")";
}

}  // namespace dbtune
