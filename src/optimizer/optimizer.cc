#include "optimizer/optimizer.h"

#include <algorithm>
#include <cmath>

#include "optimizer/ddpg.h"
#include "optimizer/genetic.h"
#include "optimizer/mixed_kernel_bo.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/random_search.h"
#include "optimizer/smac.h"
#include "optimizer/tpe.h"
#include "optimizer/turbo.h"
#include "optimizer/vanilla_bo.h"
#include "sampling/latin_hypercube.h"
#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

const char* OptimizerTypeName(OptimizerType type) {
  switch (type) {
    case OptimizerType::kVanillaBo:
      return "Vanilla BO";
    case OptimizerType::kMixedKernelBo:
      return "Mixed-Kernel BO";
    case OptimizerType::kSmac:
      return "SMAC";
    case OptimizerType::kTpe:
      return "TPE";
    case OptimizerType::kTurbo:
      return "TuRBO";
    case OptimizerType::kDdpg:
      return "DDPG";
    case OptimizerType::kGa:
      return "GA";
    case OptimizerType::kRandomSearch:
      return "Random";
  }
  return "?";
}

Optimizer::Optimizer(const ConfigurationSpace& space, OptimizerOptions options)
    : space_(space), options_(options), rng_(options.seed) {}

void Optimizer::Observe(const Configuration& config, double score) {
  DBTUNE_CHECK(config.size() == space_.dimension());
  DBTUNE_TRACE_SPAN("optimizer.observe");
  if (obs::MetricsEnabled()) {
    static obs::Counter& observations =
        obs::MetricsRegistry::Get().counter("optimizer.observations");
    observations.Increment();
  }
  configs_.push_back(config);
  unit_history_.push_back(space_.ToUnit(config));
  scores_.push_back(score);
}

void Optimizer::ObserveWithMetrics(const Configuration& config, double score,
                                   const std::vector<double>& metrics) {
  (void)metrics;
  Observe(config, score);
}

double Optimizer::best_score() const {
  DBTUNE_CHECK(!scores_.empty());
  double best = scores_.front();
  for (double s : scores_) best = std::max(best, s);
  return best;
}

const Configuration& Optimizer::best_config() const {
  DBTUNE_CHECK(!scores_.empty());
  size_t best = 0;
  for (size_t i = 1; i < scores_.size(); ++i) {
    if (scores_[i] > scores_[best]) best = i;
  }
  return configs_[best];
}

Configuration Optimizer::NextInit() {
  if (!init_generated_) {
    init_queue_ = LatinHypercubeSample(space_, options_.initial_design, rng_);
    init_generated_ = true;
  }
  DBTUNE_CHECK(InitPending());
  return init_queue_[init_cursor_++];
}

std::vector<double> Optimizer::StandardizedScores() const {
  std::vector<double> out = scores_;
  const double mean = Mean(out);
  double sd = StdDev(out);
  if (sd < 1e-12) sd = 1.0;
  for (double& v : out) v = (v - mean) / sd;
  return out;
}

Optimizer::ScoreMoments Optimizer::CurrentScoreMoments() const {
  ScoreMoments moments;
  if (scores_.empty()) return moments;
  moments.mean = Mean(scores_);
  moments.sd = StdDev(scores_);
  if (moments.sd < 1e-12) moments.sd = 1.0;
  return moments;
}

double ExpectedImprovement(double mean, double variance, double best) {
  const double sd = std::sqrt(std::max(variance, 1e-16));
  const double z = (mean - best) / sd;
  // Standard normal pdf and cdf.
  const double pdf = std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
  const double cdf = 0.5 * std::erfc(-z / std::sqrt(2.0));
  const double ei = (mean - best) * cdf + sd * pdf;
  return ei > 0.0 ? ei : 0.0;
}

std::vector<std::vector<double>> BuildAcquisitionCandidates(
    const ConfigurationSpace& space, Rng& rng,
    const FeatureMatrix& unit_history, const std::vector<double>& scores,
    size_t total) {
  DBTUNE_CHECK(unit_history.size() == scores.size());
  const size_t d = space.dimension();
  std::vector<std::vector<double>> candidates;
  candidates.reserve(total);

  if (!scores.empty()) {
    // Local perturbations of the top incumbents (a quarter of the pool).
    std::vector<size_t> order = ArgSortDescending(scores);
    const size_t incumbents = std::min<size_t>(3, order.size());
    const size_t local = total / 4;
    for (size_t c = 0; c < local; ++c) {
      std::vector<double> u = unit_history[order[c % incumbents]];
      const size_t changes = 1 + rng.Index(3);
      for (size_t k = 0; k < changes; ++k) {
        const size_t j = rng.Index(d);
        if (space.knob(j).is_categorical()) {
          u[j] = rng.Uniform();
        } else {
          u[j] = std::clamp(u[j] + rng.Gaussian(0.0, 0.2), 0.0, 1.0);
        }
      }
      candidates.push_back(std::move(u));
    }
  }
  while (candidates.size() < total) {
    std::vector<double> u(d);
    for (double& v : u) v = rng.Uniform();
    candidates.push_back(std::move(u));
  }
  return candidates;
}

std::unique_ptr<Optimizer> CreateOptimizer(OptimizerType type,
                                           const ConfigurationSpace& space,
                                           OptimizerOptions options) {
  switch (type) {
    case OptimizerType::kVanillaBo:
      return std::make_unique<VanillaBoOptimizer>(space, options);
    case OptimizerType::kMixedKernelBo:
      return std::make_unique<MixedKernelBoOptimizer>(space, options);
    case OptimizerType::kSmac:
      return std::make_unique<SmacOptimizer>(space, options);
    case OptimizerType::kTpe:
      return std::make_unique<TpeOptimizer>(space, options);
    case OptimizerType::kTurbo:
      return std::make_unique<TurboOptimizer>(space, options);
    case OptimizerType::kDdpg:
      return std::make_unique<DdpgOptimizer>(space, options);
    case OptimizerType::kGa:
      return std::make_unique<GeneticOptimizer>(space, options);
    case OptimizerType::kRandomSearch:
      return std::make_unique<RandomSearchOptimizer>(space, options);
  }
  DBTUNE_CHECK_MSG(false, "unknown optimizer type");
  return nullptr;
}

std::vector<OptimizerType> PaperOptimizers() {
  return {OptimizerType::kVanillaBo, OptimizerType::kMixedKernelBo,
          OptimizerType::kSmac,      OptimizerType::kTpe,
          OptimizerType::kTurbo,     OptimizerType::kDdpg,
          OptimizerType::kGa};
}

}  // namespace dbtune
