#include "optimizer/mixed_kernel_bo.h"

namespace dbtune {

namespace {
std::vector<bool> CategoricalMask(const ConfigurationSpace& space) {
  std::vector<bool> mask(space.dimension(), false);
  for (size_t i = 0; i < space.dimension(); ++i) {
    mask[i] = space.knob(i).is_categorical();
  }
  return mask;
}
}  // namespace

MixedKernelBoOptimizer::MixedKernelBoOptimizer(const ConfigurationSpace& space,
                                               OptimizerOptions options)
    : GpBoOptimizer(space, options, [mask = CategoricalMask(space)] {
        return std::make_unique<MixedKernel>(mask);
      }) {}

}  // namespace dbtune
