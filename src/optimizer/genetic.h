#ifndef DBTUNE_OPTIMIZER_GENETIC_H_
#define DBTUNE_OPTIMIZER_GENETIC_H_

#include <vector>

#include "optimizer/optimizer.h"

namespace dbtune {

/// GA-specific options.
struct GeneticOptions {
  size_t population_size = 30;
  size_t tournament_size = 3;
  size_t elites = 1;
  /// Per-gene mutation probability (scaled by 1/d when 0).
  double mutation_rate = 0.0;
  double mutation_sigma = 0.20;
  double crossover_rate = 0.9;
};

/// Genetic algorithm: tournament selection, uniform crossover, and
/// per-gene mutation over the unit encoding. Naturally supports
/// categorical knobs but is sample-hungry — the paper's meta-heuristic
/// baseline.
class GeneticOptimizer final : public Optimizer {
 public:
  GeneticOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                   GeneticOptions ga_options = {});

  Configuration Suggest() override;
  void Observe(const Configuration& config, double score) override;
  std::string name() const override { return "GA"; }

 private:
  struct Individual {
    std::vector<double> unit;
    double fitness = 0.0;
    bool evaluated = false;
  };

  void BreedNextGeneration();
  const Individual& Tournament(const std::vector<Individual>& pool);

  GeneticOptions ga_options_;
  std::vector<Individual> population_;
  size_t cursor_ = 0;  // next individual to evaluate
  int pending_ = -1;   // individual awaiting its observation
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_GENETIC_H_
