#ifndef DBTUNE_OPTIMIZER_TPE_H_
#define DBTUNE_OPTIMIZER_TPE_H_

#include "optimizer/optimizer.h"

namespace dbtune {

/// TPE-specific options.
struct TpeOptions {
  /// Fraction of observations treated as "good" (the gamma quantile).
  double gamma = 0.15;
  /// Candidates sampled from the good density per suggestion.
  size_t num_candidates = 24;
  /// Minimum observations in the good set.
  size_t min_good = 4;
};

/// Tree-structured Parzen Estimator (Bergstra et al. 2011): models
/// p(x|good) and p(x|bad) with independent per-dimension Parzen
/// estimators and suggests the candidate maximizing l(x)/g(x).
///
/// The per-dimension independence is TPE's documented weakness on
/// configuration spaces with knob interactions (paper §6.2.1).
class TpeOptimizer final : public Optimizer {
 public:
  TpeOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
               TpeOptions tpe_options = {});

  Configuration Suggest() override;
  std::string name() const override { return "TPE"; }

 private:
  /// Per-dimension Parzen estimator over either numeric values (Gaussian
  /// KDE) or categories (smoothed frequencies).
  struct DimensionDensity {
    bool categorical = false;
    // Numeric: kernel centers and shared bandwidth.
    std::vector<double> centers;
    double bandwidth = 0.1;
    // Categorical: smoothed probability per category.
    std::vector<double> category_probs;
  };

  DimensionDensity FitDimension(size_t dim,
                                const std::vector<size_t>& sample_ids) const;
  double SampleFromDimension(const DimensionDensity& density, size_t dim);
  static double DensityAt(const DimensionDensity& density, double value,
                          size_t num_categories);

  TpeOptions tpe_options_;
};

}  // namespace dbtune

#endif  // DBTUNE_OPTIMIZER_TPE_H_
