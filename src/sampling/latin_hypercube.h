#ifndef DBTUNE_SAMPLING_LATIN_HYPERCUBE_H_
#define DBTUNE_SAMPLING_LATIN_HYPERCUBE_H_

#include <vector>

#include "knobs/configuration_space.h"
#include "util/random.h"

namespace dbtune {

/// Latin Hypercube Sampling (McKay 1992): `count` points in [0,1]^dim such
/// that each dimension is stratified into `count` equal bins with exactly
/// one point per bin.
std::vector<std::vector<double>> LatinHypercubeUnit(size_t count, size_t dim,
                                                    Rng& rng);

/// LHS directly over a configuration space (decodes unit points into valid
/// configurations). This is the initial design used by the BO-based
/// optimizers and the data-collection step of the surrogate benchmark.
std::vector<Configuration> LatinHypercubeSample(const ConfigurationSpace& space,
                                                size_t count, Rng& rng);

}  // namespace dbtune

#endif  // DBTUNE_SAMPLING_LATIN_HYPERCUBE_H_
