#include "sampling/latin_hypercube.h"

namespace dbtune {

std::vector<std::vector<double>> LatinHypercubeUnit(size_t count, size_t dim,
                                                    Rng& rng) {
  std::vector<std::vector<double>> points(count, std::vector<double>(dim));
  for (size_t d = 0; d < dim; ++d) {
    std::vector<size_t> perm = rng.Permutation(count);
    for (size_t i = 0; i < count; ++i) {
      const double lo = static_cast<double>(perm[i]) /
                        static_cast<double>(count);
      points[i][d] = lo + rng.Uniform() / static_cast<double>(count);
    }
  }
  return points;
}

std::vector<Configuration> LatinHypercubeSample(const ConfigurationSpace& space,
                                                size_t count, Rng& rng) {
  std::vector<Configuration> configs;
  configs.reserve(count);
  for (const auto& unit : LatinHypercubeUnit(count, space.dimension(), rng)) {
    configs.push_back(space.FromUnit(unit));
  }
  return configs;
}

}  // namespace dbtune
