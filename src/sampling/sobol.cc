#include "sampling/sobol.h"

#include <numeric>

#include "util/logging.h"

namespace dbtune {

namespace {

// Returns the first `n` primes (bases for the Halton sequence).
std::vector<uint32_t> FirstPrimes(size_t n) {
  std::vector<uint32_t> primes;
  uint32_t candidate = 2;
  while (primes.size() < n) {
    bool is_prime = true;
    for (uint32_t p : primes) {
      if (p * p > candidate) break;
      if (candidate % p == 0) {
        is_prime = false;
        break;
      }
    }
    if (is_prime) primes.push_back(candidate);
    ++candidate;
  }
  return primes;
}

}  // namespace

QuasiRandomSequence::QuasiRandomSequence(size_t dim, Rng& rng)
    : dim_(dim), bases_(FirstPrimes(dim)) {
  perms_.reserve(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    // Random permutation of digits 0..base-1 that keeps 0 fixed so the
    // sequence stays well-distributed near the origin.
    std::vector<uint32_t> perm(bases_[d]);
    std::iota(perm.begin(), perm.end(), 0u);
    for (size_t i = perm.size() - 1; i > 1; --i) {
      size_t j = 1 + rng.Index(i);  // never swaps slot 0
      std::swap(perm[i], perm[j]);
    }
    perms_.push_back(std::move(perm));
  }
}

std::vector<double> QuasiRandomSequence::Next() {
  ++index_;  // Halton index 0 is the origin; skip it.
  std::vector<double> point(dim_);
  for (size_t d = 0; d < dim_; ++d) {
    const uint32_t base = bases_[d];
    const std::vector<uint32_t>& perm = perms_[d];
    double f = 1.0;
    double value = 0.0;
    size_t i = index_;
    while (i > 0) {
      f /= static_cast<double>(base);
      value += f * static_cast<double>(perm[i % base]);
      i /= base;
    }
    point[d] = value;
  }
  return point;
}

std::vector<Configuration> QuasiRandomSequence::Sample(
    const ConfigurationSpace& space, size_t count) {
  DBTUNE_CHECK(space.dimension() == dim_);
  std::vector<Configuration> configs;
  configs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    configs.push_back(space.FromUnit(Next()));
  }
  return configs;
}

}  // namespace dbtune
