#ifndef DBTUNE_SAMPLING_SOBOL_H_
#define DBTUNE_SAMPLING_SOBOL_H_

#include <vector>

#include "knobs/configuration_space.h"
#include "util/random.h"

namespace dbtune {

/// Low-discrepancy sequence generator (randomly scrambled Halton). Used as
/// an alternative space-filling design where incremental generation is
/// preferred over LHS's fixed-count stratification.
class QuasiRandomSequence {
 public:
  /// `dim` dimensions; `rng` seeds the per-dimension digit scrambling.
  QuasiRandomSequence(size_t dim, Rng& rng);

  /// The next point in [0,1)^dim.
  std::vector<double> Next();

  /// Generates `count` configurations over `space`.
  std::vector<Configuration> Sample(const ConfigurationSpace& space,
                                    size_t count);

 private:
  size_t dim_;
  size_t index_ = 0;
  std::vector<uint32_t> bases_;
  // Per-dimension digit permutations (scrambling), indexed by base.
  std::vector<std::vector<uint32_t>> perms_;
};

}  // namespace dbtune

#endif  // DBTUNE_SAMPLING_SOBOL_H_
