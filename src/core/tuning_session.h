#ifndef DBTUNE_CORE_TUNING_SESSION_H_
#define DBTUNE_CORE_TUNING_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "dbms/environment.h"
#include "obs/diagnostics.h"
#include "optimizer/optimizer.h"

namespace dbtune {

namespace store {
class ObservationStore;
}  // namespace store

/// Outcome of one tuning session (the unit of all paper experiments).
struct SessionResult {
  /// Best-so-far improvement (%) against the default after each iteration.
  std::vector<double> improvement_trace;
  /// Best-so-far raw objective after each iteration.
  std::vector<double> objective_trace;
  double final_improvement = 0.0;
  double final_objective = 0.0;
  /// 1-based iteration at which the best configuration was found.
  size_t best_iteration = 0;
  /// Total optimizer overhead (wall-clock seconds spent in Suggest +
  /// Observe, excluding evaluation) — Figure 9's quantity.
  double algorithm_overhead_seconds = 0.0;
  /// Per-iteration overhead (seconds), recorded when requested.
  std::vector<double> per_iteration_overhead;
  /// Simulated DBMS-side seconds (restarts + stress tests).
  double simulated_evaluation_seconds = 0.0;
  /// Final iteration's tuner-quality diagnostics (calibration, regret,
  /// model health), set when diagnostics were enabled for the session.
  bool has_diagnostics = false;
  obs::IterationDiagnostics final_diagnostics;
  /// Iterations recovered from the durable store instead of evaluated
  /// live (0 when no store was attached or the session started fresh).
  size_t replayed_iterations = 0;
};

/// Extra controls for `RunTuningSession`.
struct SessionControls {
  /// Record per-iteration optimizer overhead (Figure 9).
  bool record_overhead = false;
  /// When non-empty, one JSON line per iteration is written here (see
  /// obs::SessionLogger). Empty → fall back to `DBTUNE_SESSION_LOG`.
  std::string session_log_path;
  /// When non-empty, the Chrome trace buffer is written here at session
  /// end. Empty → fall back to the path form of `DBTUNE_TRACE`.
  std::string trace_path;
  /// When > 0, the convenience overload runs the optimizer inside a
  /// HeSBO-style random projection of the tuning space with this many
  /// dimensions (LlamaTune; see ProjectedConfigurationSpace). 0 searches
  /// the native space.
  size_t projection_dims = 0;
  /// Seed of the projection's hash/sign assignment.
  uint64_t projection_seed = 1;
  /// Probability mass reserved for each knob's default ("special")
  /// value in the projected decoding.
  double projection_special_bias = 0.2;
  /// Collect per-iteration tuner-quality diagnostics (calibration,
  /// regret, model health). Also enabled by `DBTUNE_SESSION_DIAGNOSTICS`.
  /// Diagnostics never perturb the tuning trajectory.
  bool diagnostics = false;
  /// Labels this session's per-session registry metrics and report rows.
  /// Empty → "default".
  std::string session_label;
  /// When non-empty, Prometheus text-format snapshots of the metrics
  /// registry are written here (atomic rename) on the exporter's cadence
  /// plus once at session end. Empty → fall back to
  /// `DBTUNE_METRICS_EXPORT`.
  std::string metrics_export_path;
  /// When non-empty, the session opens the durable observation store at
  /// this path, replays any history recorded under `store_session_id`,
  /// and appends each new observation to the write-ahead log. Empty →
  /// fall back to `DBTUNE_STORE`; still empty → no store.
  std::string store_path;
  /// Durable-store session id. Empty → `session_label`, else "default".
  std::string store_session_id;
  /// Borrowed already-open store; takes precedence over `store_path`
  /// (never open two handles onto one WAL). The caller keeps ownership
  /// and must outlive the session.
  store::ObservationStore* store = nullptr;
};

/// Drives `iterations` suggest/evaluate/observe rounds of `optimizer`
/// against `env` (the paper's Figure 2 workflow loop) and reports the
/// traces every experiment consumes. The optimizer must have been built
/// over `env->space()`.
SessionResult RunTuningSession(TuningEnvironment* env, Optimizer* optimizer,
                               size_t iterations,
                               SessionControls controls = {});

/// Convenience: builds the environment over `knob_indices`, creates the
/// optimizer, and runs the session.
SessionResult RunTuningSession(DbmsSimulator* simulator,
                               const std::vector<size_t>& knob_indices,
                               OptimizerType optimizer_type, size_t iterations,
                               uint64_t seed, SessionControls controls = {});

}  // namespace dbtune

#endif  // DBTUNE_CORE_TUNING_SESSION_H_
