#include "core/advisor.h"

#include "dbms/environment.h"
#include "obs/trace.h"
#include "sampling/latin_hypercube.h"
#include "store/observation_store.h"
#include "transfer/rgpe.h"
#include "util/logging.h"

namespace dbtune {

Result<AdvisorReport> TuneDbms(DbmsSimulator* simulator,
                               const AdvisorOptions& options,
                               const ObservationRepository* repository) {
  DBTUNE_CHECK(simulator != nullptr);
  if (options.tuning_knobs == 0 ||
      options.tuning_knobs > simulator->space().dimension()) {
    return Status::InvalidArgument("tuning_knobs out of range");
  }
  DBTUNE_TRACE_SPAN("advisor.tune");

  AdvisorReport report;

  // --- Step 0: open the durable store (opt-in) so its persisted
  // base-task pool joins the transfer repository and the tuning session
  // below resumes any recorded trajectory. Store failures degrade to
  // tuning without durability.
  std::unique_ptr<store::ObservationStore> owned_store;
  store::ObservationStore* store = options.session.store;
  if (store == nullptr) {
    const std::string store_path =
        store::ObservationStore::ResolvePath(options.session.store_path);
    if (!store_path.empty()) {
      store::StoreOptions store_options;
      store_options.snapshot_every =
          store::ObservationStore::ResolveSnapshotEvery();
      auto opened = store::ObservationStore::Open(store_path, store_options);
      if (opened.ok()) {
        owned_store = std::move(opened).value();
        store = owned_store.get();
      } else {
        DBTUNE_LOG(kWarning) << "observation store disabled: "
                             << opened.status().ToString();
      }
    }
  }
  ObservationRepository merged_repository;
  const ObservationRepository* effective_repository = repository;
  if (store != nullptr && store->num_tasks() > 0) {
    if (repository != nullptr) {
      for (const SourceTask& task : repository->tasks()) {
        merged_repository.AddTask(task);
      }
    }
    store->ExportTasks(&merged_repository);
    effective_repository = &merged_repository;
  }

  // --- Step 1: collect observations over the full space.
  TuningEnvironment full_env(simulator);
  Rng rng(options.seed);
  std::vector<Configuration> configs;
  std::vector<double> scores;
  {
    DBTUNE_TRACE_SPAN("advisor.collect");
    const std::vector<Configuration> samples = LatinHypercubeSample(
        simulator->space(), options.importance_samples, rng);
    for (const Configuration& config : samples) {
      const Observation obs = full_env.Evaluate(config);
      configs.push_back(obs.config);
      scores.push_back(obs.score);
    }
  }
  report.default_objective = full_env.default_objective();

  // --- Step 2: rank knobs and prune the space.
  {
    DBTUNE_TRACE_SPAN("advisor.rank_knobs");
    DBTUNE_ASSIGN_OR_RETURN(
        const ImportanceInput input,
        MakeImportanceInput(simulator->space(), configs, scores,
                            simulator->EffectiveDefault(),
                            full_env.default_score()));
    std::unique_ptr<ImportanceMeasure> measure =
        CreateImportanceMeasure(options.measurement, options.seed);
    DBTUNE_ASSIGN_OR_RETURN(const std::vector<double> importance,
                            measure->Rank(input));
    report.selected_knobs = TopKnobs(importance, options.tuning_knobs);
    for (size_t knob : report.selected_knobs) {
      report.selected_knob_names.push_back(
          simulator->space().knob(knob).name());
    }
  }

  // --- Step 3: optimize over the pruned space, with RGPE when history
  // is available.
  TuningEnvironment env(simulator, report.selected_knobs);
  OptimizerOptions optimizer_options;
  optimizer_options.seed = options.seed ^ 0xAD;
  std::unique_ptr<Optimizer> optimizer;
  if (effective_repository != nullptr && !effective_repository->empty()) {
    optimizer = std::make_unique<RgpeOptimizer>(
        env.space(), optimizer_options, effective_repository,
        options.optimizer == OptimizerType::kMixedKernelBo
            ? TransferBase::kMixedKernelBo
            : TransferBase::kSmac);
  } else {
    optimizer =
        CreateOptimizer(options.optimizer, env.space(), optimizer_options);
  }
  SessionControls session_controls = options.session;
  session_controls.store = store;
  report.session = RunTuningSession(&env, optimizer.get(),
                                    options.tuning_iterations,
                                    session_controls);
  // Seal the finished trajectory into the persisted base-task pool so the
  // next advisor run (any workload) starts from a richer repository.
  if (store != nullptr) {
    std::string session_id = options.session.store_session_id;
    if (session_id.empty()) {
      session_id = options.session.session_label.empty()
                       ? "default"
                       : options.session.session_label;
    }
    const Status finished =
        store->FinishSession(session_id, env.space(), session_id);
    if (!finished.ok()) {
      DBTUNE_LOG(kWarning) << "store task not persisted: "
                           << finished.ToString();
    }
  }

  // --- Assemble the recommendation.
  report.best_objective = env.best_objective();
  report.improvement_percent = env.ImprovementPercent();
  Configuration full = simulator->EffectiveDefault();
  const Configuration& best_sub = env.best_config();
  for (size_t i = 0; i < report.selected_knobs.size(); ++i) {
    full[report.selected_knobs[i]] = best_sub[i];
  }
  report.best_config = full;
  return report;
}

}  // namespace dbtune
