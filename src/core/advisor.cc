#include "core/advisor.h"

#include "dbms/environment.h"
#include "obs/trace.h"
#include "sampling/latin_hypercube.h"
#include "transfer/rgpe.h"
#include "util/logging.h"

namespace dbtune {

Result<AdvisorReport> TuneDbms(DbmsSimulator* simulator,
                               const AdvisorOptions& options,
                               const ObservationRepository* repository) {
  DBTUNE_CHECK(simulator != nullptr);
  if (options.tuning_knobs == 0 ||
      options.tuning_knobs > simulator->space().dimension()) {
    return Status::InvalidArgument("tuning_knobs out of range");
  }
  DBTUNE_TRACE_SPAN("advisor.tune");

  AdvisorReport report;

  // --- Step 1: collect observations over the full space.
  TuningEnvironment full_env(simulator);
  Rng rng(options.seed);
  std::vector<Configuration> configs;
  std::vector<double> scores;
  {
    DBTUNE_TRACE_SPAN("advisor.collect");
    const std::vector<Configuration> samples = LatinHypercubeSample(
        simulator->space(), options.importance_samples, rng);
    for (const Configuration& config : samples) {
      const Observation obs = full_env.Evaluate(config);
      configs.push_back(obs.config);
      scores.push_back(obs.score);
    }
  }
  report.default_objective = full_env.default_objective();

  // --- Step 2: rank knobs and prune the space.
  {
    DBTUNE_TRACE_SPAN("advisor.rank_knobs");
    DBTUNE_ASSIGN_OR_RETURN(
        const ImportanceInput input,
        MakeImportanceInput(simulator->space(), configs, scores,
                            simulator->EffectiveDefault(),
                            full_env.default_score()));
    std::unique_ptr<ImportanceMeasure> measure =
        CreateImportanceMeasure(options.measurement, options.seed);
    DBTUNE_ASSIGN_OR_RETURN(const std::vector<double> importance,
                            measure->Rank(input));
    report.selected_knobs = TopKnobs(importance, options.tuning_knobs);
    for (size_t knob : report.selected_knobs) {
      report.selected_knob_names.push_back(
          simulator->space().knob(knob).name());
    }
  }

  // --- Step 3: optimize over the pruned space, with RGPE when history
  // is available.
  TuningEnvironment env(simulator, report.selected_knobs);
  OptimizerOptions optimizer_options;
  optimizer_options.seed = options.seed ^ 0xAD;
  std::unique_ptr<Optimizer> optimizer;
  if (repository != nullptr && !repository->empty()) {
    optimizer = std::make_unique<RgpeOptimizer>(
        env.space(), optimizer_options, repository,
        options.optimizer == OptimizerType::kMixedKernelBo
            ? TransferBase::kMixedKernelBo
            : TransferBase::kSmac);
  } else {
    optimizer =
        CreateOptimizer(options.optimizer, env.space(), optimizer_options);
  }
  report.session = RunTuningSession(&env, optimizer.get(),
                                    options.tuning_iterations,
                                    options.session);

  // --- Assemble the recommendation.
  report.best_objective = env.best_objective();
  report.improvement_percent = env.ImprovementPercent();
  Configuration full = simulator->EffectiveDefault();
  const Configuration& best_sub = env.best_config();
  for (size_t i = 0; i < report.selected_knobs.size(); ++i) {
    full[report.selected_knobs[i]] = best_sub[i];
  }
  report.best_config = full;
  return report;
}

}  // namespace dbtune
