#ifndef DBTUNE_CORE_METRICS_H_
#define DBTUNE_CORE_METRICS_H_

#include <optional>
#include <vector>

#include "dbms/workload.h"

namespace dbtune {

/// Performance enhancement (paper Eq. 4) of a transfer run over its base:
/// positive means the transfer found a better configuration within the
/// same budget. Objectives are raw values; `kind` fixes the direction.
double PerformanceEnhancement(double base_objective, double transfer_objective,
                              ObjectiveKind kind);

/// Speedup (paper Eq. 5): iterations the base optimizer needed to reach
/// its best, divided by the iterations the transfer run needed to beat
/// that value. `std::nullopt` ("×" in Table 8) when the transfer run
/// never beats the base best. Traces are best-so-far raw objectives per
/// iteration.
std::optional<double> TransferSpeedup(
    const std::vector<double>& base_objective_trace,
    const std::vector<double>& transfer_objective_trace, ObjectiveKind kind);

/// Average rank per method across scenarios (Tables 6 and 7):
/// `values[s][m]` is method m's result in scenario s; ranks are 1 = best.
/// Ties receive the average of their positions.
std::vector<double> AverageRanks(const std::vector<std::vector<double>>& values,
                                 bool higher_is_better);

}  // namespace dbtune

#endif  // DBTUNE_CORE_METRICS_H_
