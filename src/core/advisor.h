#ifndef DBTUNE_CORE_ADVISOR_H_
#define DBTUNE_CORE_ADVISOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/tuning_session.h"
#include "dbms/simulator.h"
#include "importance/importance.h"
#include "transfer/repository.h"

namespace dbtune {

/// Advisor options: the paper's recommended end-to-end "path" (SHAP knob
/// selection + SMAC optimizer + RGPE transfer when history exists).
struct AdvisorOptions {
  /// Samples collected (LHS) for the knob-selection step.
  size_t importance_samples = 400;
  /// Knobs kept after ranking.
  size_t tuning_knobs = 20;
  MeasurementType measurement = MeasurementType::kShap;
  OptimizerType optimizer = OptimizerType::kSmac;
  /// Tuning iterations after knob selection.
  size_t tuning_iterations = 100;
  uint64_t seed = 5;
  /// Session controls (diagnostics, session log, metrics export, ...)
  /// passed through to the tuning loop.
  SessionControls session;
};

/// Advisor outcome: the recommendation plus the evidence behind it.
struct AdvisorReport {
  /// Selected knob indices (into the full catalog), importance order.
  std::vector<size_t> selected_knobs;
  /// Names of the selected knobs.
  std::vector<std::string> selected_knob_names;
  /// Best configuration found (full space).
  Configuration best_config;
  double default_objective = 0.0;
  double best_objective = 0.0;
  double improvement_percent = 0.0;
  SessionResult session;
};

/// End-to-end tuning following the paper's recommended design: collect
/// observations, rank knobs (SHAP by default), prune the space, then
/// optimize (SMAC by default), optionally accelerated by RGPE over
/// `repository`. One call = the full Figure 2 workflow.
[[nodiscard]] Result<AdvisorReport> TuneDbms(DbmsSimulator* simulator,
                               const AdvisorOptions& options,
                               const ObservationRepository* repository =
                                   nullptr);

}  // namespace dbtune

#endif  // DBTUNE_CORE_ADVISOR_H_
