#include "core/metrics.h"

#include <cmath>

#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

namespace {
// Converts a raw objective into maximize direction.
double Directed(double objective, ObjectiveKind kind) {
  return kind == ObjectiveKind::kThroughput ? objective : -objective;
}
}  // namespace

double PerformanceEnhancement(double base_objective, double transfer_objective,
                              ObjectiveKind kind) {
  DBTUNE_CHECK(base_objective > 0.0);
  if (kind == ObjectiveKind::kThroughput) {
    return (transfer_objective - base_objective) / base_objective;
  }
  // Lower latency is better: enhancement is the relative reduction.
  return (base_objective - transfer_objective) / base_objective;
}

std::optional<double> TransferSpeedup(
    const std::vector<double>& base_objective_trace,
    const std::vector<double>& transfer_objective_trace, ObjectiveKind kind) {
  DBTUNE_CHECK(!base_objective_trace.empty());
  DBTUNE_CHECK(!transfer_objective_trace.empty());

  const double base_best = Directed(base_objective_trace.back(), kind);
  // Steps the base took to first reach its final best.
  size_t base_steps = base_objective_trace.size();
  for (size_t i = 0; i < base_objective_trace.size(); ++i) {
    if (Directed(base_objective_trace[i], kind) >= base_best - 1e-12) {
      base_steps = i + 1;
      break;
    }
  }
  // Steps the transfer run took to beat the base best.
  for (size_t i = 0; i < transfer_objective_trace.size(); ++i) {
    if (Directed(transfer_objective_trace[i], kind) > base_best) {
      return static_cast<double>(base_steps) / static_cast<double>(i + 1);
    }
  }
  return std::nullopt;
}

std::vector<double> AverageRanks(const std::vector<std::vector<double>>& values,
                                 bool higher_is_better) {
  DBTUNE_CHECK(!values.empty());
  const size_t methods = values.front().size();
  std::vector<double> rank_sum(methods, 0.0);
  for (const std::vector<double>& scenario : values) {
    DBTUNE_CHECK(scenario.size() == methods);
    // Rank 1 = best.
    std::vector<double> keyed = scenario;
    if (higher_is_better) {
      for (double& v : keyed) v = -v;
    }
    const std::vector<double> ranks = Ranks(keyed);
    for (size_t m = 0; m < methods; ++m) rank_sum[m] += ranks[m];
  }
  for (double& v : rank_sum) v /= static_cast<double>(values.size());
  return rank_sum;
}

}  // namespace dbtune
