#include "core/tuning_session.h"

#include <chrono>

#include "util/logging.h"

namespace dbtune {

namespace {
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SessionResult RunTuningSession(TuningEnvironment* env, Optimizer* optimizer,
                               size_t iterations, SessionControls controls) {
  DBTUNE_CHECK(env != nullptr && optimizer != nullptr);
  DBTUNE_CHECK(optimizer->space().dimension() == env->space().dimension());
  optimizer->SetReferenceScore(env->default_score());

  SessionResult result;
  result.improvement_trace.reserve(iterations);
  result.objective_trace.reserve(iterations);
  const double sim_seconds_start = env->simulator().simulated_seconds();

  for (size_t iter = 0; iter < iterations; ++iter) {
    const double t0 = NowSeconds();
    const Configuration config = optimizer->Suggest();
    const double t1 = NowSeconds();

    const Observation obs = env->Evaluate(config);

    const double t2 = NowSeconds();
    optimizer->ObserveWithMetrics(obs.config, obs.score,
                                  obs.internal_metrics);
    const double t3 = NowSeconds();

    const double overhead = (t1 - t0) + (t3 - t2);
    result.algorithm_overhead_seconds += overhead;
    if (controls.record_overhead) {
      result.per_iteration_overhead.push_back(overhead);
    }
    result.improvement_trace.push_back(env->ImprovementPercent());
    result.objective_trace.push_back(env->best_objective());
  }

  result.final_improvement = env->ImprovementPercent();
  result.final_objective = env->best_objective();
  result.best_iteration = env->best_iteration();
  result.simulated_evaluation_seconds =
      env->simulator().simulated_seconds() - sim_seconds_start;
  return result;
}

SessionResult RunTuningSession(DbmsSimulator* simulator,
                               const std::vector<size_t>& knob_indices,
                               OptimizerType optimizer_type, size_t iterations,
                               uint64_t seed, SessionControls controls) {
  TuningEnvironment env(simulator, knob_indices);
  OptimizerOptions options;
  options.seed = seed;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(optimizer_type, env.space(), options);
  return RunTuningSession(&env, optimizer.get(), iterations, controls);
}

}  // namespace dbtune
