#include "core/tuning_session.h"

#include "obs/clock.h"
#include "obs/diagnostics.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "optimizer/projected_optimizer.h"
#include "util/logging.h"

namespace dbtune {

SessionResult RunTuningSession(TuningEnvironment* env, Optimizer* optimizer,
                               size_t iterations, SessionControls controls) {
  DBTUNE_CHECK(env != nullptr && optimizer != nullptr);
  DBTUNE_CHECK(optimizer->space().dimension() == env->space().dimension());
  optimizer->SetReferenceScore(env->default_score());

  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("session.suggest");
  static obs::Histogram& evaluate_hist =
      obs::MetricsRegistry::Get().histogram("session.evaluate");
  static obs::Histogram& observe_hist =
      obs::MetricsRegistry::Get().histogram("session.observe");
  static obs::Counter& iteration_counter =
      obs::MetricsRegistry::Get().counter("session.iterations");
  static obs::Gauge& best_score_gauge =
      obs::MetricsRegistry::Get().gauge("session.best_score");

  obs::SessionLogger session_log(
      obs::SessionLogger::ResolvePath(controls.session_log_path));

  // Diagnostics observe the session; they never feed back into it (no
  // RNG draws, no clock reads inside Record), so enabling them leaves
  // the tuning trajectory bitwise unchanged.
  std::unique_ptr<obs::TuningDiagnostics> diagnostics;
  if (controls.diagnostics || obs::DiagnosticsEnvEnabled()) {
    obs::TuningDiagnosticsOptions diag_options;
    diag_options.session_label = controls.session_label;
    diagnostics = std::make_unique<obs::TuningDiagnostics>(diag_options);
  }
  obs::MetricsExporter exporter(
      obs::MetricsExporter::ResolvePath(controls.metrics_export_path),
      obs::MetricsExporter::ResolveIntervalSeconds());

  SessionResult result;
  result.improvement_trace.reserve(iterations);
  result.objective_trace.reserve(iterations);
  const double sim_seconds_start = env->simulator().simulated_seconds();

  for (size_t iter = 0; iter < iterations; ++iter) {
    DBTUNE_TRACE_SPAN("session.iteration");

    const double t0 = obs::MonotonicSeconds();
    const Configuration config = [&] {
      obs::ScopedLatency latency(&suggest_hist);
      DBTUNE_TRACE_SPAN("session.suggest");
      return optimizer->Suggest();
    }();
    const double t1 = obs::MonotonicSeconds();

    const Observation observation = [&] {
      obs::ScopedLatency latency(&evaluate_hist);
      DBTUNE_TRACE_SPAN("session.evaluate");
      return env->Evaluate(config);
    }();
    const double t2 = obs::MonotonicSeconds();

    {
      obs::ScopedLatency latency(&observe_hist);
      DBTUNE_TRACE_SPAN("session.observe");
      optimizer->ObserveWithMetrics(observation.config, observation.score,
                                    observation.internal_metrics);
    }
    const double t3 = obs::MonotonicSeconds();

    const double overhead = (t1 - t0) + (t3 - t2);
    result.algorithm_overhead_seconds += overhead;
    if (controls.record_overhead) {
      result.per_iteration_overhead.push_back(overhead);
    }
    result.improvement_trace.push_back(env->ImprovementPercent());
    result.objective_trace.push_back(env->best_objective());

    if (obs::MetricsEnabled()) {
      iteration_counter.Increment();
      best_score_gauge.Set(env->best_objective());
    }
    if (diagnostics != nullptr) {
      const SuggestInfo& info = optimizer->last_suggest_info();
      obs::DiagnosticsPrediction prediction;
      prediction.has_prediction = info.has_prediction;
      prediction.mean = info.predicted_mean;
      prediction.variance = info.predicted_variance;
      prediction.has_acquisition = info.has_acquisition;
      prediction.acquisition_best = info.acquisition_best;
      prediction.acquisition_spread = info.acquisition_spread;
      diagnostics->Record(prediction, observation.score);
    }
    if (session_log.enabled()) {
      obs::SessionIterationRecord record;
      record.iteration = iter + 1;
      record.suggest_seconds = t1 - t0;
      record.evaluate_seconds = t2 - t1;
      record.observe_seconds = t3 - t2;
      record.score = observation.score;
      record.best_score = env->best_objective();
      record.improvement_percent = env->ImprovementPercent();
      if (diagnostics != nullptr) {
        record.has_diagnostics = true;
        record.diagnostics = diagnostics->last();
      }
      session_log.Log(record);
    }
    exporter.MaybeExport();
  }

  result.final_improvement = env->ImprovementPercent();
  result.final_objective = env->best_objective();
  result.best_iteration = env->best_iteration();
  result.simulated_evaluation_seconds =
      env->simulator().simulated_seconds() - sim_seconds_start;
  if (diagnostics != nullptr) {
    result.has_diagnostics = true;
    result.final_diagnostics = diagnostics->last();
  }
  if (exporter.enabled()) {
    const Status exported = exporter.ExportNow();
    if (!exported.ok()) {
      DBTUNE_LOG(kWarning) << "metrics not exported: "
                           << exported.ToString();
    }
  }

  const std::string trace_path =
      controls.trace_path.empty() ? obs::TraceEnvPath() : controls.trace_path;
  if (!trace_path.empty()) {
    const Status written = obs::WriteTrace(trace_path);
    if (!written.ok()) {
      DBTUNE_LOG(kWarning) << "trace not written: " << written.ToString();
    }
  }
  return result;
}

SessionResult RunTuningSession(DbmsSimulator* simulator,
                               const std::vector<size_t>& knob_indices,
                               OptimizerType optimizer_type, size_t iterations,
                               uint64_t seed, SessionControls controls) {
  TuningEnvironment env(simulator, knob_indices);
  OptimizerOptions options;
  options.seed = seed;
  std::unique_ptr<Optimizer> optimizer;
  if (controls.projection_dims > 0) {
    ProjectionOptions projection;
    projection.dims = controls.projection_dims;
    projection.seed = controls.projection_seed;
    projection.special_value_bias = controls.projection_special_bias;
    optimizer = std::make_unique<ProjectedOptimizer>(
        env.space(), options, optimizer_type, projection);
  } else {
    optimizer = CreateOptimizer(optimizer_type, env.space(), options);
  }
  return RunTuningSession(&env, optimizer.get(), iterations, controls);
}

}  // namespace dbtune
