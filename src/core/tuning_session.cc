#include "core/tuning_session.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/diagnostics.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "optimizer/projected_optimizer.h"
#include "store/observation_store.h"
#include "util/logging.h"

namespace dbtune {

namespace {

/// Resolves the durable-store handle for this run: the borrowed handle
/// when set, otherwise a freshly opened store when a path resolves, else
/// none. Store failures disable durability with a warning instead of
/// failing the session — tuning results still matter on a broken disk.
store::ObservationStore* ResolveStore(
    const SessionControls& controls,
    std::unique_ptr<store::ObservationStore>* owned) {
  if (controls.store != nullptr) return controls.store;
  const std::string path =
      store::ObservationStore::ResolvePath(controls.store_path);
  if (path.empty()) return nullptr;
  store::StoreOptions options;
  options.snapshot_every = store::ObservationStore::ResolveSnapshotEvery();
  auto opened = store::ObservationStore::Open(path, options);
  if (!opened.ok()) {
    DBTUNE_LOG(kWarning) << "observation store disabled: "
                         << opened.status().ToString();
    return nullptr;
  }
  *owned = std::move(opened).value();
  return owned->get();
}

std::string ResolveStoreSessionId(const SessionControls& controls) {
  if (!controls.store_session_id.empty()) return controls.store_session_id;
  if (!controls.session_label.empty()) return controls.session_label;
  return "default";
}

}  // namespace

SessionResult RunTuningSession(TuningEnvironment* env, Optimizer* optimizer,
                               size_t iterations, SessionControls controls) {
  DBTUNE_CHECK(env != nullptr && optimizer != nullptr);
  DBTUNE_CHECK(optimizer->space().dimension() == env->space().dimension());
  optimizer->SetReferenceScore(env->default_score());

  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("session.suggest");
  static obs::Histogram& evaluate_hist =
      obs::MetricsRegistry::Get().histogram("session.evaluate");
  static obs::Histogram& observe_hist =
      obs::MetricsRegistry::Get().histogram("session.observe");
  static obs::Counter& iteration_counter =
      obs::MetricsRegistry::Get().counter("session.iterations");
  static obs::Gauge& best_score_gauge =
      obs::MetricsRegistry::Get().gauge("session.best_score");

  obs::SessionLogger session_log(
      obs::SessionLogger::ResolvePath(controls.session_log_path));

  // Diagnostics observe the session; they never feed back into it (no
  // RNG draws, no clock reads inside Record), so enabling them leaves
  // the tuning trajectory bitwise unchanged.
  std::unique_ptr<obs::TuningDiagnostics> diagnostics;
  if (controls.diagnostics || obs::DiagnosticsEnvEnabled()) {
    obs::TuningDiagnosticsOptions diag_options;
    diag_options.session_label = controls.session_label;
    diagnostics = std::make_unique<obs::TuningDiagnostics>(diag_options);
  }
  obs::MetricsExporter exporter(
      obs::MetricsExporter::ResolvePath(controls.metrics_export_path),
      obs::MetricsExporter::ResolveIntervalSeconds());

  SessionResult result;
  result.improvement_trace.reserve(iterations);
  result.objective_trace.reserve(iterations);
  const double sim_seconds_start = env->simulator().simulated_seconds();

  std::unique_ptr<store::ObservationStore> owned_store;
  store::ObservationStore* store = ResolveStore(controls, &owned_store);
  const std::string store_session_id = ResolveStoreSessionId(controls);
  // Recovered observations still pending replay. Cleared on divergence.
  std::vector<Observation> recovered;
  if (store != nullptr) {
    const Status begun =
        store->BeginSession(store_session_id, env->space().dimension());
    if (!begun.ok()) {
      DBTUNE_LOG(kWarning) << "observation store disabled: "
                           << begun.ToString();
      store = nullptr;
    } else {
      const store::StoredSession* stored =
          store->FindSession(store_session_id);
      if (stored != nullptr && !stored->observations.empty()) {
        recovered.assign(
            stored->observations.begin(),
            stored->observations.begin() +
                std::min(stored->observations.size(), iterations));
      }
    }
  }

  for (size_t iter = 0; iter < iterations; ++iter) {
    DBTUNE_TRACE_SPAN("session.iteration");

    const double t0 = obs::MonotonicSeconds();
    const Configuration config = [&] {
      obs::ScopedLatency latency(&suggest_hist);
      DBTUNE_TRACE_SPAN("session.suggest");
      return optimizer->Suggest();
    }();
    const double t1 = obs::MonotonicSeconds();

    // When the store recovered a history prefix, substitute the recorded
    // observation for the stress test: Suggest() above re-advanced the
    // optimizer exactly as in the original run, and Replay() keeps the
    // environment and simulator noise stream aligned, so the session
    // continues on a bitwise-identical trajectory. A recorded config
    // that no longer matches the re-suggested one means the history was
    // produced under different code/seed — truncate it durably and fall
    // back to live evaluation from here on.
    bool replay = false;
    if (iter < recovered.size()) {
      if (env->space().Clip(config) == recovered[iter].config) {
        replay = true;
      } else {
        DBTUNE_LOG(kWarning)
            << "store replay diverged for session '" << store_session_id
            << "' at iteration " << (iter + 1)
            << "; truncating stored history and continuing live";
        recovered.clear();
        const Status truncated =
            store->TruncateSession(store_session_id, iter);
        if (!truncated.ok()) {
          DBTUNE_LOG(kWarning) << "observation store disabled: "
                               << truncated.ToString();
          store = nullptr;
        }
      }
    }

    const Observation observation = [&] {
      obs::ScopedLatency latency(&evaluate_hist);
      DBTUNE_TRACE_SPAN("session.evaluate");
      return replay ? env->Replay(recovered[iter]) : env->Evaluate(config);
    }();
    if (replay) {
      ++result.replayed_iterations;
    } else if (store != nullptr) {
      const Status appended = store->AppendObservation(
          store_session_id, env->iterations(), observation);
      if (!appended.ok()) {
        DBTUNE_LOG(kWarning) << "observation store disabled: "
                             << appended.ToString();
        store = nullptr;
      }
    }
    const double t2 = obs::MonotonicSeconds();

    {
      obs::ScopedLatency latency(&observe_hist);
      DBTUNE_TRACE_SPAN("session.observe");
      optimizer->ObserveWithMetrics(observation.config, observation.score,
                                    observation.internal_metrics);
    }
    const double t3 = obs::MonotonicSeconds();

    const double overhead = (t1 - t0) + (t3 - t2);
    result.algorithm_overhead_seconds += overhead;
    if (controls.record_overhead) {
      result.per_iteration_overhead.push_back(overhead);
    }
    result.improvement_trace.push_back(env->ImprovementPercent());
    result.objective_trace.push_back(env->best_objective());

    if (obs::MetricsEnabled()) {
      iteration_counter.Increment();
      best_score_gauge.Set(env->best_objective());
    }
    if (diagnostics != nullptr) {
      const SuggestInfo& info = optimizer->last_suggest_info();
      obs::DiagnosticsPrediction prediction;
      prediction.has_prediction = info.has_prediction;
      prediction.mean = info.predicted_mean;
      prediction.variance = info.predicted_variance;
      prediction.has_acquisition = info.has_acquisition;
      prediction.acquisition_best = info.acquisition_best;
      prediction.acquisition_spread = info.acquisition_spread;
      diagnostics->Record(prediction, observation.score);
    }
    if (session_log.enabled()) {
      obs::SessionIterationRecord record;
      record.iteration = iter + 1;
      record.suggest_seconds = t1 - t0;
      record.evaluate_seconds = t2 - t1;
      record.observe_seconds = t3 - t2;
      record.score = observation.score;
      record.best_score = env->best_objective();
      record.improvement_percent = env->ImprovementPercent();
      if (diagnostics != nullptr) {
        record.has_diagnostics = true;
        record.diagnostics = diagnostics->last();
      }
      session_log.Log(record);
    }
    exporter.MaybeExport();
  }

  result.final_improvement = env->ImprovementPercent();
  result.final_objective = env->best_objective();
  result.best_iteration = env->best_iteration();
  result.simulated_evaluation_seconds =
      env->simulator().simulated_seconds() - sim_seconds_start;
  if (diagnostics != nullptr) {
    result.has_diagnostics = true;
    result.final_diagnostics = diagnostics->last();
  }
  if (exporter.enabled()) {
    const Status exported = exporter.ExportNow();
    if (!exported.ok()) {
      DBTUNE_LOG(kWarning) << "metrics not exported: "
                           << exported.ToString();
    }
  }

  const std::string trace_path =
      controls.trace_path.empty() ? obs::TraceEnvPath() : controls.trace_path;
  if (!trace_path.empty()) {
    const Status written = obs::WriteTrace(trace_path);
    if (!written.ok()) {
      DBTUNE_LOG(kWarning) << "trace not written: " << written.ToString();
    }
  }
  return result;
}

SessionResult RunTuningSession(DbmsSimulator* simulator,
                               const std::vector<size_t>& knob_indices,
                               OptimizerType optimizer_type, size_t iterations,
                               uint64_t seed, SessionControls controls) {
  TuningEnvironment env(simulator, knob_indices);
  OptimizerOptions options;
  options.seed = seed;
  std::unique_ptr<Optimizer> optimizer;
  if (controls.projection_dims > 0) {
    ProjectionOptions projection;
    projection.dims = controls.projection_dims;
    projection.seed = controls.projection_seed;
    projection.special_value_bias = controls.projection_special_bias;
    optimizer = std::make_unique<ProjectedOptimizer>(
        env.space(), options, optimizer_type, projection);
  } else {
    optimizer = CreateOptimizer(optimizer_type, env.space(), options);
  }
  return RunTuningSession(&env, optimizer.get(), iterations, controls);
}

}  // namespace dbtune
