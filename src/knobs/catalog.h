#ifndef DBTUNE_KNOBS_CATALOG_H_
#define DBTUNE_KNOBS_CATALOG_H_

#include "knobs/configuration_space.h"

namespace dbtune {

/// Number of tunable knobs in the MySQL-5.7-style catalog, matching the
/// paper's setup ("197 configuration knobs in MySQL 5.7, except the knobs
/// that do not make sense to tune").
inline constexpr size_t kMySqlKnobCount = 197;

/// Builds the full MySQL-5.7-style configuration space: 197 knobs with
/// realistic names, domains, defaults and type mix (size/count integers,
/// ratio continuous knobs, enum/switch categorical knobs). Memory-size
/// knobs are expressed in bytes and log-scaled.
///
/// The catalog is a faithful stand-in for the real server's knob space
/// (see DESIGN.md §2): tuning algorithms only observe names, domains and
/// defaults, all of which mirror the real system.
ConfigurationSpace MySqlKnobCatalog();

/// A small 12-knob catalog used by unit tests and the quickstart example.
ConfigurationSpace SmallTestCatalog();

}  // namespace dbtune

#endif  // DBTUNE_KNOBS_CATALOG_H_
