#ifndef DBTUNE_KNOBS_CONFIGURATION_SPACE_H_
#define DBTUNE_KNOBS_CONFIGURATION_SPACE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "knobs/configuration.h"
#include "knobs/knob.h"
#include "util/random.h"
#include "util/status.h"

namespace dbtune {

/// The Cartesian product of knob domains (the paper's Θ = Θ1 × ... × Θm).
/// Provides sampling, unit-cube encoding for optimizers, validation, and
/// projection onto knob subsets (the output of knob selection).
class ConfigurationSpace {
 public:
  ConfigurationSpace() = default;
  /// Builds a space from an ordered list of knobs. Names must be unique.
  explicit ConfigurationSpace(std::vector<Knob> knobs);

  size_t dimension() const { return knobs_.size(); }
  const Knob& knob(size_t i) const { return knobs_[i]; }
  const std::vector<Knob>& knobs() const { return knobs_; }

  /// Index of the knob named `name`; NotFound when absent.
  [[nodiscard]] Result<size_t> KnobIndex(const std::string& name) const;

  /// The DBMS default configuration (every knob at its default).
  Configuration Default() const;

  /// Uniform sample: each knob drawn independently over its (encoded)
  /// domain.
  Configuration SampleUniform(Rng& rng) const;

  /// Encodes a configuration into [0,1]^d.
  std::vector<double> ToUnit(const Configuration& config) const;

  /// Decodes a [0,1]^d point into a valid configuration (values clipped,
  /// integers rounded, categories snapped).
  Configuration FromUnit(const std::vector<double>& unit) const;

  /// Snaps a [0,1]^d point onto the encoded grid of realizable
  /// configurations — bitwise identical to `ToUnit(FromUnit(unit))` but
  /// without materializing the intermediate Configuration.
  std::vector<double> SnapUnit(const std::vector<double>& unit) const;

  /// Clamps every value into its knob's domain.
  Configuration Clip(const Configuration& config) const;

  /// OK when `config` has the right arity and every value is in-domain.
  [[nodiscard]] Status Validate(const Configuration& config) const;

  /// Indices of all categorical knobs.
  std::vector<size_t> CategoricalIndices() const;
  /// Indices of all non-categorical knobs.
  std::vector<size_t> NumericIndices() const;

  /// The subspace spanned by `indices` (in the given order).
  ConfigurationSpace Project(const std::vector<size_t>& indices) const;

 private:
  std::vector<Knob> knobs_;
  std::unordered_map<std::string, size_t> index_by_name_;
};

/// A selected subset of a full space's knobs: optimizers work in the
/// subspace while the DBMS is always driven with full configurations
/// (unselected knobs stay at their defaults).
class KnobSubset {
 public:
  /// Selects `indices` (into `full`). The full space must outlive the view.
  KnobSubset(const ConfigurationSpace* full, std::vector<size_t> indices);

  const ConfigurationSpace& subspace() const { return subspace_; }
  const ConfigurationSpace& full_space() const { return *full_; }
  const std::vector<size_t>& indices() const { return indices_; }

  /// Expands a subspace configuration to a full configuration, with
  /// unselected knobs at the full space's defaults.
  Configuration ToFull(const Configuration& sub_config) const;

  /// Restricts a full configuration to the selected knobs.
  Configuration FromFull(const Configuration& full_config) const;

 private:
  const ConfigurationSpace* full_;
  std::vector<size_t> indices_;
  ConfigurationSpace subspace_;
};

}  // namespace dbtune

#endif  // DBTUNE_KNOBS_CONFIGURATION_SPACE_H_
