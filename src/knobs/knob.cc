#include "knobs/knob.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dbtune {

const char* KnobTypeName(KnobType type) {
  switch (type) {
    case KnobType::kContinuous:
      return "continuous";
    case KnobType::kInteger:
      return "integer";
    case KnobType::kCategorical:
      return "categorical";
  }
  return "?";
}

Knob Knob::Continuous(std::string name, double min, double max,
                      double default_value, bool log_scale) {
  DBTUNE_CHECK_MSG(min < max, "continuous knob needs min < max");
  DBTUNE_CHECK_MSG(!log_scale || min > 0.0, "log-scaled knob needs min > 0");
  DBTUNE_CHECK(default_value >= min && default_value <= max);
  Knob k;
  k.name_ = std::move(name);
  k.type_ = KnobType::kContinuous;
  k.min_ = min;
  k.max_ = max;
  k.default_value_ = default_value;
  k.log_scale_ = log_scale;
  return k;
}

Knob Knob::Integer(std::string name, int64_t min, int64_t max,
                   int64_t default_value, bool log_scale) {
  DBTUNE_CHECK_MSG(min < max, "integer knob needs min < max");
  DBTUNE_CHECK_MSG(!log_scale || min > 0, "log-scaled knob needs min > 0");
  DBTUNE_CHECK(default_value >= min && default_value <= max);
  Knob k;
  k.name_ = std::move(name);
  k.type_ = KnobType::kInteger;
  k.min_ = static_cast<double>(min);
  k.max_ = static_cast<double>(max);
  k.default_value_ = static_cast<double>(default_value);
  k.log_scale_ = log_scale;
  return k;
}

Knob Knob::Categorical(std::string name, std::vector<std::string> categories,
                       size_t default_index) {
  DBTUNE_CHECK_MSG(categories.size() >= 2, "categorical knob needs >= 2 values");
  DBTUNE_CHECK(default_index < categories.size());
  Knob k;
  k.name_ = std::move(name);
  k.type_ = KnobType::kCategorical;
  k.min_ = 0.0;
  k.max_ = static_cast<double>(categories.size() - 1);
  k.default_value_ = static_cast<double>(default_index);
  k.categories_ = std::move(categories);
  return k;
}

double Knob::Encode(double value) const {
  const double v = Clip(value);
  if (type_ == KnobType::kCategorical) {
    const double k = static_cast<double>(categories_.size());
    return (v + 0.5) / k;
  }
  if (log_scale_) {
    return (std::log(v) - std::log(min_)) / (std::log(max_) - std::log(min_));
  }
  return (v - min_) / (max_ - min_);
}

double Knob::Decode(double unit) const {
  const double u = std::clamp(unit, 0.0, 1.0);
  if (type_ == KnobType::kCategorical) {
    const double k = static_cast<double>(categories_.size());
    double idx = std::floor(u * k);
    return std::clamp(idx, 0.0, k - 1.0);
  }
  double v;
  if (log_scale_) {
    v = std::exp(std::log(min_) + u * (std::log(max_) - std::log(min_)));
  } else {
    v = min_ + u * (max_ - min_);
  }
  if (type_ == KnobType::kInteger) v = std::round(v);
  return std::clamp(v, min_, max_);
}

double Knob::Clip(double value) const {
  double v = std::clamp(value, min_, max_);
  if (type_ == KnobType::kInteger || type_ == KnobType::kCategorical) {
    v = std::round(v);
  }
  return std::clamp(v, min_, max_);
}

bool Knob::IsValid(double value) const {
  if (!std::isfinite(value)) return false;
  return value >= min_ && value <= max_;
}

}  // namespace dbtune
