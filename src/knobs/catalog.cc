#include "knobs/catalog.h"

#include <cstdio>

#include "util/logging.h"

namespace dbtune {

namespace {

constexpr int64_t kKiB = 1024;
constexpr int64_t kMiB = 1024 * kKiB;
constexpr int64_t kGiB = 1024 * kMiB;

// Common enum value sets reused across generated knobs.
std::vector<std::string> OnOff() { return {"OFF", "ON"}; }

}  // namespace

ConfigurationSpace MySqlKnobCatalog() {
  std::vector<Knob> knobs;
  knobs.reserve(kMySqlKnobCount);

  // --- InnoDB buffer pool and memory sizing -------------------------------
  knobs.push_back(Knob::Integer("innodb_buffer_pool_size", 5 * kMiB, 64 * kGiB,
                                128 * kMiB, /*log_scale=*/true));
  knobs.push_back(Knob::Integer("innodb_buffer_pool_instances", 1, 64, 8));
  knobs.push_back(Knob::Integer("innodb_log_file_size", 4 * kMiB, 8 * kGiB,
                                48 * kMiB, true));
  knobs.push_back(Knob::Integer("innodb_log_buffer_size", 256 * kKiB,
                                1 * kGiB, 16 * kMiB, true));
  knobs.push_back(Knob::Integer("innodb_log_files_in_group", 2, 16, 2));
  knobs.push_back(Knob::Integer("innodb_sort_buffer_size", 64 * kKiB,
                                64 * kMiB, 1 * kMiB, true));
  knobs.push_back(Knob::Integer("innodb_online_alter_log_max_size",
                                64 * kKiB, 8 * kGiB, 128 * kMiB, true));
  knobs.push_back(Knob::Integer("innodb_ft_cache_size", 1600000, 80000000,
                                8000000, true));
  knobs.push_back(Knob::Integer("innodb_ft_total_cache_size", 32 * kMiB,
                                1600 * kMiB, 640 * kMiB, true));
  knobs.push_back(Knob::Integer("innodb_change_buffer_max_size", 0, 50, 25));
  knobs.push_back(Knob::Categorical(
      "innodb_change_buffering",
      {"none", "inserts", "deletes", "changes", "purges", "all"}, 5));

  // --- InnoDB I/O and flushing --------------------------------------------
  knobs.push_back(Knob::Integer("innodb_io_capacity", 100, 100000, 200, true));
  knobs.push_back(
      Knob::Integer("innodb_io_capacity_max", 100, 400000, 2000, true));
  knobs.push_back(Knob::Categorical("innodb_flush_log_at_trx_commit",
                                    {"0", "1", "2"}, 1));
  knobs.push_back(Knob::Integer("innodb_flush_log_at_timeout", 1, 2700, 1));
  knobs.push_back(Knob::Categorical(
      "innodb_flush_method",
      {"fsync", "O_DSYNC", "littlesync", "nosync", "O_DIRECT",
       "O_DIRECT_NO_FSYNC"},
      0));
  knobs.push_back(Knob::Categorical("innodb_flush_neighbors",
                                    {"0", "1", "2"}, 1));
  knobs.push_back(Knob::Integer("innodb_lru_scan_depth", 100, 16384, 1024));
  knobs.push_back(Knob::Continuous("innodb_max_dirty_pages_pct", 0.0, 99.99,
                                   75.0));
  knobs.push_back(Knob::Continuous("innodb_max_dirty_pages_pct_lwm", 0.0,
                                   99.99, 0.0));
  knobs.push_back(Knob::Integer("innodb_flushing_avg_loops", 1, 1000, 30));
  knobs.push_back(Knob::Categorical("innodb_adaptive_flushing", OnOff(), 1));
  knobs.push_back(
      Knob::Continuous("innodb_adaptive_flushing_lwm", 0.0, 70.0, 10.0));
  knobs.push_back(Knob::Categorical("innodb_doublewrite", OnOff(), 1));
  knobs.push_back(Knob::Integer("innodb_write_io_threads", 1, 64, 4));
  knobs.push_back(Knob::Integer("innodb_read_io_threads", 1, 64, 4));
  knobs.push_back(Knob::Integer("innodb_purge_threads", 1, 32, 4));
  knobs.push_back(Knob::Integer("innodb_page_cleaners", 1, 64, 4));
  knobs.push_back(Knob::Categorical("innodb_use_native_aio", OnOff(), 1));
  knobs.push_back(Knob::Integer("innodb_fill_factor", 10, 100, 100));

  // --- InnoDB concurrency --------------------------------------------------
  knobs.push_back(Knob::Integer("innodb_thread_concurrency", 0, 1000, 0));
  knobs.push_back(Knob::Integer("innodb_thread_sleep_delay", 0, 1000000,
                                10000, false));
  knobs.push_back(
      Knob::Integer("innodb_adaptive_max_sleep_delay", 0, 1000000, 150000));
  knobs.push_back(Knob::Integer("innodb_concurrency_tickets", 1, 1000000,
                                5000, true));
  knobs.push_back(Knob::Integer("innodb_commit_concurrency", 0, 1000, 0));
  knobs.push_back(Knob::Integer("innodb_spin_wait_delay", 0, 6000, 6));
  knobs.push_back(Knob::Integer("innodb_sync_spin_loops", 0, 4000, 30));
  knobs.push_back(Knob::Integer("innodb_sync_array_size", 1, 1024, 1));
  knobs.push_back(Knob::Categorical("innodb_adaptive_hash_index", OnOff(), 1));
  knobs.push_back(
      Knob::Integer("innodb_adaptive_hash_index_parts", 1, 512, 8));

  // --- InnoDB transactions and locking ------------------------------------
  knobs.push_back(Knob::Integer("innodb_lock_wait_timeout", 1, 1073741824, 50,
                                true));
  knobs.push_back(Knob::Categorical("innodb_rollback_on_timeout", OnOff(), 0));
  knobs.push_back(Knob::Categorical("innodb_deadlock_detect", OnOff(), 1));
  knobs.push_back(Knob::Categorical("innodb_autoinc_lock_mode",
                                    {"0", "1", "2"}, 1));
  knobs.push_back(Knob::Integer("innodb_rollback_segments", 1, 128, 128));
  knobs.push_back(Knob::Categorical("innodb_support_xa", OnOff(), 1));

  // --- InnoDB purge / undo --------------------------------------------------
  knobs.push_back(Knob::Integer("innodb_purge_batch_size", 1, 5000, 300));
  knobs.push_back(
      Knob::Integer("innodb_purge_rseg_truncate_frequency", 1, 128, 128));
  knobs.push_back(Knob::Integer("innodb_max_purge_lag", 0, 4294967295, 0,
                                false));
  knobs.push_back(Knob::Integer("innodb_max_purge_lag_delay", 0, 10000000, 0));
  knobs.push_back(Knob::Integer("innodb_max_undo_log_size", 10 * kMiB,
                                16 * kGiB, 1 * kGiB, true));
  knobs.push_back(Knob::Categorical("innodb_undo_log_truncate", OnOff(), 0));

  // --- InnoDB stats / misc --------------------------------------------------
  knobs.push_back(Knob::Categorical("innodb_stats_method",
                                    {"nulls_equal", "nulls_unequal",
                                     "nulls_ignored"},
                                    0));
  knobs.push_back(Knob::Categorical("innodb_stats_persistent", OnOff(), 1));
  knobs.push_back(Knob::Integer("innodb_stats_persistent_sample_pages", 1,
                                1000, 20));
  knobs.push_back(Knob::Integer("innodb_stats_transient_sample_pages", 1,
                                100, 8));
  knobs.push_back(Knob::Categorical("innodb_stats_on_metadata", OnOff(), 0));
  knobs.push_back(Knob::Categorical("innodb_stats_auto_recalc", OnOff(), 1));
  knobs.push_back(Knob::Categorical("innodb_buffer_pool_dump_at_shutdown",
                                    OnOff(), 1));
  knobs.push_back(Knob::Integer("innodb_buffer_pool_dump_pct", 1, 100, 25));
  knobs.push_back(Knob::Categorical("innodb_random_read_ahead", OnOff(), 0));
  knobs.push_back(Knob::Integer("innodb_read_ahead_threshold", 0, 64, 56));
  knobs.push_back(Knob::Integer("innodb_old_blocks_pct", 5, 95, 37));
  knobs.push_back(Knob::Integer("innodb_old_blocks_time", 0, 10000, 1000));
  knobs.push_back(Knob::Categorical(
      "innodb_compression_level", {"0", "1", "2", "3", "4", "5", "6", "7",
                                   "8", "9"},
      6));
  knobs.push_back(Knob::Integer("innodb_compression_failure_threshold_pct", 0,
                                100, 5));
  knobs.push_back(Knob::Integer("innodb_compression_pad_pct_max", 0, 75, 50));
  knobs.push_back(Knob::Categorical("innodb_checksum_algorithm",
                                    {"crc32", "strict_crc32", "innodb",
                                     "strict_innodb", "none", "strict_none"},
                                    0));
  knobs.push_back(Knob::Integer("innodb_ft_min_token_size", 0, 16, 3));
  knobs.push_back(Knob::Integer("innodb_ft_max_token_size", 10, 84, 84));
  knobs.push_back(Knob::Integer("innodb_ft_sort_pll_degree", 1, 16, 2));
  knobs.push_back(Knob::Integer("innodb_ft_result_cache_limit", 1000000,
                                4294967295, 2000000000, true));
  knobs.push_back(Knob::Categorical("innodb_disable_sort_file_cache",
                                    OnOff(), 0));
  knobs.push_back(Knob::Integer("innodb_open_files", 10, 100000, 2000, true));
  knobs.push_back(Knob::Categorical("innodb_file_per_table", OnOff(), 1));
  knobs.push_back(Knob::Integer("innodb_autoextend_increment", 1, 1000, 64));
  knobs.push_back(Knob::Categorical("innodb_default_row_format",
                                    {"REDUNDANT", "COMPACT", "DYNAMIC"}, 2));
  knobs.push_back(Knob::Integer("innodb_sync_debug_interval", 1, 65536, 1024,
                                true));

  // --- Server-level caches and buffers -------------------------------------
  knobs.push_back(Knob::Integer("tmp_table_size", 1024, 4 * kGiB, 16 * kMiB,
                                true));
  knobs.push_back(Knob::Integer("max_heap_table_size", 16 * kKiB, 4 * kGiB,
                                16 * kMiB, true));
  knobs.push_back(Knob::Integer("table_open_cache", 1, 524288, 2000, true));
  knobs.push_back(Knob::Integer("table_open_cache_instances", 1, 64, 16));
  knobs.push_back(Knob::Integer("table_definition_cache", 400, 524288, 1400,
                                true));
  knobs.push_back(Knob::Integer("thread_cache_size", 0, 16384, 9));
  knobs.push_back(Knob::Integer("thread_stack", 128 * kKiB, 4 * kMiB,
                                256 * kKiB, true));
  knobs.push_back(Knob::Integer("sort_buffer_size", 32 * kKiB, 512 * kMiB,
                                256 * kKiB, true));
  knobs.push_back(Knob::Integer("join_buffer_size", 128, 1 * kGiB,
                                256 * kKiB, true));
  knobs.push_back(Knob::Integer("read_buffer_size", 8 * kKiB, 512 * kMiB,
                                128 * kKiB, true));
  knobs.push_back(Knob::Integer("read_rnd_buffer_size", 1024, 512 * kMiB,
                                256 * kKiB, true));
  knobs.push_back(Knob::Integer("preload_buffer_size", 1024, 1 * kGiB,
                                32 * kKiB, true));
  knobs.push_back(Knob::Integer("bulk_insert_buffer_size", 0, 1 * kGiB,
                                8 * kMiB, false));
  knobs.push_back(Knob::Integer("query_cache_size", 0, 1 * kGiB, 1 * kMiB,
                                false));
  knobs.push_back(Knob::Integer("query_cache_limit", 0, 128 * kMiB, 1 * kMiB,
                                false));
  knobs.push_back(Knob::Integer("query_cache_min_res_unit", 512, 64 * kKiB,
                                4096, true));
  knobs.push_back(Knob::Categorical("query_cache_type",
                                    {"OFF", "ON", "DEMAND"}, 0));
  knobs.push_back(Knob::Categorical("query_cache_wlock_invalidate", OnOff(),
                                    0));
  knobs.push_back(Knob::Integer("host_cache_size", 0, 65536, 279));
  knobs.push_back(Knob::Integer("binlog_cache_size", 4096, 1 * kGiB,
                                32 * kKiB, true));
  knobs.push_back(Knob::Integer("binlog_stmt_cache_size", 4096, 1 * kGiB,
                                32 * kKiB, true));
  knobs.push_back(Knob::Integer("key_buffer_size", 8, 1 * kGiB, 8 * kMiB,
                                true));
  knobs.push_back(Knob::Integer("key_cache_block_size", 512, 16 * kKiB, 1024,
                                true));
  knobs.push_back(Knob::Integer("key_cache_division_limit", 1, 100, 100));
  knobs.push_back(Knob::Integer("key_cache_age_threshold", 100, 300000, 300));

  // --- Connections, threads, networking ------------------------------------
  knobs.push_back(Knob::Integer("max_connections", 1, 100000, 151, true));
  knobs.push_back(Knob::Integer("max_user_connections", 0, 100000, 0, false));
  knobs.push_back(Knob::Integer("back_log", 1, 65535, 80, true));
  knobs.push_back(Knob::Integer("max_connect_errors", 1, 4294967295, 100,
                                true));
  knobs.push_back(Knob::Integer("connect_timeout", 2, 3600, 10, true));
  knobs.push_back(Knob::Integer("wait_timeout", 1, 31536000, 28800, true));
  knobs.push_back(Knob::Integer("interactive_timeout", 1, 31536000, 28800,
                                true));
  knobs.push_back(Knob::Integer("net_read_timeout", 1, 3600, 30, true));
  knobs.push_back(Knob::Integer("net_write_timeout", 1, 3600, 60, true));
  knobs.push_back(Knob::Integer("net_retry_count", 1, 100000, 10, true));
  knobs.push_back(Knob::Integer("net_buffer_length", 1024, 1 * kMiB,
                                16 * kKiB, true));
  knobs.push_back(Knob::Integer("max_allowed_packet", 1024, 1 * kGiB,
                                4 * kMiB, true));
  knobs.push_back(Knob::Integer("thread_pool_size", 1, 64, 16));
  knobs.push_back(Knob::Integer("thread_pool_stall_limit", 4, 600, 6));
  knobs.push_back(Knob::Integer("thread_pool_oversubscribe", 1, 64, 3));

  // --- Optimizer and execution ---------------------------------------------
  knobs.push_back(Knob::Integer("optimizer_prune_level", 0, 1, 1));
  knobs.push_back(Knob::Integer("optimizer_search_depth", 0, 62, 62));
  knobs.push_back(Knob::Categorical("optimizer_switch_index_merge", OnOff(),
                                    1));
  knobs.push_back(Knob::Categorical("optimizer_switch_mrr", OnOff(), 1));
  knobs.push_back(
      Knob::Categorical("optimizer_switch_batched_key_access", OnOff(), 0));
  knobs.push_back(Knob::Integer("eq_range_index_dive_limit", 0, 4294967295,
                                200, false));
  knobs.push_back(Knob::Integer("range_optimizer_max_mem_size", 0, 16 * kGiB,
                                8 * kMiB, false));
  knobs.push_back(Knob::Integer("max_seeks_for_key", 1, 4294967295,
                                4294967295, true));
  knobs.push_back(Knob::Integer("max_length_for_sort_data", 4, 8388608, 1024,
                                true));
  knobs.push_back(Knob::Integer("max_sort_length", 4, 8388608, 1024, true));
  knobs.push_back(Knob::Integer("group_concat_max_len", 4, 1 * kMiB, 1024,
                                true));
  knobs.push_back(Knob::Integer("max_join_size", 1, 4294967295, 4294967295,
                                true));
  knobs.push_back(Knob::Integer("min_examined_row_limit", 0, 4294967295, 0,
                                false));
  knobs.push_back(Knob::Categorical("big_tables", OnOff(), 0));
  knobs.push_back(Knob::Integer("max_error_count", 0, 65535, 64));
  knobs.push_back(Knob::Integer("max_digest_length", 0, 1 * kMiB, 1024,
                                false));
  knobs.push_back(Knob::Integer("stored_program_cache", 16, 524288, 256,
                                true));
  knobs.push_back(Knob::Integer("table_lock_wait_timeout", 1, 1073741824, 50,
                                true));
  knobs.push_back(Knob::Categorical("concurrent_insert",
                                    {"NEVER", "AUTO", "ALWAYS"}, 1));
  knobs.push_back(Knob::Integer("div_precision_increment", 0, 30, 4));

  // --- Binary log / replication / durability --------------------------------
  knobs.push_back(Knob::Integer("sync_binlog", 0, 4294967295, 1, false));
  knobs.push_back(Knob::Categorical("binlog_format",
                                    {"ROW", "STATEMENT", "MIXED"}, 0));
  knobs.push_back(Knob::Categorical("binlog_row_image",
                                    {"full", "minimal", "noblob"}, 0));
  knobs.push_back(Knob::Integer("binlog_group_commit_sync_delay", 0, 1000000,
                                0, false));
  knobs.push_back(Knob::Integer("binlog_group_commit_sync_no_delay_count", 0,
                                100000, 0, false));
  knobs.push_back(Knob::Integer("max_binlog_size", 4096, 1 * kGiB, 1 * kGiB,
                                true));
  knobs.push_back(Knob::Integer("max_binlog_cache_size", 4096,
                                4294967295, 4294967295, true));
  knobs.push_back(Knob::Integer("expire_logs_days", 0, 99, 0));
  knobs.push_back(Knob::Categorical("log_bin_use_v1_row_events", OnOff(), 0));
  knobs.push_back(Knob::Integer("slave_net_timeout", 1, 31536000, 60, true));
  knobs.push_back(Knob::Categorical("slave_compressed_protocol", OnOff(), 0));
  knobs.push_back(Knob::Integer("slave_parallel_workers", 0, 1024, 0, false));
  knobs.push_back(Knob::Categorical("slave_parallel_type",
                                    {"DATABASE", "LOGICAL_CLOCK"}, 0));
  knobs.push_back(Knob::Integer("rpl_stop_slave_timeout", 2, 31536000, 31536000,
                                true));
  knobs.push_back(Knob::Categorical("relay_log_purge", OnOff(), 1));
  knobs.push_back(Knob::Integer("relay_log_space_limit", 0, 4294967295, 0,
                                false));

  // --- MyISAM ---------------------------------------------------------------
  knobs.push_back(Knob::Integer("myisam_sort_buffer_size", 4096, 1 * kGiB,
                                8 * kMiB, true));
  knobs.push_back(Knob::Integer("myisam_max_sort_file_size", 0, 64 * kGiB,
                                9 * kGiB, false));
  knobs.push_back(Knob::Integer("myisam_repair_threads", 1, 64, 1));
  knobs.push_back(Knob::Categorical("myisam_use_mmap", OnOff(), 0));
  knobs.push_back(Knob::Categorical("myisam_stats_method",
                                    {"nulls_unequal", "nulls_equal",
                                     "nulls_ignored"},
                                    0));
  knobs.push_back(Knob::Integer("myisam_data_pointer_size", 2, 7, 6));

  // --- Logging / monitoring --------------------------------------------------
  knobs.push_back(Knob::Categorical("general_log", OnOff(), 0));
  knobs.push_back(Knob::Categorical("slow_query_log", OnOff(), 0));
  knobs.push_back(Knob::Integer("long_query_time", 0, 3600, 10, false));
  knobs.push_back(Knob::Categorical("log_queries_not_using_indexes", OnOff(),
                                    0));
  knobs.push_back(
      Knob::Integer("log_throttle_queries_not_using_indexes", 0, 4294967295,
                    0, false));
  knobs.push_back(Knob::Categorical("log_slow_admin_statements", OnOff(), 0));
  knobs.push_back(Knob::Categorical("performance_schema", OnOff(), 1));
  knobs.push_back(Knob::Integer("performance_schema_digests_size", 200,
                                1048576, 10000, true));

  // --- Misc server ------------------------------------------------------------
  knobs.push_back(Knob::Integer("open_files_limit", 0, 1048576, 5000, false));
  knobs.push_back(Knob::Integer("max_prepared_stmt_count", 0, 1048576, 16382,
                                false));
  knobs.push_back(Knob::Integer("max_sp_recursion_depth", 0, 255, 0));
  knobs.push_back(Knob::Integer("max_write_lock_count", 1, 4294967295,
                                4294967295, true));
  knobs.push_back(Knob::Integer("metadata_locks_cache_size", 1, 1048576, 1024,
                                true));
  knobs.push_back(Knob::Integer("metadata_locks_hash_instances", 1, 1024, 8));
  knobs.push_back(Knob::Categorical("flush", OnOff(), 0));
  knobs.push_back(Knob::Integer("flush_time", 0, 31536000, 0, false));
  knobs.push_back(Knob::Categorical("low_priority_updates", OnOff(), 0));
  knobs.push_back(Knob::Categorical("sql_buffer_result", OnOff(), 0));
  knobs.push_back(Knob::Integer("lock_wait_timeout", 1, 31536000, 31536000,
                                true));
  knobs.push_back(Knob::Integer("range_alloc_block_size", 4096, 4294967295,
                                4096, true));
  knobs.push_back(Knob::Integer("query_alloc_block_size", 1024, 4294967295,
                                8192, true));
  knobs.push_back(Knob::Integer("query_prealloc_size", 8192, 4294967295,
                                8192, true));
  knobs.push_back(Knob::Integer("transaction_alloc_block_size", 1024,
                                131072, 8192, true));
  knobs.push_back(Knob::Integer("transaction_prealloc_size", 1024, 131072,
                                4096, true));
  knobs.push_back(Knob::Categorical("transaction_isolation",
                                    {"READ-UNCOMMITTED", "READ-COMMITTED",
                                     "REPEATABLE-READ", "SERIALIZABLE"},
                                    2));
  knobs.push_back(Knob::Categorical("completion_type",
                                    {"NO_CHAIN", "CHAIN", "RELEASE"}, 0));
  knobs.push_back(Knob::Categorical("autocommit", OnOff(), 1));
  knobs.push_back(Knob::Categorical("event_scheduler",
                                    {"OFF", "ON", "DISABLED"}, 0));
  knobs.push_back(Knob::Integer("delayed_insert_limit", 1, 4294967295, 100,
                                true));
  knobs.push_back(Knob::Integer("delayed_insert_timeout", 1, 31536000, 300,
                                true));
  knobs.push_back(Knob::Integer("delayed_queue_size", 1, 4294967295, 1000,
                                true));
  knobs.push_back(Knob::Integer("max_delayed_threads", 0, 16384, 20, false));
  knobs.push_back(Knob::Categorical("updatable_views_with_limit", OnOff(), 1));
  knobs.push_back(Knob::Integer("ft_min_word_len", 1, 82, 4));
  knobs.push_back(Knob::Integer("ft_max_word_len", 10, 84, 84));
  knobs.push_back(Knob::Integer("ft_query_expansion_limit", 0, 1000, 20));

  // --- Generated tail: per-subsystem tunables -------------------------------
  // MySQL 5.7 exposes a long tail of lower-impact tunables (session memory
  // steps, cache shard counts, timeouts). We synthesize the remainder of the
  // 197-knob space with the same realistic domain shapes; the simulator
  // treats them exactly like the hand-listed knobs.
  const char* subsystems[] = {"innodb", "server", "net", "repl", "myisam"};
  size_t gen = 0;
  while (knobs.size() < kMySqlKnobCount) {
    const char* subsystem = subsystems[gen % 5];
    char name[96];
    const size_t kind = gen % 4;
    switch (kind) {
      case 0:
        std::snprintf(name, sizeof(name), "%s_aux_buffer_%zu_size", subsystem,
                      gen);
        knobs.push_back(
            Knob::Integer(name, 4 * kKiB, 256 * kMiB, 1 * kMiB, true));
        break;
      case 1:
        std::snprintf(name, sizeof(name), "%s_aux_threads_%zu", subsystem,
                      gen);
        knobs.push_back(Knob::Integer(name, 1, 128, 4));
        break;
      case 2:
        std::snprintf(name, sizeof(name), "%s_aux_ratio_%zu_pct", subsystem,
                      gen);
        knobs.push_back(Knob::Continuous(name, 0.0, 100.0, 50.0));
        break;
      case 3:
        std::snprintf(name, sizeof(name), "%s_aux_policy_%zu", subsystem, gen);
        knobs.push_back(Knob::Categorical(
            name, {"default", "aggressive", "lazy", "adaptive"}, 0));
        break;
    }
    ++gen;
  }

  DBTUNE_CHECK(knobs.size() == kMySqlKnobCount);
  return ConfigurationSpace(std::move(knobs));
}

ConfigurationSpace SmallTestCatalog() {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::Integer("buffer_pool_size", 1 * kMiB, 8 * kGiB,
                                128 * kMiB, true));
  knobs.push_back(Knob::Integer("log_file_size", 4 * kMiB, 2 * kGiB,
                                48 * kMiB, true));
  knobs.push_back(Knob::Integer("io_capacity", 100, 20000, 200, true));
  knobs.push_back(Knob::Integer("thread_concurrency", 0, 256, 0));
  knobs.push_back(Knob::Continuous("max_dirty_pages_pct", 0.0, 99.0, 75.0));
  knobs.push_back(Knob::Categorical("flush_method",
                                    {"fsync", "O_DSYNC", "O_DIRECT"}, 0));
  knobs.push_back(Knob::Categorical("flush_log_at_trx_commit",
                                    {"0", "1", "2"}, 1));
  knobs.push_back(Knob::Integer("sort_buffer_size", 32 * kKiB, 64 * kMiB,
                                256 * kKiB, true));
  knobs.push_back(Knob::Integer("join_buffer_size", 128, 64 * kMiB,
                                256 * kKiB, true));
  knobs.push_back(Knob::Categorical("adaptive_hash_index", {"OFF", "ON"}, 1));
  knobs.push_back(Knob::Integer("table_open_cache", 1, 65536, 2000, true));
  knobs.push_back(Knob::Continuous("change_buffer_max_pct", 0.0, 50.0, 25.0));
  return ConfigurationSpace(std::move(knobs));
}

}  // namespace dbtune
