#include "knobs/configuration_space.h"

#include "util/logging.h"

namespace dbtune {

ConfigurationSpace::ConfigurationSpace(std::vector<Knob> knobs)
    : knobs_(std::move(knobs)) {
  index_by_name_.reserve(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    const bool inserted =
        index_by_name_.emplace(knobs_[i].name(), i).second;
    DBTUNE_CHECK_MSG(inserted, "duplicate knob name: " + knobs_[i].name());
  }
}

Result<size_t> ConfigurationSpace::KnobIndex(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) {
    return Status::NotFound("no knob named " + name);
  }
  return it->second;
}

Configuration ConfigurationSpace::Default() const {
  std::vector<double> values(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    values[i] = knobs_[i].default_value();
  }
  return Configuration(std::move(values));
}

Configuration ConfigurationSpace::SampleUniform(Rng& rng) const {
  std::vector<double> values(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    values[i] = knobs_[i].Decode(rng.Uniform());
  }
  return Configuration(std::move(values));
}

std::vector<double> ConfigurationSpace::ToUnit(
    const Configuration& config) const {
  DBTUNE_CHECK(config.size() == knobs_.size());
  std::vector<double> unit(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    unit[i] = knobs_[i].Encode(config[i]);
  }
  return unit;
}

Configuration ConfigurationSpace::FromUnit(
    const std::vector<double>& unit) const {
  DBTUNE_CHECK(unit.size() == knobs_.size());
  std::vector<double> values(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    values[i] = knobs_[i].Decode(unit[i]);
  }
  return Configuration(std::move(values));
}

std::vector<double> ConfigurationSpace::SnapUnit(
    const std::vector<double>& unit) const {
  DBTUNE_CHECK(unit.size() == knobs_.size());
  std::vector<double> snapped(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    snapped[i] = knobs_[i].Encode(knobs_[i].Decode(unit[i]));
  }
  return snapped;
}

Configuration ConfigurationSpace::Clip(const Configuration& config) const {
  DBTUNE_CHECK(config.size() == knobs_.size());
  std::vector<double> values(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    values[i] = knobs_[i].Clip(config[i]);
  }
  return Configuration(std::move(values));
}

Status ConfigurationSpace::Validate(const Configuration& config) const {
  if (config.size() != knobs_.size()) {
    return Status::InvalidArgument("configuration arity mismatch");
  }
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (!knobs_[i].IsValid(config[i])) {
      return Status::OutOfRange("knob " + knobs_[i].name() +
                                " value out of domain");
    }
  }
  return Status::OK();
}

std::vector<size_t> ConfigurationSpace::CategoricalIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (knobs_[i].is_categorical()) out.push_back(i);
  }
  return out;
}

std::vector<size_t> ConfigurationSpace::NumericIndices() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < knobs_.size(); ++i) {
    if (!knobs_[i].is_categorical()) out.push_back(i);
  }
  return out;
}

ConfigurationSpace ConfigurationSpace::Project(
    const std::vector<size_t>& indices) const {
  std::vector<Knob> selected;
  selected.reserve(indices.size());
  for (size_t i : indices) {
    DBTUNE_CHECK(i < knobs_.size());
    selected.push_back(knobs_[i]);
  }
  return ConfigurationSpace(std::move(selected));
}

KnobSubset::KnobSubset(const ConfigurationSpace* full,
                       std::vector<size_t> indices)
    : full_(full),
      indices_(std::move(indices)),
      subspace_(full->Project(indices_)) {
  DBTUNE_CHECK(full_ != nullptr);
}

Configuration KnobSubset::ToFull(const Configuration& sub_config) const {
  DBTUNE_CHECK(sub_config.size() == indices_.size());
  Configuration full = full_->Default();
  for (size_t i = 0; i < indices_.size(); ++i) {
    full[indices_[i]] = sub_config[i];
  }
  return full;
}

Configuration KnobSubset::FromFull(const Configuration& full_config) const {
  DBTUNE_CHECK(full_config.size() == full_->dimension());
  std::vector<double> values(indices_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    values[i] = full_config[indices_[i]];
  }
  return Configuration(std::move(values));
}

}  // namespace dbtune
