#ifndef DBTUNE_KNOBS_CONFIGURATION_H_
#define DBTUNE_KNOBS_CONFIGURATION_H_

#include <string>
#include <vector>

namespace dbtune {

/// A point in a configuration space: one native-domain value per knob
/// (numeric value for continuous/integer knobs, category index for
/// categorical ones). Configurations are plain values: cheap to copy,
/// comparable, and independent of the space that produced them.
class Configuration {
 public:
  Configuration() = default;
  /// Wraps the given native-domain values.
  explicit Configuration(std::vector<double> values)
      : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  friend bool operator==(const Configuration& a, const Configuration& b) {
    return a.values_ == b.values_;
  }

  /// Compact debug form: "[v0, v1, ...]".
  std::string DebugString() const;

 private:
  std::vector<double> values_;
};

}  // namespace dbtune

#endif  // DBTUNE_KNOBS_CONFIGURATION_H_
