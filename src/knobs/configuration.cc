#include "knobs/configuration.h"

#include <cstdio>

namespace dbtune {

std::string Configuration::DebugString() const {
  std::string out = "[";
  char buf[32];
  for (size_t i = 0; i < values_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", values_[i]);
    if (i) out += ", ";
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace dbtune
