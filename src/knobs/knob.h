#ifndef DBTUNE_KNOBS_KNOB_H_
#define DBTUNE_KNOBS_KNOB_H_

#include <string>
#include <vector>

namespace dbtune {

/// Domain type of a configuration knob (the paper's heterogeneity axis).
enum class KnobType {
  kContinuous,
  kInteger,
  kCategorical,
};

/// Name of a knob type ("continuous", "integer", "categorical").
const char* KnobTypeName(KnobType type);

/// One tunable DBMS configuration knob: its name, domain, and default.
///
/// Values are carried as doubles in the knob's native domain: the numeric
/// value for continuous/integer knobs, the category index for categorical
/// ones. `Encode`/`Decode` map between the native domain and the unit
/// interval used by optimizers.
class Knob {
 public:
  /// Builds a continuous knob over [min, max]; `log_scale` applies a
  /// logarithmic transform when encoding (for size-like knobs that span
  /// orders of magnitude). Requires min < max and min > 0 when log-scaled.
  static Knob Continuous(std::string name, double min, double max,
                         double default_value, bool log_scale = false);

  /// Builds an integer knob over [min, max] (inclusive).
  static Knob Integer(std::string name, int64_t min, int64_t max,
                      int64_t default_value, bool log_scale = false);

  /// Builds a categorical knob; the default is the index of the default
  /// category. Two-valued categorical knobs model booleans/switches.
  static Knob Categorical(std::string name, std::vector<std::string> categories,
                          size_t default_index);

  const std::string& name() const { return name_; }
  KnobType type() const { return type_; }
  double min() const { return min_; }
  double max() const { return max_; }
  bool log_scale() const { return log_scale_; }
  double default_value() const { return default_value_; }
  /// Categories of a categorical knob (empty otherwise).
  const std::vector<std::string>& categories() const { return categories_; }
  /// Number of categories (0 for non-categorical knobs).
  size_t num_categories() const { return categories_.size(); }

  bool is_categorical() const { return type_ == KnobType::kCategorical; }

  /// Maps a native-domain value to [0, 1].
  double Encode(double value) const;

  /// Maps a unit-interval position back to the native domain (rounds
  /// integers, snaps categorical indices).
  double Decode(double unit) const;

  /// Clamps (and rounds/snaps) a native-domain value into the legal domain.
  double Clip(double value) const;

  /// True when `value` lies in the knob's domain (after rounding for
  /// integer/categorical knobs).
  bool IsValid(double value) const;

 private:
  Knob() = default;

  std::string name_;
  KnobType type_ = KnobType::kContinuous;
  double min_ = 0.0;
  double max_ = 1.0;
  double default_value_ = 0.0;
  bool log_scale_ = false;
  std::vector<std::string> categories_;
};

}  // namespace dbtune

#endif  // DBTUNE_KNOBS_KNOB_H_
