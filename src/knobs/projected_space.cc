#include "knobs/projected_space.h"

#include <algorithm>
#include <string>

#include "util/logging.h"
#include "util/random.h"

namespace dbtune {

ProjectedConfigurationSpace::ProjectedConfigurationSpace(
    const ConfigurationSpace* full, ProjectionOptions options)
    : full_(full), options_(options) {
  DBTUNE_CHECK(full_ != nullptr);
  DBTUNE_CHECK_MSG(options_.dims > 0, "projection needs at least 1 dimension");
  options_.special_value_bias =
      std::clamp(options_.special_value_bias, 0.0, 0.95);

  const size_t d = full_->dimension();
  target_.resize(d);
  sign_.resize(d);
  default_unit_.resize(d);
  // The embedding is one seeded draw per knob, in knob order — the same
  // seed always yields the same hash/sign assignment regardless of pool
  // size or platform.
  Rng rng(options_.seed);
  for (size_t i = 0; i < d; ++i) {
    target_[i] = rng.Index(options_.dims);
    sign_[i] = rng.Bernoulli(0.5) ? 1.0 : -1.0;
    default_unit_[i] = full_->knob(i).Encode(full_->knob(i).default_value());
  }

  std::vector<Knob> box_knobs;
  box_knobs.reserve(options_.dims);
  for (size_t j = 0; j < options_.dims; ++j) {
    std::string name = "z";
    name += std::to_string(j);
    box_knobs.push_back(Knob::Continuous(std::move(name), 0.0, 1.0, 0.5));
  }
  box_ = ConfigurationSpace(std::move(box_knobs));
}

std::vector<double> ProjectedConfigurationSpace::DecodeUnit(
    const std::vector<double>& z) const {
  DBTUNE_CHECK(z.size() == options_.dims);
  const size_t d = full_->dimension();
  const double bias = options_.special_value_bias;
  std::vector<double> unit(d);
  for (size_t i = 0; i < d; ++i) {
    double t = std::clamp(z[target_[i]], 0.0, 1.0);
    if (sign_[i] < 0.0) t = 1.0 - t;
    // Biased special-value sampling: the first `bias` of the coordinate's
    // range maps onto the knob's default; the rest is rescaled over the
    // whole domain.
    if (t < bias) {
      unit[i] = default_unit_[i];
    } else {
      unit[i] = bias < 1.0 ? (t - bias) / (1.0 - bias) : default_unit_[i];
    }
  }
  // Snap onto the realizable grid so the optimizer's surrogate judges the
  // exact point the DBMS will be driven with.
  return full_->SnapUnit(unit);
}

Configuration ProjectedConfigurationSpace::Decode(
    const std::vector<double>& z) const {
  return full_->FromUnit(DecodeUnit(z));
}

}  // namespace dbtune
