#ifndef DBTUNE_KNOBS_PROJECTED_SPACE_H_
#define DBTUNE_KNOBS_PROJECTED_SPACE_H_

#include <cstdint>
#include <vector>

#include "knobs/configuration_space.h"

namespace dbtune {

/// Parameters of the HeSBO-style sparse random projection.
struct ProjectionOptions {
  /// Dimension of the low-dimensional unit box the optimizer searches.
  size_t dims = 16;
  /// Seeds the hash/sign draws; the same seed always yields the same
  /// embedding.
  uint64_t seed = 1;
  /// Fraction of each projected coordinate's range reserved for the
  /// knob's default ("special") value — LlamaTune's biased sampling,
  /// which keeps knobs whose special value is load-bearing (e.g. "off",
  /// "auto") reachable despite the projection. Clamped to [0, 0.95].
  double special_value_bias = 0.2;
};

/// HeSBO-style sparse random embedding of a configuration space
/// (LlamaTune, arXiv 2203.05128): every knob i is assigned one target
/// dimension h(i) and a sign s(i) by a seeded hash, and a point z in the
/// D-dimensional unit box decodes to the full space by reading knob i
/// from coordinate h(i) (mirrored when s(i) < 0). An optimizer searches
/// `box()` — D continuous unit knobs — while the DBMS is always driven
/// with full configurations.
///
/// Decoded points are snapped through the full space's `SnapUnit`, so
/// `DecodeUnit` is exact under round-tripping: the returned unit point
/// is on the realizable-configuration grid and re-encoding the decoded
/// configuration reproduces it bitwise.
class ProjectedConfigurationSpace {
 public:
  /// Builds the embedding of `full`. The full space must outlive this
  /// view. Requires 0 < dims; dims may exceed the full dimension (the
  /// embedding then wastes coordinates but stays correct).
  ProjectedConfigurationSpace(const ConfigurationSpace* full,
                              ProjectionOptions options);

  /// The D-dimensional continuous unit box the optimizer searches.
  const ConfigurationSpace& box() const { return box_; }
  const ConfigurationSpace& full_space() const { return *full_; }
  size_t dims() const { return options_.dims; }
  const ProjectionOptions& options() const { return options_; }

  /// Target dimension of knob `i` in the low-dimensional box.
  size_t target_dim(size_t i) const { return target_[i]; }
  /// Sign of knob `i`'s embedding (+1 or −1).
  double sign(size_t i) const { return sign_[i]; }

  /// Decodes a point of the low-dimensional unit box into a full-space
  /// unit point on the realizable grid (already snapped: applying the
  /// full space's `SnapUnit` to the result is the identity).
  std::vector<double> DecodeUnit(const std::vector<double>& z) const;

  /// Decodes a point of the low-dimensional unit box into a full-space
  /// configuration; `ToUnit` of the result equals `DecodeUnit(z)`.
  Configuration Decode(const std::vector<double>& z) const;

 private:
  const ConfigurationSpace* full_;
  ProjectionOptions options_;
  ConfigurationSpace box_;
  std::vector<size_t> target_;       // h(i): knob -> box dimension
  std::vector<double> sign_;         // s(i): +1 / -1
  std::vector<double> default_unit_; // Encode(default) per knob
};

}  // namespace dbtune

#endif  // DBTUNE_KNOBS_PROJECTED_SPACE_H_
