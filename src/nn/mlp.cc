#include "nn/mlp.h"

#include <cmath>

#include "util/logging.h"

namespace dbtune {

namespace {

double Activate(Activation a, double x) {
  switch (a) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return x > 0.0 ? x : 0.0;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSigmoid:
      return 1.0 / (1.0 + std::exp(-x));
  }
  return x;
}

double ActivateGrad(Activation a, double pre, double post) {
  switch (a) {
    case Activation::kNone:
      return 1.0;
    case Activation::kRelu:
      return pre > 0.0 ? 1.0 : 0.0;
    case Activation::kTanh:
      return 1.0 - post * post;
    case Activation::kSigmoid:
      return post * (1.0 - post);
  }
  return 1.0;
}

}  // namespace

Mlp::Mlp(std::vector<size_t> layer_sizes, std::vector<Activation> activations,
         uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)),
      activations_(std::move(activations)) {
  DBTUNE_CHECK(layer_sizes_.size() >= 2);
  DBTUNE_CHECK(activations_.size() == layer_sizes_.size() - 1);

  size_t total = 0;
  offsets_.resize(layer_sizes_.size() - 1);
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    offsets_[l] = total;
    total += layer_sizes_[l] * layer_sizes_[l + 1] + layer_sizes_[l + 1];
  }
  params_.resize(total);

  Rng rng(seed);
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    const size_t fan_in = layer_sizes_[l];
    const double bound = std::sqrt(2.0 / static_cast<double>(fan_in));
    const size_t w0 = WeightOffset(l);
    const size_t count = layer_sizes_[l] * layer_sizes_[l + 1];
    for (size_t i = 0; i < count; ++i) {
      params_[w0 + i] = rng.Uniform(-bound, bound);
    }
    // Biases start at zero.
  }
}

std::vector<double> Mlp::Forward(const std::vector<double>& input) const {
  return Forward(input, nullptr);
}

std::vector<double> Mlp::Forward(const std::vector<double>& input,
                                 Tape* tape) const {
  DBTUNE_CHECK(input.size() == layer_sizes_.front());
  std::vector<double> current = input;
  if (tape != nullptr) {
    tape->post.clear();
    tape->pre.clear();
    tape->post.push_back(current);
  }
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    const size_t in = layer_sizes_[l];
    const size_t out = layer_sizes_[l + 1];
    const double* w = params_.data() + WeightOffset(l);
    const double* b = params_.data() + BiasOffset(l);
    std::vector<double> pre(out);
    for (size_t o = 0; o < out; ++o) {
      double acc = b[o];
      const double* row = w + o * in;
      for (size_t i = 0; i < in; ++i) acc += row[i] * current[i];
      pre[o] = acc;
    }
    std::vector<double> post(out);
    for (size_t o = 0; o < out; ++o) {
      post[o] = Activate(activations_[l], pre[o]);
    }
    if (tape != nullptr) {
      tape->pre.push_back(pre);
      tape->post.push_back(post);
    }
    current = std::move(post);
  }
  return current;
}

std::vector<double> Mlp::Backward(const Tape& tape,
                                  const std::vector<double>& grad_output,
                                  std::vector<double>* grad) const {
  DBTUNE_CHECK(grad != nullptr && grad->size() == params_.size());
  DBTUNE_CHECK(tape.post.size() == layer_sizes_.size());
  std::vector<double> delta = grad_output;
  for (size_t li = layer_sizes_.size() - 1; li > 0; --li) {
    const size_t l = li - 1;  // layer index
    const size_t in = layer_sizes_[l];
    const size_t out = layer_sizes_[l + 1];
    DBTUNE_CHECK(delta.size() == out);
    const std::vector<double>& pre = tape.pre[l];
    const std::vector<double>& post = tape.post[l + 1];
    const std::vector<double>& below = tape.post[l];

    // Through the activation.
    for (size_t o = 0; o < out; ++o) {
      delta[o] *= ActivateGrad(activations_[l], pre[o], post[o]);
    }

    double* gw = grad->data() + WeightOffset(l);
    double* gb = grad->data() + BiasOffset(l);
    const double* w = params_.data() + WeightOffset(l);
    std::vector<double> next_delta(in, 0.0);
    for (size_t o = 0; o < out; ++o) {
      gb[o] += delta[o];
      double* grow = gw + o * in;
      const double* wrow = w + o * in;
      for (size_t i = 0; i < in; ++i) {
        grow[i] += delta[o] * below[i];
        next_delta[i] += delta[o] * wrow[i];
      }
    }
    delta = std::move(next_delta);
  }
  return delta;
}

void Mlp::SoftUpdateFrom(const Mlp& source, double tau) {
  DBTUNE_CHECK(source.params_.size() == params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    params_[i] = tau * source.params_[i] + (1.0 - tau) * params_[i];
  }
}

}  // namespace dbtune
