#ifndef DBTUNE_NN_MLP_H_
#define DBTUNE_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace dbtune {

/// Activation applied after a dense layer.
enum class Activation { kNone, kRelu, kTanh, kSigmoid };

/// A small fully-connected network with manual backprop; the substrate for
/// the DDPG actor and critic. Parameters live in one flat vector so the
/// optimizer (Adam) and DDPG's soft target updates can treat them
/// uniformly.
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; `activations` has one
  /// entry per non-input layer. Weights use scaled uniform (He-style)
  /// initialization from `seed`.
  Mlp(std::vector<size_t> layer_sizes, std::vector<Activation> activations,
      uint64_t seed);

  /// Caches intermediate activations from `Forward` for `Backward`.
  struct Tape {
    std::vector<std::vector<double>> post;  // post[0] = input
    std::vector<std::vector<double>> pre;   // pre-activation per layer
  };

  /// Inference; does not record a tape.
  std::vector<double> Forward(const std::vector<double>& input) const;

  /// Forward pass recording the tape needed by `Backward`.
  std::vector<double> Forward(const std::vector<double>& input,
                              Tape* tape) const;

  /// Backpropagates dL/d(output); accumulates parameter gradients into
  /// `grad` (same layout/size as `params()`, caller-initialized) and
  /// returns dL/d(input).
  std::vector<double> Backward(const Tape& tape,
                               const std::vector<double>& grad_output,
                               std::vector<double>* grad) const;

  const std::vector<double>& params() const { return params_; }
  std::vector<double>& mutable_params() { return params_; }
  size_t num_params() const { return params_.size(); }
  size_t input_size() const { return layer_sizes_.front(); }
  size_t output_size() const { return layer_sizes_.back(); }

  /// Polyak soft update: this <- tau * source + (1 - tau) * this.
  /// Networks must share the architecture.
  void SoftUpdateFrom(const Mlp& source, double tau);

 private:
  size_t WeightOffset(size_t layer) const { return offsets_[layer]; }
  size_t BiasOffset(size_t layer) const {
    return offsets_[layer] + layer_sizes_[layer] * layer_sizes_[layer + 1];
  }

  std::vector<size_t> layer_sizes_;
  std::vector<Activation> activations_;
  std::vector<size_t> offsets_;  // parameter offset per layer
  std::vector<double> params_;
};

}  // namespace dbtune

#endif  // DBTUNE_NN_MLP_H_
