#include "nn/adam.h"

#include <cmath>

#include "util/logging.h"

namespace dbtune {

AdamOptimizer::AdamOptimizer(size_t num_params, double learning_rate,
                             double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      m_(num_params, 0.0),
      v_(num_params, 0.0) {}

void AdamOptimizer::Step(std::vector<double>* params,
                         const std::vector<double>& grad) {
  DBTUNE_CHECK(params != nullptr);
  DBTUNE_CHECK(params->size() == m_.size() && grad.size() == m_.size());
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < m_.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    (*params)[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

}  // namespace dbtune
