#ifndef DBTUNE_NN_ADAM_H_
#define DBTUNE_NN_ADAM_H_

#include <cstddef>
#include <vector>

namespace dbtune {

/// Adam optimizer over a flat parameter vector (Kingma & Ba 2015).
class AdamOptimizer {
 public:
  /// `num_params` must match the parameter vector passed to `Step`.
  AdamOptimizer(size_t num_params, double learning_rate = 1e-3,
                double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  /// Applies one update: params -= lr * m_hat / (sqrt(v_hat) + eps).
  void Step(std::vector<double>* params, const std::vector<double>& grad);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  size_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace dbtune

#endif  // DBTUNE_NN_ADAM_H_
