#ifndef DBTUNE_BENCHMK_DATA_COLLECTOR_H_
#define DBTUNE_BENCHMK_DATA_COLLECTOR_H_

#include <vector>

#include "dbms/simulator.h"
#include "knobs/configuration_space.h"
#include "surrogate/regressor.h"

namespace dbtune {

/// A (configuration, performance) dataset collected from a tuning task —
/// the raw material of the §8 surrogate benchmark and of knob selection.
struct TuningDataset {
  /// The tuned subspace the samples live in.
  ConfigurationSpace space;
  /// Unit-encoded configurations.
  FeatureMatrix unit_x;
  /// Raw objective values (tps or seconds). Failed configurations carry
  /// the worst successful objective (the paper's substitution rule).
  std::vector<double> objectives;
  ObjectiveKind objective_kind = ObjectiveKind::kThroughput;
  /// The deployment default and its measured objective.
  Configuration default_config;
  double default_objective = 0.0;
  /// Simulated wall-clock seconds the collection would have cost on the
  /// real system (the paper reports ~13 days per 6250-sample space).
  double simulated_collection_seconds = 0.0;
};

/// Collection options.
struct CollectionOptions {
  size_t lhs_samples = 6250;
  /// Additional samples around high-performing regions, gathered by
  /// running a SMAC session and keeping its evaluations ("run existing
  /// database optimizers to densely sample high-performance regions").
  size_t optimizer_guided_samples = 0;
  uint64_t seed = 3;
};

/// Collects a dataset over the `knob_indices` subspace of `simulator`'s
/// catalog (unselected knobs pinned at the effective default).
[[nodiscard]] Result<TuningDataset> CollectDataset(DbmsSimulator* simulator,
                                     const std::vector<size_t>& knob_indices,
                                     const CollectionOptions& options);

}  // namespace dbtune

#endif  // DBTUNE_BENCHMK_DATA_COLLECTOR_H_
