#include "benchmk/dataset_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace dbtune {

namespace {

// v2 adds the `end|<samples>` trailer so a file cut off at any line
// boundary (full disk, crash) is detectably incomplete instead of
// silently loading as a shorter dataset.
constexpr char kHeader[] = "dbtune-dataset v2";

std::vector<std::string> SplitFields(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '|') {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

std::string FormatDouble(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number: " + s);
  }
  return v;
}

}  // namespace

Status SaveTuningDataset(const TuningDataset& dataset,
                         const std::string& path) {
  if (dataset.space.dimension() == 0) {
    return Status::InvalidArgument("dataset has an empty space");
  }
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");

  out << kHeader << "\n";
  out << "meta|"
      << (dataset.objective_kind == ObjectiveKind::kThroughput ? "throughput"
                                                               : "latency")
      << "|" << FormatDouble(dataset.default_objective) << "\n";

  for (const Knob& knob : dataset.space.knobs()) {
    out << "knob|" << knob.name() << "|" << KnobTypeName(knob.type()) << "|"
        << FormatDouble(knob.min()) << "|" << FormatDouble(knob.max()) << "|"
        << FormatDouble(knob.default_value()) << "|"
        << (knob.log_scale() ? 1 : 0) << "|";
    for (size_t c = 0; c < knob.num_categories(); ++c) {
      if (c) out << ";";
      out << knob.categories()[c];
    }
    out << "\n";
  }

  out << "default";
  for (size_t i = 0; i < dataset.default_config.size(); ++i) {
    out << "|" << FormatDouble(dataset.default_config[i]);
  }
  out << "\n";

  for (size_t row = 0; row < dataset.unit_x.size(); ++row) {
    out << "sample|" << FormatDouble(dataset.objectives[row]);
    for (double u : dataset.unit_x[row]) out << "|" << FormatDouble(u);
    out << "\n";
  }
  out << "end|" << dataset.unit_x.size() << "\n";
  // A full disk can swallow buffered lines without tripping the stream's
  // error state until flush time; returning OK over a corrupt file is
  // the one outcome this function must never produce.
  out.flush();
  if (!out.good()) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Result<TuningDataset> LoadTuningDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);

  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument(path + " is not a dbtune dataset file");
  }

  TuningDataset dataset;
  std::vector<Knob> knobs;
  bool saw_meta = false;
  bool saw_default = false;
  bool saw_end = false;

  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (saw_end) {
      return Status::InvalidArgument(path + " has data after the end marker");
    }
    const std::vector<std::string> fields = SplitFields(line);
    const std::string& tag = fields.front();

    if (tag == "end") {
      if (fields.size() != 2) return Status::InvalidArgument("bad end line");
      DBTUNE_ASSIGN_OR_RETURN(const double declared, ParseDouble(fields[1]));
      if (declared != static_cast<double>(dataset.unit_x.size())) {
        return Status::InvalidArgument(
            path + " is truncated: end marker declares " + fields[1] +
            " samples, found " + std::to_string(dataset.unit_x.size()));
      }
      saw_end = true;
    } else if (tag == "meta") {
      if (fields.size() != 3) return Status::InvalidArgument("bad meta line");
      dataset.objective_kind = fields[1] == "latency"
                                   ? ObjectiveKind::kLatencyP95
                                   : ObjectiveKind::kThroughput;
      DBTUNE_ASSIGN_OR_RETURN(dataset.default_objective,
                              ParseDouble(fields[2]));
      saw_meta = true;
    } else if (tag == "knob") {
      if (fields.size() != 8) return Status::InvalidArgument("bad knob line");
      const std::string& name = fields[1];
      const std::string& type = fields[2];
      DBTUNE_ASSIGN_OR_RETURN(const double min_v, ParseDouble(fields[3]));
      DBTUNE_ASSIGN_OR_RETURN(const double max_v, ParseDouble(fields[4]));
      DBTUNE_ASSIGN_OR_RETURN(const double def_v, ParseDouble(fields[5]));
      const bool log_scale = fields[6] == "1";
      if (type == "continuous") {
        knobs.push_back(
            Knob::Continuous(name, min_v, max_v, def_v, log_scale));
      } else if (type == "integer") {
        knobs.push_back(Knob::Integer(name, static_cast<int64_t>(min_v),
                                      static_cast<int64_t>(max_v),
                                      static_cast<int64_t>(def_v), log_scale));
      } else if (type == "categorical") {
        std::vector<std::string> categories;
        std::stringstream cats(fields[7]);
        std::string cat;
        while (std::getline(cats, cat, ';')) categories.push_back(cat);
        if (categories.size() < 2) {
          return Status::InvalidArgument("categorical knob " + name +
                                         " needs >= 2 categories");
        }
        knobs.push_back(Knob::Categorical(name, std::move(categories),
                                          static_cast<size_t>(def_v)));
      } else {
        return Status::InvalidArgument("unknown knob type: " + type);
      }
    } else if (tag == "default") {
      if (knobs.empty()) {
        return Status::InvalidArgument("default line before knob lines");
      }
      if (fields.size() != knobs.size() + 1) {
        return Status::InvalidArgument("default arity mismatch");
      }
      std::vector<double> values;
      for (size_t i = 1; i < fields.size(); ++i) {
        DBTUNE_ASSIGN_OR_RETURN(const double v, ParseDouble(fields[i]));
        values.push_back(v);
      }
      dataset.default_config = Configuration(std::move(values));
      saw_default = true;
    } else if (tag == "sample") {
      if (knobs.empty()) {
        return Status::InvalidArgument("sample line before knob lines");
      }
      if (fields.size() != knobs.size() + 2) {
        return Status::InvalidArgument("sample arity mismatch");
      }
      DBTUNE_ASSIGN_OR_RETURN(const double objective,
                              ParseDouble(fields[1]));
      std::vector<double> unit;
      for (size_t i = 2; i < fields.size(); ++i) {
        DBTUNE_ASSIGN_OR_RETURN(const double v, ParseDouble(fields[i]));
        unit.push_back(v);
      }
      dataset.objectives.push_back(objective);
      dataset.unit_x.push_back(std::move(unit));
    } else {
      return Status::InvalidArgument("unknown line tag: " + tag);
    }
  }

  if (!saw_meta || !saw_default || knobs.empty()) {
    return Status::InvalidArgument(path + " is incomplete");
  }
  if (!saw_end) {
    return Status::InvalidArgument(path +
                                   " is truncated (no end marker)");
  }
  dataset.space = ConfigurationSpace(std::move(knobs));
  DBTUNE_RETURN_IF_ERROR(dataset.space.Validate(dataset.default_config));
  return dataset;
}

}  // namespace dbtune
