#ifndef DBTUNE_BENCHMK_DATASET_IO_H_
#define DBTUNE_BENCHMK_DATASET_IO_H_

#include <string>

#include "benchmk/data_collector.h"

namespace dbtune {

/// Persistence for tuning datasets — the paper publishes its benchmark so
/// others can evaluate optimizers without re-collecting 13 days of
/// measurements; these functions serialize a `TuningDataset` (including
/// its configuration space) to a self-contained text file.
///
/// Format (line-oriented, '|'-separated):
///   dbtune-dataset v1
///   meta|<objective_kind>|<default_objective>
///   knob|<name>|<type>|<min>|<max>|<default>|<log>|<cat;cat;...>
///   default|<v0>|<v1>|...
///   sample|<objective>|<u0>|<u1>|...          (unit-encoded)
[[nodiscard]] Status SaveTuningDataset(const TuningDataset& dataset,
                         const std::string& path);

/// Loads a dataset written by `SaveTuningDataset`. Validates the header,
/// knob domains, and row arity.
[[nodiscard]] Result<TuningDataset> LoadTuningDataset(const std::string& path);

}  // namespace dbtune

#endif  // DBTUNE_BENCHMK_DATASET_IO_H_
