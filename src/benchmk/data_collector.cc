#include "benchmk/data_collector.h"

#include <algorithm>

#include "core/tuning_session.h"
#include "dbms/environment.h"
#include "optimizer/optimizer.h"
#include "sampling/latin_hypercube.h"
#include "util/logging.h"

namespace dbtune {

Result<TuningDataset> CollectDataset(DbmsSimulator* simulator,
                                     const std::vector<size_t>& knob_indices,
                                     const CollectionOptions& options) {
  DBTUNE_CHECK(simulator != nullptr);
  if (options.lhs_samples == 0) {
    return Status::InvalidArgument("lhs_samples must be positive");
  }

  TuningEnvironment env(simulator, knob_indices);
  const double sim_start = simulator->simulated_seconds();

  TuningDataset dataset;
  dataset.space = env.space();
  dataset.objective_kind = simulator->workload().objective;
  dataset.default_config = dataset.space.Default();
  dataset.default_objective = env.default_objective();

  Rng rng(options.seed);
  const std::vector<Configuration> lhs =
      LatinHypercubeSample(dataset.space, options.lhs_samples, rng);
  for (const Configuration& config : lhs) {
    env.Evaluate(config);
  }

  if (options.optimizer_guided_samples > 0) {
    OptimizerOptions optimizer_options;
    optimizer_options.seed = options.seed ^ 0x60D;
    std::unique_ptr<Optimizer> smac =
        CreateOptimizer(OptimizerType::kSmac, dataset.space,
                        optimizer_options);
    for (size_t i = 0; i < options.optimizer_guided_samples; ++i) {
      const Configuration config = smac->Suggest();
      const Observation obs = env.Evaluate(config);
      smac->ObserveWithMetrics(obs.config, obs.score, obs.internal_metrics);
    }
  }

  // Materialize: failed configurations take the worst successful
  // objective.
  const std::vector<Observation>& history = env.history();
  double worst_objective = dataset.default_objective;
  for (const Observation& obs : history) {
    if (obs.failed) continue;
    if (dataset.objective_kind == ObjectiveKind::kThroughput) {
      worst_objective = std::min(worst_objective, obs.objective);
    } else {
      worst_objective = std::max(worst_objective, obs.objective);
    }
  }
  dataset.unit_x.reserve(history.size());
  dataset.objectives.reserve(history.size());
  for (const Observation& obs : history) {
    dataset.unit_x.push_back(dataset.space.ToUnit(obs.config));
    dataset.objectives.push_back(obs.failed ? worst_objective
                                            : obs.objective);
  }
  dataset.simulated_collection_seconds =
      simulator->simulated_seconds() - sim_start;
  return dataset;
}

}  // namespace dbtune
