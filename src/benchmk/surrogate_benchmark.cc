#include "benchmk/surrogate_benchmark.h"

#include <algorithm>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace dbtune {

namespace {
// Per-evaluation cost on the real system (restart + 3-minute stress test).
constexpr double kRealEvaluationSeconds = 210.0;
}  // namespace

Result<std::unique_ptr<SurrogateBenchmark>> SurrogateBenchmark::Build(
    const TuningDataset& dataset, RandomForestOptions forest_options) {
  if (dataset.unit_x.empty()) {
    return Status::InvalidArgument("empty dataset");
  }
  // Private constructor keeps Build() the only entry point, so
  // make_unique cannot reach it — the raw new is wrapped immediately.
  auto benchmark = std::unique_ptr<SurrogateBenchmark>(
      new SurrogateBenchmark());  // dbtune-lint: allow(naked-new)
  benchmark->space_ = dataset.space;
  benchmark->objective_kind_ = dataset.objective_kind;
  benchmark->forest_ = RandomForest(forest_options);
  DBTUNE_RETURN_IF_ERROR(
      benchmark->forest_.Fit(dataset.unit_x, dataset.objectives));
  // Baseline for improvement reporting: the *measured* default objective
  // when the dataset carries one (the paper reports gains over the real
  // default), falling back to the model's prediction at the default.
  benchmark->default_objective_ =
      dataset.default_objective > 0.0
          ? dataset.default_objective
          : benchmark->forest_.Predict(
                dataset.space.ToUnit(dataset.default_config));
  return benchmark;
}

double SurrogateBenchmark::PredictObjective(const Configuration& config) const {
  if (obs::MetricsEnabled()) {
    static obs::Counter& evaluations =
        obs::MetricsRegistry::Get().counter("surrogate.evaluations");
    evaluations.Increment();
  }
  const double t0 = obs::MonotonicSeconds();
  const double objective =
      forest_.Predict(space_.ToUnit(space_.Clip(config)));
  evaluation_seconds_ += obs::MonotonicSeconds() - t0;
  ++evaluations_;
  return objective;
}

double SurrogateBenchmark::Score(const Configuration& config) const {
  const double objective = PredictObjective(config);
  return objective_kind_ == ObjectiveKind::kThroughput ? objective
                                                       : -objective;
}

double SurrogateBenchmark::ImprovementPercentOf(double objective) const {
  DBTUNE_CHECK(default_objective_ > 0.0);
  if (objective_kind_ == ObjectiveKind::kThroughput) {
    return (objective - default_objective_) / default_objective_ * 100.0;
  }
  return (default_objective_ - objective) / default_objective_ * 100.0;
}

double SurrogateBenchmark::EquivalentRealSeconds() const {
  return static_cast<double>(evaluations_) * kRealEvaluationSeconds;
}

SessionResult RunSurrogateSession(SurrogateBenchmark* benchmark,
                                  OptimizerType optimizer_type,
                                  size_t iterations, uint64_t seed) {
  DBTUNE_CHECK(benchmark != nullptr);
  OptimizerOptions options;
  options.seed = seed;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(optimizer_type, benchmark->space(), options);
  optimizer->SetReferenceScore(
      benchmark->objective_kind() == ObjectiveKind::kThroughput
          ? benchmark->default_objective()
          : -benchmark->default_objective());

  SessionResult result;
  double best_score = -1e300;
  double best_objective = benchmark->default_objective();
  for (size_t iter = 0; iter < iterations; ++iter) {
    DBTUNE_TRACE_SPAN("surrogate.iteration");
    const double t0 = obs::MonotonicSeconds();
    const Configuration config = optimizer->Suggest();
    const double objective = benchmark->PredictObjective(config);
    const double score =
        benchmark->objective_kind() == ObjectiveKind::kThroughput
            ? objective
            : -objective;
    optimizer->Observe(benchmark->space().Clip(config), score);
    const double t1 = obs::MonotonicSeconds();
    result.algorithm_overhead_seconds += t1 - t0;
    if (score > best_score) {
      best_score = score;
      best_objective = objective;
      result.best_iteration = iter + 1;
    }
    result.objective_trace.push_back(best_objective);
    result.improvement_trace.push_back(
        benchmark->ImprovementPercentOf(best_objective));
  }
  result.final_objective = best_objective;
  result.final_improvement = benchmark->ImprovementPercentOf(best_objective);
  result.simulated_evaluation_seconds = 0.0;
  return result;
}

}  // namespace dbtune
