#ifndef DBTUNE_BENCHMK_SURROGATE_BENCHMARK_H_
#define DBTUNE_BENCHMK_SURROGATE_BENCHMARK_H_

#include <memory>

#include "benchmk/data_collector.h"
#include "core/tuning_session.h"
#include "optimizer/optimizer.h"
#include "surrogate/random_forest.h"

namespace dbtune {

/// The paper's §8 contribution: a cheap-to-evaluate stand-in for a real
/// tuning task. A random-forest surrogate trained on an offline dataset
/// answers configuration queries in microseconds instead of minutes,
/// preserving the response surface's shape so optimizers can be compared
/// at a tiny fraction of the cost.
class SurrogateBenchmark {
 public:
  /// Trains the surrogate on `dataset` (which it copies the space and
  /// defaults from). Fails when the dataset is degenerate.
  [[nodiscard]] static Result<std::unique_ptr<SurrogateBenchmark>> Build(
      const TuningDataset& dataset, RandomForestOptions forest_options = {});

  /// The benchmark's configuration space.
  const ConfigurationSpace& space() const { return space_; }
  ObjectiveKind objective_kind() const { return objective_kind_; }

  /// Predicted raw objective of a configuration (tps or seconds).
  double PredictObjective(const Configuration& config) const;

  /// Predicted objective of the default configuration.
  double default_objective() const { return default_objective_; }

  /// Maximize-direction score of a configuration.
  double Score(const Configuration& config) const;

  /// Improvement (%) of `objective` over the default, direction-aware.
  double ImprovementPercentOf(double objective) const;

  /// Number of surrogate evaluations served so far.
  size_t evaluation_count() const { return evaluations_; }
  /// Wall-clock seconds spent answering them.
  double evaluation_seconds() const { return evaluation_seconds_; }
  /// What the same evaluations would have cost on the real system
  /// (3-minute stress test + restart each), for the §8 speedup claim.
  double EquivalentRealSeconds() const;

 private:
  SurrogateBenchmark() = default;

  ConfigurationSpace space_;
  ObjectiveKind objective_kind_ = ObjectiveKind::kThroughput;
  RandomForest forest_;
  double default_objective_ = 0.0;
  mutable size_t evaluations_ = 0;
  mutable double evaluation_seconds_ = 0.0;
};

/// Runs a full tuning session of `optimizer_type` against the surrogate
/// benchmark: same protocol as `RunTuningSession` but with model
/// predictions instead of workload replay. Also fills in the overhead and
/// wall-clock accounting used by Figure 10's speedup report.
SessionResult RunSurrogateSession(SurrogateBenchmark* benchmark,
                                  OptimizerType optimizer_type,
                                  size_t iterations, uint64_t seed);

}  // namespace dbtune

#endif  // DBTUNE_BENCHMK_SURROGATE_BENCHMARK_H_
