#ifndef DBTUNE_TRANSFER_WORKLOAD_MAPPING_H_
#define DBTUNE_TRANSFER_WORKLOAD_MAPPING_H_

#include <memory>

#include "optimizer/optimizer.h"
#include "transfer/repository.h"

namespace dbtune {

/// Which base optimizer a BO transfer framework accelerates (the paper
/// pairs each framework with the two best BO optimizers).
enum class TransferBase {
  kSmac,           // random-forest surrogate
  kMixedKernelBo,  // GP with the mixed kernel
};

/// Display name ("SMAC" / "Mixed-Kernel BO").
const char* TransferBaseName(TransferBase base);

/// Creates an unfitted surrogate of the base optimizer's family.
std::unique_ptr<Regressor> CreateBaseSurrogate(TransferBase base,
                                               const ConfigurationSpace& space,
                                               uint64_t seed);

/// OtterTune's workload-mapping transfer: each iteration matches the
/// target workload to the most similar historical task (Euclidean
/// distance between internal-metric signatures) and trains the base
/// surrogate on the union of the mapped task's observations and the
/// target's own. Reusing a not-quite-identical workload's data wholesale
/// is the framework's documented negative-transfer risk.
class WorkloadMappingOptimizer final : public Optimizer {
 public:
  /// `repository` is borrowed and must outlive the optimizer.
  WorkloadMappingOptimizer(const ConfigurationSpace& space,
                           OptimizerOptions options,
                           const ObservationRepository* repository,
                           TransferBase base);

  Configuration Suggest() override;
  void ObserveWithMetrics(const Configuration& config, double score,
                          const std::vector<double>& metrics) override;
  std::string name() const override;

  /// Index of the currently mapped source task (-1 before any mapping).
  int mapped_task() const { return mapped_task_; }

 private:
  void UpdateMapping();

  const ObservationRepository* repository_;
  TransferBase base_;
  std::vector<double> metric_sum_;
  size_t metric_count_ = 0;
  int mapped_task_ = -1;
};

}  // namespace dbtune

#endif  // DBTUNE_TRANSFER_WORKLOAD_MAPPING_H_
