#ifndef DBTUNE_TRANSFER_REPOSITORY_H_
#define DBTUNE_TRANSFER_REPOSITORY_H_

#include <string>
#include <vector>

#include "dbms/environment.h"
#include "knobs/configuration_space.h"
#include "surrogate/regressor.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dbtune {

/// Historical observations of one tuning task (the tuning server's data
/// repository entry): configurations, maximize-direction scores, and the
/// task's internal-metric signature used by workload mapping.
struct SourceTask {
  std::string name;
  FeatureMatrix unit_x;
  std::vector<double> scores;
  /// Mean internal metrics over the task's successful observations.
  std::vector<double> metric_signature;
};

/// Repository of past tuning tasks, the input to the knowledge-transfer
/// frameworks.
///
/// Write path (AddTask) is thread-safe: source sessions may record their
/// histories concurrently. The read path follows a publish-then-read phase
/// discipline — transfer optimizers borrow the repository only after every
/// writer finished, so `tasks()` hands out a direct reference without
/// holding the lock (see the comment in repository.cc).
class ObservationRepository {
 public:
  ObservationRepository() = default;

  /// Movable (locking the source) so builder-style code can return one by
  /// value; not copyable — optimizers borrow it by pointer.
  ObservationRepository(ObservationRepository&& other) noexcept;
  ObservationRepository& operator=(ObservationRepository&& other) noexcept;
  ObservationRepository(const ObservationRepository&) = delete;
  ObservationRepository& operator=(const ObservationRepository&) = delete;

  /// Appends one finished task's history. Safe to call concurrently.
  void AddTask(SourceTask task);

  /// Direct view of all recorded tasks. Callers must guarantee no
  /// concurrent AddTask (the library's transfer phase starts only after
  /// source collection completes).
  const std::vector<SourceTask>& tasks() const;

  size_t size() const;
  bool empty() const;

  /// Builds a task record from a finished session's history. Failed
  /// observations keep their substituted scores; metric signatures are
  /// averaged over successful ones only.
  static SourceTask FromHistory(std::string name,
                                const ConfigurationSpace& space,
                                const std::vector<Observation>& history);

 private:
  mutable Mutex mu_;
  std::vector<SourceTask> tasks_ DBTUNE_GUARDED_BY(mu_);
};

/// Per-task standardized scores (mean 0, stddev 1) — transfer frameworks
/// compare tasks on relative, not absolute, performance.
std::vector<double> StandardizeScores(const std::vector<double>& scores);

}  // namespace dbtune

#endif  // DBTUNE_TRANSFER_REPOSITORY_H_
