#ifndef DBTUNE_TRANSFER_REPOSITORY_H_
#define DBTUNE_TRANSFER_REPOSITORY_H_

#include <string>
#include <vector>

#include "dbms/environment.h"
#include "knobs/configuration_space.h"
#include "surrogate/regressor.h"

namespace dbtune {

/// Historical observations of one tuning task (the tuning server's data
/// repository entry): configurations, maximize-direction scores, and the
/// task's internal-metric signature used by workload mapping.
struct SourceTask {
  std::string name;
  FeatureMatrix unit_x;
  std::vector<double> scores;
  /// Mean internal metrics over the task's successful observations.
  std::vector<double> metric_signature;
};

/// Repository of past tuning tasks, the input to the knowledge-transfer
/// frameworks.
class ObservationRepository {
 public:
  void AddTask(SourceTask task) { tasks_.push_back(std::move(task)); }
  const std::vector<SourceTask>& tasks() const { return tasks_; }
  size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  /// Builds a task record from a finished session's history. Failed
  /// observations keep their substituted scores; metric signatures are
  /// averaged over successful ones only.
  static SourceTask FromHistory(std::string name,
                                const ConfigurationSpace& space,
                                const std::vector<Observation>& history);

 private:
  std::vector<SourceTask> tasks_;
};

/// Per-task standardized scores (mean 0, stddev 1) — transfer frameworks
/// compare tasks on relative, not absolute, performance.
std::vector<double> StandardizeScores(const std::vector<double>& scores);

}  // namespace dbtune

#endif  // DBTUNE_TRANSFER_REPOSITORY_H_
