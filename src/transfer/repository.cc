#include "transfer/repository.h"

#include <algorithm>

#include "util/logging.h"
#include "util/stats.h"

namespace dbtune {

ObservationRepository::ObservationRepository(
    ObservationRepository&& other) noexcept {
  MutexLock lock(&other.mu_);
  tasks_ = std::move(other.tasks_);
}

ObservationRepository& ObservationRepository::operator=(
    ObservationRepository&& other) noexcept {
  if (this == &other) return *this;
  std::vector<SourceTask> moved;
  {
    MutexLock lock(&other.mu_);
    moved = std::move(other.tasks_);
  }
  MutexLock lock(&mu_);
  tasks_ = std::move(moved);
  return *this;
}

void ObservationRepository::AddTask(SourceTask task) {
  MutexLock lock(&mu_);
  tasks_.push_back(std::move(task));
}

size_t ObservationRepository::size() const {
  MutexLock lock(&mu_);
  return tasks_.size();
}

bool ObservationRepository::empty() const {
  MutexLock lock(&mu_);
  return tasks_.empty();
}

// Publish-then-read: every AddTask happens-before the transfer phase that
// reads through this reference (the callers join their source sessions
// first), so the unlocked access is race-free. The analysis cannot see
// that phase boundary, hence the explicit opt-out.
const std::vector<SourceTask>& ObservationRepository::tasks() const
    DBTUNE_NO_THREAD_SAFETY_ANALYSIS {
  return tasks_;
}

SourceTask ObservationRepository::FromHistory(
    std::string name, const ConfigurationSpace& space,
    const std::vector<Observation>& history) {
  SourceTask task;
  task.name = std::move(name);
  task.unit_x.reserve(history.size());
  task.scores.reserve(history.size());
  std::vector<double> metric_sum;
  size_t successful = 0;
  for (const Observation& obs : history) {
    task.unit_x.push_back(space.ToUnit(obs.config));
    task.scores.push_back(obs.score);
    if (!obs.failed && !obs.internal_metrics.empty()) {
      if (metric_sum.empty()) {
        metric_sum.assign(obs.internal_metrics.size(), 0.0);
      }
      // Clamp to this observation's own width: histories mixing metric
      // arities (e.g. recorded across collector versions) must not read
      // past a shorter vector.
      const size_t width =
          std::min(metric_sum.size(), obs.internal_metrics.size());
      for (size_t m = 0; m < width; ++m) {
        metric_sum[m] += obs.internal_metrics[m];
      }
      ++successful;
    }
  }
  if (successful > 0) {
    for (double& v : metric_sum) v /= static_cast<double>(successful);
    task.metric_signature = std::move(metric_sum);
  }
  return task;
}

std::vector<double> StandardizeScores(const std::vector<double>& scores) {
  if (scores.empty()) return {};  // Mean/StdDev of nothing would be NaN
  std::vector<double> out = scores;
  const double mean = Mean(out);
  double sd = StdDev(out);
  if (sd < 1e-12) sd = 1.0;
  for (double& v : out) v = (v - mean) / sd;
  return out;
}

}  // namespace dbtune
