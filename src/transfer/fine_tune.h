#ifndef DBTUNE_TRANSFER_FINE_TUNE_H_
#define DBTUNE_TRANSFER_FINE_TUNE_H_

#include <memory>
#include <vector>

#include "dbms/hardware.h"
#include "dbms/workload.h"
#include "optimizer/ddpg.h"
#include "transfer/repository.h"

namespace dbtune {

/// Options for DDPG pre-training across source workloads.
struct PretrainOptions {
  size_t iterations_per_source = 300;
  HardwareInstance hardware = HardwareInstance::kB;
  uint64_t seed = 11;
};

/// Pre-trains one DDPG model sequentially on the source workloads (the
/// paper's fine-tune protocol: 300 iterations per source, carrying the
/// weights forward). When `repository` is non-null, each source session's
/// observations are recorded there so workload mapping / RGPE see the
/// same historical data (the paper's data-fairness setting).
///
/// `knob_indices` select the tuned knobs in the full catalog, shared by
/// all workloads.
[[nodiscard]] Result<DdpgOptimizer::Weights> PretrainDdpgOnSources(
    const std::vector<WorkloadId>& sources,
    const std::vector<size_t>& knob_indices, const PretrainOptions& options,
    ObservationRepository* repository);

/// Builds a DDPG optimizer warm-started from pre-trained weights
/// (CDBTune's fine-tuning transfer).
[[nodiscard]] Result<std::unique_ptr<DdpgOptimizer>> MakeFineTunedDdpg(
    const ConfigurationSpace& space, OptimizerOptions options,
    const DdpgOptimizer::Weights& pretrained);

}  // namespace dbtune

#endif  // DBTUNE_TRANSFER_FINE_TUNE_H_
