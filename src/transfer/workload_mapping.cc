#include "transfer/workload_mapping.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "surrogate/random_forest.h"
#include "surrogate/surrogate_factory.h"
#include "util/logging.h"
#include "util/matrix.h"
#include "util/thread_pool.h"

namespace dbtune {

const char* TransferBaseName(TransferBase base) {
  switch (base) {
    case TransferBase::kSmac:
      return "SMAC";
    case TransferBase::kMixedKernelBo:
      return "Mixed-Kernel BO";
  }
  return "?";
}

std::unique_ptr<Regressor> CreateBaseSurrogate(TransferBase base,
                                               const ConfigurationSpace& space,
                                               uint64_t seed) {
  if (base == TransferBase::kSmac) {
    RandomForestOptions options;
    options.num_trees = 20;
    options.min_samples_leaf = 3;
    options.seed = seed;
    return std::make_unique<RandomForest>(options);
  }
  std::vector<bool> mask(space.dimension(), false);
  for (size_t i = 0; i < space.dimension(); ++i) {
    mask[i] = space.knob(i).is_categorical();
  }
  GaussianProcessOptions gp_options;
  gp_options.hyperopt_every = 5;
  // Through the tiered factory so large source-task histories escalate
  // to the sparse GP (RGPE fits one base surrogate per source task).
  return CreateGpSurrogate(
      [mask = std::move(mask)] { return std::make_unique<MixedKernel>(mask); },
      gp_options);
}

WorkloadMappingOptimizer::WorkloadMappingOptimizer(
    const ConfigurationSpace& space, OptimizerOptions options,
    const ObservationRepository* repository, TransferBase base)
    : Optimizer(space, options), repository_(repository), base_(base) {
  DBTUNE_CHECK(repository_ != nullptr);
}

std::string WorkloadMappingOptimizer::name() const {
  return std::string("Mapping (") + TransferBaseName(base_) + ")";
}

void WorkloadMappingOptimizer::ObserveWithMetrics(
    const Configuration& config, double score,
    const std::vector<double>& metrics) {
  Optimizer::Observe(config, score);
  if (!metrics.empty()) {
    if (metric_sum_.empty()) metric_sum_.assign(metrics.size(), 0.0);
    for (size_t m = 0; m < metric_sum_.size() && m < metrics.size(); ++m) {
      metric_sum_[m] += metrics[m];
    }
    ++metric_count_;
  }
}

void WorkloadMappingOptimizer::UpdateMapping() {
  if (metric_count_ == 0 || repository_->empty()) {
    mapped_task_ = -1;
    return;
  }
  std::vector<double> signature = metric_sum_;
  for (double& v : signature) v /= static_cast<double>(metric_count_);

  double best_distance = 1e300;
  mapped_task_ = -1;
  const auto& tasks = repository_->tasks();
  for (size_t t = 0; t < tasks.size(); ++t) {
    if (tasks[t].metric_signature.size() != signature.size()) continue;
    const double d = SquaredDistance(tasks[t].metric_signature, signature);
    if (d < best_distance) {
      best_distance = d;
      mapped_task_ = static_cast<int>(t);
    }
  }
}

Configuration WorkloadMappingOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.workload_mapping");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("workload_mapping.suggest");
  suggest_info_ = {};
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());
  UpdateMapping();

  // Training set: mapped source observations + target observations, each
  // standardized within its own task (OtterTune rescales the reused data
  // to the target's range; per-task z-scores achieve the same intent).
  FeatureMatrix train_x = unit_history_;
  std::vector<double> train_y = StandardizeScores(scores_);
  const double target_best =
      *std::max_element(train_y.begin(), train_y.end());
  if (mapped_task_ >= 0) {
    const SourceTask& task =
        repository_->tasks()[static_cast<size_t>(mapped_task_)];
    const std::vector<double> source_z = StandardizeScores(task.scores);
    train_x.insert(train_x.end(), task.unit_x.begin(), task.unit_x.end());
    train_y.insert(train_y.end(), source_z.begin(), source_z.end());
  }

  std::unique_ptr<Regressor> surrogate =
      CreateBaseSurrogate(base_, space_, options_.seed ^ scores_.size());
  if (!surrogate->Fit(train_x, train_y).ok()) {
    return space_.SampleUniform(rng_);
  }

  const std::vector<std::vector<double>> candidates =
      BuildAcquisitionCandidates(space_, rng_, unit_history_,
                                 StandardizeScores(scores_),
                                 options_.acquisition_candidates);
  // Snap the pool (bitwise equal to the old FromUnit/ToUnit round-trip)
  // and score it in one batched pass; the reduction stays sequential so
  // ties resolve to the lowest index at any pool size.
  std::vector<std::vector<double>> snapped(candidates.size());
  ParallelFor(GlobalPool(), 0, candidates.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c) {
                  snapped[c] = space_.SnapUnit(candidates[c]);
                }
              });
  std::vector<double> means, variances;
  surrogate->PredictMeanVarBatch(snapped, &means, &variances);
  double best_ei = -1.0;
  size_t best_candidate = 0;
  double ei_sum = 0.0;
  double ei_sumsq = 0.0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const double ei = ExpectedImprovement(means[c], variances[c], target_best);
    ei_sum += ei;
    ei_sumsq += ei * ei;
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = c;
    }
  }
  // De-standardize with the target moments: train_y used the identical
  // per-task StandardizeScores formula for the target observations.
  const ScoreMoments moments = CurrentScoreMoments();
  suggest_info_.has_prediction = true;
  suggest_info_.predicted_mean =
      moments.mean + moments.sd * means[best_candidate];
  suggest_info_.predicted_variance =
      moments.sd * moments.sd * variances[best_candidate];
  suggest_info_.has_acquisition = true;
  suggest_info_.acquisition_best = best_ei;
  const double pool = static_cast<double>(candidates.size());
  const double ei_mean = ei_sum / pool;
  suggest_info_.acquisition_spread =
      std::sqrt(std::max(0.0, ei_sumsq / pool - ei_mean * ei_mean));
  suggest_info_.acquisition_pool = candidates.size();
  return space_.FromUnit(candidates[best_candidate]);
}

}  // namespace dbtune
