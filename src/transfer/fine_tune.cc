#include "transfer/fine_tune.h"

#include "dbms/environment.h"
#include "dbms/simulator.h"
#include "util/logging.h"

namespace dbtune {

Result<DdpgOptimizer::Weights> PretrainDdpgOnSources(
    const std::vector<WorkloadId>& sources,
    const std::vector<size_t>& knob_indices, const PretrainOptions& options,
    ObservationRepository* repository) {
  if (sources.empty()) {
    return Status::InvalidArgument("need at least one source workload");
  }

  DdpgOptimizer::Weights weights;
  bool have_weights = false;
  uint64_t seed = options.seed;

  for (WorkloadId source : sources) {
    DbmsSimulator simulator(source, options.hardware, seed);
    TuningEnvironment env(&simulator, knob_indices);
    OptimizerOptions optimizer_options;
    optimizer_options.seed = seed++;
    DdpgOptimizer ddpg(env.space(), optimizer_options);
    if (have_weights) {
      DBTUNE_RETURN_IF_ERROR(ddpg.ImportWeights(weights));
    }
    ddpg.SetReferenceScore(env.default_score());

    for (size_t iter = 0; iter < options.iterations_per_source; ++iter) {
      const Configuration config = ddpg.Suggest();
      const Observation obs = env.Evaluate(config);
      ddpg.ObserveWithMetrics(obs.config, obs.score, obs.internal_metrics);
    }

    weights = ddpg.ExportWeights();
    have_weights = true;
    if (repository != nullptr) {
      repository->AddTask(ObservationRepository::FromHistory(
          WorkloadName(source), env.space(), env.history()));
    }
  }
  return weights;
}

Result<std::unique_ptr<DdpgOptimizer>> MakeFineTunedDdpg(
    const ConfigurationSpace& space, OptimizerOptions options,
    const DdpgOptimizer::Weights& pretrained) {
  auto ddpg = std::make_unique<DdpgOptimizer>(space, options);
  DBTUNE_RETURN_IF_ERROR(ddpg->ImportWeights(pretrained));
  return ddpg;
}

}  // namespace dbtune
