#include "transfer/rgpe.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dbtune {

RgpeOptimizer::RgpeOptimizer(const ConfigurationSpace& space,
                             OptimizerOptions options,
                             const ObservationRepository* repository,
                             TransferBase base, RgpeOptions rgpe_options)
    : Optimizer(space, options),
      repository_(repository),
      base_(base),
      rgpe_options_(rgpe_options) {
  DBTUNE_CHECK(repository_ != nullptr);
}

std::string RgpeOptimizer::name() const {
  return std::string("RGPE (") + TransferBaseName(base_) + ")";
}

void RgpeOptimizer::FitBaseModels() {
  if (bases_fitted_) return;
  const auto& tasks = repository_->tasks();
  base_models_.reserve(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    std::unique_ptr<Regressor> model =
        CreateBaseSurrogate(base_, space_, options_.seed ^ (0xB0 + t));
    const Status fit =
        model->Fit(tasks[t].unit_x, StandardizeScores(tasks[t].scores));
    if (fit.ok()) {
      base_models_.push_back(std::move(model));
    } else {
      base_models_.push_back(nullptr);
      DBTUNE_LOG(kWarning) << "RGPE base fit failed for task "
                           << tasks[t].name << ": " << fit.ToString();
    }
  }
  bases_fitted_ = true;
}

Configuration RgpeOptimizer::Suggest() {
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());
  FitBaseModels();

  const std::vector<double> target_z = StandardizeScores(scores_);
  std::unique_ptr<Regressor> target_model =
      CreateBaseSurrogate(base_, space_, options_.seed ^ scores_.size());
  const bool target_ok = target_model->Fit(unit_history_, target_z).ok();

  // Gather the live models: bases..., target (last).
  std::vector<Regressor*> models;
  std::vector<bool> is_target;
  for (const auto& model : base_models_) {
    if (model != nullptr) {
      models.push_back(model.get());
      is_target.push_back(false);
    }
  }
  if (target_ok) {
    models.push_back(target_model.get());
    is_target.push_back(true);
  }
  if (models.empty()) return space_.SampleUniform(rng_);

  // --- Ranking-loss weights over the target observations.
  std::vector<size_t> points;
  {
    std::vector<size_t> all(unit_history_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    if (all.size() > rgpe_options_.max_rank_points) {
      points = rng_.SampleWithoutReplacement(all.size(),
                                             rgpe_options_.max_rank_points);
    } else {
      points = all;
    }
  }

  std::vector<double> weights(models.size(), 0.0);
  if (points.size() >= 3) {
    // Cache each model's predictive mean/sd at the ranking points.
    std::vector<std::vector<double>> means(models.size()),
        sds(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
      means[m].resize(points.size());
      sds[m].resize(points.size());
      for (size_t p = 0; p < points.size(); ++p) {
        double mean = 0.0, var = 0.0;
        models[m]->PredictMeanVar(unit_history_[points[p]], &mean, &var);
        means[m][p] = mean;
        sds[m][p] = std::sqrt(std::max(var, 1e-12));
      }
    }
    for (size_t s = 0; s < rgpe_options_.weight_samples; ++s) {
      double best_loss = 1e300;
      std::vector<size_t> winners;
      for (size_t m = 0; m < models.size(); ++m) {
        std::vector<double> draw(points.size());
        for (size_t p = 0; p < points.size(); ++p) {
          draw[p] = means[m][p] + sds[m][p] * rng_.Gaussian();
        }
        size_t loss = 0;
        for (size_t i = 0; i < points.size(); ++i) {
          for (size_t j = i + 1; j < points.size(); ++j) {
            const bool pred = draw[i] < draw[j];
            const bool truth = target_z[points[i]] < target_z[points[j]];
            if (pred != truth) ++loss;
          }
        }
        const double loss_value = static_cast<double>(loss);
        if (loss_value < best_loss - 1e-12) {
          best_loss = loss_value;
          winners.assign(1, m);
        } else if (loss_value < best_loss + 1e-12) {
          winners.push_back(m);
        }
      }
      for (size_t w : winners) {
        weights[w] += 1.0 / static_cast<double>(winners.size());
      }
    }
    double total = 0.0;
    for (double w : weights) total += w;
    if (total > 0.0) {
      for (double& w : weights) w /= total;
    }
  }
  if (std::all_of(weights.begin(), weights.end(),
                  [](double w) { return w == 0.0; })) {
    // Too few target points to rank: trust the target model when it
    // exists, otherwise spread over the bases.
    if (target_ok) {
      weights.back() = 1.0;
    } else {
      for (double& w : weights) {
        w = 1.0 / static_cast<double>(weights.size());
      }
    }
  }
  last_weights_ = weights;

  // --- EI over the weighted ensemble.
  const double best = *std::max_element(target_z.begin(), target_z.end());
  const std::vector<std::vector<double>> candidates =
      BuildAcquisitionCandidates(space_, rng_, unit_history_, target_z,
                                 options_.acquisition_candidates);
  double best_ei = -1.0;
  size_t best_candidate = 0;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const Configuration config = space_.FromUnit(candidates[c]);
    const std::vector<double> u = space_.ToUnit(config);
    double mean = 0.0, var = 0.0;
    for (size_t m = 0; m < models.size(); ++m) {
      if (weights[m] == 0.0) continue;
      double mu = 0.0, sigma2 = 0.0;
      models[m]->PredictMeanVar(u, &mu, &sigma2);
      mean += weights[m] * mu;
      var += weights[m] * weights[m] * sigma2;
    }
    const double ei = ExpectedImprovement(mean, var, best);
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = c;
    }
  }
  return space_.FromUnit(candidates[best_candidate]);
}

}  // namespace dbtune
