#include "transfer/rgpe.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace dbtune {

void MixtureMeanVar(const std::vector<double>& weights,
                    const std::vector<double>& means,
                    const std::vector<double>& variances, double* mean,
                    double* variance) {
  DBTUNE_CHECK(weights.size() == means.size());
  DBTUNE_CHECK(weights.size() == variances.size());
  double mu = 0.0;
  double second_moment = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    mu += weights[i] * means[i];
    second_moment += weights[i] * (means[i] * means[i] + variances[i]);
  }
  *mean = mu;
  *variance = std::max(0.0, second_moment - mu * mu);
}

RgpeOptimizer::RgpeOptimizer(const ConfigurationSpace& space,
                             OptimizerOptions options,
                             const ObservationRepository* repository,
                             TransferBase base, RgpeOptions rgpe_options)
    : Optimizer(space, options),
      repository_(repository),
      base_(base),
      rgpe_options_(rgpe_options) {
  DBTUNE_CHECK(repository_ != nullptr);
}

std::string RgpeOptimizer::name() const {
  return std::string("RGPE (") + TransferBaseName(base_) + ")";
}

void RgpeOptimizer::FitBaseModels() {
  if (bases_fitted_) return;
  const auto& tasks = repository_->tasks();
  base_models_.reserve(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    std::unique_ptr<Regressor> model =
        CreateBaseSurrogate(base_, space_, options_.seed ^ (0xB0 + t));
    const Status fit =
        model->Fit(tasks[t].unit_x, StandardizeScores(tasks[t].scores));
    if (fit.ok()) {
      base_models_.push_back(std::move(model));
    } else {
      base_models_.push_back(nullptr);
      DBTUNE_LOG(kWarning) << "RGPE base fit failed for task "
                           << tasks[t].name << ": " << fit.ToString();
    }
  }
  bases_fitted_ = true;
}

Configuration RgpeOptimizer::Suggest() {
  static obs::Histogram& suggest_hist =
      obs::MetricsRegistry::Get().histogram("optimizer.suggest.rgpe");
  obs::ScopedLatency suggest_latency(&suggest_hist);
  DBTUNE_TRACE_SPAN("rgpe.suggest");
  suggest_info_ = {};
  if (InitPending()) return NextInit();
  DBTUNE_CHECK(!scores_.empty());
  FitBaseModels();

  const std::vector<double> target_z = StandardizeScores(scores_);
  std::unique_ptr<Regressor> target_model =
      CreateBaseSurrogate(base_, space_, options_.seed ^ scores_.size());
  const bool target_ok = target_model->Fit(unit_history_, target_z).ok();

  // Gather the live models: bases..., target (last).
  std::vector<Regressor*> models;
  std::vector<bool> is_target;
  for (const auto& model : base_models_) {
    if (model != nullptr) {
      models.push_back(model.get());
      is_target.push_back(false);
    }
  }
  if (target_ok) {
    models.push_back(target_model.get());
    is_target.push_back(true);
  }
  if (models.empty()) return space_.SampleUniform(rng_);

  // --- Ranking-loss weights over the target observations.
  std::vector<size_t> points;
  {
    std::vector<size_t> all(unit_history_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    if (all.size() > rgpe_options_.max_rank_points) {
      points = rng_.SampleWithoutReplacement(all.size(),
                                             rgpe_options_.max_rank_points);
    } else {
      points = all;
    }
  }

  std::vector<double> weights(models.size(), 0.0);
  if (points.size() >= 3) {
    // Cache each model's predictive mean/sd at the ranking points, one
    // batched pass per model.
    FeatureMatrix rank_x;
    rank_x.reserve(points.size());
    for (size_t p : points) rank_x.push_back(unit_history_[p]);
    std::vector<std::vector<double>> means(models.size()),
        sds(models.size());
    for (size_t m = 0; m < models.size(); ++m) {
      std::vector<double> variances;
      models[m]->PredictMeanVarBatch(rank_x, &means[m], &variances);
      sds[m].resize(points.size());
      for (size_t p = 0; p < points.size(); ++p) {
        sds[m][p] = std::sqrt(std::max(variances[p], 1e-12));
      }
    }
    for (size_t s = 0; s < rgpe_options_.weight_samples; ++s) {
      double best_loss = 1e300;
      std::vector<size_t> winners;
      for (size_t m = 0; m < models.size(); ++m) {
        std::vector<double> draw(points.size());
        for (size_t p = 0; p < points.size(); ++p) {
          draw[p] = means[m][p] + sds[m][p] * rng_.Gaussian();
        }
        size_t loss = 0;
        for (size_t i = 0; i < points.size(); ++i) {
          for (size_t j = i + 1; j < points.size(); ++j) {
            const bool pred = draw[i] < draw[j];
            const bool truth = target_z[points[i]] < target_z[points[j]];
            if (pred != truth) ++loss;
          }
        }
        const double loss_value = static_cast<double>(loss);
        if (loss_value < best_loss - 1e-12) {
          best_loss = loss_value;
          winners.assign(1, m);
        } else if (loss_value < best_loss + 1e-12) {
          winners.push_back(m);
        }
      }
      for (size_t w : winners) {
        weights[w] += 1.0 / static_cast<double>(winners.size());
      }
    }
    double total = 0.0;
    for (double w : weights) total += w;
    if (total > 0.0) {
      for (double& w : weights) w /= total;
    }
  }
  if (std::all_of(weights.begin(), weights.end(),
                  [](double w) { return w == 0.0; })) {
    // Too few target points to rank: trust the target model when it
    // exists, otherwise spread over the bases.
    if (target_ok) {
      weights.back() = 1.0;
    } else {
      for (double& w : weights) {
        w = 1.0 / static_cast<double>(weights.size());
      }
    }
  }
  last_weights_ = weights;

  // --- EI over the weighted ensemble.
  const double best = *std::max_element(target_z.begin(), target_z.end());
  const std::vector<std::vector<double>> candidates =
      BuildAcquisitionCandidates(space_, rng_, unit_history_, target_z,
                                 options_.acquisition_candidates);
  // Only nonzero-weight models contribute to the mixture; skip the rest
  // up front rather than once per candidate.
  std::vector<size_t> active;
  std::vector<double> active_weights;
  for (size_t m = 0; m < models.size(); ++m) {
    if (weights[m] != 0.0) {
      active.push_back(m);
      active_weights.push_back(weights[m]);
    }
  }

  // Snap the pool once (bitwise equal to the FromUnit/ToUnit round-trip,
  // no Configuration materialized), then run one batched predict per
  // active model — the parallelism lives inside PredictMeanVarBatch,
  // where each query writes only its own slot, so the mixture inputs are
  // bit-identical at any pool size. The cheap per-candidate mixture and
  // EI reduction stays sequential, resolving ties to the lowest index.
  std::vector<std::vector<double>> snapped(candidates.size());
  ParallelFor(GlobalPool(), 0, candidates.size(), /*grain=*/16,
              [&](size_t begin, size_t end) {
                for (size_t c = begin; c < end; ++c) {
                  snapped[c] = space_.SnapUnit(candidates[c]);
                }
              });
  std::vector<std::vector<double>> model_means(active.size()),
      model_vars(active.size());
  for (size_t k = 0; k < active.size(); ++k) {
    models[active[k]]->PredictMeanVarBatch(snapped, &model_means[k],
                                           &model_vars[k]);
  }
  double best_ei = -1.0;
  size_t best_candidate = 0;
  double best_mean_z = 0.0;
  double best_var_z = 0.0;
  double ei_sum = 0.0;
  double ei_sumsq = 0.0;
  std::vector<double> mus(active.size());
  std::vector<double> vars(active.size());
  for (size_t c = 0; c < candidates.size(); ++c) {
    for (size_t k = 0; k < active.size(); ++k) {
      mus[k] = model_means[k][c];
      vars[k] = model_vars[k][c];
    }
    double mean = 0.0, var = 0.0;
    MixtureMeanVar(active_weights, mus, vars, &mean, &var);
    const double ei = ExpectedImprovement(mean, var, best);
    ei_sum += ei;
    ei_sumsq += ei * ei;
    if (ei > best_ei) {
      best_ei = ei;
      best_candidate = c;
      best_mean_z = mean;
      best_var_z = var;
    }
  }
  // The mixture posterior at the winner, de-standardized: the target's
  // StandardizeScores applies the same moments as CurrentScoreMoments.
  const ScoreMoments moments = CurrentScoreMoments();
  suggest_info_.has_prediction = true;
  suggest_info_.predicted_mean = moments.mean + moments.sd * best_mean_z;
  suggest_info_.predicted_variance = moments.sd * moments.sd * best_var_z;
  suggest_info_.has_acquisition = true;
  suggest_info_.acquisition_best = best_ei;
  const double pool = static_cast<double>(candidates.size());
  const double ei_mean = ei_sum / pool;
  suggest_info_.acquisition_spread =
      std::sqrt(std::max(0.0, ei_sumsq / pool - ei_mean * ei_mean));
  suggest_info_.acquisition_pool = candidates.size();
  return space_.FromUnit(candidates[best_candidate]);
}

}  // namespace dbtune
