#ifndef DBTUNE_TRANSFER_RGPE_H_
#define DBTUNE_TRANSFER_RGPE_H_

#include <memory>
#include <vector>

#include "optimizer/optimizer.h"
#include "transfer/repository.h"
#include "transfer/workload_mapping.h"

namespace dbtune {

/// Moments of the ensemble mixture Σ wᵢ N(μᵢ, σᵢ²): mean = Σ wᵢμᵢ and
/// variance = Σ wᵢ(μᵢ² + σᵢ²) − mean² (law of total variance). Weights
/// must sum to 1. Note this is NOT Σ wᵢ²σᵢ² — that would be the variance
/// of a weighted *average* of independent draws, which both ignores the
/// spread between model means and vanishes as the ensemble grows.
void MixtureMeanVar(const std::vector<double>& weights,
                    const std::vector<double>& means,
                    const std::vector<double>& variances, double* mean,
                    double* variance);

/// RGPE-specific options (Feurer et al. 2018).
struct RgpeOptions {
  /// Monte-Carlo samples for the ranking-loss weight estimation.
  size_t weight_samples = 30;
  /// Target observations used in the ranking loss (subsampled for speed).
  size_t max_rank_points = 40;
};

/// Ranking-weighted ensemble transfer: one base surrogate per historical
/// task plus a target surrogate, combined with weights proportional to
/// how often each model ranks the target observations best in Monte-Carlo
/// posterior samples. Tasks that would mislead the target get (near-)zero
/// weight, which is what protects RGPE from negative transfer.
class RgpeOptimizer final : public Optimizer {
 public:
  /// `repository` is borrowed and must outlive the optimizer.
  RgpeOptimizer(const ConfigurationSpace& space, OptimizerOptions options,
                const ObservationRepository* repository, TransferBase base,
                RgpeOptions rgpe_options = {});

  Configuration Suggest() override;
  std::string name() const override;

  /// Ensemble weights after the last `Suggest` (bases..., target).
  const std::vector<double>& last_weights() const { return last_weights_; }

 private:
  void FitBaseModels();

  const ObservationRepository* repository_;
  TransferBase base_;
  RgpeOptions rgpe_options_;
  std::vector<std::unique_ptr<Regressor>> base_models_;
  bool bases_fitted_ = false;
  std::vector<double> last_weights_;
};

}  // namespace dbtune

#endif  // DBTUNE_TRANSFER_RGPE_H_
