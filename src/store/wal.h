#ifndef DBTUNE_STORE_WAL_H_
#define DBTUNE_STORE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dbtune::store {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `size` bytes. Every
/// WAL and snapshot frame carries one so recovery can distinguish a torn
/// tail from a complete record.
uint32_t Crc32(const void* data, size_t size);

/// Record types shared by the write-ahead log and the snapshot file. The
/// numeric values are part of the on-disk format — append, never renumber.
enum class WalRecordType : uint8_t {
  kBeginSession = 1,
  kObservation = 2,
  kEndSession = 3,
  kTask = 4,
  kTruncateSession = 5,
};

/// One decoded log record: a monotonically increasing sequence number, a
/// type tag, and the type-specific body bytes.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kBeginSession;
  std::string body;
};

/// Append-only binary encoder for record bodies. All integers are
/// little-endian; doubles are raw IEEE-754 bit patterns so a decoded
/// value is bitwise identical to what was written.
class WalEncoder {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  /// Length-prefixed (u32) byte string.
  void PutString(const std::string& s);
  /// Count-prefixed (u64) vector of raw doubles.
  void PutDoubles(const std::vector<double>& v);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over an encoded record body. Every read returns
/// InvalidArgument past the end instead of walking off the buffer.
class WalDecoder {
 public:
  explicit WalDecoder(std::string_view data) : data_(data) {}

  [[nodiscard]] Result<uint8_t> ReadU8();
  [[nodiscard]] Result<uint32_t> ReadU32();
  [[nodiscard]] Result<uint64_t> ReadU64();
  [[nodiscard]] Result<double> ReadDouble();
  [[nodiscard]] Result<std::string> ReadString();
  [[nodiscard]] Result<std::vector<double>> ReadDoubles();

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Frames a record for disk: [u32 payload_len][u32 crc32(payload)] with
/// payload = [u64 lsn][u8 type][body].
std::string EncodeWalFrame(const WalRecord& record);

/// Outcome of scanning a WAL (or snapshot body) from disk.
struct WalScanResult {
  std::vector<WalRecord> records;
  /// Bytes of the file occupied by the header plus every intact frame.
  /// Anything past this offset is a torn or corrupt tail.
  uint64_t valid_bytes = 0;
  /// True when the file ended mid-frame or a frame failed its CRC.
  bool torn_tail = false;
};

/// Decodes frames from `data` starting at `offset` until the end of the
/// buffer, a short frame, or a CRC mismatch. Never fails: a damaged tail
/// sets `torn_tail` and stops.
WalScanResult ScanWalFrames(std::string_view data, uint64_t offset);

/// Append-only writer over one WAL file. `OpenWal` (in
/// observation_store.cc) validates or creates the file before handing it
/// here; the writer itself only appends frames and flushes each one so a
/// crash can tear at most the final record.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending. The file must already exist with a valid
  /// header (the store's recovery pass guarantees this).
  [[nodiscard]] static Result<WalWriter> OpenForAppend(const std::string& path);

  /// Appends one framed record and flushes. On an injected fault the
  /// budgeted prefix of the frame still reaches the file — exactly what a
  /// mid-write crash leaves behind — and the writer disables itself.
  [[nodiscard]] Status Append(const WalRecord& record);

  /// Rewrites the file to just the magic header (log compaction after a
  /// snapshot made every existing record redundant).
  [[nodiscard]] Status TruncateToHeader();

  bool open() const { return file_ != nullptr; }

 private:
  void Close();

  std::string path_;
  std::FILE* file_ = nullptr;
};

/// 8-byte magic that starts every WAL file.
extern const char kWalMagic[8];
/// 8-byte magic that starts every snapshot file.
extern const char kSnapshotMagic[8];

namespace testing {

/// Arms a one-shot write fault: after `budget_bytes` more bytes have been
/// written through WalWriter::Append, the write stops mid-frame (the
/// prefix is flushed to disk, simulating a crash) and Append returns an
/// error. Pass a negative budget to disarm. Tests only.
void SetWalWriteFaultForTest(int64_t budget_bytes);

}  // namespace testing

}  // namespace dbtune::store

#endif  // DBTUNE_STORE_WAL_H_
