#include "store/wal.h"

#include <array>
#include <atomic>
#include <cstring>

#include "util/logging.h"

namespace dbtune::store {

namespace {

/// Remaining injected-fault budget in bytes; negative = disarmed. A
/// single atomic is enough: the hook is a test-only crash simulator, not
/// a concurrency fixture.
std::atomic<int64_t> g_write_fault_budget{-1};

constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc

void PutLE32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutLE64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint32_t GetLE32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

uint64_t GetLE64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<uint8_t>(p[i]);
  }
  return v;
}

}  // namespace

const char kWalMagic[8] = {'D', 'B', 'T', 'N', 'W', 'A', 'L', '1'};
const char kSnapshotMagic[8] = {'D', 'B', 'T', 'N', 'S', 'N', 'P', '1'};

uint32_t Crc32(const void* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void WalEncoder::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void WalEncoder::PutU32(uint32_t v) { PutLE32(&bytes_, v); }

void WalEncoder::PutU64(uint64_t v) { PutLE64(&bytes_, v); }

void WalEncoder::PutDouble(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutLE64(&bytes_, bits);
}

void WalEncoder::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s);
}

void WalEncoder::PutDoubles(const std::vector<double>& v) {
  PutU64(v.size());
  for (double d : v) PutDouble(d);
}

Result<uint8_t> WalDecoder::ReadU8() {
  if (pos_ + 1 > data_.size()) {
    return Status::InvalidArgument("wal decode past end (u8)");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WalDecoder::ReadU32() {
  if (pos_ + 4 > data_.size()) {
    return Status::InvalidArgument("wal decode past end (u32)");
  }
  const uint32_t v = GetLE32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> WalDecoder::ReadU64() {
  if (pos_ + 8 > data_.size()) {
    return Status::InvalidArgument("wal decode past end (u64)");
  }
  const uint64_t v = GetLE64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<double> WalDecoder::ReadDouble() {
  DBTUNE_ASSIGN_OR_RETURN(const uint64_t bits, ReadU64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> WalDecoder::ReadString() {
  DBTUNE_ASSIGN_OR_RETURN(const uint32_t len, ReadU32());
  if (pos_ + len > data_.size()) {
    return Status::InvalidArgument("wal decode past end (string)");
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<std::vector<double>> WalDecoder::ReadDoubles() {
  DBTUNE_ASSIGN_OR_RETURN(const uint64_t count, ReadU64());
  if (pos_ + count * 8 > data_.size() || count > data_.size()) {
    return Status::InvalidArgument("wal decode past end (doubles)");
  }
  std::vector<double> v;
  v.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DBTUNE_ASSIGN_OR_RETURN(const double d, ReadDouble());
    v.push_back(d);
  }
  return v;
}

std::string EncodeWalFrame(const WalRecord& record) {
  std::string payload;
  PutLE64(&payload, record.lsn);
  payload.push_back(static_cast<char>(record.type));
  payload.append(record.body);

  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutLE32(&frame, static_cast<uint32_t>(payload.size()));
  PutLE32(&frame, Crc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

WalScanResult ScanWalFrames(std::string_view data, uint64_t offset) {
  WalScanResult result;
  result.valid_bytes = offset;
  size_t pos = offset;
  while (pos < data.size()) {
    if (pos + kFrameHeaderBytes > data.size()) {
      result.torn_tail = true;
      break;
    }
    const uint32_t len = GetLE32(data.data() + pos);
    const uint32_t crc = GetLE32(data.data() + pos + 4);
    if (len < 9 || pos + kFrameHeaderBytes + len > data.size()) {
      // Shorter than [lsn][type], or the payload runs past the file.
      result.torn_tail = true;
      break;
    }
    const char* payload = data.data() + pos + kFrameHeaderBytes;
    if (Crc32(payload, len) != crc) {
      result.torn_tail = true;
      break;
    }
    WalRecord record;
    record.lsn = GetLE64(payload);
    record.type = static_cast<WalRecordType>(payload[8]);
    record.body.assign(payload + 9, len - 9);
    result.records.push_back(std::move(record));
    pos += kFrameHeaderBytes + len;
    result.valid_bytes = pos;
  }
  return result;
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      DBTUNE_LOG(kWarning) << "wal close failed for " << path_;
    }
    file_ = nullptr;
  }
}

Result<WalWriter> WalWriter::OpenForAppend(const std::string& path) {
  WalWriter writer;
  writer.path_ = path;
  writer.file_ = std::fopen(path.c_str(), "ab");
  if (writer.file_ == nullptr) {
    return Status::Internal("cannot open wal " + path + " for append");
  }
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("wal writer is closed");
  }
  const std::string frame = EncodeWalFrame(record);

  size_t allowed = frame.size();
  bool fault = false;
  int64_t budget = g_write_fault_budget.load(std::memory_order_relaxed);
  if (budget >= 0) {
    if (static_cast<uint64_t>(budget) < frame.size()) {
      allowed = static_cast<size_t>(budget);
      fault = true;
      g_write_fault_budget.store(-1, std::memory_order_relaxed);
    } else {
      g_write_fault_budget.store(budget - static_cast<int64_t>(frame.size()),
                                 std::memory_order_relaxed);
    }
  }

  const size_t written = std::fwrite(frame.data(), 1, allowed, file_);
  const bool flushed = std::fflush(file_) == 0;
  if (fault) {
    // The torn prefix stays on disk, as after a real crash; further
    // appends through this writer must not resurrect the log.
    Close();
    return Status::Internal("injected wal write fault on " + path_);
  }
  if (written != frame.size() || !flushed) {
    Close();
    return Status::Internal("short write to wal " + path_);
  }
  return Status::OK();
}

Status WalWriter::TruncateToHeader() {
  if (file_ != nullptr) {
    if (std::fclose(file_) != 0) {
      DBTUNE_LOG(kWarning) << "wal close failed for " << path_;
    }
    file_ = nullptr;
  }
  std::FILE* rewritten = std::fopen(path_.c_str(), "wb");
  if (rewritten == nullptr) {
    return Status::Internal("cannot truncate wal " + path_);
  }
  const size_t written =
      std::fwrite(kWalMagic, 1, sizeof(kWalMagic), rewritten);
  const bool closed = std::fclose(rewritten) == 0;
  if (written != sizeof(kWalMagic) || !closed) {
    return Status::Internal("cannot rewrite wal header of " + path_);
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("cannot reopen wal " + path_ + " for append");
  }
  return Status::OK();
}

namespace testing {

void SetWalWriteFaultForTest(int64_t budget_bytes) {
  g_write_fault_budget.store(budget_bytes, std::memory_order_relaxed);
}

}  // namespace testing

}  // namespace dbtune::store
