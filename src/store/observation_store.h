#ifndef DBTUNE_STORE_OBSERVATION_STORE_H_
#define DBTUNE_STORE_OBSERVATION_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dbms/environment.h"
#include "store/wal.h"
#include "transfer/repository.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dbtune::store {

/// Store tuning knobs.
struct StoreOptions {
  /// Observations appended between automatic checkpoints (snapshot +
  /// WAL compaction). 0 disables automatic checkpoints; Checkpoint() can
  /// still be called explicitly.
  size_t snapshot_every = 64;
};

/// Recovered or in-progress history of one tuning session.
struct StoredSession {
  std::string id;
  /// Dimension of the tuned subspace (arity of every observation config).
  size_t dimension = 0;
  /// True once FinishSession sealed the trajectory; a later BeginSession
  /// with the same id starts the session over.
  bool finished = false;
  std::vector<Observation> observations;
};

/// Compact per-session description (for reports; no observation data).
struct StoredSessionInfo {
  std::string id;
  size_t dimension = 0;
  size_t observations = 0;
  bool finished = false;
};

/// Recovery and lifetime counters, for reports and tests.
struct StoreStats {
  /// Highest LSN assigned so far (snapshot + WAL).
  uint64_t last_lsn = 0;
  /// WAL records applied during Open (records the snapshot already
  /// covered are skipped and not counted).
  size_t wal_records_replayed = 0;
  /// True when Open found and truncated a torn or CRC-corrupt WAL tail.
  bool recovered_torn_tail = false;
  /// True when recovery loaded a snapshot file.
  bool loaded_snapshot = false;
  /// Checkpoints taken through this handle.
  size_t checkpoints = 0;
};

/// Durable observation store: a write-ahead log of (configuration,
/// performance, internal-metrics) records plus periodic snapshots written
/// via atomic tmp+rename, so a service restart resumes every session
/// mid-trajectory and the transfer base-task pool survives across runs.
///
/// Layout on disk: `<path>` is the WAL ("DBTNWAL1" magic + CRC-framed
/// records), `<path>.snapshot` the latest checkpoint ("DBTNSNP1" magic +
/// the covered LSN + the same framed records). Recovery loads the
/// snapshot, then replays WAL records with LSN beyond it; a torn or
/// corrupt WAL tail is truncated with a warning (every complete record
/// before it survives). Appends flush per record, so a crash tears at
/// most the final record.
///
/// Thread-safe; sessions within one store are independent.
class ObservationStore {
 public:
  /// Opens (creating if absent) the store at `path` and runs recovery.
  [[nodiscard]] static Result<std::unique_ptr<ObservationStore>> Open(
      const std::string& path, StoreOptions options = {});

  /// `explicit_path` when non-empty, else `DBTUNE_STORE`, else ""
  /// (store disabled).
  static std::string ResolvePath(const std::string& explicit_path);

  /// `DBTUNE_STORE_SNAPSHOT_EVERY` when set and parseable, else the
  /// StoreOptions default.
  static size_t ResolveSnapshotEvery();

  /// Declares a session. New id → starts empty. Existing unfinished id
  /// with the same dimension → no-op (the caller replays its history).
  /// Existing finished id → the session restarts empty. A dimension
  /// mismatch on an unfinished session is an error.
  [[nodiscard]] Status BeginSession(const std::string& id, size_t dimension);

  /// Appends one observation to the session's durable history.
  /// `iteration` is 1-based and must be exactly one past the stored
  /// history (detects double-apply and lost-record bugs at the API edge).
  [[nodiscard]] Status AppendObservation(const std::string& id,
                                         size_t iteration,
                                         const Observation& obs);

  /// Durably discards all but the first `keep` observations of `id` —
  /// the recovery path for a replay divergence.
  [[nodiscard]] Status TruncateSession(const std::string& id, size_t keep);

  /// Seals the session and persists its history as a transfer base task
  /// named `task_name` (built via ObservationRepository::FromHistory over
  /// `space`, which must be the session's tuned subspace).
  [[nodiscard]] Status FinishSession(const std::string& id,
                                     const ConfigurationSpace& space,
                                     const std::string& task_name);

  /// Persists an externally built base task. (Named distinctly from
  /// ObservationRepository::AddTask, which is void-returning.)
  [[nodiscard]] Status PersistTask(const SourceTask& task);

  /// Writes a snapshot of the full state (atomic tmp+rename), then
  /// compacts the WAL down to its header: every log record is now covered
  /// by the snapshot.
  [[nodiscard]] Status Checkpoint();

  /// The stored session, or nullptr. The pointer is invalidated by any
  /// later mutation of the store.
  const StoredSession* FindSession(const std::string& id) const;

  /// Appends every persisted base task to `repository`.
  void ExportTasks(ObservationRepository* repository) const;

  /// Id-ordered summaries of every stored session.
  std::vector<StoredSessionInfo> ListSessions() const;

  size_t num_sessions() const;
  size_t num_tasks() const;
  StoreStats stats() const;
  const std::string& path() const { return path_; }

 private:
  ObservationStore(std::string path, StoreOptions options);

  [[nodiscard]] Status Recover() DBTUNE_REQUIRES(mu_);
  [[nodiscard]] Status ApplyRecord(const WalRecord& record)
      DBTUNE_REQUIRES(mu_);
  [[nodiscard]] Status AppendAndApply(WalRecordType type, std::string body)
      DBTUNE_REQUIRES(mu_);
  [[nodiscard]] Status WriteSnapshotLocked()
      DBTUNE_REQUIRES(mu_);
  [[nodiscard]] Status CheckpointLocked() DBTUNE_REQUIRES(mu_);

  const std::string path_;
  const StoreOptions options_;

  mutable Mutex mu_;
  WalWriter wal_ DBTUNE_GUARDED_BY(mu_);
  /// Ordered so snapshots (and therefore recovery) are deterministic.
  std::map<std::string, StoredSession> sessions_ DBTUNE_GUARDED_BY(mu_);
  std::vector<SourceTask> tasks_ DBTUNE_GUARDED_BY(mu_);
  uint64_t next_lsn_ DBTUNE_GUARDED_BY(mu_) = 1;
  size_t appends_since_checkpoint_ DBTUNE_GUARDED_BY(mu_) = 0;
  StoreStats stats_ DBTUNE_GUARDED_BY(mu_);
};

}  // namespace dbtune::store

#endif  // DBTUNE_STORE_OBSERVATION_STORE_H_
