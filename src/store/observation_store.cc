#include "store/observation_store.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace dbtune::store {

namespace {

constexpr size_t kWalHeaderBytes = 8;           // magic
constexpr size_t kSnapshotHeaderBytes = 8 + 8;  // magic + covered lsn

/// Reads the whole file into a string; NotFound when it does not exist.
Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read failed for " + path);
  return buffer.str();
}

std::string EncodeBeginSession(const std::string& id, uint64_t dimension) {
  WalEncoder enc;
  enc.PutString(id);
  enc.PutU64(dimension);
  return enc.bytes();
}

std::string EncodeObservation(const std::string& id, uint64_t iteration,
                              const Observation& obs) {
  WalEncoder enc;
  enc.PutString(id);
  enc.PutU64(iteration);
  enc.PutDoubles(obs.config.values());
  enc.PutDouble(obs.score);
  enc.PutDouble(obs.objective);
  enc.PutU8(obs.failed ? 1 : 0);
  enc.PutDoubles(obs.internal_metrics);
  return enc.bytes();
}

std::string EncodeEndSession(const std::string& id) {
  WalEncoder enc;
  enc.PutString(id);
  return enc.bytes();
}

std::string EncodeTask(const SourceTask& task) {
  WalEncoder enc;
  enc.PutString(task.name);
  enc.PutU64(task.unit_x.size());
  for (const std::vector<double>& row : task.unit_x) enc.PutDoubles(row);
  enc.PutDoubles(task.scores);
  enc.PutDoubles(task.metric_signature);
  return enc.bytes();
}

std::string EncodeTruncateSession(const std::string& id, uint64_t keep) {
  WalEncoder enc;
  enc.PutString(id);
  enc.PutU64(keep);
  return enc.bytes();
}

}  // namespace

ObservationStore::ObservationStore(std::string path, StoreOptions options)
    : path_(std::move(path)), options_(options) {}

Result<std::unique_ptr<ObservationStore>> ObservationStore::Open(
    const std::string& path, StoreOptions options) {
  if (path.empty()) return Status::InvalidArgument("empty store path");
  // Private constructor: make_unique cannot reach it.
  std::unique_ptr<ObservationStore> s(
      new ObservationStore(path, options));  // dbtune-lint: allow(naked-new)
  {
    MutexLock lock(&s->mu_);
    DBTUNE_RETURN_IF_ERROR(s->Recover());
  }
  return s;
}

std::string ObservationStore::ResolvePath(const std::string& explicit_path) {
  if (!explicit_path.empty()) return explicit_path;
  const char* env = std::getenv("DBTUNE_STORE");
  return env == nullptr ? "" : env;
}

size_t ObservationStore::ResolveSnapshotEvery() {
  const char* env = std::getenv("DBTUNE_STORE_SNAPSHOT_EVERY");
  if (env == nullptr || env[0] == '\0') return StoreOptions{}.snapshot_every;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || parsed < 0) {
    return StoreOptions{}.snapshot_every;
  }
  return static_cast<size_t>(parsed);
}

Status ObservationStore::Recover() {
  mu_.AssertHeld();
  uint64_t snapshot_lsn = 0;

  // --- Snapshot first: it is always written atomically (tmp+rename), so
  // any damage here is real corruption, not a crash artifact.
  const std::string snapshot_path = path_ + ".snapshot";
  Result<std::string> snapshot_bytes = ReadFileBytes(snapshot_path);
  if (snapshot_bytes.ok()) {
    const std::string& data = snapshot_bytes.value();
    if (data.size() < kSnapshotHeaderBytes ||
        std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
            0) {
      return Status::Internal(snapshot_path + " is not a dbtune snapshot");
    }
    for (int i = 7; i >= 0; --i) {
      snapshot_lsn = (snapshot_lsn << 8) |
                     static_cast<uint8_t>(data[sizeof(kSnapshotMagic) + i]);
    }
    const WalScanResult scan = ScanWalFrames(data, kSnapshotHeaderBytes);
    if (scan.torn_tail) {
      return Status::Internal("corrupt snapshot " + snapshot_path);
    }
    for (const WalRecord& record : scan.records) {
      DBTUNE_RETURN_IF_ERROR(ApplyRecord(record));
    }
    stats_.loaded_snapshot = true;
    next_lsn_ = snapshot_lsn + 1;
    stats_.last_lsn = snapshot_lsn;
  } else if (snapshot_bytes.status().code() != StatusCode::kNotFound) {
    return snapshot_bytes.status();
  }

  // --- Then the WAL: replay every intact record past the snapshot and
  // truncate a torn tail (the expected shape after a crash mid-append).
  Result<std::string> wal_bytes = ReadFileBytes(path_);
  if (wal_bytes.ok() && !wal_bytes.value().empty()) {
    const std::string& data = wal_bytes.value();
    if (data.size() < kWalHeaderBytes) {
      DBTUNE_LOG(kWarning) << "wal " << path_
                           << " torn inside the header; starting fresh";
      stats_.recovered_torn_tail = true;
      std::error_code ec;
      std::filesystem::resize_file(path_, 0, ec);
      if (ec) return Status::Internal("cannot truncate wal " + path_);
    } else if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
      return Status::Internal(path_ + " is not a dbtune wal");
    } else {
      const WalScanResult scan = ScanWalFrames(data, kWalHeaderBytes);
      if (scan.torn_tail) {
        DBTUNE_LOG(kWarning)
            << "wal " << path_ << " has a torn tail; truncating "
            << (data.size() - scan.valid_bytes) << " byte(s) after "
            << scan.records.size() << " intact record(s)";
        stats_.recovered_torn_tail = true;
        std::error_code ec;
        std::filesystem::resize_file(path_, scan.valid_bytes, ec);
        if (ec) return Status::Internal("cannot truncate wal " + path_);
      }
      for (const WalRecord& record : scan.records) {
        // Records at or below the snapshot LSN survive only when a crash
        // hit between the snapshot rename and the log compaction; the
        // snapshot already holds their effects.
        if (record.lsn <= snapshot_lsn) continue;
        DBTUNE_RETURN_IF_ERROR(ApplyRecord(record));
        ++stats_.wal_records_replayed;
        if (record.lsn >= next_lsn_) next_lsn_ = record.lsn + 1;
        stats_.last_lsn = next_lsn_ - 1;
      }
    }
  }

  // --- Make sure an (empty or truncated-to-zero) WAL has its header
  // before appends resume.
  bool need_header = true;
  if (wal_bytes.ok() && wal_bytes.value().size() >= kWalHeaderBytes &&
      std::memcmp(wal_bytes.value().data(), kWalMagic, sizeof(kWalMagic)) ==
          0) {
    need_header = false;
  }
  if (need_header) {
    std::FILE* created = std::fopen(path_.c_str(), "wb");
    if (created == nullptr) {
      return Status::Internal("cannot create wal " + path_);
    }
    const size_t written =
        std::fwrite(kWalMagic, 1, sizeof(kWalMagic), created);
    const bool closed = std::fclose(created) == 0;
    if (written != sizeof(kWalMagic) || !closed) {
      return Status::Internal("cannot write wal header of " + path_);
    }
  }
  DBTUNE_ASSIGN_OR_RETURN(wal_, WalWriter::OpenForAppend(path_));
  return Status::OK();
}

Status ObservationStore::ApplyRecord(const WalRecord& record) {
  mu_.AssertHeld();
  WalDecoder dec(record.body);
  switch (record.type) {
    case WalRecordType::kBeginSession: {
      DBTUNE_ASSIGN_OR_RETURN(const std::string id, dec.ReadString());
      DBTUNE_ASSIGN_OR_RETURN(const uint64_t dimension, dec.ReadU64());
      StoredSession& session = sessions_[id];
      session.id = id;
      session.dimension = static_cast<size_t>(dimension);
      session.finished = false;
      session.observations.clear();
      return Status::OK();
    }
    case WalRecordType::kObservation: {
      DBTUNE_ASSIGN_OR_RETURN(const std::string id, dec.ReadString());
      DBTUNE_ASSIGN_OR_RETURN(const uint64_t iteration, dec.ReadU64());
      DBTUNE_ASSIGN_OR_RETURN(std::vector<double> config, dec.ReadDoubles());
      Observation obs;
      obs.config = Configuration(std::move(config));
      DBTUNE_ASSIGN_OR_RETURN(obs.score, dec.ReadDouble());
      DBTUNE_ASSIGN_OR_RETURN(obs.objective, dec.ReadDouble());
      DBTUNE_ASSIGN_OR_RETURN(const uint8_t failed, dec.ReadU8());
      obs.failed = failed != 0;
      DBTUNE_ASSIGN_OR_RETURN(obs.internal_metrics, dec.ReadDoubles());
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        return Status::Internal("observation for unknown session " + id);
      }
      if (iteration != it->second.observations.size() + 1) {
        return Status::Internal("out-of-order observation for session " + id);
      }
      it->second.observations.push_back(std::move(obs));
      return Status::OK();
    }
    case WalRecordType::kEndSession: {
      DBTUNE_ASSIGN_OR_RETURN(const std::string id, dec.ReadString());
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        return Status::Internal("end record for unknown session " + id);
      }
      it->second.finished = true;
      return Status::OK();
    }
    case WalRecordType::kTask: {
      SourceTask task;
      DBTUNE_ASSIGN_OR_RETURN(task.name, dec.ReadString());
      DBTUNE_ASSIGN_OR_RETURN(const uint64_t rows, dec.ReadU64());
      task.unit_x.reserve(rows);
      for (uint64_t r = 0; r < rows; ++r) {
        DBTUNE_ASSIGN_OR_RETURN(std::vector<double> row, dec.ReadDoubles());
        task.unit_x.push_back(std::move(row));
      }
      DBTUNE_ASSIGN_OR_RETURN(task.scores, dec.ReadDoubles());
      DBTUNE_ASSIGN_OR_RETURN(task.metric_signature, dec.ReadDoubles());
      tasks_.push_back(std::move(task));
      return Status::OK();
    }
    case WalRecordType::kTruncateSession: {
      DBTUNE_ASSIGN_OR_RETURN(const std::string id, dec.ReadString());
      DBTUNE_ASSIGN_OR_RETURN(const uint64_t keep, dec.ReadU64());
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        return Status::Internal("truncate record for unknown session " + id);
      }
      if (keep < it->second.observations.size()) {
        it->second.observations.resize(keep);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown wal record type");
}

Status ObservationStore::AppendAndApply(WalRecordType type,
                                        std::string body) {
  mu_.AssertHeld();
  WalRecord record;
  record.lsn = next_lsn_;
  record.type = type;
  record.body = std::move(body);
  DBTUNE_RETURN_IF_ERROR(wal_.Append(record));
  ++next_lsn_;
  stats_.last_lsn = record.lsn;
  return ApplyRecord(record);
}

Status ObservationStore::BeginSession(const std::string& id,
                                      size_t dimension) {
  if (id.empty()) return Status::InvalidArgument("empty session id");
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it != sessions_.end() && !it->second.finished) {
    if (it->second.dimension != dimension) {
      return Status::FailedPrecondition(
          "session " + id + " exists with a different dimension");
    }
    return Status::OK();  // resuming: the caller replays the history
  }
  return AppendAndApply(WalRecordType::kBeginSession,
                        EncodeBeginSession(id, dimension));
}

Status ObservationStore::AppendObservation(const std::string& id,
                                           size_t iteration,
                                           const Observation& obs) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + id);
  }
  if (it->second.finished) {
    return Status::FailedPrecondition("session " + id + " is finished");
  }
  if (obs.config.size() != it->second.dimension) {
    return Status::InvalidArgument("observation arity mismatch for " + id);
  }
  if (iteration != it->second.observations.size() + 1) {
    return Status::InvalidArgument(
        "observation iteration out of order for " + id);
  }
  DBTUNE_RETURN_IF_ERROR(AppendAndApply(
      WalRecordType::kObservation, EncodeObservation(id, iteration, obs)));
  ++appends_since_checkpoint_;
  if (options_.snapshot_every > 0 &&
      appends_since_checkpoint_ >= options_.snapshot_every) {
    return CheckpointLocked();
  }
  return Status::OK();
}

Status ObservationStore::TruncateSession(const std::string& id, size_t keep) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + id);
  }
  if (keep >= it->second.observations.size()) return Status::OK();
  return AppendAndApply(WalRecordType::kTruncateSession,
                        EncodeTruncateSession(id, keep));
}

Status ObservationStore::FinishSession(const std::string& id,
                                       const ConfigurationSpace& space,
                                       const std::string& task_name) {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + id);
  }
  if (it->second.finished) {
    return Status::FailedPrecondition("session " + id + " is finished");
  }
  if (space.dimension() != it->second.dimension) {
    return Status::InvalidArgument("space dimension mismatch for " + id);
  }
  const SourceTask task = ObservationRepository::FromHistory(
      task_name, space, it->second.observations);
  DBTUNE_RETURN_IF_ERROR(
      AppendAndApply(WalRecordType::kTask, EncodeTask(task)));
  return AppendAndApply(WalRecordType::kEndSession, EncodeEndSession(id));
}

Status ObservationStore::PersistTask(const SourceTask& task) {
  MutexLock lock(&mu_);
  return AppendAndApply(WalRecordType::kTask, EncodeTask(task));
}

Status ObservationStore::WriteSnapshotLocked() {
  mu_.AssertHeld();
  std::string out(kSnapshotMagic, sizeof(kSnapshotMagic));
  const uint64_t covered_lsn = next_lsn_ - 1;
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((covered_lsn >> (8 * i)) & 0xFF));
  }
  // Snapshot records carry LSN 0: the file-level covered LSN above is the
  // only sequence coordinate recovery needs.
  for (const auto& [id, session] : sessions_) {
    WalRecord begin;
    begin.type = WalRecordType::kBeginSession;
    begin.body = EncodeBeginSession(id, session.dimension);
    out += EncodeWalFrame(begin);
    for (size_t i = 0; i < session.observations.size(); ++i) {
      WalRecord obs;
      obs.type = WalRecordType::kObservation;
      obs.body = EncodeObservation(id, i + 1, session.observations[i]);
      out += EncodeWalFrame(obs);
    }
    if (session.finished) {
      WalRecord end;
      end.type = WalRecordType::kEndSession;
      end.body = EncodeEndSession(id);
      out += EncodeWalFrame(end);
    }
  }
  for (const SourceTask& task : tasks_) {
    WalRecord rec;
    rec.type = WalRecordType::kTask;
    rec.body = EncodeTask(task);
    out += EncodeWalFrame(rec);
  }

  const std::string snapshot_path = path_ + ".snapshot";
  const std::string tmp = snapshot_path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open snapshot file " + tmp);
  }
  const size_t written = std::fwrite(out.data(), 1, out.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != out.size() || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to snapshot file " + tmp);
  }
  if (std::rename(tmp.c_str(), snapshot_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename snapshot file to " +
                            snapshot_path);
  }
  return Status::OK();
}

Status ObservationStore::CheckpointLocked() {
  mu_.AssertHeld();
  DBTUNE_RETURN_IF_ERROR(WriteSnapshotLocked());
  DBTUNE_RETURN_IF_ERROR(wal_.TruncateToHeader());
  appends_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  return Status::OK();
}

Status ObservationStore::Checkpoint() {
  MutexLock lock(&mu_);
  return CheckpointLocked();
}

// The returned pointer follows the caller's single-writer phase
// discipline (a session owns its id); the map node it points into is
// stable across unrelated mutations.
const StoredSession* ObservationStore::FindSession(
    const std::string& id) const {
  MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

void ObservationStore::ExportTasks(ObservationRepository* repository) const {
  DBTUNE_CHECK(repository != nullptr);
  MutexLock lock(&mu_);
  for (const SourceTask& task : tasks_) repository->AddTask(task);
}

std::vector<StoredSessionInfo> ObservationStore::ListSessions() const {
  MutexLock lock(&mu_);
  std::vector<StoredSessionInfo> infos;
  infos.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    StoredSessionInfo info;
    info.id = id;
    info.dimension = session.dimension;
    info.observations = session.observations.size();
    info.finished = session.finished;
    infos.push_back(std::move(info));
  }
  return infos;
}

size_t ObservationStore::num_sessions() const {
  MutexLock lock(&mu_);
  return sessions_.size();
}

size_t ObservationStore::num_tasks() const {
  MutexLock lock(&mu_);
  return tasks_.size();
}

StoreStats ObservationStore::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace dbtune::store
