#include "util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(ThreadPoolTest, SizeIsClampedToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
    // The destructor drains the queue before joining the workers.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitInlineAtPoolSizeOne) {
  ThreadPool pool(1);
  int ran = 0;
  pool.Submit([&] { ran = 1; });  // inline: visible immediately, no race
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> hits(1000, 0);
  ParallelFor(&pool, 0, hits.size(), 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSequentialFallbacks) {
  // Null pool and size-1 pool both run the body inline on this thread.
  std::vector<int> hits(64, 0);
  ParallelFor(nullptr, 0, hits.size(), 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  ThreadPool sequential(1);
  ParallelFor(&sequential, 0, hits.size(), 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 2);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 0, 100, 1,
                  [&](size_t begin, size_t) {
                    if (begin == 42) throw std::runtime_error("chunk 42");
                  }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForExceptionDoesNotWedgePool) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(&pool, 0, 10, 1,
                           [](size_t, size_t) {
                             throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The pool must still accept and finish work afterwards.
  std::atomic<int> counter{0};
  ParallelFor(&pool, 0, 10, 1,
              [&](size_t, size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  // Waiting on the queue from a worker would deadlock once every worker
  // blocks; nested regions therefore execute inline and must still cover
  // their full range.
  ParallelFor(&pool, 0, 8, 1, [&](size_t, size_t) {
    EXPECT_TRUE(pool.InWorkerThread());
    ParallelFor(&pool, 0, 16, 1, [&](size_t begin, size_t end) {
      inner_total.fetch_add(static_cast<int>(end - begin));
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPoolTest, DeterministicChunkResults) {
  // The same indexed computation must produce identical output at every
  // pool size (chunk boundaries depend only on the range and grain).
  auto compute = [](ThreadPool* pool) {
    std::vector<double> out(512);
    ParallelFor(pool, 0, out.size(), 10, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * 1.5 + 1.0;
      }
    });
    return out;
  };
  ThreadPool one(1), many(5);
  EXPECT_EQ(compute(&one), compute(&many));
}

TEST(ExecutionContextTest, HonorsSetNumThreads) {
  ExecutionContext& context = ExecutionContext::Get();
  const size_t original = context.num_threads();
  context.SetNumThreads(3);
  EXPECT_EQ(context.num_threads(), 3u);
  EXPECT_EQ(context.pool().size(), 3u);
  EXPECT_EQ(GlobalPool(), &context.pool());
  context.SetNumThreads(original);
}

}  // namespace
}  // namespace dbtune
