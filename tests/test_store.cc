// Durable observation store: WAL framing, torn-tail and bad-CRC
// recovery, snapshot compaction, the LSN skip window, fault-injected
// mid-write crashes, and the headline guarantee — a session killed at
// any iteration replays to a bitwise-identical trajectory.

#include "store/observation_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/advisor.h"
#include "core/tuning_session.h"
#include "knobs/catalog.h"
#include "obs/clock.h"
#include "store/wal.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

using store::EncodeWalFrame;
using store::ObservationStore;
using store::ScanWalFrames;
using store::StoreOptions;
using store::StoredSession;
using store::WalRecord;
using store::WalRecordType;
using store::WalScanResult;

// Restores the previous pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(size_t n)
      : original_(ExecutionContext::Get().num_threads()) {
    ExecutionContext::Get().SetNumThreads(n);
  }
  ~PoolSizeGuard() { ExecutionContext::Get().SetNumThreads(original_); }

 private:
  size_t original_;
};

// Every test runs with the store env switches unset and the real clock.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override { Reset(); }
  void TearDown() override { Reset(); }

  static void Reset() {
    ::unsetenv("DBTUNE_STORE");
    ::unsetenv("DBTUNE_STORE_SNAPSHOT_EVERY");
    store::testing::SetWalWriteFaultForTest(-1);
    obs::DisableFakeClockForTest();
  }
};

/// A fresh store path in the test temp dir (leftovers removed).
std::string StorePath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "store_" + name + ".wal";
  std::remove(path.c_str());
  std::remove((path + ".snapshot").c_str());
  std::remove((path + ".snapshot.tmp").c_str());
  return path;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  ASSERT_TRUE(out.good());
}

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

Observation MakeObs(std::vector<double> config, double score,
                    double objective, std::vector<double> metrics = {},
                    bool failed = false) {
  Observation obs;
  obs.config = Configuration(std::move(config));
  obs.score = score;
  obs.objective = objective;
  obs.failed = failed;
  obs.internal_metrics = std::move(metrics);
  return obs;
}

void ExpectObservationsBitEqual(const std::vector<Observation>& a,
                                const std::vector<Observation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].config.size(), b[i].config.size()) << "obs " << i;
    for (size_t j = 0; j < a[i].config.size(); ++j) {
      EXPECT_TRUE(BitEqual(a[i].config.values()[j], b[i].config.values()[j]))
          << "obs " << i << " dim " << j;
    }
    EXPECT_TRUE(BitEqual(a[i].score, b[i].score)) << "obs " << i;
    EXPECT_TRUE(BitEqual(a[i].objective, b[i].objective)) << "obs " << i;
    EXPECT_EQ(a[i].failed, b[i].failed) << "obs " << i;
    ASSERT_EQ(a[i].internal_metrics.size(), b[i].internal_metrics.size());
    for (size_t j = 0; j < a[i].internal_metrics.size(); ++j) {
      EXPECT_TRUE(
          BitEqual(a[i].internal_metrics[j], b[i].internal_metrics[j]))
          << "obs " << i << " metric " << j;
    }
  }
}

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

// ---------------------------------------------------------------------------
// WAL framing
// ---------------------------------------------------------------------------

TEST_F(StoreTest, WalFramesRoundTrip) {
  std::string data(store::kWalMagic, sizeof(store::kWalMagic));
  std::vector<WalRecord> records(3);
  records[0] = {1, WalRecordType::kBeginSession, "alpha"};
  records[1] = {2, WalRecordType::kObservation, std::string("\0\xFF" "bin", 5)};
  records[2] = {3, WalRecordType::kEndSession, ""};  // empty body
  for (const WalRecord& record : records) data += EncodeWalFrame(record);

  const WalScanResult scan = ScanWalFrames(data, sizeof(store::kWalMagic));
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, data.size());
  ASSERT_EQ(scan.records.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scan.records[i].lsn, records[i].lsn);
    EXPECT_EQ(scan.records[i].type, records[i].type);
    EXPECT_EQ(scan.records[i].body, records[i].body);
  }
}

TEST_F(StoreTest, WalScanStopsAtTornTail) {
  std::string data(store::kWalMagic, sizeof(store::kWalMagic));
  data += EncodeWalFrame({1, WalRecordType::kBeginSession, "s"});
  data += EncodeWalFrame({2, WalRecordType::kEndSession, "s"});
  const size_t intact = data.size();
  const std::string torn =
      EncodeWalFrame({3, WalRecordType::kObservation, "partial-record"});
  data += torn.substr(0, torn.size() / 2);  // crash mid-write

  const WalScanResult scan = ScanWalFrames(data, sizeof(store::kWalMagic));
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, intact);
  EXPECT_EQ(scan.records.size(), 2u);
}

TEST_F(StoreTest, WalScanStopsAtCrcMismatch) {
  std::string data(store::kWalMagic, sizeof(store::kWalMagic));
  data += EncodeWalFrame({1, WalRecordType::kBeginSession, "s"});
  const size_t intact = data.size();
  data += EncodeWalFrame({2, WalRecordType::kObservation, "to-be-damaged"});
  data.back() ^= 0x40;  // flip one payload bit

  const WalScanResult scan = ScanWalFrames(data, sizeof(store::kWalMagic));
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, intact);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST_F(StoreTest, EncoderDecoderRoundTripIsBitExact) {
  const std::vector<double> values = {0.1, -0.0, 1e-308, -1.7976931348623157e308,
                                      3.141592653589793};
  store::WalEncoder enc;
  enc.PutU8(7);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(1ull << 63);
  enc.PutString("sysbench/16g");
  enc.PutDoubles(values);

  store::WalDecoder dec(enc.bytes());
  EXPECT_EQ(dec.ReadU8().value(), 7);
  EXPECT_EQ(dec.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.ReadU64().value(), 1ull << 63);
  EXPECT_EQ(dec.ReadString().value(), "sysbench/16g");
  const std::vector<double> decoded = dec.ReadDoubles().value();
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(BitEqual(decoded[i], values[i])) << i;
  }
  EXPECT_TRUE(dec.AtEnd());
  // Reads past the end fail instead of walking off the buffer.
  EXPECT_FALSE(dec.ReadU8().ok());
}

// ---------------------------------------------------------------------------
// Store recovery
// ---------------------------------------------------------------------------

TEST_F(StoreTest, ReopenRecoversSessionsBitExact) {
  const std::string path = StorePath("reopen");
  std::vector<Observation> written;
  written.push_back(MakeObs({0.25, 0.5}, 1.5, 1500.0, {10.0, 20.0}));
  written.push_back(MakeObs({0.75, 0.1}, 0.0, 0.0, {}, true));
  written.push_back(MakeObs({0.33, 0.66}, 2.25, 2250.0, {11.0, 21.0}));
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 2).ok());
    for (size_t i = 0; i < written.size(); ++i) {
      ASSERT_TRUE(s.AppendObservation("s1", i + 1, written[i]).ok());
    }
  }
  auto reopened = ObservationStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const StoredSession* session = (*reopened)->FindSession("s1");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->dimension, 2u);
  EXPECT_FALSE(session->finished);
  ExpectObservationsBitEqual(session->observations, written);
  EXPECT_EQ((*reopened)->stats().wal_records_replayed, 4u);  // begin + 3 obs
  EXPECT_FALSE((*reopened)->stats().loaded_snapshot);
  EXPECT_FALSE((*reopened)->stats().recovered_torn_tail);
}

// Concurrent serving sessions share one store: appends from different
// sessions interleave in the WAL but recover into independent,
// order-preserved, bit-exact histories.
TEST_F(StoreTest, InterleavedSessionAppendsRecoverIndependently) {
  const std::string path = StorePath("interleaved");
  std::vector<Observation> written_a;
  std::vector<Observation> written_b;
  for (size_t i = 0; i < 4; ++i) {
    written_a.push_back(MakeObs({0.1 + 0.2 * static_cast<double>(i), 0.5},
                                1.0 + static_cast<double>(i),
                                10.0 * static_cast<double>(i + 1),
                                {100.0 + static_cast<double>(i)}));
    written_b.push_back(MakeObs({0.9 - 0.2 * static_cast<double>(i)},
                                -2.0 - static_cast<double>(i),
                                5.0 * static_cast<double>(i + 1)));
  }
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("a", 2).ok());
    ASSERT_TRUE(s.BeginSession("b", 1).ok());
    // a1 b1 a2 b2 a3 b3 a4 b4 — each session keeps its own 1-based
    // iteration counter regardless of the WAL-global interleaving.
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(s.AppendObservation("a", i + 1, written_a[i]).ok());
      ASSERT_TRUE(s.AppendObservation("b", i + 1, written_b[i]).ok());
    }
  }
  auto reopened = ObservationStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const StoredSession* a = (*reopened)->FindSession("a");
  const StoredSession* b = (*reopened)->FindSession("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->dimension, 2u);
  EXPECT_EQ(b->dimension, 1u);
  ExpectObservationsBitEqual(a->observations, written_a);
  ExpectObservationsBitEqual(b->observations, written_b);
}

// Two sessions appending from two threads (the serve fan-out shape: one
// writer thread per session): the store's internal lock serializes the
// WAL, every append lands, and recovery is bit-exact for both.
TEST_F(StoreTest, TwoThreadsAppendingDistinctSessionsRecoverBitExact) {
  const std::string path = StorePath("two_thread");
  constexpr size_t kAppends = 50;
  std::vector<Observation> written_a;
  std::vector<Observation> written_b;
  for (size_t i = 0; i < kAppends; ++i) {
    const double t = static_cast<double>(i);
    written_a.push_back(MakeObs({t / kAppends, 0.25}, t, 2.0 * t, {t + 0.5}));
    written_b.push_back(MakeObs({1.0 - t / kAppends, 0.75}, -t, 3.0 * t));
  }
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("a", 2).ok());
    ASSERT_TRUE(s.BeginSession("b", 2).ok());
    std::thread writer_a([&] {
      for (size_t i = 0; i < kAppends; ++i) {
        EXPECT_TRUE(s.AppendObservation("a", i + 1, written_a[i]).ok());
      }
    });
    std::thread writer_b([&] {
      for (size_t i = 0; i < kAppends; ++i) {
        EXPECT_TRUE(s.AppendObservation("b", i + 1, written_b[i]).ok());
      }
    });
    writer_a.join();
    writer_b.join();
    ExpectObservationsBitEqual(s.FindSession("a")->observations, written_a);
    ExpectObservationsBitEqual(s.FindSession("b")->observations, written_b);
  }
  auto reopened = ObservationStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const StoredSession* a = (*reopened)->FindSession("a");
  const StoredSession* b = (*reopened)->FindSession("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ExpectObservationsBitEqual(a->observations, written_a);
  ExpectObservationsBitEqual(b->observations, written_b);
}

TEST_F(StoreTest, AppendValidatesSessionIterationAndArity) {
  const std::string path = StorePath("validate");
  auto opened = ObservationStore::Open(path);
  ASSERT_TRUE(opened.ok());
  ObservationStore& s = **opened;
  const Observation obs = MakeObs({0.5, 0.5}, 1.0, 1.0);

  EXPECT_FALSE(s.AppendObservation("ghost", 1, obs).ok());  // unknown id
  ASSERT_TRUE(s.BeginSession("s1", 2).ok());
  EXPECT_FALSE(s.AppendObservation("s1", 2, obs).ok());  // gap
  EXPECT_FALSE(s.AppendObservation("s1", 0, obs).ok());  // not 1-based
  EXPECT_FALSE(
      s.AppendObservation("s1", 1, MakeObs({0.5}, 1.0, 1.0)).ok());  // arity
  EXPECT_TRUE(s.AppendObservation("s1", 1, obs).ok());
  EXPECT_FALSE(s.AppendObservation("s1", 1, obs).ok());  // double apply
}

TEST_F(StoreTest, BeginSessionResumesRestartsAndRejectsDimensionChange) {
  const std::string path = StorePath("begin");
  auto opened = ObservationStore::Open(path);
  ASSERT_TRUE(opened.ok());
  ObservationStore& s = **opened;
  ASSERT_TRUE(s.BeginSession("s1", 2).ok());
  ASSERT_TRUE(s.AppendObservation("s1", 1, MakeObs({0.5, 0.5}, 1.0, 1.0)).ok());

  // Resuming an unfinished session with the same dimension keeps history.
  ASSERT_TRUE(s.BeginSession("s1", 2).ok());
  EXPECT_EQ(s.FindSession("s1")->observations.size(), 1u);
  // A different dimension on a live session is a hard error.
  EXPECT_FALSE(s.BeginSession("s1", 3).ok());

  // After FinishSession the same id starts over, empty.
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 1);
  TuningEnvironment env(&sim, {0, 1});
  ASSERT_TRUE(s.FinishSession("s1", env.space(), "s1-task").ok());
  EXPECT_TRUE(s.FindSession("s1")->finished);
  EXPECT_FALSE(
      s.AppendObservation("s1", 2, MakeObs({0.5, 0.5}, 1.0, 1.0)).ok());
  ASSERT_TRUE(s.BeginSession("s1", 3).ok());
  EXPECT_EQ(s.FindSession("s1")->observations.size(), 0u);
  EXPECT_EQ(s.FindSession("s1")->dimension, 3u);
}

TEST_F(StoreTest, CheckpointCompactsWalAndRecoversFromSnapshot) {
  const std::string path = StorePath("checkpoint");
  StoreOptions options;
  options.snapshot_every = 3;
  std::vector<Observation> written;
  {
    auto opened = ObservationStore::Open(path, options);
    ASSERT_TRUE(opened.ok());
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 1).ok());
    for (size_t i = 0; i < 7; ++i) {
      written.push_back(MakeObs({0.1 * static_cast<double>(i)},
                                static_cast<double>(i), 100.0 + i, {1.0 + i}));
      ASSERT_TRUE(s.AppendObservation("s1", i + 1, written.back()).ok());
    }
    EXPECT_EQ(s.stats().checkpoints, 2u);  // after obs 3 and 6
  }
  EXPECT_TRUE(std::filesystem::exists(path + ".snapshot"));
  // Two checkpoints compacted all but the post-snapshot tail: the WAL
  // holds only the header and the single record appended since.
  const std::string wal = ReadBytes(path);
  const WalScanResult scan = ScanWalFrames(wal, sizeof(store::kWalMagic));
  EXPECT_EQ(scan.records.size(), 1u);

  auto reopened = ObservationStore::Open(path, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->stats().loaded_snapshot);
  EXPECT_EQ((*reopened)->stats().wal_records_replayed, 1u);
  const StoredSession* session = (*reopened)->FindSession("s1");
  ASSERT_NE(session, nullptr);
  ExpectObservationsBitEqual(session->observations, written);
}

TEST_F(StoreTest, RecoverySkipsWalRecordsCoveredBySnapshot) {
  // Crash window between the snapshot rename and the WAL compaction: the
  // WAL still holds records the snapshot already covers. Their LSNs are
  // at or below the snapshot's covered LSN, so recovery must skip them
  // instead of double-applying.
  const std::string path = StorePath("lsn_skip");
  std::vector<Observation> written;
  {
    auto opened = ObservationStore::Open(path);  // snapshot_every=64: manual
    ASSERT_TRUE(opened.ok());
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 1).ok());
    for (size_t i = 0; i < 3; ++i) {
      written.push_back(MakeObs({0.2 * static_cast<double>(i)}, 1.0 + i,
                                10.0 + i));
      ASSERT_TRUE(s.AppendObservation("s1", i + 1, written.back()).ok());
    }
  }
  const std::string pre_checkpoint_wal = ReadBytes(path);
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE((*opened)->Checkpoint().ok());
  }
  // Undo the compaction only — exactly what a crash right after the
  // snapshot rename leaves behind.
  WriteBytes(path, pre_checkpoint_wal);

  auto recovered = ObservationStore::Open(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->stats().loaded_snapshot);
  EXPECT_EQ((*recovered)->stats().wal_records_replayed, 0u);  // all skipped
  const StoredSession* session = (*recovered)->FindSession("s1");
  ASSERT_NE(session, nullptr);
  ExpectObservationsBitEqual(session->observations, written);
}

TEST_F(StoreTest, TornTailIsTruncatedAndAppendsResume) {
  const std::string path = StorePath("torn");
  std::vector<Observation> written;
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 1).ok());
    for (size_t i = 0; i < 2; ++i) {
      written.push_back(MakeObs({0.3 * static_cast<double>(i)}, 1.0 + i,
                                10.0 + i));
      ASSERT_TRUE(s.AppendObservation("s1", i + 1, written.back()).ok());
    }
  }
  WriteBytes(path, ReadBytes(path) + "XYZ-torn-garbage");

  auto recovered = ObservationStore::Open(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->stats().recovered_torn_tail);
  const StoredSession* session = (*recovered)->FindSession("s1");
  ASSERT_NE(session, nullptr);
  ExpectObservationsBitEqual(session->observations, written);

  // The tail is gone from disk, so the next append lands cleanly.
  ASSERT_TRUE((*recovered)
                  ->AppendObservation("s1", 3, MakeObs({0.9}, 9.0, 90.0))
                  .ok());
  auto again = ObservationStore::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE((*again)->stats().recovered_torn_tail);
  EXPECT_EQ((*again)->FindSession("s1")->observations.size(), 3u);
}

TEST_F(StoreTest, InjectedWriteFaultLeavesRecoverableTornTail) {
  const std::string path = StorePath("fault");
  const Observation first = MakeObs({0.5}, 1.0, 10.0, {5.0});
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 1).ok());
    ASSERT_TRUE(s.AppendObservation("s1", 1, first).ok());
    // Allow 10 more bytes, then "crash": the frame is torn mid-write.
    store::testing::SetWalWriteFaultForTest(10);
    EXPECT_FALSE(
        s.AppendObservation("s1", 2, MakeObs({0.6}, 2.0, 20.0)).ok());
    store::testing::SetWalWriteFaultForTest(-1);
    // The writer shut itself down; later appends fail too.
    EXPECT_FALSE(
        s.AppendObservation("s1", 2, MakeObs({0.7}, 3.0, 30.0)).ok());
  }
  auto recovered = ObservationStore::Open(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE((*recovered)->stats().recovered_torn_tail);
  const StoredSession* session = (*recovered)->FindSession("s1");
  ASSERT_NE(session, nullptr);
  ExpectObservationsBitEqual(session->observations, {first});
}

TEST_F(StoreTest, TruncateSessionDiscardsSuffixDurably) {
  const std::string path = StorePath("truncate");
  const Observation kept = MakeObs({0.1}, 1.0, 10.0);
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 1).ok());
    ASSERT_TRUE(s.AppendObservation("s1", 1, kept).ok());
    ASSERT_TRUE(s.AppendObservation("s1", 2, MakeObs({0.2}, 2.0, 20.0)).ok());
    ASSERT_TRUE(s.AppendObservation("s1", 3, MakeObs({0.3}, 3.0, 30.0)).ok());
    ASSERT_TRUE(s.TruncateSession("s1", 1).ok());
    EXPECT_EQ(s.FindSession("s1")->observations.size(), 1u);
    // The next live iteration continues right after the kept prefix.
    ASSERT_TRUE(s.AppendObservation("s1", 2, MakeObs({0.4}, 4.0, 40.0)).ok());
  }
  auto reopened = ObservationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  const StoredSession* session = (*reopened)->FindSession("s1");
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->observations.size(), 2u);
  ExpectObservationsBitEqual({session->observations[0]}, {kept});
  EXPECT_TRUE(BitEqual(session->observations[1].score, 4.0));
}

TEST_F(StoreTest, FinishSessionPersistsTransferTask) {
  const std::string path = StorePath("finish");
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 1);
  TuningEnvironment env(&sim, {0, 1});
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok());
    ObservationStore& s = **opened;
    ASSERT_TRUE(s.BeginSession("s1", 2).ok());
    ASSERT_TRUE(
        s.AppendObservation("s1", 1, MakeObs({0.5, 0.5}, 1.0, 10.0, {3.0}))
            .ok());
    ASSERT_TRUE(
        s.AppendObservation("s1", 2, MakeObs({0.6, 0.4}, 2.0, 20.0, {5.0}))
            .ok());
    ASSERT_TRUE(s.FinishSession("s1", env.space(), "sysbench-s1").ok());
    EXPECT_EQ(s.num_tasks(), 1u);
    EXPECT_FALSE(s.FinishSession("s1", env.space(), "again").ok());
  }
  auto reopened = ObservationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_tasks(), 1u);
  EXPECT_TRUE((*reopened)->FindSession("s1")->finished);

  ObservationRepository repository;
  (*reopened)->ExportTasks(&repository);
  ASSERT_EQ(repository.size(), 1u);
  const SourceTask& task = repository.tasks()[0];
  EXPECT_EQ(task.name, "sysbench-s1");
  EXPECT_EQ(task.unit_x.size(), 2u);
  EXPECT_EQ(task.scores.size(), 2u);

  // An externally built task joins the pool durably too.
  ASSERT_TRUE((*reopened)->PersistTask(task).ok());
  auto again = ObservationStore::Open(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_tasks(), 2u);
}

TEST_F(StoreTest, ResolvePathAndSnapshotCadenceFollowEnvironment) {
  EXPECT_EQ(ObservationStore::ResolvePath("explicit.wal"), "explicit.wal");
  EXPECT_EQ(ObservationStore::ResolvePath(""), "");
  ::setenv("DBTUNE_STORE", "/tmp/env.wal", 1);
  EXPECT_EQ(ObservationStore::ResolvePath(""), "/tmp/env.wal");
  EXPECT_EQ(ObservationStore::ResolvePath("explicit.wal"), "explicit.wal");

  EXPECT_EQ(ObservationStore::ResolveSnapshotEvery(),
            StoreOptions{}.snapshot_every);
  ::setenv("DBTUNE_STORE_SNAPSHOT_EVERY", "17", 1);
  EXPECT_EQ(ObservationStore::ResolveSnapshotEvery(), 17u);
  ::setenv("DBTUNE_STORE_SNAPSHOT_EVERY", "banana", 1);
  EXPECT_EQ(ObservationStore::ResolveSnapshotEvery(),
            StoreOptions{}.snapshot_every);
}

// ---------------------------------------------------------------------------
// Crash-recovery replay: killed session == uninterrupted session
// ---------------------------------------------------------------------------

SessionResult RunStoredSession(const std::string& store_path, size_t iters,
                               uint64_t optimizer_seed) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 21);
  SessionControls controls;
  controls.store_path = store_path;  // "" → no store
  controls.store_session_id = "kill-test";
  return RunTuningSession(&sim, FirstKnobs(sim.space().dimension()),
                          OptimizerType::kSmac, iters, optimizer_seed,
                          controls);
}

void ExpectSessionResultsBitEqual(const SessionResult& a,
                                  const SessionResult& b) {
  ASSERT_EQ(a.improvement_trace.size(), b.improvement_trace.size());
  for (size_t i = 0; i < a.improvement_trace.size(); ++i) {
    EXPECT_TRUE(BitEqual(a.improvement_trace[i], b.improvement_trace[i]))
        << "improvement at iteration " << i;
    EXPECT_TRUE(BitEqual(a.objective_trace[i], b.objective_trace[i]))
        << "objective at iteration " << i;
  }
  EXPECT_TRUE(BitEqual(a.final_objective, b.final_objective));
  EXPECT_TRUE(BitEqual(a.final_improvement, b.final_improvement));
  EXPECT_EQ(a.best_iteration, b.best_iteration);
  EXPECT_TRUE(BitEqual(a.simulated_evaluation_seconds,
                       b.simulated_evaluation_seconds));
}

TEST_F(StoreTest, KilledSessionReplaysToIdenticalTrajectory) {
  constexpr size_t kIterations = 12;
  obs::EnableFakeClockForTest();
  for (const size_t pool : {size_t{1}, size_t{2}, size_t{8}}) {
    PoolSizeGuard guard(pool);
    const SessionResult uninterrupted = RunStoredSession("", kIterations, 7);
    for (const size_t kill_at : {size_t{1}, size_t{6}, size_t{11}}) {
      const std::string path = StorePath(
          "kill_p" + std::to_string(pool) + "_k" + std::to_string(kill_at));
      // First run "dies" after kill_at iterations...
      const SessionResult partial = RunStoredSession(path, kill_at, 7);
      EXPECT_EQ(partial.replayed_iterations, 0u);
      // ...and the restart replays the prefix, then continues live.
      const SessionResult resumed = RunStoredSession(path, kIterations, 7);
      EXPECT_EQ(resumed.replayed_iterations, kill_at)
          << "pool " << pool << " kill " << kill_at;
      ExpectSessionResultsBitEqual(resumed, uninterrupted);
    }
  }
}

TEST_F(StoreTest, KilledSessionWithTornTailStillReplays) {
  constexpr size_t kIterations = 10;
  constexpr size_t kKillAt = 5;
  obs::EnableFakeClockForTest();
  PoolSizeGuard guard(1);
  const std::string path = StorePath("kill_torn");
  const SessionResult uninterrupted = RunStoredSession("", kIterations, 9);
  const SessionResult partial = RunStoredSession(path, kKillAt, 9);
  ASSERT_EQ(partial.improvement_trace.size(), kKillAt);
  // The crash also tore the final record mid-write.
  WriteBytes(path, ReadBytes(path) + std::string(6, '\x5A'));

  const SessionResult resumed = RunStoredSession(path, kIterations, 9);
  EXPECT_EQ(resumed.replayed_iterations, kKillAt);
  ExpectSessionResultsBitEqual(resumed, uninterrupted);
}

TEST_F(StoreTest, ReplayDivergenceTruncatesAndContinuesLive) {
  constexpr size_t kIterations = 8;
  obs::EnableFakeClockForTest();
  PoolSizeGuard guard(1);
  const std::string path = StorePath("diverge");
  // Record a trajectory under one optimizer seed, then resume under a
  // different seed: the recorded configurations no longer match what the
  // optimizer re-suggests, so the store must truncate the stale suffix
  // and the session must match a fresh run of the new seed exactly.
  const SessionResult recorded = RunStoredSession(path, 5, 11);
  ASSERT_EQ(recorded.improvement_trace.size(), 5u);
  const SessionResult fresh = RunStoredSession("", kIterations, 13);
  const SessionResult resumed = RunStoredSession(path, kIterations, 13);
  EXPECT_LT(resumed.replayed_iterations, 5u);
  ExpectSessionResultsBitEqual(resumed, fresh);

  // The store now holds the new trajectory, iteration-complete.
  auto reopened = ObservationStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  const StoredSession* session = (*reopened)->FindSession("kill-test");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->observations.size(), kIterations);
}

TEST_F(StoreTest, AdvisorPersistsBaseTaskAcrossRuns) {
  const std::string path = StorePath("advisor");
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 31);
  AdvisorOptions options;
  options.importance_samples = 120;
  options.tuning_knobs = 5;
  options.tuning_iterations = 6;
  options.seed = 32;
  options.session.store_path = path;
  options.session.store_session_id = "advisor-run-1";
  const Result<AdvisorReport> first = TuneDbms(&sim, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  {
    auto opened = ObservationStore::Open(path);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ((*opened)->num_tasks(), 1u);
    const StoredSession* session = (*opened)->FindSession("advisor-run-1");
    ASSERT_NE(session, nullptr);
    EXPECT_TRUE(session->finished);
    EXPECT_EQ(session->observations.size(), 6u);
  }
  // A second run finds the persisted base task (transfer pool) and adds
  // its own on completion.
  DbmsSimulator sim2(WorkloadId::kSysbench, HardwareInstance::kB, 33);
  options.seed = 34;
  options.session.store_session_id = "advisor-run-2";
  const Result<AdvisorReport> second = TuneDbms(&sim2, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto opened = ObservationStore::Open(path);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ((*opened)->num_tasks(), 2u);
}

}  // namespace
}  // namespace dbtune
