#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(StatsTest, MeanVarianceStdDev) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  // Sample variance (n − 1 divisor): ((1.5² + 0.5²) * 2) / 3 = 5/3.
  EXPECT_DOUBLE_EQ(Variance(v), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(5.0 / 3.0));
}

TEST(StatsTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  // n = 1 has no spread information; the n − 1 divisor must not divide
  // by zero.
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

TEST(StatsTest, TwoPointSampleVariance) {
  // n = 2 is the smallest informative sample: deviations ±1 around the
  // mean 2 give (1 + 1) / (2 − 1) = 2 (the n divisor would say 1).
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), std::sqrt(2.0));
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> v = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Median(v), 25.0);
  EXPECT_NEAR(Quantile(v, 0.95), 38.5, 1e-12);
}

TEST(StatsTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
}

TEST(StatsTest, ArgSort) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_EQ(ArgSortAscending(v), (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(ArgSortDescending(v), (std::vector<size_t>{0, 2, 1}));
}

TEST(StatsTest, ArgSortStableOnTies) {
  const std::vector<double> v = {1.0, 1.0, 0.0};
  EXPECT_EQ(ArgSortAscending(v), (std::vector<size_t>{2, 0, 1}));
}

TEST(StatsTest, RanksWithTies) {
  const std::vector<double> v = {10, 20, 20, 30};
  const std::vector<double> r = Ranks(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, SpearmanMonotonicIsOne) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {1, 10, 100, 1000};  // nonlinear, monotone
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

TEST(StatsTest, RSquaredPerfectAndBaseline) {
  const std::vector<double> y = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(RSquared(y, y), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(RSquared(y, mean_pred), 0.0, 1e-12);
}

TEST(StatsTest, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({0, 0}, {3, 4}), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(Rmse({1, 2}, {1, 2}), 0.0);
}

TEST(StatsTest, IntersectionOverUnion) {
  EXPECT_DOUBLE_EQ(IntersectionOverUnion({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(IntersectionOverUnion({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(IntersectionOverUnion({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(IntersectionOverUnion({}, {}), 1.0);
}

}  // namespace
}  // namespace dbtune
