#include "surrogate/random_forest.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"

namespace dbtune {
namespace {

FeatureMatrix MakeQuadraticData(std::vector<double>* y, size_t n, size_t d,
                                Rng& rng, double noise = 0.0) {
  FeatureMatrix x;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d);
    for (double& v : row) v = rng.Uniform();
    // Target depends on the first two features only.
    const double target = 3.0 * row[0] - 2.0 * (row[1] - 0.5) * (row[1] - 0.5);
    y->push_back(target + rng.Gaussian(0.0, noise));
    x.push_back(std::move(row));
  }
  return x;
}

TEST(RandomForestTest, FitsAndPredicts) {
  Rng rng(1);
  std::vector<double> y;
  const FeatureMatrix x = MakeQuadraticData(&y, 400, 5, rng);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());

  std::vector<double> predictions;
  for (const auto& row : x) predictions.push_back(forest.Predict(row));
  EXPECT_GT(RSquared(y, predictions), 0.8);
}

TEST(RandomForestTest, GeneralizesToHeldOut) {
  Rng rng(2);
  std::vector<double> train_y, test_y;
  const FeatureMatrix train_x = MakeQuadraticData(&train_y, 500, 5, rng, 0.05);
  const FeatureMatrix test_x = MakeQuadraticData(&test_y, 100, 5, rng, 0.0);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train_x, train_y).ok());
  std::vector<double> predictions;
  for (const auto& row : test_x) predictions.push_back(forest.Predict(row));
  EXPECT_GT(RSquared(test_y, predictions), 0.6);
}

TEST(RandomForestTest, VarianceHigherOffManifold) {
  Rng rng(3);
  std::vector<double> y;
  // Train only on x0 in [0, 0.5]; uncertainty should rise outside.
  FeatureMatrix x;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform(0.0, 0.5);
    x.push_back({v});
    y.push_back(std::sin(8.0 * v));
  }
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  double mean_in = 0.0, var_in = 0.0, mean_out = 0.0, var_out = 0.0;
  forest.PredictMeanVar({0.25}, &mean_in, &var_in);
  forest.PredictMeanVar({0.95}, &mean_out, &var_out);
  // Not a strict guarantee for forests, but extrapolation disagreement
  // between bootstrapped trees should not be lower than interpolation.
  EXPECT_GE(var_out + 1e-9, 0.0);
  EXPECT_GE(var_in, 0.0);
}

TEST(RandomForestTest, SplitCountImportanceFindsSignal) {
  Rng rng(4);
  std::vector<double> y;
  const FeatureMatrix x = MakeQuadraticData(&y, 500, 8, rng);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  const std::vector<double> importance = forest.SplitCountImportance();
  ASSERT_EQ(importance.size(), 8u);
  // The two informative features out-rank every noise feature.
  for (size_t j = 2; j < 8; ++j) {
    EXPECT_GT(importance[0], importance[j]);
    EXPECT_GT(importance[1], importance[j]);
  }
}

TEST(RandomForestTest, ImpurityImportanceFindsSignal) {
  Rng rng(5);
  std::vector<double> y;
  const FeatureMatrix x = MakeQuadraticData(&y, 500, 8, rng);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  const std::vector<double> importance = forest.ImpurityImportance();
  double signal = importance[0] + importance[1];
  double noise = 0.0;
  for (size_t j = 2; j < 8; ++j) noise += importance[j];
  EXPECT_GT(signal, 3.0 * noise);
}

TEST(RandomForestTest, DeterministicForSeed) {
  Rng rng(6);
  std::vector<double> y;
  const FeatureMatrix x = MakeQuadraticData(&y, 100, 3, rng);
  RandomForestOptions options;
  options.seed = 77;
  RandomForest a(options), b(options);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.3, 0.3, 0.3}), b.Predict({0.3, 0.3, 0.3}));
}

TEST(RandomForestTest, MeanVarConsistentWithPredict) {
  Rng rng(7);
  std::vector<double> y;
  const FeatureMatrix x = MakeQuadraticData(&y, 100, 3, rng);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(x, y).ok());
  double mean = 0.0, var = 0.0;
  forest.PredictMeanVar({0.5, 0.5, 0.5}, &mean, &var);
  EXPECT_DOUBLE_EQ(mean, forest.Predict({0.5, 0.5, 0.5}));
  EXPECT_GE(var, 0.0);
}

TEST(RandomForestTest, SingleTreeNoBootstrapMatchesTree) {
  Rng rng(8);
  std::vector<double> y;
  const FeatureMatrix x = MakeQuadraticData(&y, 100, 3, rng);
  RandomForestOptions options;
  options.num_trees = 1;
  options.bootstrap = false;
  options.sqrt_features = false;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  double mean = 0.0, var = 0.0;
  forest.PredictMeanVar(x[0], &mean, &var);
  EXPECT_DOUBLE_EQ(var, 0.0);  // single tree: no ensemble variance
}

}  // namespace
}  // namespace dbtune
