#include "benchmk/dataset_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "benchmk/surrogate_benchmark.h"
#include "knobs/catalog.h"

namespace dbtune {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TuningDataset MakeDataset() {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 1);
  std::vector<size_t> knobs(sim.space().dimension());
  for (size_t i = 0; i < knobs.size(); ++i) knobs[i] = i;
  CollectionOptions options;
  options.lhs_samples = 80;
  return CollectDataset(&sim, knobs, options).value();
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  const TuningDataset original = MakeDataset();
  const std::string path = TempPath("roundtrip.dbtune");
  ASSERT_TRUE(SaveTuningDataset(original, path).ok());

  Result<TuningDataset> loaded = LoadTuningDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->space.dimension(), original.space.dimension());
  for (size_t i = 0; i < original.space.dimension(); ++i) {
    const Knob& a = original.space.knob(i);
    const Knob& b = loaded->space.knob(i);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.type(), b.type());
    EXPECT_DOUBLE_EQ(a.min(), b.min());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
    EXPECT_DOUBLE_EQ(a.default_value(), b.default_value());
    EXPECT_EQ(a.log_scale(), b.log_scale());
    EXPECT_EQ(a.categories(), b.categories());
  }
  EXPECT_EQ(loaded->objective_kind, original.objective_kind);
  EXPECT_DOUBLE_EQ(loaded->default_objective, original.default_objective);
  EXPECT_EQ(loaded->default_config, original.default_config);
  ASSERT_EQ(loaded->unit_x.size(), original.unit_x.size());
  for (size_t r = 0; r < original.unit_x.size(); ++r) {
    EXPECT_DOUBLE_EQ(loaded->objectives[r], original.objectives[r]);
    ASSERT_EQ(loaded->unit_x[r].size(), original.unit_x[r].size());
    for (size_t c = 0; c < original.unit_x[r].size(); ++c) {
      EXPECT_DOUBLE_EQ(loaded->unit_x[r][c], original.unit_x[r][c]);
    }
  }
}

TEST(DatasetIoTest, LoadedDatasetBuildsIdenticalBenchmark) {
  const TuningDataset original = MakeDataset();
  const std::string path = TempPath("benchmark.dbtune");
  ASSERT_TRUE(SaveTuningDataset(original, path).ok());
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  ASSERT_TRUE(loaded.ok());

  auto bench_a = SurrogateBenchmark::Build(original).value();
  auto bench_b = SurrogateBenchmark::Build(*loaded).value();
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Configuration c = bench_a->space().SampleUniform(rng);
    EXPECT_DOUBLE_EQ(bench_a->PredictObjective(c),
                     bench_b->PredictObjective(c));
  }
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  Result<TuningDataset> loaded =
      LoadTuningDataset(TempPath("does-not-exist.dbtune"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, RejectsWrongHeader) {
  const std::string path = TempPath("bad-header.dbtune");
  std::ofstream(path) << "not a dataset\n";
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.dbtune");
  std::ofstream(path) << "dbtune-dataset v2\n"
                      << "meta|throughput|1200\n";
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(DatasetIoTest, RejectsArityMismatch) {
  const std::string path = TempPath("arity.dbtune");
  std::ofstream(path)
      << "dbtune-dataset v2\n"
      << "meta|throughput|1200\n"
      << "knob|a|continuous|0|1|0.5|0|\n"
      << "knob|b|continuous|0|1|0.5|0|\n"
      << "default|0.5|0.5\n"
      << "sample|100|0.1\n";  // one unit value for two knobs
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsBadNumber) {
  const std::string path = TempPath("badnum.dbtune");
  std::ofstream(path) << "dbtune-dataset v2\n"
                      << "meta|throughput|not-a-number\n";
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(DatasetIoTest, RejectsLegacyV1Header) {
  // Pre-v2 files have no end marker, so a truncated v1 file is
  // indistinguishable from a complete one — refuse them outright.
  const std::string path = TempPath("legacy.dbtune");
  std::ofstream(path) << "dbtune-dataset v1\n"
                      << "meta|throughput|1200\n";
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

// Regression: a v2 file cut off at a line boundary used to load as a
// silently shorter dataset. The end marker makes every prefix invalid.
TEST(DatasetIoTest, RejectsFileCutOffBeforeEndMarker) {
  const TuningDataset original = MakeDataset();
  const std::string path = TempPath("cutoff.dbtune");
  ASSERT_TRUE(SaveTuningDataset(original, path).ok());

  // Drop the trailer and the last sample line — a clean line-boundary
  // cut, exactly what a full disk leaves behind.
  std::ifstream in(path);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  in.close();
  ASSERT_GT(lines.size(), 2u);
  std::ofstream out(path, std::ios::trunc);
  for (size_t i = 0; i + 2 < lines.size(); ++i) out << lines[i] << "\n";
  out.close();

  Result<TuningDataset> loaded = LoadTuningDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsSampleCountMismatch) {
  const std::string path = TempPath("count.dbtune");
  std::ofstream(path) << "dbtune-dataset v2\n"
                      << "meta|throughput|1200\n"
                      << "knob|a|continuous|0|1|0.5|0|\n"
                      << "default|0.5\n"
                      << "sample|100|0.1\n"
                      << "end|3\n";  // declares 3, file has 1
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, RejectsDataAfterEndMarker) {
  const std::string path = TempPath("afterend.dbtune");
  std::ofstream(path) << "dbtune-dataset v2\n"
                      << "meta|throughput|1200\n"
                      << "knob|a|continuous|0|1|0.5|0|\n"
                      << "default|0.5\n"
                      << "sample|100|0.1\n"
                      << "end|1\n"
                      << "sample|200|0.9\n";
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, CategoricalKnobsSurviveRoundTrip) {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::Categorical("mode", {"fsync", "O_DIRECT", "none"}, 1));
  knobs.push_back(Knob::Integer("size", 1, 1024, 64, true));
  TuningDataset dataset;
  dataset.space = ConfigurationSpace(std::move(knobs));
  dataset.default_config = dataset.space.Default();
  dataset.default_objective = 42.0;
  dataset.objective_kind = ObjectiveKind::kLatencyP95;
  dataset.unit_x = {{0.2, 0.7}, {0.9, 0.1}};
  dataset.objectives = {10.0, 20.0};

  const std::string path = TempPath("categorical.dbtune");
  ASSERT_TRUE(SaveTuningDataset(dataset, path).ok());
  Result<TuningDataset> loaded = LoadTuningDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->space.knob(0).categories(),
            (std::vector<std::string>{"fsync", "O_DIRECT", "none"}));
  EXPECT_EQ(loaded->objective_kind, ObjectiveKind::kLatencyP95);
}

}  // namespace
}  // namespace dbtune
