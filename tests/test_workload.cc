#include "dbms/workload.h"

#include <set>

#include <gtest/gtest.h>

#include "dbms/hardware.h"

namespace dbtune {
namespace {

TEST(WorkloadTest, AllNineWorkloadsPresent) {
  const std::vector<WorkloadId> all = AllWorkloads();
  EXPECT_EQ(all.size(), 9u);
  std::set<std::string> names;
  for (WorkloadId id : all) names.insert(WorkloadName(id));
  EXPECT_EQ(names.size(), 9u);
}

TEST(WorkloadTest, Table4Profiles) {
  const WorkloadProfile& job = GetWorkloadProfile(WorkloadId::kJob);
  EXPECT_EQ(job.workload_class, WorkloadClass::kAnalytical);
  EXPECT_DOUBLE_EQ(job.read_only_fraction, 1.0);
  EXPECT_EQ(job.objective, ObjectiveKind::kLatencyP95);
  EXPECT_EQ(job.tables, 21);

  const WorkloadProfile& sysbench = GetWorkloadProfile(WorkloadId::kSysbench);
  EXPECT_EQ(sysbench.workload_class, WorkloadClass::kTransactional);
  EXPECT_EQ(sysbench.objective, ObjectiveKind::kThroughput);
  EXPECT_EQ(sysbench.tables, 150);
  EXPECT_NEAR(sysbench.read_only_fraction, 0.43, 1e-9);

  EXPECT_EQ(GetWorkloadProfile(WorkloadId::kTwitter).workload_class,
            WorkloadClass::kWebOriented);
  EXPECT_EQ(GetWorkloadProfile(WorkloadId::kSibench).workload_class,
            WorkloadClass::kFeatureTesting);
}

TEST(WorkloadTest, ImportanceSparsityDiffers) {
  // JOB concentrates importance in few knobs, SYSBENCH in ~20 — the basis
  // of Figure 5's contrast.
  EXPECT_LT(GetWorkloadProfile(WorkloadId::kJob).effective_important_knobs,
            GetWorkloadProfile(WorkloadId::kSysbench)
                .effective_important_knobs);
}

TEST(WorkloadTest, OltpSetExcludesJob) {
  const std::vector<WorkloadId> oltp = OltpWorkloads();
  EXPECT_EQ(oltp.size(), 8u);
  for (WorkloadId id : oltp) {
    EXPECT_NE(id, WorkloadId::kJob);
  }
}

TEST(WorkloadTest, SurfaceSeedsAreDistinct) {
  std::set<uint64_t> seeds;
  for (WorkloadId id : AllWorkloads()) {
    seeds.insert(GetWorkloadProfile(id).surface_seed);
  }
  EXPECT_EQ(seeds.size(), 9u);
}

TEST(HardwareTest, Table5Instances) {
  const std::vector<HardwareInstance> all = AllHardwareInstances();
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(GetHardwareProfile(HardwareInstance::kA).cpu_cores, 4);
  EXPECT_DOUBLE_EQ(GetHardwareProfile(HardwareInstance::kA).ram_gb, 8.0);
  EXPECT_EQ(GetHardwareProfile(HardwareInstance::kD).cpu_cores, 32);
  EXPECT_DOUBLE_EQ(GetHardwareProfile(HardwareInstance::kD).ram_gb, 64.0);
}

TEST(HardwareTest, PerformanceScalesWithSize) {
  double prev = 0.0;
  for (HardwareInstance id : AllHardwareInstances()) {
    const double scale = GetHardwareProfile(id).performance_scale;
    EXPECT_GT(scale, prev);
    prev = scale;
  }
  EXPECT_DOUBLE_EQ(GetHardwareProfile(HardwareInstance::kB).performance_scale,
                   1.0);
}

}  // namespace
}  // namespace dbtune
