#include "surrogate/gaussian_process.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"

namespace dbtune {
namespace {

TEST(GaussianProcessTest, InterpolatesTrainingPoints) {
  GaussianProcessOptions options;
  options.noise_grid = {1e-6};
  options.hyperopt_every = 1;
  GaussianProcess gp(std::make_unique<RbfKernel>(), options);
  FeatureMatrix x = {{0.0}, {0.25}, {0.5}, {0.75}, {1.0}};
  std::vector<double> y = {0.0, 1.0, 0.0, -1.0, 0.0};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(gp.Predict(x[i]), y[i], 0.05);
  }
}

TEST(GaussianProcessTest, UncertaintyGrowsAwayFromData) {
  GaussianProcess gp(std::make_unique<RbfKernel>());
  FeatureMatrix x = {{0.4}, {0.45}, {0.5}, {0.55}, {0.6}};
  std::vector<double> y = {1.0, 1.2, 1.1, 0.9, 1.0};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  double mean_near = 0.0, var_near = 0.0, mean_far = 0.0, var_far = 0.0;
  gp.PredictMeanVar({0.5}, &mean_near, &var_near);
  gp.PredictMeanVar({0.05}, &mean_far, &var_far);
  EXPECT_GT(var_far, var_near);
}

TEST(GaussianProcessTest, SmoothFunctionRecovery) {
  Rng rng(1);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    const double v = rng.Uniform();
    x.push_back({v});
    y.push_back(std::sin(4.0 * v));
  }
  GaussianProcess gp(std::make_unique<Matern52Kernel>());
  ASSERT_TRUE(gp.Fit(x, y).ok());
  for (double probe : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    EXPECT_NEAR(gp.Predict({probe}), std::sin(4.0 * probe), 0.15);
  }
}

TEST(GaussianProcessTest, HandlesConstantTargets) {
  GaussianProcess gp(std::make_unique<RbfKernel>());
  FeatureMatrix x = {{0.1}, {0.5}, {0.9}};
  std::vector<double> y = {3.0, 3.0, 3.0};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_NEAR(gp.Predict({0.3}), 3.0, 0.1);
}

TEST(GaussianProcessTest, VarianceInOriginalUnits) {
  GaussianProcess gp(std::make_unique<RbfKernel>());
  FeatureMatrix x = {{0.2}, {0.4}, {0.6}, {0.8}};
  // Targets spanning a large range: predictive sd should scale with it.
  std::vector<double> y = {0.0, 1000.0, 2000.0, 500.0};
  ASSERT_TRUE(gp.Fit(x, y).ok());
  double mean = 0.0, var = 0.0;
  gp.PredictMeanVar({0.05}, &mean, &var);
  EXPECT_GT(std::sqrt(var), 10.0);
}

TEST(GaussianProcessTest, LogMarginalLikelihoodPrefersGoodFit) {
  // Same data fitted with hyperopt on vs a forced bad lengthscale.
  FeatureMatrix x;
  std::vector<double> y;
  Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    const double v = rng.Uniform();
    x.push_back({v});
    y.push_back(std::sin(8.0 * v) + rng.Gaussian(0.0, 0.01));
  }
  GaussianProcessOptions good;
  good.hyperopt_every = 1;
  GaussianProcess gp_good(std::make_unique<RbfKernel>(), good);
  ASSERT_TRUE(gp_good.Fit(x, y).ok());

  GaussianProcessOptions bad;
  bad.lengthscale_grid = {50.0};  // absurdly wide
  bad.hyperopt_every = 1;
  GaussianProcess gp_bad(std::make_unique<RbfKernel>(), bad);
  ASSERT_TRUE(gp_bad.Fit(x, y).ok());

  EXPECT_GT(gp_good.log_marginal_likelihood(),
            gp_bad.log_marginal_likelihood());
}

TEST(GaussianProcessTest, HyperoptCachingStillFits) {
  GaussianProcessOptions options;
  options.hyperopt_every = 3;
  GaussianProcess gp(std::make_unique<RbfKernel>(), options);
  Rng rng(3);
  FeatureMatrix x;
  std::vector<double> y;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      const double v = rng.Uniform();
      x.push_back({v});
      y.push_back(v * v);
    }
    ASSERT_TRUE(gp.Fit(x, y).ok());
    EXPECT_NEAR(gp.Predict({0.5}), 0.25, 0.15);
  }
  EXPECT_EQ(gp.num_observations(), 50u);
}

TEST(GaussianProcessTest, MixedKernelModelsCategoriesBetter) {
  // Target depends on a categorical dimension non-ordinally; the mixed
  // kernel should beat RBF on held-out data (the Figure 8 mechanism).
  Rng rng(4);
  const std::vector<double> cat_effect = {0.0, 5.0, 1.0, 4.0};  // non-ordinal
  auto encode_cat = [](size_t c) { return (static_cast<double>(c) + 0.5) / 4.0; };
  FeatureMatrix x, test_x;
  std::vector<double> y, test_y;
  for (int i = 0; i < 80; ++i) {
    const size_t c = rng.Index(4);
    const double cont = rng.Uniform();
    x.push_back({cont, encode_cat(c)});
    y.push_back(cat_effect[c] + cont);
  }
  for (int i = 0; i < 40; ++i) {
    const size_t c = rng.Index(4);
    const double cont = rng.Uniform();
    test_x.push_back({cont, encode_cat(c)});
    test_y.push_back(cat_effect[c] + cont);
  }

  GaussianProcess rbf(std::make_unique<RbfKernel>());
  GaussianProcess mixed(std::make_unique<MixedKernel>(
      std::vector<bool>{false, true}));
  ASSERT_TRUE(rbf.Fit(x, y).ok());
  ASSERT_TRUE(mixed.Fit(x, y).ok());
  std::vector<double> pred_rbf, pred_mixed;
  for (const auto& row : test_x) {
    pred_rbf.push_back(rbf.Predict(row));
    pred_mixed.push_back(mixed.Predict(row));
  }
  EXPECT_GT(RSquared(test_y, pred_mixed), RSquared(test_y, pred_rbf));
}

TEST(GaussianProcessTest, NameIncludesKernel) {
  GaussianProcess gp(std::make_unique<Matern52Kernel>());
  EXPECT_EQ(gp.name(), "GP-Matern52");
}

}  // namespace
}  // namespace dbtune
