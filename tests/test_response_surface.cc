#include "dbms/response_surface.h"

#include <cmath>

#include <gtest/gtest.h>

#include "knobs/catalog.h"
#include "util/random.h"

namespace dbtune {
namespace {

class ResponseSurfaceTest : public ::testing::Test {
 protected:
  ResponseSurfaceTest()
      : space_(MySqlKnobCatalog()),
        job_(&space_, GetWorkloadProfile(WorkloadId::kJob)),
        sysbench_(&space_, GetWorkloadProfile(WorkloadId::kSysbench)) {}

  ConfigurationSpace space_;
  ResponseSurface job_;
  ResponseSurface sysbench_;
};

TEST_F(ResponseSurfaceTest, DefaultScoresZero) {
  EXPECT_NEAR(job_.Score(space_.Default()), 0.0, 1e-9);
  EXPECT_NEAR(sysbench_.Score(space_.Default()), 0.0, 1e-9);
}

TEST_F(ResponseSurfaceTest, Deterministic) {
  Rng rng(1);
  const Configuration c = space_.SampleUniform(rng);
  EXPECT_DOUBLE_EQ(job_.Score(c), job_.Score(c));
  ResponseSurface job2(&space_, GetWorkloadProfile(WorkloadId::kJob));
  EXPECT_DOUBLE_EQ(job_.Score(c), job2.Score(c));
}

TEST_F(ResponseSurfaceTest, WorkloadsDiffer) {
  Rng rng(2);
  bool differed = false;
  for (int i = 0; i < 5; ++i) {
    const Configuration c = space_.SampleUniform(rng);
    if (std::abs(job_.Score(c) - sysbench_.Score(c)) > 1e-6) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST_F(ResponseSurfaceTest, ScoreBoundedByMaxGain) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Configuration c = space_.SampleUniform(rng);
    EXPECT_LE(sysbench_.Score(c), sysbench_.max_gain() + 1e-9);
  }
}

TEST_F(ResponseSurfaceTest, PositiveScoresAreReachable) {
  // Coordinate ascent from the default must find a configuration with a
  // solidly positive score (tuning headroom exists).
  std::vector<double> unit = space_.ToUnit(space_.Default());
  double best = sysbench_.ScoreFromUnit(unit);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t rank = 0; rank < 30; ++rank) {
      const size_t j = sysbench_.importance_ranking()[rank];
      double best_v = unit[j];
      for (int step = 0; step <= 10; ++step) {
        std::vector<double> probe = unit;
        probe[j] = static_cast<double>(step) / 10.0;
        const double s = sysbench_.ScoreFromUnit(probe);
        if (s > best) {
          best = s;
          best_v = probe[j];
        }
      }
      unit[j] = best_v;
    }
  }
  EXPECT_GT(best, 0.4 * sysbench_.max_gain());
}

TEST_F(ResponseSurfaceTest, RankingCoversAllKnobs) {
  const std::vector<size_t>& ranking = sysbench_.importance_ranking();
  EXPECT_EQ(ranking.size(), space_.dimension());
  std::vector<bool> seen(space_.dimension(), false);
  for (size_t k : ranking) {
    ASSERT_LT(k, space_.dimension());
    EXPECT_FALSE(seen[k]);
    seen[k] = true;
  }
}

TEST_F(ResponseSurfaceTest, ImportanceDecays) {
  // Average |contribution| of top-ranked knobs dwarfs the tail's.
  Rng rng(4);
  double top_effect = 0.0, tail_effect = 0.0;
  const int samples = 50;
  for (int i = 0; i < samples; ++i) {
    const std::vector<double> unit =
        space_.ToUnit(space_.SampleUniform(rng));
    for (size_t r = 0; r < 5; ++r) {
      top_effect += std::abs(sysbench_.KnobContribution(r, unit));
    }
    for (size_t r = 150; r < 155; ++r) {
      tail_effect += std::abs(sysbench_.KnobContribution(r, unit));
    }
  }
  EXPECT_GT(top_effect, 20.0 * tail_effect);
}

TEST_F(ResponseSurfaceTest, CategoricalKnobsRankHigh) {
  // The heterogeneity experiment needs impactful categorical knobs.
  size_t categorical_in_top30 = 0;
  for (size_t r = 0; r < 30; ++r) {
    if (space_.knob(job_.importance_ranking()[r]).is_categorical()) {
      ++categorical_in_top30;
    }
  }
  EXPECT_GE(categorical_in_top30, 5u);
}

TEST_F(ResponseSurfaceTest, RiskyKnobsExist) {
  // Some impactful knobs must be default-optimal (changing them only
  // hurts) — the separation between SHAP and variance-based measures.
  size_t risky_in_top20 = 0;
  for (size_t r = 0; r < 20; ++r) {
    const auto& effect = sysbench_.effects()[r];
    if (effect.shape == ResponseSurface::EffectShape::kRiskyQuadratic) {
      ++risky_in_top20;
    }
    if (effect.shape == ResponseSurface::EffectShape::kCategorical) {
      bool improvable = false;
      for (double c : effect.category_effects) {
        if (c > 0.0) improvable = true;
      }
      if (!improvable) ++risky_in_top20;
    }
  }
  EXPECT_GE(risky_in_top20, 3u);
}

TEST_F(ResponseSurfaceTest, RiskyKnobContributionNeverPositive) {
  Rng rng(5);
  for (size_t r = 0; r < 40; ++r) {
    const auto& effect = sysbench_.effects()[r];
    if (effect.shape != ResponseSurface::EffectShape::kRiskyQuadratic) {
      continue;
    }
    for (int i = 0; i < 20; ++i) {
      std::vector<double> unit = space_.ToUnit(space_.Default());
      unit[effect.knob_index] = rng.Uniform();
      EXPECT_LE(sysbench_.KnobContribution(r, unit), 1e-12);
    }
  }
}

TEST_F(ResponseSurfaceTest, InteractionsArePresent) {
  EXPECT_GE(sysbench_.interactions().size(), 2u);
  // Interactions vanish at the default.
  const std::vector<double> def = space_.ToUnit(space_.Default());
  for (size_t i = 0; i < sysbench_.interactions().size(); ++i) {
    EXPECT_NEAR(sysbench_.InteractionContribution(i, def), 0.0, 1e-12);
  }
}

TEST_F(ResponseSurfaceTest, JointBumpInteractionNeedsBothKnobs) {
  // Moving only one partner of a joint-bump interaction off the default
  // yields (almost) none of the pair's gain.
  const std::vector<double> def = space_.ToUnit(space_.Default());
  bool checked = false;
  for (size_t i = 0; i < sysbench_.interactions().size(); ++i) {
    const auto& inter = sysbench_.interactions()[i];
    if (inter.kind != ResponseSurface::Interaction::Kind::kJointBump) {
      continue;
    }
    // Skip pairs where either partner's default already sits near its
    // sweet-spot coordinate (the partial move would then capture most of
    // the gain through the other knob's default).
    const double da = def[inter.knob_a] - inter.center_a;
    const double db = def[inter.knob_b] - inter.center_b;
    if (std::abs(da) < 1.5 * inter.width ||
        std::abs(db) < 1.5 * inter.width) {
      continue;
    }
    std::vector<double> both = def;
    both[inter.knob_a] = inter.center_a;
    both[inter.knob_b] = inter.center_b;
    const double joint_gain = sysbench_.InteractionContribution(i, both);
    std::vector<double> only_a = def;
    only_a[inter.knob_a] = inter.center_a;
    const double partial_gain = sysbench_.InteractionContribution(i, only_a);
    EXPECT_GT(joint_gain, 1.5 * std::abs(partial_gain));
    checked = true;
  }
  EXPECT_TRUE(checked);
}

TEST_F(ResponseSurfaceTest, GroupEffectsSumMatchesMainEffects) {
  Rng rng(6);
  const std::vector<double> unit = space_.ToUnit(space_.SampleUniform(rng));
  const std::vector<double> groups = sysbench_.GroupEffects(unit, 8);
  double group_sum = 0.0;
  for (double g : groups) group_sum += g;
  double direct = 0.0;
  for (size_t r = 0; r < space_.dimension(); ++r) {
    direct += sysbench_.KnobContribution(r, unit);
  }
  EXPECT_NEAR(group_sum, direct, 1e-9);
}

TEST_F(ResponseSurfaceTest, CategoricalEffectsAreNonOrdinal) {
  // Find a categorical effect with >=3 categories and check its category
  // effects are not monotone in the index for at least one knob (the
  // mixed-kernel vs RBF distinction).
  bool found_non_monotone = false;
  for (const auto& effect : sysbench_.effects()) {
    if (effect.shape != ResponseSurface::EffectShape::kCategorical) continue;
    const auto& ce = effect.category_effects;
    if (ce.size() < 3) continue;
    bool increasing = true, decreasing = true;
    for (size_t i = 1; i < ce.size(); ++i) {
      if (ce[i] < ce[i - 1]) increasing = false;
      if (ce[i] > ce[i - 1]) decreasing = false;
    }
    if (!increasing && !decreasing) {
      found_non_monotone = true;
      break;
    }
  }
  EXPECT_TRUE(found_non_monotone);
}

}  // namespace
}  // namespace dbtune
