#include "surrogate/cross_validation.h"

#include <cmath>

#include <gtest/gtest.h>

#include "surrogate/random_forest.h"
#include "surrogate/ridge.h"

namespace dbtune {
namespace {

TEST(KFoldTest, BalancedAssignment) {
  Rng rng(1);
  const std::vector<size_t> fold = KFoldAssignment(100, 10, rng);
  ASSERT_EQ(fold.size(), 100u);
  std::vector<int> counts(10, 0);
  for (size_t f : fold) {
    ASSERT_LT(f, 10u);
    ++counts[f];
  }
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(KFoldTest, UnevenSizesDifferByAtMostOne) {
  Rng rng(2);
  const std::vector<size_t> fold = KFoldAssignment(103, 10, rng);
  std::vector<int> counts(10, 0);
  for (size_t f : fold) ++counts[f];
  int min = 1000, max = 0;
  for (int c : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  EXPECT_LE(max - min, 1);
}

TEST(CrossValidateTest, LinearModelOnLinearData) {
  Rng rng(3);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double a = rng.Uniform(), b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(3.0 * a - b + rng.Gaussian(0.0, 0.01));
  }
  Rng cv_rng(4);
  Result<RegressionQuality> quality = CrossValidate(
      [] {
        RidgeOptions options;
        options.alpha = 1e-6;
        return std::unique_ptr<Regressor>(
            std::make_unique<RidgeRegression>(options));
      },
      x, y, 10, cv_rng);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->r_squared, 0.97);
  EXPECT_LT(quality->rmse, 0.1);
}

TEST(CrossValidateTest, RejectsBadArguments) {
  Rng rng(5);
  FeatureMatrix x = {{1.0}, {2.0}};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_FALSE(CrossValidate([] {
                 return std::unique_ptr<Regressor>(
                     std::make_unique<RidgeRegression>());
               },
                             x, y, 5, rng)
                   .ok());  // k > n
  EXPECT_FALSE(CrossValidate([] {
                 return std::unique_ptr<Regressor>(
                     std::make_unique<RidgeRegression>());
               },
                             {}, {}, 2, rng)
                   .ok());
}

TEST(CrossValidateTest, ForestBeatsRidgeOnNonlinearData) {
  Rng rng(6);
  FeatureMatrix x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform(), b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(std::sin(7.0 * a) * (b < 0.5 ? 1.0 : -1.0));
  }
  Rng rng_a(7), rng_b(7);
  Result<RegressionQuality> forest_quality = CrossValidate(
      [] {
        return std::unique_ptr<Regressor>(std::make_unique<RandomForest>());
      },
      x, y, 5, rng_a);
  Result<RegressionQuality> ridge_quality = CrossValidate(
      [] {
        return std::unique_ptr<Regressor>(std::make_unique<RidgeRegression>());
      },
      x, y, 5, rng_b);
  ASSERT_TRUE(forest_quality.ok());
  ASSERT_TRUE(ridge_quality.ok());
  EXPECT_GT(forest_quality->r_squared, ridge_quality->r_squared);
}

TEST(TrainTestEvaluateTest, ComputesHeldOutMetrics) {
  RidgeRegression ridge;
  FeatureMatrix train_x = {{0.0}, {0.5}, {1.0}};
  std::vector<double> train_y = {0.0, 1.0, 2.0};
  FeatureMatrix test_x = {{0.25}, {0.75}};
  std::vector<double> test_y = {0.5, 1.5};
  Result<RegressionQuality> quality =
      TrainTestEvaluate(&ridge, train_x, train_y, test_x, test_y);
  ASSERT_TRUE(quality.ok());
  EXPECT_GT(quality->r_squared, 0.9);
}

}  // namespace
}  // namespace dbtune
