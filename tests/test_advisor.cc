#include "core/advisor.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace dbtune {
namespace {

TEST(AdvisorTest, EndToEndTuningImproves) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  AdvisorOptions options;
  options.importance_samples = 150;
  options.tuning_knobs = 10;
  options.tuning_iterations = 40;
  options.seed = 2;
  Result<AdvisorReport> report = TuneDbms(&sim, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->selected_knobs.size(), 10u);
  EXPECT_EQ(report->selected_knob_names.size(), 10u);
  EXPECT_GT(report->improvement_percent, 0.0);
  EXPECT_EQ(report->best_config.size(), sim.space().dimension());
  EXPECT_TRUE(sim.space().Validate(report->best_config).ok());
}

TEST(AdvisorTest, SelectedKnobsBeatRandomSelection) {
  // The selected knob set must enable better tuning than a same-size
  // random knob set with the same budget (the point of knob selection).
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 3);
  AdvisorOptions options;
  options.importance_samples = 800;  // SHAP needs real coverage on 197 dims
  options.tuning_knobs = 20;
  options.tuning_iterations = 5;
  options.seed = 4;
  Result<AdvisorReport> report = TuneDbms(&sim, options);
  ASSERT_TRUE(report.ok());

  auto tune_with = [](const std::vector<size_t>& knobs, uint64_t seed) {
    DbmsSimulator fresh(WorkloadId::kSysbench, HardwareInstance::kB, seed);
    return RunTuningSession(&fresh, knobs, OptimizerType::kSmac, 60, seed)
        .final_improvement;
  };
  double selected_total = 0.0, random_total = 0.0;
  Rng rng(9);
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    selected_total += tune_with(report->selected_knobs, seed);
    const std::vector<size_t> random_knobs =
        rng.SampleWithoutReplacement(sim.space().dimension(), 20);
    random_total += tune_with(random_knobs, seed);
  }
  EXPECT_GT(selected_total, random_total);
}

TEST(AdvisorTest, RejectsBadKnobCount) {
  DbmsSimulator sim(WorkloadId::kVoter, HardwareInstance::kB, 5);
  AdvisorOptions options;
  options.tuning_knobs = 0;
  EXPECT_FALSE(TuneDbms(&sim, options).ok());
  options.tuning_knobs = 9999;
  EXPECT_FALSE(TuneDbms(&sim, options).ok());
}

}  // namespace
}  // namespace dbtune
