#include "knobs/configuration_space.h"

#include <gtest/gtest.h>

#include "knobs/catalog.h"

namespace dbtune {
namespace {

ConfigurationSpace MakeSpace() {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::Continuous("c", 0.0, 10.0, 2.0));
  knobs.push_back(Knob::Integer("i", 1, 100, 10));
  knobs.push_back(Knob::Categorical("k", {"x", "y", "z"}, 0));
  return ConfigurationSpace(std::move(knobs));
}

TEST(ConfigurationSpaceTest, DimensionAndLookup) {
  const ConfigurationSpace space = MakeSpace();
  EXPECT_EQ(space.dimension(), 3u);
  Result<size_t> idx = space.KnobIndex("i");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(space.KnobIndex("nope").ok());
}

TEST(ConfigurationSpaceTest, KnobIndexFindsEveryKnobInLargeCatalog) {
  // KnobIndex is map-backed; every knob of the full catalog must resolve
  // to its own position, and lookups must survive copies of the space.
  const ConfigurationSpace space = MySqlKnobCatalog();
  for (size_t i = 0; i < space.dimension(); ++i) {
    Result<size_t> idx = space.KnobIndex(space.knob(i).name());
    ASSERT_TRUE(idx.ok()) << space.knob(i).name();
    EXPECT_EQ(*idx, i);
  }
  const ConfigurationSpace copy = space;
  Result<size_t> idx = copy.KnobIndex(space.knob(0).name());
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0u);
  EXPECT_EQ(copy.KnobIndex("definitely_not_a_knob").status().code(),
            StatusCode::kNotFound);
}

TEST(ConfigurationSpaceTest, SnapUnitMatchesFromUnitToUnitRoundTrip) {
  const ConfigurationSpace space = MakeSpace();
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> u(space.dimension());
    for (double& v : u) v = rng.Uniform();
    const std::vector<double> snapped = space.SnapUnit(u);
    const std::vector<double> round_trip = space.ToUnit(space.FromUnit(u));
    EXPECT_EQ(snapped, round_trip);  // bitwise, not approximate
  }
}

TEST(ConfigurationSpaceTest, DefaultConfiguration) {
  const ConfigurationSpace space = MakeSpace();
  const Configuration def = space.Default();
  EXPECT_DOUBLE_EQ(def[0], 2.0);
  EXPECT_DOUBLE_EQ(def[1], 10.0);
  EXPECT_DOUBLE_EQ(def[2], 0.0);
  EXPECT_TRUE(space.Validate(def).ok());
}

TEST(ConfigurationSpaceTest, SampleUniformIsValid) {
  const ConfigurationSpace space = MakeSpace();
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Configuration c = space.SampleUniform(rng);
    EXPECT_TRUE(space.Validate(c).ok());
  }
}

TEST(ConfigurationSpaceTest, UnitRoundTrip) {
  const ConfigurationSpace space = MakeSpace();
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Configuration c = space.SampleUniform(rng);
    const Configuration back = space.FromUnit(space.ToUnit(c));
    for (size_t j = 0; j < c.size(); ++j) {
      EXPECT_NEAR(back[j], c[j], 1e-9);
    }
  }
}

TEST(ConfigurationSpaceTest, ValidateRejectsBadArity) {
  const ConfigurationSpace space = MakeSpace();
  EXPECT_EQ(space.Validate(Configuration({1.0})).code(),
            StatusCode::kInvalidArgument);
}

TEST(ConfigurationSpaceTest, ValidateRejectsOutOfDomain) {
  const ConfigurationSpace space = MakeSpace();
  Configuration c = space.Default();
  c[0] = 11.0;
  EXPECT_EQ(space.Validate(c).code(), StatusCode::kOutOfRange);
}

TEST(ConfigurationSpaceTest, ClipBringsIntoDomain) {
  const ConfigurationSpace space = MakeSpace();
  Configuration c({-5.0, 1000.0, 9.0});
  const Configuration clipped = space.Clip(c);
  EXPECT_TRUE(space.Validate(clipped).ok());
  EXPECT_DOUBLE_EQ(clipped[0], 0.0);
  EXPECT_DOUBLE_EQ(clipped[1], 100.0);
  EXPECT_DOUBLE_EQ(clipped[2], 2.0);
}

TEST(ConfigurationSpaceTest, CategoricalAndNumericIndices) {
  const ConfigurationSpace space = MakeSpace();
  EXPECT_EQ(space.CategoricalIndices(), (std::vector<size_t>{2}));
  EXPECT_EQ(space.NumericIndices(), (std::vector<size_t>{0, 1}));
}

TEST(ConfigurationSpaceTest, ProjectPreservesKnobs) {
  const ConfigurationSpace space = MakeSpace();
  const ConfigurationSpace sub = space.Project({2, 0});
  EXPECT_EQ(sub.dimension(), 2u);
  EXPECT_EQ(sub.knob(0).name(), "k");
  EXPECT_EQ(sub.knob(1).name(), "c");
}

TEST(KnobSubsetTest, ToFullAndFromFull) {
  const ConfigurationSpace space = MakeSpace();
  KnobSubset subset(&space, {1, 2});
  EXPECT_EQ(subset.subspace().dimension(), 2u);

  Configuration sub({50.0, 2.0});
  const Configuration full = subset.ToFull(sub);
  EXPECT_DOUBLE_EQ(full[0], 2.0);  // default for unselected knob
  EXPECT_DOUBLE_EQ(full[1], 50.0);
  EXPECT_DOUBLE_EQ(full[2], 2.0);

  const Configuration round = subset.FromFull(full);
  EXPECT_DOUBLE_EQ(round[0], 50.0);
  EXPECT_DOUBLE_EQ(round[1], 2.0);
}

TEST(ConfigurationTest, EqualityAndDebugString) {
  Configuration a({1.0, 2.0});
  Configuration b({1.0, 2.0});
  Configuration c({1.0, 3.0});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.DebugString(), "[1, 2]");
}

}  // namespace
}  // namespace dbtune
