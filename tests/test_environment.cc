#include "dbms/environment.h"

#include <gtest/gtest.h>

#include "knobs/catalog.h"

namespace dbtune {
namespace {

TEST(EnvironmentTest, MeasuresDefaultAtConstruction) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  TuningEnvironment env(&sim);
  EXPECT_GT(env.default_objective(), 0.0);
  EXPECT_DOUBLE_EQ(env.default_score(), env.default_objective());
  EXPECT_EQ(env.iterations(), 0u);
  EXPECT_EQ(sim.evaluation_count(), 1u);  // the default measurement
}

TEST(EnvironmentTest, LatencyScoreIsNegated) {
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 1);
  TuningEnvironment env(&sim);
  EXPECT_GT(env.default_objective(), 0.0);
  EXPECT_LT(env.default_score(), 0.0);
  EXPECT_DOUBLE_EQ(env.default_score(), -env.default_objective());
}

TEST(EnvironmentTest, SubsetTuningPinsOtherKnobs) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  TuningEnvironment env(&sim, {0, 5, 10});
  EXPECT_EQ(env.space().dimension(), 3u);
  const Configuration sub = env.space().Default();
  const Observation obs = env.Evaluate(sub);
  EXPECT_EQ(obs.config.size(), 3u);
}

TEST(EnvironmentTest, FailedConfigGetsWorstSeenScore) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);
  const size_t bp = *sim.space().KnobIndex("innodb_buffer_pool_size");
  TuningEnvironment env(&sim, {bp});

  // One bad-but-running config to set the worst score.
  Configuration small_bp({64.0 * 1024 * 1024});
  const Observation ok = env.Evaluate(small_bp);
  ASSERT_FALSE(ok.failed);

  // A crashing config inherits the worst score seen so far.
  Configuration huge_bp({60.0 * 1024 * 1024 * 1024.0});
  const Observation failed = env.Evaluate(huge_bp);
  EXPECT_TRUE(failed.failed);
  EXPECT_DOUBLE_EQ(failed.objective, 0.0);
  EXPECT_LE(failed.score, env.default_score());
}

TEST(EnvironmentTest, BestTrackingAndImprovement) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 2);
  TuningEnvironment env(&sim);
  Rng rng(3);
  double best = env.default_score();
  for (int i = 0; i < 50; ++i) {
    const Observation obs = env.Evaluate(env.space().SampleUniform(rng));
    if (!obs.failed) best = std::max(best, obs.score);
  }
  EXPECT_DOUBLE_EQ(env.best_score(), best);
  EXPECT_EQ(env.iterations(), 50u);
  if (best > env.default_score()) {
    EXPECT_GT(env.ImprovementPercent(), 0.0);
    EXPECT_GT(env.best_iteration(), 0u);
    EXPECT_LE(env.best_iteration(), 50u);
  }
}

TEST(EnvironmentTest, ImprovementPercentDirectionAware) {
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 1);
  TuningEnvironment env(&sim);
  // Halving latency = 50% improvement.
  EXPECT_NEAR(env.ImprovementPercentOf(env.default_objective() / 2.0), 50.0,
              1e-9);
  DbmsSimulator sim2(WorkloadId::kTpcc, HardwareInstance::kB, 1);
  TuningEnvironment env2(&sim2);
  // Doubling throughput = 100% improvement.
  EXPECT_NEAR(env2.ImprovementPercentOf(2.0 * env2.default_objective()),
              100.0, 1e-9);
}

TEST(EnvironmentTest, HistoryRecordsEverything) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kVoter,
                    HardwareInstance::kB, 1);
  TuningEnvironment env(&sim);
  Rng rng(4);
  for (int i = 0; i < 10; ++i) env.Evaluate(env.space().SampleUniform(rng));
  EXPECT_EQ(env.history().size(), 10u);
  for (const Observation& obs : env.history()) {
    EXPECT_EQ(obs.config.size(), env.space().dimension());
  }
}

}  // namespace
}  // namespace dbtune
