#include "optimizer/optimizer.h"

#include <cctype>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "knobs/catalog.h"
#include "optimizer/ddpg.h"
#include "util/random.h"

namespace dbtune {
namespace {

// A simple continuous space for optimizer behaviour tests.
ConfigurationSpace MakeContinuousSpace(size_t d) {
  std::vector<Knob> knobs;
  for (size_t i = 0; i < d; ++i) {
    std::string name = "x";
    name += std::to_string(i);  // avoids gcc-12 -Wrestrict false positive
    knobs.push_back(Knob::Continuous(name, 0.0, 1.0, 0.5));
  }
  return ConfigurationSpace(std::move(knobs));
}

// Maximum 0 at (0.7, 0.2, ..., alternating); strictly concave.
double ConcaveObjective(const Configuration& c) {
  double score = 0.0;
  for (size_t i = 0; i < c.size(); ++i) {
    const double target = (i % 2 == 0) ? 0.7 : 0.2;
    score -= (c[i] - target) * (c[i] - target);
  }
  return score;
}

double RunOnObjective(Optimizer* optimizer, size_t iterations,
                      double (*objective)(const Configuration&)) {
  double best = -1e300;
  for (size_t i = 0; i < iterations; ++i) {
    const Configuration c = optimizer->Suggest();
    const double score = objective(c);
    optimizer->Observe(c, score);
    best = std::max(best, score);
  }
  return best;
}

TEST(ExpectedImprovementTest, ZeroWhenFarBelowBest) {
  EXPECT_NEAR(ExpectedImprovement(0.0, 1e-8, 10.0), 0.0, 1e-9);
}

TEST(ExpectedImprovementTest, PositiveAboveBest) {
  EXPECT_GT(ExpectedImprovement(1.0, 0.01, 0.0), 0.9);
}

TEST(ExpectedImprovementTest, UncertaintyAddsValue) {
  const double certain = ExpectedImprovement(0.0, 1e-8, 0.5);
  const double uncertain = ExpectedImprovement(0.0, 4.0, 0.5);
  EXPECT_GT(uncertain, certain);
}

TEST(OptimizerFactoryTest, CreatesEveryType) {
  const ConfigurationSpace space = MakeContinuousSpace(3);
  for (OptimizerType type : PaperOptimizers()) {
    std::unique_ptr<Optimizer> optimizer = CreateOptimizer(type, space);
    ASSERT_NE(optimizer, nullptr);
    EXPECT_EQ(optimizer->name(), OptimizerTypeName(type));
  }
  EXPECT_EQ(PaperOptimizers().size(), 7u);
}

TEST(OptimizerBaseTest, HistoryBookkeeping) {
  const ConfigurationSpace space = MakeContinuousSpace(2);
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(OptimizerType::kRandomSearch, space);
  EXPECT_EQ(optimizer->num_observations(), 0u);
  optimizer->Observe(Configuration({0.1, 0.1}), 1.0);
  optimizer->Observe(Configuration({0.9, 0.9}), 3.0);
  optimizer->Observe(Configuration({0.5, 0.5}), 2.0);
  EXPECT_EQ(optimizer->num_observations(), 3u);
  EXPECT_DOUBLE_EQ(optimizer->best_score(), 3.0);
  EXPECT_EQ(optimizer->best_config(), Configuration({0.9, 0.9}));
}

TEST(BuildAcquisitionCandidatesTest, PoolSizeAndValidity) {
  const ConfigurationSpace space = MakeContinuousSpace(4);
  Rng rng(1);
  FeatureMatrix history = {{0.5, 0.5, 0.5, 0.5}};
  std::vector<double> scores = {1.0};
  const auto pool =
      BuildAcquisitionCandidates(space, rng, history, scores, 50);
  EXPECT_EQ(pool.size(), 50u);
  for (const auto& u : pool) {
    ASSERT_EQ(u.size(), 4u);
    for (double v : u) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

// --- Parameterized sweep: every optimizer must optimize a concave bowl
// clearly better than its starting point and respect the space.
class OptimizerSweepTest : public ::testing::TestWithParam<OptimizerType> {};

TEST_P(OptimizerSweepTest, SuggestionsAreValid) {
  const ConfigurationSpace space = SmallTestCatalog();
  OptimizerOptions options;
  options.seed = 3;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(GetParam(), space, options);
  Rng rng(4);
  for (int i = 0; i < 25; ++i) {
    const Configuration c = optimizer->Suggest();
    EXPECT_TRUE(space.Validate(c).ok())
        << optimizer->name() << " iteration " << i;
    optimizer->Observe(c, rng.Uniform());
  }
}

TEST_P(OptimizerSweepTest, ImprovesOnConcaveObjective) {
  const ConfigurationSpace space = MakeContinuousSpace(4);
  OptimizerOptions options;
  options.seed = 5;
  std::unique_ptr<Optimizer> optimizer =
      CreateOptimizer(GetParam(), space, options);
  const double best = RunOnObjective(optimizer.get(), 60, ConcaveObjective);
  // Default-centred start scores -4*(0.2^2+0.3^2)/2-ish; optimum is 0.
  EXPECT_GT(best, -0.12) << optimizer->name();
}

TEST_P(OptimizerSweepTest, DeterministicGivenSeed) {
  const ConfigurationSpace space = MakeContinuousSpace(3);
  OptimizerOptions options;
  options.seed = 11;
  std::unique_ptr<Optimizer> a = CreateOptimizer(GetParam(), space, options);
  std::unique_ptr<Optimizer> b = CreateOptimizer(GetParam(), space, options);
  for (int i = 0; i < 15; ++i) {
    const Configuration ca = a->Suggest();
    const Configuration cb = b->Suggest();
    ASSERT_EQ(ca.values(), cb.values()) << OptimizerTypeName(GetParam());
    const double score = ConcaveObjective(ca);
    a->Observe(ca, score);
    b->Observe(cb, score);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizers, OptimizerSweepTest,
    ::testing::Values(OptimizerType::kVanillaBo,
                      OptimizerType::kMixedKernelBo, OptimizerType::kSmac,
                      OptimizerType::kTpe, OptimizerType::kTurbo,
                      OptimizerType::kDdpg, OptimizerType::kGa,
                      OptimizerType::kRandomSearch),
    [](const ::testing::TestParamInfo<OptimizerType>& info) {
      std::string name = OptimizerTypeName(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ModelBasedOptimizerTest, BeatsRandomSearchOnBowl) {
  // SMAC and the BO variants must out-optimize random search on the same
  // budget (sanity check that modeling helps at all).
  const ConfigurationSpace space = MakeContinuousSpace(6);
  auto run = [&](OptimizerType type, uint64_t seed) {
    OptimizerOptions options;
    options.seed = seed;
    std::unique_ptr<Optimizer> optimizer =
        CreateOptimizer(type, space, options);
    return RunOnObjective(optimizer.get(), 70, ConcaveObjective);
  };
  double random_avg = 0.0, smac_avg = 0.0, bo_avg = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    random_avg += run(OptimizerType::kRandomSearch, seed);
    smac_avg += run(OptimizerType::kSmac, seed);
    bo_avg += run(OptimizerType::kVanillaBo, seed);
  }
  EXPECT_GT(smac_avg, random_avg);
  EXPECT_GT(bo_avg, random_avg);
}

TEST(DdpgTest, WeightExportImportRoundTrip) {
  const ConfigurationSpace space = MakeContinuousSpace(3);
  OptimizerOptions options;
  options.seed = 21;
  DdpgOptimizer a(space, options);
  const DdpgOptimizer::Weights weights = a.ExportWeights();

  OptimizerOptions options_b;
  options_b.seed = 22;
  DdpgOptimizer b(space, options_b);
  ASSERT_TRUE(b.ImportWeights(weights).ok());
  EXPECT_EQ(b.ExportWeights().actor, weights.actor);
  EXPECT_EQ(b.ExportWeights().critic, weights.critic);
}

TEST(DdpgTest, ImportRejectsWrongShape) {
  const ConfigurationSpace s3 = MakeContinuousSpace(3);
  const ConfigurationSpace s5 = MakeContinuousSpace(5);
  DdpgOptimizer a(s3, OptimizerOptions{});
  DdpgOptimizer b(s5, OptimizerOptions{});
  EXPECT_FALSE(b.ImportWeights(a.ExportWeights()).ok());
}

TEST(DdpgTest, UsesMetricsAsState) {
  const ConfigurationSpace space = MakeContinuousSpace(3);
  DdpgOptimizer ddpg(space, OptimizerOptions{});
  ddpg.SetReferenceScore(1.0);
  Rng rng(6);
  std::vector<double> metrics(40);
  for (int i = 0; i < 40; ++i) {
    const Configuration c = ddpg.Suggest();
    for (double& m : metrics) m = rng.Uniform(-1, 1);
    ddpg.ObserveWithMetrics(c, ConcaveObjective(c) + 1.0, metrics);
  }
  EXPECT_EQ(ddpg.num_observations(), 40u);
}

TEST(TpeWeaknessTest, InteractionBlindness) {
  // Saddle objective: score = (2a-1)(2b-1). Marginals are flat; TPE's
  // independent densities cannot see the structure while SMAC's forest
  // can. With matched budgets SMAC should find corner-like solutions at
  // least as good as TPE's on average.
  const ConfigurationSpace space = MakeContinuousSpace(2);
  auto saddle = [](const Configuration& c) {
    return (2.0 * c[0] - 1.0) * (2.0 * c[1] - 1.0);
  };
  auto run = [&](OptimizerType type, uint64_t seed) {
    OptimizerOptions options;
    options.seed = seed;
    std::unique_ptr<Optimizer> optimizer =
        CreateOptimizer(type, space, options);
    double best = -1e300;
    for (int i = 0; i < 50; ++i) {
      const Configuration c = optimizer->Suggest();
      const double s = saddle(c);
      optimizer->Observe(c, s);
      best = std::max(best, s);
    }
    return best;
  };
  double smac_total = 0.0, tpe_total = 0.0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    smac_total += run(OptimizerType::kSmac, seed);
    tpe_total += run(OptimizerType::kTpe, seed);
  }
  EXPECT_GE(smac_total, tpe_total - 0.10);
}

}  // namespace
}  // namespace dbtune
