// Observability layer: metrics registry, trace spans, session JSONL.
// The golden tests pin the determinism contract — under the fake clock
// and a single-lane pool, two same-seed sessions must produce
// byte-identical session logs and trace files.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuning_session.h"
#include "knobs/catalog.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

// Restores the previous pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(size_t n)
      : original_(ExecutionContext::Get().num_threads()) {
    ExecutionContext::Get().SetNumThreads(n);
  }
  ~PoolSizeGuard() { ExecutionContext::Get().SetNumThreads(original_); }

 private:
  size_t original_;
};

// Every test starts and ends with observability fully off and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetObsState(); }
  void TearDown() override { ResetObsState(); }

  static void ResetObsState() {
    obs::SetMetricsEnabled(false);
    obs::SetTraceEnabled(false);
    obs::DisableFakeClockForTest();
    obs::ClearTrace();
    obs::MetricsRegistry::Get().Reset();
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(ObsTest, CounterIncrementsAndSurvivesReset) {
  obs::Counter& c = obs::MetricsRegistry::Get().counter("test.counter");
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  obs::MetricsRegistry::Get().Reset();
  // The handle stays valid; only the value is zeroed.
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(&c, &obs::MetricsRegistry::Get().counter("test.counter"));
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge& g = obs::MetricsRegistry::Get().gauge("test.gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(0.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST_F(ObsTest, GaugeMaxTracksPeak) {
  obs::Gauge& g = obs::MetricsRegistry::Get().gauge("test.gauge.peak");
  g.Max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.Max(1.0);  // lower candidate leaves the peak untouched
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.Max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST_F(ObsTest, ScopedMetricsForTestEnablesAndRestores) {
  ASSERT_FALSE(obs::MetricsEnabled());
  obs::MetricsRegistry::Get().counter("test.scoped").Increment(5);
  {
    obs::ScopedMetricsForTest metrics_on;
    // Construction enabled recording and wiped prior values.
    EXPECT_TRUE(obs::MetricsEnabled());
    const obs::Counter* c =
        obs::MetricsRegistry::Get().FindCounter("test.scoped");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 0u);
    obs::MetricsRegistry::Get().counter("test.scoped").Increment();
  }
  // Destruction restored the previous state and wiped again.
  EXPECT_FALSE(obs::MetricsEnabled());
  const obs::Counter* c =
      obs::MetricsRegistry::Get().FindCounter("test.scoped");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value(), 0u);
}

TEST_F(ObsTest, FindDoesNotRegister) {
  EXPECT_EQ(obs::MetricsRegistry::Get().FindCounter("test.absent"), nullptr);
  EXPECT_EQ(obs::MetricsRegistry::Get().FindGauge("test.absent"), nullptr);
  EXPECT_EQ(obs::MetricsRegistry::Get().FindHistogram("test.absent"),
            nullptr);
  obs::MetricsRegistry::Get().counter("test.present");
  EXPECT_NE(obs::MetricsRegistry::Get().FindCounter("test.present"), nullptr);
}

TEST_F(ObsTest, HistogramBucketBoundsBracketEveryValue) {
  for (uint64_t nanos : {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{4},
                         uint64_t{1000}, uint64_t{999'999},
                         uint64_t{1'000'000'000}, uint64_t{1} << 40}) {
    const size_t index = obs::Histogram::BucketIndex(nanos);
    EXPECT_LE(obs::Histogram::BucketLowerNanos(index), nanos) << nanos;
    EXPECT_GT(obs::Histogram::BucketLowerNanos(index + 1), nanos) << nanos;
  }
  // Buckets are monotone: a larger value never lands in an earlier bucket.
  size_t previous = 0;
  for (uint64_t nanos = 1; nanos < (uint64_t{1} << 34); nanos *= 3) {
    const size_t index = obs::Histogram::BucketIndex(nanos);
    EXPECT_GE(index, previous);
    previous = index;
  }
}

TEST_F(ObsTest, HistogramPercentilesWithinBucketError) {
  obs::Histogram h;
  // 1ms..100ms, uniform: p50 ≈ 50ms, p95 ≈ 95ms, p99 ≈ 99ms. Log-bucket
  // resolution with 4 sub-buckets per octave bounds relative error by
  // ~12.5%; allow a slightly wider margin for interpolation.
  for (int ms = 1; ms <= 100; ++ms) {
    h.RecordNanos(static_cast<uint64_t>(ms) * 1'000'000);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum_seconds(), 5.050, 1e-9);
  EXPECT_NEAR(h.Percentile(0.50), 0.050, 0.050 * 0.15);
  EXPECT_NEAR(h.Percentile(0.95), 0.095, 0.095 * 0.15);
  EXPECT_NEAR(h.Percentile(0.99), 0.099, 0.099 * 0.15);
  // Degenerate quantiles stay inside the recorded range.
  EXPECT_GE(h.Percentile(0.0), 0.0);
  EXPECT_LE(h.Percentile(1.0), 0.100 * 1.15);
}

TEST_F(ObsTest, EmptyHistogramReportsZero) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST_F(ObsTest, ScopedLatencyRecordsOnlyWhenEnabled) {
  obs::Histogram& h = obs::MetricsRegistry::Get().histogram("test.latency");
  {
    obs::ScopedLatency latency(&h);  // metrics disabled: no-op
  }
  EXPECT_EQ(h.count(), 0u);
  obs::ScopedMetricsForTest metrics_on;
  {
    obs::ScopedLatency latency(&h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST_F(ObsTest, RegistryJsonIsSortedAndDeterministic) {
  // Register in non-alphabetical order; export must sort by name.
  obs::MetricsRegistry::Get().counter("test.z_counter").Increment(3);
  obs::MetricsRegistry::Get().counter("test.a_counter").Increment(1);
  obs::MetricsRegistry::Get().gauge("test.gauge").Set(1.5);
  obs::MetricsRegistry::Get().histogram("test.hist").RecordNanos(1000);
  const std::string json = obs::MetricsRegistry::Get().ToJson();
  EXPECT_EQ(json, obs::MetricsRegistry::Get().ToJson());
  const size_t a = json.find("\"test.a_counter\":1");
  const size_t z = json.find("\"test.z_counter\":3");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(json.find("\"p99_s\":"), std::string::npos);
}

TEST_F(ObsTest, RegistryJsonEscapesHostileMetricNames) {
  // Caller-supplied names must not be able to break the JSON document:
  // quotes, backslashes, and control characters are escaped.
  obs::MetricsRegistry::Get()
      .counter("evil\"name\\with\nnewline\tand\x01" "ctl")
      .Increment();
  obs::MetricsRegistry::Get().gauge("g\"quote").Set(1.0);
  const std::string json = obs::MetricsRegistry::Get().ToJson();
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline\\tand\\u0001ctl"),
            std::string::npos);
  EXPECT_NE(json.find("g\\\"quote"), std::string::npos);
  // No raw control characters survive into the output.
  for (char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST_F(ObsTest, FakeClockTicksOneMillisecondPerRead) {
  obs::EnableFakeClockForTest();
  ASSERT_TRUE(obs::FakeClockActive());
  const uint64_t first = obs::MonotonicNanos();
  const uint64_t second = obs::MonotonicNanos();
  EXPECT_EQ(second - first, 1'000'000u);
  obs::EnableFakeClockForTest();  // re-enabling rewinds to zero
  EXPECT_EQ(obs::MonotonicNanos(), first);
}

TEST_F(ObsTest, SpanNestingSerializesDeterministically) {
  obs::EnableFakeClockForTest();
  obs::SetTraceEnabled(true);
  {
    DBTUNE_TRACE_SPAN("outer");
    {
      DBTUNE_TRACE_SPAN("inner");
    }
  }
  EXPECT_EQ(obs::TraceEventCount(), 2u);
  const std::string json = obs::TraceToJson();
  EXPECT_EQ(json, obs::TraceToJson());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  const size_t outer = json.find("\"name\":\"outer\"");
  const size_t inner = json.find("\"name\":\"inner\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  // Events are sorted by start time: the outer span opened first.
  EXPECT_LT(outer, inner);
  obs::ClearTrace();
  EXPECT_EQ(obs::TraceEventCount(), 0u);
}

TEST_F(ObsTest, SpansCostNothingWhenDisabled) {
  {
    DBTUNE_TRACE_SPAN("invisible");
  }
  EXPECT_EQ(obs::TraceEventCount(), 0u);
}

TEST_F(ObsTest, WriteTraceReportsUnwritablePath) {
  obs::SetTraceEnabled(true);
  {
    DBTUNE_TRACE_SPAN("event");
  }
  const Status bad = obs::WriteTrace("/nonexistent-dir-47/trace.json");
  EXPECT_FALSE(bad.ok());
  const std::string path = ::testing::TempDir() + "obs_trace_ok.json";
  EXPECT_TRUE(obs::WriteTrace(path).ok());
  EXPECT_NE(ReadFile(path).find("\"traceEvents\""), std::string::npos);
}

TEST_F(ObsTest, SessionLoggerResolvePathPrefersExplicit) {
  EXPECT_EQ(obs::SessionLogger::ResolvePath("/tmp/explicit.jsonl"),
            "/tmp/explicit.jsonl");
  // Default-constructed logger is off and logging is a no-op.
  obs::SessionLogger disabled;
  EXPECT_FALSE(disabled.enabled());
  disabled.Log(obs::SessionIterationRecord{});
}

TEST_F(ObsTest, SessionLoggerWritesOneJsonObjectPerLine) {
  const std::string path = ::testing::TempDir() + "obs_session_unit.jsonl";
  {
    obs::SessionLogger logger(path);
    ASSERT_TRUE(logger.enabled());
    obs::SessionIterationRecord record;
    record.iteration = 1;
    record.suggest_seconds = 0.25;
    record.score = -3.5;
    record.best_score = -3.5;
    logger.Log(record);
    record.iteration = 2;
    logger.Log(record);
  }
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"iter\":"), std::string::npos);
    // Field order is fixed: iteration first, improvement last.
    EXPECT_LT(line.find("\"iter\":"), line.find("\"suggest_s\":"));
    EXPECT_LT(line.find("\"score\":"), line.find("\"improvement_pct\":"));
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(ObsTest, SessionLoggerLineFormatIsPinned) {
  // The v-base line layout is a compatibility contract: with diagnostics
  // off it must stay byte-identical to the pre-diagnostics format.
  const std::string path = ::testing::TempDir() + "obs_session_pinned.jsonl";
  {
    obs::SessionLogger logger(path);
    obs::SessionIterationRecord record;
    record.iteration = 3;
    record.suggest_seconds = 0.25;
    record.evaluate_seconds = 1.5;
    record.observe_seconds = 0.125;
    record.score = -3.5;
    record.best_score = -2.25;
    record.improvement_percent = 12.5;
    logger.Log(record);
  }
  EXPECT_EQ(ReadFile(path),
            "{\"iter\":3,\"suggest_s\":0.250000000,"
            "\"evaluate_s\":1.500000000,\"observe_s\":0.125000000,"
            "\"score\":-3.5,\"best_score\":-2.25,"
            "\"improvement_pct\":12.5}\n");
}

TEST_F(ObsTest, SessionLoggerCloseIsIdempotent) {
  const std::string path = ::testing::TempDir() + "obs_session_close.jsonl";
  obs::SessionLogger logger(path);
  ASSERT_TRUE(logger.enabled());
  obs::SessionIterationRecord record;
  record.iteration = 1;
  logger.Log(record);
  logger.Close();
  EXPECT_FALSE(logger.enabled());
  logger.Close();  // second close is a no-op
  logger.Log(record);  // logging after close is a no-op, not a crash
  // The line written before Close survived; nothing was appended after.
  const std::string content = ReadFile(path);
  EXPECT_EQ(content.find("\"iter\":1,"), 1u);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 1);
}

TEST_F(ObsTest, SessionLoggerFlushesOnDestruction) {
  const std::string path = ::testing::TempDir() + "obs_session_flush.jsonl";
  {
    obs::SessionLogger logger(path);
    obs::SessionIterationRecord record;
    record.iteration = 7;
    logger.Log(record);
    // No explicit Close: the destructor must flush and close.
  }
  EXPECT_NE(ReadFile(path).find("\"iter\":7,"), std::string::npos);
}

// Concurrent recording: counters and histograms are lock-free and must
// not lose increments under a parallel fan-out (run under TSan via the
// `threading` label).
TEST_F(ObsTest, ConcurrentRecordingLosesNothing) {
  obs::ScopedMetricsForTest metrics_on;
  PoolSizeGuard guard(8);
  obs::Counter& counter =
      obs::MetricsRegistry::Get().counter("test.concurrent.counter");
  obs::Gauge& gauge =
      obs::MetricsRegistry::Get().gauge("test.concurrent.gauge");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Get().histogram("test.concurrent.hist");
  const size_t kEvents = 20'000;
  ParallelFor(GlobalPool(), 0, kEvents, /*grain=*/64,
              [&](size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  counter.Increment();
                  gauge.Add(1.0);
                  histogram.RecordNanos(i);
                }
              });
  EXPECT_EQ(counter.value(), kEvents);
  EXPECT_DOUBLE_EQ(gauge.value(), static_cast<double>(kEvents));
  EXPECT_EQ(histogram.count(), kEvents);
}

// Regression: the serve loop and the cadence exporter snapshot the same
// path concurrently. With a shared fixed ".tmp" name, one writer's
// truncation raced another's rename and a torn file could be published;
// per-call temp names keep every published snapshot complete.
TEST_F(ObsTest, ConcurrentSnapshotWritersNeverPublishTornFiles) {
  obs::ScopedMetricsForTest metrics_on;
  obs::MetricsRegistry::Get().counter("test.snapshot.counter").Increment();
  obs::MetricsRegistry::Get().gauge("test.snapshot.gauge").Set(4.0);
  const std::string expected = obs::RenderPrometheusRegistry();
  ASSERT_FALSE(expected.empty());

  const std::string path = ::testing::TempDir() + "concurrent_metrics.prom";
  std::remove(path.c_str());
  constexpr size_t kWriters = 4;
  constexpr size_t kWritesEach = 50;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&path] {
      for (size_t i = 0; i < kWritesEach; ++i) {
        EXPECT_TRUE(obs::WritePrometheusSnapshot(path).ok());
      }
    });
  }
  // The registry is static while the writers run, so every complete
  // snapshot renders the same bytes: any read observing anything else
  // caught a torn publish.
  for (int reads = 0; reads < 200; ++reads) {
    const std::string seen = ReadFile(path);
    if (!seen.empty()) {
      ASSERT_EQ(seen, expected) << "torn snapshot observed";
    }
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(ReadFile(path), expected);
  std::remove(path.c_str());
}

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

// The acceptance test of the observability layer: same seed + fake clock
// + single-lane pool → the session log and the trace file are
// byte-identical across runs.
TEST_F(ObsTest, SessionLogAndTraceAreByteIdenticalAcrossSameSeedRuns) {
  PoolSizeGuard guard(1);
  obs::ScopedMetricsForTest metrics_on;
  obs::SetTraceEnabled(true);

  auto run = [&](const std::string& tag) {
    // Rewind the fake clock and drop prior events so both runs start
    // from the identical observability state.
    obs::EnableFakeClockForTest();
    obs::ClearTrace();
    obs::MetricsRegistry::Get().Reset();

    SessionControls controls;
    controls.session_log_path =
        ::testing::TempDir() + "obs_golden_" + tag + ".jsonl";
    controls.trace_path = ::testing::TempDir() + "obs_golden_" + tag + ".trace";

    DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                      HardwareInstance::kB, /*seed=*/1);
    TuningEnvironment env(&sim, FirstKnobs(sim.space().dimension()));
    OptimizerOptions options;
    options.seed = 2;
    std::unique_ptr<Optimizer> optimizer =
        CreateOptimizer(OptimizerType::kSmac, env.space(), options);
    const SessionResult result =
        RunTuningSession(&env, optimizer.get(), /*iterations=*/12, controls);
    EXPECT_EQ(result.objective_trace.size(), 12u);
    return std::make_pair(ReadFile(controls.session_log_path),
                          ReadFile(controls.trace_path));
  };

  const auto [log_a, trace_a] = run("a");
  const auto [log_b, trace_b] = run("b");

  ASSERT_FALSE(log_a.empty());
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(log_a, log_b);
  EXPECT_EQ(trace_a, trace_b);

  // Shape checks: 12 JSONL lines, one per iteration; the trace is a
  // Chrome trace-event document containing the session spans.
  size_t lines = 0;
  for (char ch : log_a) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 12u);
  EXPECT_NE(log_a.find("\"iter\":1,"), std::string::npos);
  EXPECT_NE(log_a.find("\"iter\":12,"), std::string::npos);
  EXPECT_NE(trace_a.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_a.find("\"name\":\"session.iteration\""),
            std::string::npos);
  EXPECT_NE(trace_a.find("\"name\":\"smac.suggest\""), std::string::npos);

  // Metrics picked up the session too.
  const obs::Counter* iterations =
      obs::MetricsRegistry::Get().FindCounter("session.iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->value(), 12u);
}

}  // namespace
}  // namespace dbtune
