// The HeSBO-style low-dimensional projection: deterministic embedding,
// exact round-tripping through SnapUnit, biased special-value decoding,
// and the ProjectedOptimizer / SessionControls wiring end to end.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuning_session.h"
#include "dbms/simulator.h"
#include "knobs/catalog.h"
#include "knobs/projected_space.h"
#include "optimizer/projected_optimizer.h"
#include "util/random.h"

namespace dbtune {
namespace {

std::vector<double> RandomPoint(size_t dims, Rng& rng) {
  std::vector<double> z(dims);
  for (double& v : z) v = rng.Uniform();
  return z;
}

TEST(ProjectedSpaceTest, BoxIsAUnitHypercube) {
  const ConfigurationSpace space = SmallTestCatalog();
  ProjectionOptions options;
  options.dims = 4;
  const ProjectedConfigurationSpace projection(&space, options);
  EXPECT_EQ(projection.dims(), 4u);
  ASSERT_EQ(projection.box().dimension(), 4u);
  for (size_t j = 0; j < 4; ++j) {
    const Knob& z = projection.box().knob(j);
    EXPECT_EQ(z.min(), 0.0);
    EXPECT_EQ(z.max(), 1.0);
  }
}

TEST(ProjectedSpaceTest, EmbeddingIsSeedDeterministic) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  ProjectionOptions options;
  options.dims = 16;
  options.seed = 5;
  const ProjectedConfigurationSpace a(&space, options);
  const ProjectedConfigurationSpace b(&space, options);
  bool differs_from_other_seed = false;
  options.seed = 6;
  const ProjectedConfigurationSpace c(&space, options);
  for (size_t i = 0; i < space.dimension(); ++i) {
    EXPECT_EQ(a.target_dim(i), b.target_dim(i));
    EXPECT_EQ(a.sign(i), b.sign(i));
    EXPECT_LT(a.target_dim(i), 16u);
    if (a.target_dim(i) != c.target_dim(i) || a.sign(i) != c.sign(i)) {
      differs_from_other_seed = true;
    }
  }
  EXPECT_TRUE(differs_from_other_seed);
  // Every target dimension should receive some knobs at 212 → 16.
  std::set<size_t> used;
  for (size_t i = 0; i < space.dimension(); ++i) used.insert(a.target_dim(i));
  EXPECT_EQ(used.size(), 16u);
}

// The contract that lets optimizers treat decoded points as members of
// the full space: decoding always lands on a snapped representative, so
// re-snapping is a no-op (bitwise).
TEST(ProjectedSpaceTest, DecodeRoundTripsThroughSnapUnitExactly) {
  const ConfigurationSpace full = MySqlKnobCatalog();
  const ConfigurationSpace small = SmallTestCatalog();
  for (const ConfigurationSpace* space : {&full, &small}) {
    ProjectionOptions options;
    options.dims = 8;
    const ProjectedConfigurationSpace projection(space, options);
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
      const std::vector<double> z = RandomPoint(8, rng);
      const std::vector<double> unit = projection.DecodeUnit(z);
      ASSERT_EQ(unit.size(), space->dimension());
      const std::vector<double> snapped = space->SnapUnit(unit);
      for (size_t i = 0; i < unit.size(); ++i) {
        EXPECT_EQ(unit[i], snapped[i])
            << "knob " << space->knob(i).name() << " trial " << trial;
      }
    }
  }
}

TEST(ProjectedSpaceTest, DecodeClampsOutOfRangeInputs) {
  const ConfigurationSpace space = SmallTestCatalog();
  ProjectionOptions options;
  options.dims = 3;
  const ProjectedConfigurationSpace projection(&space, options);
  const std::vector<double> wild = {-4.0, 2.5, 1.0};
  const Configuration config = projection.Decode(wild);
  ASSERT_EQ(config.size(), space.dimension());
  for (size_t i = 0; i < space.dimension(); ++i) {
    EXPECT_GE(config[i], space.knob(i).min());
    EXPECT_LE(config[i], space.knob(i).max());
  }
}

// With the maximum special bias, a coordinate whose (sign-adjusted)
// value falls below the bias threshold decodes to the knob's default.
TEST(ProjectedSpaceTest, SpecialBiasReservesMassForDefaults) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  ProjectionOptions options;
  options.dims = 8;
  options.special_value_bias = 2.0;  // clamped to the 0.95 ceiling
  const ProjectedConfigurationSpace projection(&space, options);
  EXPECT_EQ(projection.options().special_value_bias, 0.95);

  const Configuration defaults = space.Default();
  const std::vector<double> z(8, 0.0);  // t = 0 for positive-sign knobs
  const Configuration decoded = projection.Decode(z);
  for (size_t i = 0; i < space.dimension(); ++i) {
    if (projection.sign(i) > 0) {
      EXPECT_EQ(decoded[i], defaults[i]) << space.knob(i).name();
    }
  }
}

TEST(ProjectedSpaceTest, ZeroBiasUsesFullRange) {
  const ConfigurationSpace space = SmallTestCatalog();
  ProjectionOptions options;
  options.dims = space.dimension();  // likely injective enough to move
  options.special_value_bias = 0.0;
  const ProjectedConfigurationSpace projection(&space, options);
  Rng rng(23);
  const Configuration defaults = space.Default();
  bool moved = false;
  for (int trial = 0; trial < 20 && !moved; ++trial) {
    const Configuration decoded =
        projection.Decode(RandomPoint(projection.dims(), rng));
    for (size_t i = 0; i < space.dimension(); ++i) {
      if (decoded[i] != defaults[i]) moved = true;
    }
  }
  EXPECT_TRUE(moved);
}

TEST(ProjectedOptimizerTest, SuggestsValidFullSpaceConfigurations) {
  const ConfigurationSpace space = MySqlKnobCatalog();
  OptimizerOptions options;
  options.seed = 3;
  options.initial_design = 5;
  ProjectionOptions projection;
  projection.dims = 8;
  ProjectedOptimizer optimizer(space, options, OptimizerType::kVanillaBo,
                               projection);
  EXPECT_EQ(optimizer.space().dimension(), space.dimension());
  for (int i = 0; i < 12; ++i) {
    const Configuration config = optimizer.Suggest();
    ASSERT_EQ(config.size(), space.dimension());
    for (size_t k = 0; k < space.dimension(); ++k) {
      EXPECT_GE(config[k], space.knob(k).min());
      EXPECT_LE(config[k], space.knob(k).max());
    }
    optimizer.Observe(config, -static_cast<double>(i));
  }
  EXPECT_EQ(optimizer.num_observations(), 12u);
  EXPECT_EQ(optimizer.inner().num_observations(), 12u);
  EXPECT_NE(optimizer.name().find("Projected"), std::string::npos);
}

TEST(ProjectedOptimizerTest, SessionControlsEnableProjection) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 11);
  std::vector<size_t> knob_indices;
  for (size_t i = 0; i < 20; ++i) knob_indices.push_back(i);
  SessionControls controls;
  controls.projection_dims = 6;
  controls.projection_seed = 4;
  const SessionResult result = RunTuningSession(
      &sim, knob_indices, OptimizerType::kVanillaBo, 18, 11, controls);
  ASSERT_EQ(result.improvement_trace.size(), 18u);
  EXPECT_TRUE(std::isfinite(result.final_improvement));
  EXPECT_GE(result.best_iteration, 1u);
}

}  // namespace
}  // namespace dbtune
