#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "dbms/environment.h"
#include "knobs/catalog.h"
#include "transfer/fine_tune.h"
#include "transfer/repository.h"
#include "transfer/rgpe.h"
#include "transfer/workload_mapping.h"

namespace dbtune {
namespace {

// Builds a repository with one task whose surface matches `target` and one
// adversarial task with inverted scores.
ObservationRepository MakeRepository(const ConfigurationSpace& space,
                                     uint64_t seed) {
  ObservationRepository repo;
  Rng rng(seed);
  SourceTask helpful, adversarial;
  helpful.name = "helpful";
  adversarial.name = "adversarial";
  for (int i = 0; i < 60; ++i) {
    std::vector<double> u(space.dimension());
    for (double& v : u) v = rng.Uniform();
    // Shared synthetic truth: peak at 0.8 in dim 0.
    const double score = -(u[0] - 0.8) * (u[0] - 0.8);
    helpful.unit_x.push_back(u);
    helpful.scores.push_back(score);
    adversarial.unit_x.push_back(u);
    adversarial.scores.push_back(-score);  // inverted: misleading
  }
  helpful.metric_signature.assign(40, 0.0);
  adversarial.metric_signature.assign(40, 1.0);
  repo.AddTask(helpful);
  repo.AddTask(adversarial);
  return repo;
}

ConfigurationSpace MakeSpace() {
  std::vector<Knob> knobs;
  for (int i = 0; i < 4; ++i) {
    std::string name = "x";
    name += std::to_string(i);  // avoids gcc-12 -Wrestrict false positive
    knobs.push_back(Knob::Continuous(name, 0.0, 1.0, 0.5));
  }
  return ConfigurationSpace(std::move(knobs));
}

double TargetObjective(const Configuration& c) {
  return -(c[0] - 0.8) * (c[0] - 0.8) - 0.2 * (c[1] - 0.3) * (c[1] - 0.3);
}

TEST(RepositoryTest, FromHistoryAggregates) {
  const ConfigurationSpace space = MakeSpace();
  std::vector<Observation> history;
  Observation a;
  a.config = Configuration({0.1, 0.2, 0.3, 0.4});
  a.score = 1.0;
  a.internal_metrics = {1.0, 3.0};
  history.push_back(a);
  Observation b;
  b.config = Configuration({0.5, 0.5, 0.5, 0.5});
  b.score = 2.0;
  b.internal_metrics = {3.0, 5.0};
  history.push_back(b);
  Observation failed;
  failed.config = Configuration({0.9, 0.9, 0.9, 0.9});
  failed.score = 0.5;
  failed.failed = true;
  failed.internal_metrics = {100.0, 100.0};
  history.push_back(failed);

  const SourceTask task =
      ObservationRepository::FromHistory("t", space, history);
  EXPECT_EQ(task.unit_x.size(), 3u);
  EXPECT_EQ(task.scores.size(), 3u);
  ASSERT_EQ(task.metric_signature.size(), 2u);
  // Failed observation excluded from the signature.
  EXPECT_DOUBLE_EQ(task.metric_signature[0], 2.0);
  EXPECT_DOUBLE_EQ(task.metric_signature[1], 4.0);
}

// Regression: a history mixing metric arities (recorded across collector
// versions) used to read past the end of the shorter vector. Under asan
// this test fails outright without the clamp.
TEST(RepositoryTest, FromHistoryClampsMismatchedMetricArity) {
  const ConfigurationSpace space = MakeSpace();
  std::vector<Observation> history;
  Observation wide;
  wide.config = Configuration({0.1, 0.2, 0.3, 0.4});
  wide.score = 1.0;
  wide.internal_metrics = {2.0, 4.0, 6.0};
  history.push_back(wide);
  Observation narrow;
  narrow.config = Configuration({0.5, 0.5, 0.5, 0.5});
  narrow.score = 2.0;
  narrow.internal_metrics = {4.0};  // shorter than the first observation
  history.push_back(narrow);

  const SourceTask task =
      ObservationRepository::FromHistory("t", space, history);
  // Signature keeps the first observation's width; the short vector only
  // contributes to the dimensions it has.
  ASSERT_EQ(task.metric_signature.size(), 3u);
  EXPECT_DOUBLE_EQ(task.metric_signature[0], 3.0);  // (2 + 4) / 2
  EXPECT_DOUBLE_EQ(task.metric_signature[1], 2.0);  // 4 / 2
  EXPECT_DOUBLE_EQ(task.metric_signature[2], 3.0);  // 6 / 2
}

TEST(RepositoryTest, FromHistoryEmptyHistoryYieldsEmptyTask) {
  const ConfigurationSpace space = MakeSpace();
  const SourceTask task = ObservationRepository::FromHistory("t", space, {});
  EXPECT_TRUE(task.unit_x.empty());
  EXPECT_TRUE(task.scores.empty());
  EXPECT_TRUE(task.metric_signature.empty());
}

TEST(RepositoryTest, StandardizeScores) {
  const std::vector<double> z = StandardizeScores({1.0, 2.0, 3.0});
  EXPECT_NEAR(z[0] + z[1] + z[2], 0.0, 1e-12);
  EXPECT_GT(z[2], z[1]);
  // Constant input stays finite.
  for (double v : StandardizeScores({5.0, 5.0})) {
    EXPECT_TRUE(std::isfinite(v));
  }
  // Regression: empty input used to divide 0/0 and return NaN-poisoned
  // state downstream; it must simply produce an empty vector.
  EXPECT_TRUE(StandardizeScores({}).empty());
}

TEST(WorkloadMappingTest, MapsToNearestSignature) {
  const ConfigurationSpace space = MakeSpace();
  const ObservationRepository repo = MakeRepository(space, 1);
  OptimizerOptions options;
  options.seed = 2;
  options.initial_design = 4;
  WorkloadMappingOptimizer mapping(space, options, &repo,
                                   TransferBase::kSmac);
  Rng rng(3);
  // Feed observations whose metrics sit at the helpful task's signature.
  const std::vector<double> metrics(40, 0.05);
  for (int i = 0; i < 8; ++i) {
    const Configuration c = mapping.Suggest();
    mapping.ObserveWithMetrics(c, TargetObjective(c), metrics);
  }
  mapping.Suggest();  // triggers mapping with enough data
  EXPECT_EQ(mapping.mapped_task(), 0);  // the helpful task
  EXPECT_EQ(mapping.name(), "Mapping (SMAC)");
}

TEST(WorkloadMappingTest, SuggestionsValidForBothBases) {
  const ConfigurationSpace space = MakeSpace();
  const ObservationRepository repo = MakeRepository(space, 4);
  for (TransferBase base :
       {TransferBase::kSmac, TransferBase::kMixedKernelBo}) {
    OptimizerOptions options;
    options.seed = 5;
    options.initial_design = 4;
    options.acquisition_candidates = 60;
    WorkloadMappingOptimizer mapping(space, options, &repo, base);
    const std::vector<double> metrics(40, 0.0);
    for (int i = 0; i < 12; ++i) {
      const Configuration c = mapping.Suggest();
      EXPECT_TRUE(space.Validate(c).ok());
      mapping.ObserveWithMetrics(c, TargetObjective(c), metrics);
    }
  }
}

TEST(RgpeTest, MixtureMeanVarMatchesHandComputedMixture) {
  // Two-model mixture, hand-computed: w = {0.5, 0.5}, μ = {−1, 1},
  // σ² = {0.25, 0.25}. Mean = 0.5·(−1) + 0.5·1 = 0. Second moment =
  // 0.5·(1 + 0.25) + 0.5·(1 + 0.25) = 1.25, so variance = 1.25 − 0² =
  // 1.25. The pre-fix formula Σ wᵢ²σᵢ² would report 0.125 — it drops the
  // disagreement between the model means entirely.
  double mean = 0.0, variance = 0.0;
  MixtureMeanVar({0.5, 0.5}, {-1.0, 1.0}, {0.25, 0.25}, &mean, &variance);
  EXPECT_DOUBLE_EQ(mean, 0.0);
  EXPECT_DOUBLE_EQ(variance, 1.25);

  // Degenerate one-model "mixture" must reduce to that model's moments.
  MixtureMeanVar({1.0}, {0.7}, {0.09}, &mean, &variance);
  EXPECT_DOUBLE_EQ(mean, 0.7);
  EXPECT_NEAR(variance, 0.09, 1e-15);

  // Agreeing means: variance is exactly the weighted within-model
  // variance (no between-model spread).
  MixtureMeanVar({0.25, 0.75}, {2.0, 2.0}, {1.0, 0.2}, &mean, &variance);
  EXPECT_DOUBLE_EQ(mean, 2.0);
  EXPECT_NEAR(variance, 0.25 * 1.0 + 0.75 * 0.2, 1e-12);
}

TEST(RgpeTest, DownweightsAdversarialTask) {
  const ConfigurationSpace space = MakeSpace();
  const ObservationRepository repo = MakeRepository(space, 6);
  OptimizerOptions options;
  options.seed = 7;
  options.initial_design = 8;
  options.acquisition_candidates = 60;
  RgpeOptimizer rgpe(space, options, &repo, TransferBase::kSmac);
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Configuration c = rgpe.Suggest();
    rgpe.Observe(c, TargetObjective(c));
  }
  // Weights: [helpful, adversarial, target]. The adversarial task must
  // carry (near-)zero weight.
  const std::vector<double>& weights = rgpe.last_weights();
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_LT(weights[1], 0.15);
  EXPECT_GT(weights[0] + weights[2], 0.8);
  EXPECT_EQ(rgpe.name(), "RGPE (SMAC)");
}

TEST(RgpeTest, HelpfulSourceAcceleratesEarlyIterations) {
  const ConfigurationSpace space = MakeSpace();
  const ObservationRepository repo = MakeRepository(space, 9);

  auto run = [&](bool with_transfer, uint64_t seed) {
    OptimizerOptions options;
    options.seed = seed;
    options.initial_design = 5;
    options.acquisition_candidates = 60;
    std::unique_ptr<Optimizer> optimizer;
    if (with_transfer) {
      optimizer = std::make_unique<RgpeOptimizer>(space, options, &repo,
                                                  TransferBase::kSmac);
    } else {
      optimizer = CreateOptimizer(OptimizerType::kSmac, space, options);
    }
    double best = -1e300;
    for (int i = 0; i < 25; ++i) {
      const Configuration c = optimizer->Suggest();
      const double s = TargetObjective(c);
      optimizer->Observe(c, s);
      best = std::max(best, s);
    }
    return best;
  };

  double rgpe_total = 0.0, base_total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    rgpe_total += run(true, seed);
    base_total += run(false, seed);
  }
  // Transfer should at least not hurt on a matched source (and typically
  // helps within this small budget).
  EXPECT_GE(rgpe_total, base_total - 0.02);
}

TEST(FineTuneTest, PretrainProducesWeightsAndRepository) {
  // Tiny pre-training run over two source workloads on the small catalog
  // knob subset of the full catalog.
  std::vector<size_t> knob_indices;
  for (size_t i = 0; i < 6; ++i) knob_indices.push_back(i);
  PretrainOptions options;
  options.iterations_per_source = 12;
  ObservationRepository repo;
  Result<DdpgOptimizer::Weights> weights = PretrainDdpgOnSources(
      {WorkloadId::kVoter, WorkloadId::kTatp}, knob_indices, options, &repo);
  ASSERT_TRUE(weights.ok());
  EXPECT_FALSE(weights->actor.empty());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.tasks()[0].unit_x.size(), 12u);

  // Fine-tuned optimizer accepts the weights.
  const ConfigurationSpace space = MySqlKnobCatalog().Project(knob_indices);
  OptimizerOptions optimizer_options;
  Result<std::unique_ptr<DdpgOptimizer>> ddpg =
      MakeFineTunedDdpg(space, optimizer_options, *weights);
  ASSERT_TRUE(ddpg.ok());
  EXPECT_EQ((*ddpg)->ExportWeights().actor, weights->actor);
}

TEST(FineTuneTest, RejectsEmptySources) {
  EXPECT_FALSE(
      PretrainDdpgOnSources({}, {0, 1}, PretrainOptions{}, nullptr).ok());
}

}  // namespace
}  // namespace dbtune
