// The incremental-fit contract of the GP surrogate: a bordered Cholesky
// append must be bitwise indistinguishable from a full refactorization —
// factor, alpha, and log marginal likelihood — at any pool size, and the
// cache must fall back (and forget stale hyper-parameters) whenever the
// training set stops being an extension of the previous one.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/random_forest.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

// Restores the previous pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(size_t n)
      : original_(ExecutionContext::Get().num_threads()) {
    ExecutionContext::Get().SetNumThreads(n);
  }
  ~PoolSizeGuard() { ExecutionContext::Get().SetNumThreads(original_); }

 private:
  size_t original_;
};

FeatureMatrix MakeInputs(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x(n, std::vector<double>(d));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  return x;
}

std::vector<double> MakeTargets(const FeatureMatrix& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double s = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      s += std::sin(3.0 * row[j]) * static_cast<double>(j + 1);
    }
    y.push_back(s);
  }
  return y;
}

GaussianProcessOptions NoHyperoptRefresh(bool incremental) {
  GaussianProcessOptions options;
  options.hyperopt_every = 1000;  // grid search on the first fit only
  options.enable_incremental = incremental;
  return options;
}

uint64_t IncrementalFitCount() {
  const obs::Histogram* hist =
      obs::MetricsRegistry::Get().FindHistogram("gp.fit.incremental");
  return hist == nullptr ? 0 : hist->count();
}

// Fits both GPs on a growing prefix of (x, y), appending `step` rows per
// round, and asserts factor, alpha, noise, and LML stay bitwise equal.
void ExpectIdenticalFitSequence(GaussianProcess* incremental,
                                GaussianProcess* full,
                                const FeatureMatrix& x,
                                const std::vector<double>& y, size_t start,
                                size_t step) {
  for (size_t n = start; n <= x.size(); n += step) {
    const FeatureMatrix head_x(x.begin(), x.begin() + n);
    const std::vector<double> head_y(y.begin(), y.begin() + n);
    ASSERT_TRUE(incremental->Fit(head_x, head_y).ok());
    ASSERT_TRUE(full->Fit(head_x, head_y).ok());
    EXPECT_EQ(incremental->log_marginal_likelihood(),
              full->log_marginal_likelihood());
    EXPECT_EQ(incremental->noise(), full->noise());
    EXPECT_EQ(incremental->kernel().lengthscale(),
              full->kernel().lengthscale());
    EXPECT_EQ(incremental->alpha(), full->alpha());
    EXPECT_EQ(incremental->cholesky_factor().data(),
              full->cholesky_factor().data());
  }
}

TEST(GpIncrementalTest, BorderedAppendMatchesFullRefactorization) {
  const FeatureMatrix x = MakeInputs(48, 5, 11);
  const std::vector<double> y = MakeTargets(x);
  // The equality must hold at every pool size (the appended kernel border
  // and the batch solves are parallelized).
  for (size_t pool : {1u, 2u, 8u}) {
    PoolSizeGuard guard(pool);
    GaussianProcess incremental(std::make_unique<Matern52Kernel>(),
                                NoHyperoptRefresh(true));
    GaussianProcess full(std::make_unique<Matern52Kernel>(),
                         NoHyperoptRefresh(false));
    ExpectIdenticalFitSequence(&incremental, &full, x, y, /*start=*/20,
                               /*step=*/1);
  }
}

TEST(GpIncrementalTest, MultiRowAppendMatchesFullRefactorization) {
  const FeatureMatrix x = MakeInputs(60, 4, 13);
  const std::vector<double> y = MakeTargets(x);
  GaussianProcess incremental(std::make_unique<RbfKernel>(),
                              NoHyperoptRefresh(true));
  GaussianProcess full(std::make_unique<RbfKernel>(),
                       NoHyperoptRefresh(false));
  ExpectIdenticalFitSequence(&incremental, &full, x, y, /*start=*/12,
                             /*step=*/6);
}

TEST(GpIncrementalTest, IncrementalPathActuallyRuns) {
  // Guard against the equality tests passing vacuously because every fit
  // silently fell back to a full refactorization.
  obs::ScopedMetricsForTest metrics_on;
  const uint64_t before = IncrementalFitCount();
  const FeatureMatrix x = MakeInputs(30, 3, 17);
  const std::vector<double> y = MakeTargets(x);
  GaussianProcess gp(std::make_unique<Matern52Kernel>(),
                     NoHyperoptRefresh(true));
  for (size_t n = 10; n <= x.size(); n += 5) {
    const FeatureMatrix head_x(x.begin(), x.begin() + n);
    const std::vector<double> head_y(y.begin(), y.begin() + n);
    ASSERT_TRUE(gp.Fit(head_x, head_y).ok());
  }
  // First fit runs the grid; the four extensions all append.
  EXPECT_EQ(IncrementalFitCount() - before, 4u);
}

TEST(GpIncrementalTest, ShrunkHistoryFallsBackAndRefreshesHyperopt) {
  const FeatureMatrix x = MakeInputs(36, 4, 19);
  const std::vector<double> y = MakeTargets(x);
  GaussianProcessOptions options;  // hyperopt_every = 5, incremental on
  GaussianProcess gp(std::make_unique<Matern52Kernel>(), options);
  ASSERT_TRUE(gp.Fit(x, y).ok());

  // Shrink to a prefix: the cached factor no longer applies, and the
  // cached hyper-parameters belong to data that no longer exists (the
  // TuRBO-restart hazard) — the fit must rerun the grid search, making
  // it bitwise identical to a fresh GP's first fit.
  const FeatureMatrix head_x(x.begin(), x.begin() + 15);
  const std::vector<double> head_y(y.begin(), y.begin() + 15);
  ASSERT_TRUE(gp.Fit(head_x, head_y).ok());
  GaussianProcess fresh(std::make_unique<Matern52Kernel>(), options);
  ASSERT_TRUE(fresh.Fit(head_x, head_y).ok());
  EXPECT_EQ(gp.log_marginal_likelihood(), fresh.log_marginal_likelihood());
  EXPECT_EQ(gp.noise(), fresh.noise());
  EXPECT_EQ(gp.kernel().lengthscale(), fresh.kernel().lengthscale());
  EXPECT_EQ(gp.alpha(), fresh.alpha());
  EXPECT_EQ(gp.cholesky_factor().data(), fresh.cholesky_factor().data());
}

TEST(GpIncrementalTest, WholesaleReplacementRefreshesHyperopt) {
  const FeatureMatrix x_a = MakeInputs(30, 4, 23);
  const std::vector<double> y_a = MakeTargets(x_a);
  // Same size, different rows: not an extension.
  const FeatureMatrix x_b = MakeInputs(30, 4, 29);
  const std::vector<double> y_b = MakeTargets(x_b);

  GaussianProcessOptions options;
  GaussianProcess gp(std::make_unique<RbfKernel>(), options);
  ASSERT_TRUE(gp.Fit(x_a, y_a).ok());
  ASSERT_TRUE(gp.Fit(x_b, y_b).ok());

  GaussianProcess fresh(std::make_unique<RbfKernel>(), options);
  ASSERT_TRUE(fresh.Fit(x_b, y_b).ok());
  EXPECT_EQ(gp.log_marginal_likelihood(), fresh.log_marginal_likelihood());
  EXPECT_EQ(gp.kernel().lengthscale(), fresh.kernel().lengthscale());
  EXPECT_EQ(gp.alpha(), fresh.alpha());
  EXPECT_EQ(gp.cholesky_factor().data(), fresh.cholesky_factor().data());
}

TEST(GpIncrementalTest, HyperoptIterationsInterleaveWithAppends) {
  // With hyperopt_every = 2 every other fit reruns the grid; incremental
  // and full GPs must still agree bitwise across the whole schedule.
  const FeatureMatrix x = MakeInputs(40, 4, 31);
  const std::vector<double> y = MakeTargets(x);
  GaussianProcessOptions on;
  on.hyperopt_every = 2;
  GaussianProcessOptions off = on;
  off.enable_incremental = false;
  GaussianProcess incremental(std::make_unique<Matern52Kernel>(), on);
  GaussianProcess full(std::make_unique<Matern52Kernel>(), off);
  ExpectIdenticalFitSequence(&incremental, &full, x, y, /*start=*/14,
                             /*step=*/2);
}

TEST(GpIncrementalTest, BatchedPredictMatchesScalarBitwise) {
  const FeatureMatrix x = MakeInputs(50, 5, 37);
  const std::vector<double> y = MakeTargets(x);
  const FeatureMatrix queries = MakeInputs(33, 5, 41);
  for (size_t pool : {1u, 2u, 8u}) {
    PoolSizeGuard guard(pool);
    GaussianProcess gp(std::make_unique<Matern52Kernel>());
    ASSERT_TRUE(gp.Fit(x, y).ok());
    std::vector<double> batch_means, batch_vars;
    gp.PredictMeanVarBatch(queries, &batch_means, &batch_vars);
    ASSERT_EQ(batch_means.size(), queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      double mean = 0.0, var = 0.0;
      gp.PredictMeanVar(queries[q], &mean, &var);
      EXPECT_EQ(batch_means[q], mean);
      EXPECT_EQ(batch_vars[q], var);
    }
  }
}

TEST(GpIncrementalTest, DefaultBatchMatchesScalarForForests) {
  // The Regressor-level default (parallel scalar loop) must also be
  // bitwise faithful — RGPE mixes forests and GPs through it.
  const FeatureMatrix x = MakeInputs(80, 5, 43);
  const std::vector<double> y = MakeTargets(x);
  const FeatureMatrix queries = MakeInputs(25, 5, 47);
  RandomForestOptions options;
  options.num_trees = 30;
  options.seed = 53;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(x, y).ok());
  std::vector<double> batch_means, batch_vars;
  forest.PredictMeanVarBatch(queries, &batch_means, &batch_vars);
  for (size_t q = 0; q < queries.size(); ++q) {
    double mean = 0.0, var = 0.0;
    forest.PredictMeanVar(queries[q], &mean, &var);
    EXPECT_EQ(batch_means[q], mean);
    EXPECT_EQ(batch_vars[q], var);
  }
}

TEST(GpIncrementalTest, PredictionsAfterAppendMatchFullRefit) {
  // End to end: posterior queries after several appends agree bitwise
  // with a GP that refit from scratch every round.
  const FeatureMatrix x = MakeInputs(45, 4, 59);
  const std::vector<double> y = MakeTargets(x);
  const FeatureMatrix queries = MakeInputs(20, 4, 61);
  GaussianProcess incremental(std::make_unique<Matern52Kernel>(),
                              NoHyperoptRefresh(true));
  GaussianProcess full(std::make_unique<Matern52Kernel>(),
                       NoHyperoptRefresh(false));
  for (size_t n = 15; n <= x.size(); n += 3) {
    const FeatureMatrix head_x(x.begin(), x.begin() + n);
    const std::vector<double> head_y(y.begin(), y.begin() + n);
    ASSERT_TRUE(incremental.Fit(head_x, head_y).ok());
    ASSERT_TRUE(full.Fit(head_x, head_y).ok());
  }
  std::vector<double> inc_means, inc_vars, full_means, full_vars;
  incremental.PredictMeanVarBatch(queries, &inc_means, &inc_vars);
  full.PredictMeanVarBatch(queries, &full_means, &full_vars);
  EXPECT_EQ(inc_means, full_means);
  EXPECT_EQ(inc_vars, full_vars);
}

}  // namespace
}  // namespace dbtune
