#include "importance/importance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "importance/ablation.h"
#include "importance/gini.h"
#include "importance/lasso.h"
#include "importance/shap.h"
#include "sampling/latin_hypercube.h"
#include "util/random.h"
#include "util/stats.h"

namespace dbtune {
namespace {

// A synthetic 8-knob space with known ground truth:
//   knob 0: improvable (gain up to +2 away from default 0.0)
//   knob 1: risky (default 0.5 optimal; changing only hurts, up to -2)
//   knob 2: improvable, weaker (+0.8)
//   knobs 3..7: noise.
ConfigurationSpace MakeSyntheticSpace() {
  std::vector<Knob> knobs;
  knobs.push_back(Knob::Continuous("improvable_strong", 0.0, 1.0, 0.0));
  knobs.push_back(Knob::Continuous("risky", 0.0, 1.0, 0.5));
  knobs.push_back(Knob::Continuous("improvable_weak", 0.0, 1.0, 0.0));
  for (int i = 3; i < 8; ++i) {
    std::string name = "noise_";
    name += std::to_string(i);  // avoids gcc-12 -Wrestrict false positive
    knobs.push_back(Knob::Continuous(name, 0.0, 1.0, 0.5));
  }
  return ConfigurationSpace(std::move(knobs));
}

double SyntheticScore(const Configuration& c) {
  double score = 0.0;
  score += 2.0 * c[0];                              // improvable, linear
  score += -8.0 * (c[1] - 0.5) * (c[1] - 0.5);      // risky quadratic
  score += 0.8 * c[2];                              // improvable, weak
  return score;
}

ImportanceInput MakeSyntheticInput(size_t n, uint64_t seed) {
  static const ConfigurationSpace* space =
      new ConfigurationSpace(MakeSyntheticSpace());
  ImportanceInput input;
  input.space = space;
  Rng rng(seed);
  for (const Configuration& c : LatinHypercubeSample(*space, n, rng)) {
    input.unit_x.push_back(space->ToUnit(c));
    input.scores.push_back(SyntheticScore(c) + rng.Gaussian(0.0, 0.01));
  }
  input.default_unit = space->ToUnit(space->Default());
  input.default_score = SyntheticScore(space->Default());
  return input;
}

TEST(ImportanceTest, TopKnobsOrdersByScore) {
  const std::vector<double> importance = {0.1, 5.0, 3.0, 0.0};
  EXPECT_EQ(TopKnobs(importance, 2), (std::vector<size_t>{1, 2}));
  EXPECT_EQ(TopKnobs(importance, 10).size(), 4u);
}

TEST(ImportanceTest, MakeInputValidates) {
  const ConfigurationSpace space = MakeSyntheticSpace();
  EXPECT_FALSE(MakeImportanceInput(space, {}, {}, space.Default(), 0.0).ok());
  std::vector<Configuration> configs = {space.Default()};
  EXPECT_FALSE(
      MakeImportanceInput(space, configs, {1.0, 2.0}, space.Default(), 0.0)
          .ok());
  Result<ImportanceInput> ok =
      MakeImportanceInput(space, configs, {1.0}, space.Default(), 1.0);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->unit_x.size(), 1u);
}

TEST(ImportanceTest, MeasurementNames) {
  for (MeasurementType type : AllMeasurements()) {
    std::unique_ptr<ImportanceMeasure> measure =
        CreateImportanceMeasure(type);
    EXPECT_EQ(measure->name(), MeasurementTypeName(type));
  }
  EXPECT_EQ(AllMeasurements().size(), 5u);
}

class MeasurementSweepTest
    : public ::testing::TestWithParam<MeasurementType> {};

TEST_P(MeasurementSweepTest, ReturnsFullNonNegativeVector) {
  const ImportanceInput input = MakeSyntheticInput(300, 1);
  std::unique_ptr<ImportanceMeasure> measure =
      CreateImportanceMeasure(GetParam(), 13);
  Result<std::vector<double>> importance = measure->Rank(input);
  ASSERT_TRUE(importance.ok());
  ASSERT_EQ(importance->size(), 8u);
  for (double v : *importance) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

TEST_P(MeasurementSweepTest, SignalBeatsNoise) {
  const ImportanceInput input = MakeSyntheticInput(500, 2);
  std::unique_ptr<ImportanceMeasure> measure =
      CreateImportanceMeasure(GetParam(), 17);
  Result<std::vector<double>> importance = measure->Rank(input);
  ASSERT_TRUE(importance.ok());
  // The strong improvable knob must beat every pure-noise knob for every
  // measurement.
  for (size_t j = 3; j < 8; ++j) {
    EXPECT_GT((*importance)[0], (*importance)[j])
        << MeasurementTypeName(GetParam()) << " vs noise knob " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasurements, MeasurementSweepTest,
    ::testing::ValuesIn(AllMeasurements()),
    [](const ::testing::TestParamInfo<MeasurementType>& info) {
      return MeasurementTypeName(info.param);
    });

TEST(ImportanceTest, VarianceMeasuresRankRiskyHigh) {
  // Gini / fANOVA see variance, so the risky knob (large swings) ranks
  // above the weak improvable one.
  const ImportanceInput input = MakeSyntheticInput(600, 3);
  for (MeasurementType type :
       {MeasurementType::kGini, MeasurementType::kFanova}) {
    std::unique_ptr<ImportanceMeasure> measure =
        CreateImportanceMeasure(type, 19);
    Result<std::vector<double>> importance = measure->Rank(input);
    ASSERT_TRUE(importance.ok());
    EXPECT_GT((*importance)[1], (*importance)[2])
        << MeasurementTypeName(type);
  }
}

TEST(ImportanceTest, ShapRanksTunabilityNotVariance) {
  // SHAP credits only positive (gain) contributions: the risky knob's
  // tunability is ~zero, so both improvable knobs must out-rank it.
  const ImportanceInput input = MakeSyntheticInput(600, 4);
  ShapImportance shap(ShapOptions{}, 23);
  Result<std::vector<double>> importance = shap.Rank(input);
  ASSERT_TRUE(importance.ok());
  EXPECT_GT((*importance)[0], (*importance)[1]);
  EXPECT_GT((*importance)[2], (*importance)[1]);
}

TEST(ImportanceTest, LassoReportsFitQuality) {
  const ImportanceInput input = MakeSyntheticInput(400, 5);
  LassoImportance lasso;
  ASSERT_TRUE(lasso.Rank(input).ok());
  // Linear+quadratic features describe this synthetic surface well.
  EXPECT_GT(lasso.last_fit_r_squared(), 0.8);
}

TEST(ImportanceTest, GiniStableAcrossSubsamples) {
  // Figure 4's stability property: top-3 sets from disjoint halves agree.
  const ImportanceInput full = MakeSyntheticInput(800, 6);
  ImportanceInput half_a, half_b;
  half_a.space = half_b.space = full.space;
  half_a.default_unit = half_b.default_unit = full.default_unit;
  half_a.default_score = half_b.default_score = full.default_score;
  for (size_t i = 0; i < full.unit_x.size(); ++i) {
    ImportanceInput& target = (i % 2 == 0) ? half_a : half_b;
    target.unit_x.push_back(full.unit_x[i]);
    target.scores.push_back(full.scores[i]);
  }
  GiniImportance gini(29);
  Result<std::vector<double>> ia = gini.Rank(half_a);
  Result<std::vector<double>> ib = gini.Rank(half_b);
  ASSERT_TRUE(ia.ok() && ib.ok());
  const double iou =
      IntersectionOverUnion(TopKnobs(*ia, 3), TopKnobs(*ib, 3));
  EXPECT_GE(iou, 0.5);
}

TEST(ImportanceTest, AblationZeroOnFlatSurface) {
  // When every sample scores identically (e.g. all failed configurations
  // substituted with the worst-seen value), ablation paths credit no
  // improvement to any knob.
  const ConfigurationSpace space = MakeSyntheticSpace();
  ImportanceInput input;
  input.space = &space;
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    const Configuration c = space.SampleUniform(rng);
    input.unit_x.push_back(space.ToUnit(c));
    input.scores.push_back(-5.0);
  }
  input.default_unit = space.ToUnit(space.Default());
  input.default_score = 0.0;
  AblationImportance ablation;
  Result<std::vector<double>> importance = ablation.Rank(input);
  ASSERT_TRUE(importance.ok());
  for (double v : *importance) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(ImportanceTest, AblationCreditsGainKnobsOverRisky) {
  // Ablation walks toward better-than-default targets; gains concentrate
  // on the knobs whose change helps (0, 2), not the risky knob (1).
  const ImportanceInput input = MakeSyntheticInput(500, 8);
  AblationImportance ablation(AblationOptions{}, 31);
  Result<std::vector<double>> importance = ablation.Rank(input);
  ASSERT_TRUE(importance.ok());
  EXPECT_GT((*importance)[0], (*importance)[1]);
}

}  // namespace
}  // namespace dbtune
