// Tuner-quality diagnostics and telemetry export: regret/stall
// accounting, one-step-ahead calibration (hand-computed and on a
// well-specified GP task), per-session labeled metrics, the Prometheus
// renderer (escaping, labels, atomic snapshots, cadence), the session
// JSONL diag fields, and the markdown report generator.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuning_session.h"
#include "dbtune_report_lib.h"
#include "knobs/catalog.h"
#include "obs/clock.h"
#include "obs/diagnostics.h"
#include "obs/metrics.h"
#include "obs/metrics_export.h"
#include "obs/session_log.h"
#include "obs/trace.h"
#include "surrogate/gaussian_process.h"
#include "util/matrix.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace dbtune {
namespace {

// Restores the previous pool size even when an assertion fails.
class PoolSizeGuard {
 public:
  explicit PoolSizeGuard(size_t n)
      : original_(ExecutionContext::Get().num_threads()) {
    ExecutionContext::Get().SetNumThreads(n);
  }
  ~PoolSizeGuard() { ExecutionContext::Get().SetNumThreads(original_); }

 private:
  size_t original_;
};

// Every test starts and ends with observability fully off and empty.
class DiagnosticsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetObsState(); }
  void TearDown() override { ResetObsState(); }

  static void ResetObsState() {
    obs::SetMetricsEnabled(false);
    obs::SetTraceEnabled(false);
    obs::DisableFakeClockForTest();
    obs::ClearTrace();
    obs::MetricsRegistry::Get().Reset();
  }
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST_F(DiagnosticsTest, RegretAndStallAccounting) {
  obs::TuningDiagnosticsOptions options;
  options.ewma_alpha = 0.5;
  obs::TuningDiagnostics diag(options);

  // First observation defines the incumbent: zero regret, zero stall.
  obs::IterationDiagnostics d = diag.Record({}, 1.0);
  EXPECT_EQ(d.iteration, 1u);
  EXPECT_DOUBLE_EQ(d.simple_regret, 0.0);
  EXPECT_DOUBLE_EQ(d.cumulative_regret, 0.0);
  EXPECT_EQ(d.iterations_since_improvement, 0u);
  EXPECT_DOUBLE_EQ(d.improvement_ewma, 0.0);

  // Improvement by 2: regret stays zero, EWMA picks up alpha * 2.
  d = diag.Record({}, 3.0);
  EXPECT_DOUBLE_EQ(d.simple_regret, 0.0);
  EXPECT_DOUBLE_EQ(d.cumulative_regret, 0.0);
  EXPECT_EQ(d.iterations_since_improvement, 0u);
  EXPECT_DOUBLE_EQ(d.improvement_ewma, 1.0);

  // Below the incumbent: regret 1, first stalled iteration, EWMA decays.
  d = diag.Record({}, 2.0);
  EXPECT_DOUBLE_EQ(d.simple_regret, 1.0);
  EXPECT_DOUBLE_EQ(d.cumulative_regret, 1.0);
  EXPECT_EQ(d.iterations_since_improvement, 1u);
  EXPECT_DOUBLE_EQ(d.improvement_ewma, 0.5);

  // Still below: regret accumulates, the stall counter keeps growing.
  d = diag.Record({}, 2.5);
  EXPECT_DOUBLE_EQ(d.simple_regret, 0.5);
  EXPECT_DOUBLE_EQ(d.cumulative_regret, 1.5);
  EXPECT_EQ(d.iterations_since_improvement, 2u);
  EXPECT_DOUBLE_EQ(d.improvement_ewma, 0.25);

  EXPECT_EQ(diag.iterations(), 4u);
  // No iteration carried a prediction: the coverage base is empty.
  EXPECT_EQ(diag.predicted_iterations(), 0u);
  EXPECT_DOUBLE_EQ(diag.coverage68(), 0.0);
  EXPECT_DOUBLE_EQ(diag.coverage95(), 0.0);
}

TEST_F(DiagnosticsTest, ResidualAndNlpdHandComputed) {
  obs::TuningDiagnostics diag;

  // N(1, 4) predicted, 3 observed: z = (3 - 1) / 2 = 1 (on the 68%
  // boundary, so covered), NLPD = 0.5 ln(2 pi 4) + 0.5 z^2.
  obs::DiagnosticsPrediction prediction;
  prediction.has_prediction = true;
  prediction.mean = 1.0;
  prediction.variance = 4.0;
  obs::IterationDiagnostics d = diag.Record(prediction, 3.0);
  ASSERT_TRUE(d.has_prediction);
  EXPECT_DOUBLE_EQ(d.standardized_residual, 1.0);
  const double nlpd1 = 0.5 * std::log(8.0 * M_PI) + 0.5;
  EXPECT_NEAR(d.nlpd, nlpd1, 1e-12);
  EXPECT_DOUBLE_EQ(d.coverage68, 1.0);
  EXPECT_DOUBLE_EQ(d.coverage95, 1.0);

  // N(0, 1) predicted, 3 observed: z = 3, outside both intervals.
  prediction.mean = 0.0;
  prediction.variance = 1.0;
  d = diag.Record(prediction, 3.0);
  EXPECT_DOUBLE_EQ(d.standardized_residual, 3.0);
  const double nlpd2 = 0.5 * std::log(2.0 * M_PI) + 4.5;
  EXPECT_NEAR(d.nlpd, nlpd2, 1e-12);
  EXPECT_DOUBLE_EQ(d.coverage68, 0.5);
  EXPECT_DOUBLE_EQ(d.coverage95, 0.5);
  EXPECT_NEAR(d.mean_nlpd, 0.5 * (nlpd1 + nlpd2), 1e-12);

  // A non-positive variance cannot score a density: the iteration is
  // excluded from the coverage base instead of polluting it.
  prediction.variance = 0.0;
  d = diag.Record(prediction, 3.0);
  EXPECT_FALSE(d.has_prediction);
  EXPECT_EQ(diag.predicted_iterations(), 2u);
}

// Calibration on a well-specified task: each observation is drawn from
// the surrogate's own one-step-ahead predictive distribution, so the
// standardized residuals are exactly standard normal and the empirical
// interval coverage must land near the nominal 68.3% / 95% levels.
TEST_F(DiagnosticsTest, CoverageOnWellSpecifiedGp) {
  Rng rng(101);
  const size_t kDims = 2;
  FeatureMatrix x;
  std::vector<double> y;
  for (size_t i = 0; i < 6; ++i) {
    std::vector<double> point(kDims);
    for (double& v : point) v = rng.Uniform();
    x.push_back(point);
    y.push_back(rng.Gaussian());
  }

  obs::TuningDiagnostics diag;
  GaussianProcess gp(std::make_unique<Matern52Kernel>());
  for (size_t iter = 0; iter < 150; ++iter) {
    ASSERT_TRUE(gp.Fit(x, y).ok());
    std::vector<double> query(kDims);
    for (double& v : query) v = rng.Uniform();
    double mean = 0.0, variance = 0.0;
    gp.PredictMeanVar(query, &mean, &variance);
    obs::DiagnosticsPrediction prediction;
    double score = mean;
    if (variance > 1e-12) {
      score = mean + std::sqrt(variance) * rng.Gaussian();
      prediction.has_prediction = true;
      prediction.mean = mean;
      prediction.variance = variance;
    }
    diag.Record(prediction, score);
    x.push_back(query);
    y.push_back(score);
  }

  EXPECT_GE(diag.predicted_iterations(), 100u);
  EXPECT_GE(diag.coverage68(), 0.60);
  EXPECT_LE(diag.coverage68(), 0.76);
  EXPECT_GE(diag.coverage95(), 0.88);
  EXPECT_LE(diag.coverage95(), 1.0);
  EXPECT_TRUE(std::isfinite(diag.mean_nlpd()));
}

TEST_F(DiagnosticsTest, PerSessionMetricsPublished) {
  obs::ScopedMetricsForTest metrics_on;
  EXPECT_EQ(obs::LabeledMetricName("tuning.regret.simple", "session", "s1"),
            "tuning.regret.simple{session=\"s1\"}");

  obs::TuningDiagnosticsOptions options;
  options.session_label = "s1";
  obs::TuningDiagnostics diag(options);
  obs::DiagnosticsPrediction prediction;
  prediction.has_prediction = true;
  prediction.mean = 0.0;
  prediction.variance = 1.0;
  diag.Record(prediction, 0.5);
  diag.Record(prediction, -0.5);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  const obs::Counter* iterations =
      registry.FindCounter("tuning.iterations{session=\"s1\"}");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->value(), 2u);
  const obs::Gauge* regret =
      registry.FindGauge("tuning.regret.simple{session=\"s1\"}");
  ASSERT_NE(regret, nullptr);
  EXPECT_DOUBLE_EQ(regret->value(), 1.0);  // 0.5 incumbent, -0.5 observed
  const obs::Gauge* coverage =
      registry.FindGauge("tuning.calibration.coverage68{session=\"s1\"}");
  ASSERT_NE(coverage, nullptr);
  EXPECT_DOUBLE_EQ(coverage->value(), 1.0);  // both |z| = 0.5 <= 1
  // Nothing published when metrics are off.
  EXPECT_EQ(registry.FindGauge("tuning.regret.simple{session=\"other\"}"),
            nullptr);
}

TEST_F(DiagnosticsTest, PrometheusRendererEscapesHostileNames) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  // Out-of-charset characters (spaces, newline, an unterminated brace)
  // degrade to name mangling, never to malformed exposition.
  registry.counter("evil name\nwith{unterminated").Increment(3);
  // A hostile label value is escaped per the exposition format.
  registry.gauge(obs::LabeledMetricName("cal.test", "session", "a\"b\\c\nd"))
      .Set(1.0);
  // A labeled histogram merges its label with the quantile label.
  registry.histogram(obs::LabeledMetricName("lat.test", "session", "x"))
      .RecordNanos(1'000'000);

  const std::string text = obs::RenderPrometheusRegistry();
  EXPECT_NE(text.find("dbtune_evil_name_with_unterminated 3\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("dbtune_cal_test{session=\"a\\\"b\\\\c\\nd\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("dbtune_lat_test{session=\"x\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dbtune_lat_test_count{session=\"x\"} 1\n"),
            std::string::npos);
  // No raw control character survives into the exposition.
  for (char c : text) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20u);
  }
}

TEST_F(DiagnosticsTest, PrometheusSnapshotIsDeterministicAndTyped) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  registry.counter("diag.test.counter").Increment(42);
  registry.gauge("diag.test.gauge").Set(2.5);
  obs::Histogram& hist = registry.histogram("diag.test.hist");
  hist.RecordNanos(1'000'000);
  hist.RecordNanos(2'000'000);
  hist.RecordNanos(4'000'000);

  const std::string text = obs::RenderPrometheusRegistry();
  // The rendering is a pure function of the snapshot.
  EXPECT_EQ(text, obs::RenderPrometheusRegistry());
  EXPECT_NE(text.find("# TYPE dbtune_diag_test_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbtune_diag_test_counter 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dbtune_diag_test_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbtune_diag_test_gauge 2.5\n"), std::string::npos);
  // Histograms render as summaries: quantiles plus _sum/_count.
  EXPECT_NE(text.find("# TYPE dbtune_diag_test_hist summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbtune_diag_test_hist{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("dbtune_diag_test_hist_count 3\n"), std::string::npos);
  // Families are emitted sorted, counters before gauges.
  EXPECT_LT(text.find("dbtune_diag_test_counter"),
            text.find("dbtune_diag_test_gauge"));
}

TEST_F(DiagnosticsTest, SnapshotWriteIsAtomicAndMatchesRenderer) {
  obs::MetricsRegistry::Get().counter("diag.atomic.counter").Increment(7);
  const std::string path = ::testing::TempDir() + "diag_atomic.prom";
  ASSERT_TRUE(obs::WritePrometheusSnapshot(path).ok());
  EXPECT_TRUE(FileExists(path));
  // The temporary staging file never survives a successful write.
  EXPECT_FALSE(FileExists(path + ".tmp"));
  EXPECT_EQ(ReadFile(path), obs::RenderPrometheusRegistry());
  // Unwritable destinations report an error instead of crashing.
  EXPECT_FALSE(
      obs::WritePrometheusSnapshot("/nonexistent-dir-47/m.prom").ok());
  EXPECT_FALSE(obs::WritePrometheusSnapshot("").ok());
}

TEST_F(DiagnosticsTest, ExporterCadenceUnderFakeClock) {
  obs::EnableFakeClockForTest();
  obs::Counter& marker =
      obs::MetricsRegistry::Get().counter("diag.cadence.marker");
  marker.Increment();

  const std::string path = ::testing::TempDir() + "diag_cadence.prom";
  obs::MetricsExporter exporter(path, /*interval_seconds=*/10.0);
  ASSERT_TRUE(exporter.enabled());

  // The first call always writes.
  exporter.MaybeExport();
  EXPECT_NE(ReadFile(path).find("dbtune_diag_cadence_marker 1\n"),
            std::string::npos);

  // Within the interval (the fake clock advances 1ms per read) the
  // exporter skips the write: the file still shows the old value.
  marker.Increment();
  exporter.MaybeExport();
  EXPECT_NE(ReadFile(path).find("dbtune_diag_cadence_marker 1\n"),
            std::string::npos);

  // ExportNow is unconditional (the session-end snapshot).
  ASSERT_TRUE(exporter.ExportNow().ok());
  EXPECT_NE(ReadFile(path).find("dbtune_diag_cadence_marker 2\n"),
            std::string::npos);
  EXPECT_FALSE(FileExists(path + ".tmp"));

  // A disabled exporter never writes and reports it on ExportNow.
  obs::MetricsExporter disabled;
  EXPECT_FALSE(disabled.enabled());
  disabled.MaybeExport();
  EXPECT_FALSE(disabled.ExportNow().ok());
  // Explicit paths win over the environment fallback.
  EXPECT_EQ(obs::MetricsExporter::ResolvePath("/tmp/x.prom"), "/tmp/x.prom");
}

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

// The acceptance test of the diagnostics pipeline: same seed + fake
// clock + single-lane pool, diagnostics and export on → the session
// JSONL (including the additive diag fields) is byte-identical across
// runs, parses cleanly in the report library, and the Prometheus
// snapshot carries the per-session labeled series.
TEST_F(DiagnosticsTest, SessionDiagnosticsGoldenByteIdentical) {
  PoolSizeGuard guard(1);
  obs::ScopedMetricsForTest metrics_on;

  auto run = [&](const std::string& tag) {
    obs::EnableFakeClockForTest();
    obs::MetricsRegistry::Get().Reset();

    SessionControls controls;
    controls.session_log_path =
        ::testing::TempDir() + "diag_golden_" + tag + ".jsonl";
    controls.diagnostics = true;
    controls.session_label = "golden";
    controls.metrics_export_path =
        ::testing::TempDir() + "diag_golden_" + tag + ".prom";

    DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                      HardwareInstance::kB, /*seed=*/1);
    TuningEnvironment env(&sim, FirstKnobs(sim.space().dimension()));
    OptimizerOptions options;
    options.seed = 2;
    std::unique_ptr<Optimizer> optimizer =
        CreateOptimizer(OptimizerType::kSmac, env.space(), options);
    const SessionResult result =
        RunTuningSession(&env, optimizer.get(), /*iterations=*/12, controls);
    EXPECT_TRUE(result.has_diagnostics);
    EXPECT_EQ(result.final_diagnostics.iteration, 12u);
    return std::make_pair(ReadFile(controls.session_log_path),
                          ReadFile(controls.metrics_export_path));
  };

  const auto [log_a, prom_a] = run("a");
  const auto [log_b, prom_b] = run("b");
  ASSERT_FALSE(log_a.empty());
  EXPECT_EQ(log_a, log_b);
  EXPECT_EQ(prom_a, prom_b);

  // Every line carries the versioned diag fields.
  EXPECT_NE(log_a.find("\"diag_v\":1,"), std::string::npos);
  EXPECT_NE(log_a.find("\"cum_regret\":"), std::string::npos);

  // The report library ingests the log without malformed lines.
  const dbtune_report::SessionData parsed =
      dbtune_report::ParseSessionJsonl("golden", log_a);
  EXPECT_EQ(parsed.rows.size(), 12u);
  EXPECT_EQ(parsed.malformed_lines, 0u);
  ASSERT_FALSE(parsed.rows.empty());
  EXPECT_TRUE(parsed.rows.back().has_diagnostics);
  EXPECT_EQ(parsed.rows.back().diag_version, 1);

  // The exported snapshot carries the per-session labeled series.
  EXPECT_NE(
      prom_a.find("dbtune_tuning_regret_simple{session=\"golden\"}"),
      std::string::npos);
  EXPECT_NE(prom_a.find("dbtune_tuning_iterations{session=\"golden\"} 12\n"),
            std::string::npos);
}

TEST_F(DiagnosticsTest, SparklineAndPercentileHelpers) {
  EXPECT_EQ(dbtune_report::Sparkline({}, 24), "");
  EXPECT_EQ(dbtune_report::Sparkline({1.0, 2.0, 3.0}, 8),
            "▁▅█");  // low, mid, high blocks
  // Flat series renders at the lowest level instead of dividing by zero.
  EXPECT_EQ(dbtune_report::Sparkline({5.0, 5.0}, 8), "▁▁");
  // Longer series downsample to max_points buckets.
  std::vector<double> ramp;
  for (int i = 0; i < 100; ++i) ramp.push_back(i);
  const std::string spark = dbtune_report::Sparkline(ramp, 4);
  EXPECT_EQ(spark, "▁▃▆█");

  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(dbtune_report::Percentile(sorted, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(dbtune_report::Percentile(sorted, 0.95), 4.0);
  EXPECT_DOUBLE_EQ(dbtune_report::Percentile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(dbtune_report::Percentile({}, 0.5), 0.0);
}

TEST_F(DiagnosticsTest, ReportRenderingIsDeterministic) {
  std::string jsonl;
  jsonl +=
      "{\"iter\":1,\"suggest_s\":0.001000000,\"evaluate_s\":1.000000000,"
      "\"observe_s\":0.000500000,\"score\":-5,\"best_score\":-5,"
      "\"improvement_pct\":0,\"diag_v\":1,\"pred\":0,\"zres\":0,\"nlpd\":0,"
      "\"cov68\":0,\"cov95\":0,\"regret\":0,\"cum_regret\":0,\"stall\":0,"
      "\"ewma_improve\":0,\"acq_best\":0,\"acq_spread\":0,"
      "\"inc_fit_rate\":0,\"sparse_escalations\":0,\"hyperopt_runs\":0}\n";
  jsonl +=
      "{\"iter\":2,\"suggest_s\":0.002000000,\"evaluate_s\":1.100000000,"
      "\"observe_s\":0.000600000,\"score\":-3,\"best_score\":-3,"
      "\"improvement_pct\":40,\"diag_v\":1,\"pred\":1,\"zres\":0.5,"
      "\"nlpd\":1.25,\"cov68\":1,\"cov95\":1,\"regret\":0,\"cum_regret\":0,"
      "\"stall\":0,\"ewma_improve\":0.4,\"acq_best\":0.8,"
      "\"acq_spread\":0.1,\"inc_fit_rate\":0.5,\"sparse_escalations\":1,"
      "\"hyperopt_runs\":2}\n";
  jsonl += "this line is not json\n";

  const dbtune_report::SessionData session =
      dbtune_report::ParseSessionJsonl("synthetic", jsonl);
  EXPECT_EQ(session.rows.size(), 2u);
  EXPECT_EQ(session.malformed_lines, 1u);
  EXPECT_FALSE(session.rows[0].has_prediction);
  EXPECT_TRUE(session.rows[1].has_prediction);
  EXPECT_DOUBLE_EQ(session.rows[1].standardized_residual, 0.5);
  EXPECT_EQ(session.rows[1].sparse_escalations, 1ull);
  EXPECT_EQ(session.rows[1].hyperopt_runs, 2ull);

  const std::string report =
      dbtune_report::RenderMarkdownReport({session});
  EXPECT_EQ(report, dbtune_report::RenderMarkdownReport({session}));
  EXPECT_NE(report.find("# dbtune session report"), std::string::npos);
  EXPECT_NE(report.find("| synthetic | 2 | -3 | 40 |"), std::string::npos);
  EXPECT_NE(report.find("1 malformed line(s) skipped in synthetic"),
            std::string::npos);
  EXPECT_NE(report.find("## Diagnostics: synthetic"), std::string::npos);
  EXPECT_NE(report.find("### Convergence"), std::string::npos);
  EXPECT_NE(report.find("- 68% interval coverage: 1 (nominal 0.683)"),
            std::string::npos);
  EXPECT_NE(report.find("- sparse-tier escalations: 1"), std::string::npos);
  EXPECT_NE(report.find("| synthetic | suggest |"), std::string::npos);
  // A diagnostics-free session renders the summary table only.
  dbtune_report::SessionData plain = session;
  plain.name = "plain";
  for (auto& row : plain.rows) row.has_diagnostics = false;
  const std::string plain_report =
      dbtune_report::RenderMarkdownReport({plain});
  EXPECT_EQ(plain_report.find("## Diagnostics: plain"), std::string::npos);
}

}  // namespace
}  // namespace dbtune
