#include "surrogate/kernels.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(RbfKernelTest, IdentityAndSymmetry) {
  RbfKernel k;
  const std::vector<double> a = {0.1, 0.5};
  const std::vector<double> b = {0.9, 0.2};
  EXPECT_DOUBLE_EQ(k.Compute(a, a), 1.0);
  EXPECT_DOUBLE_EQ(k.Compute(a, b), k.Compute(b, a));
  EXPECT_GT(k.Compute(a, b), 0.0);
  EXPECT_LT(k.Compute(a, b), 1.0);
}

TEST(RbfKernelTest, DecaysWithDistance) {
  RbfKernel k;
  const std::vector<double> origin = {0.0};
  EXPECT_GT(k.Compute(origin, {0.1}), k.Compute(origin, {0.5}));
  EXPECT_GT(k.Compute(origin, {0.5}), k.Compute(origin, {1.0}));
}

TEST(RbfKernelTest, LengthscaleControlsDecay) {
  RbfKernel wide, narrow;
  wide.set_lengthscale(2.0);
  narrow.set_lengthscale(0.1);
  const std::vector<double> a = {0.0}, b = {0.5};
  EXPECT_GT(wide.Compute(a, b), narrow.Compute(a, b));
}

TEST(Matern52KernelTest, BasicProperties) {
  Matern52Kernel k;
  const std::vector<double> a = {0.3, 0.3};
  const std::vector<double> b = {0.6, 0.1};
  EXPECT_NEAR(k.Compute(a, a), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(k.Compute(a, b), k.Compute(b, a));
  EXPECT_GT(k.Compute(a, b), 0.0);
  EXPECT_LT(k.Compute(a, b), 1.0);
}

TEST(Matern52KernelTest, HeavierTailsThanRbf) {
  // Matern-5/2 has heavier tails than RBF: at several lengthscales of
  // distance it keeps more correlation.
  RbfKernel rbf;
  Matern52Kernel matern;
  rbf.set_lengthscale(0.25);
  matern.set_lengthscale(0.25);
  const std::vector<double> a = {0.0}, b = {0.9};  // 3.6 lengthscales away
  EXPECT_GT(matern.Compute(a, b), rbf.Compute(a, b));
}

TEST(HammingKernelTest, CountsDifferingEntries) {
  HammingKernel k;
  k.set_lengthscale(1.0);
  const std::vector<double> a = {0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(k.Compute(a, a), 1.0);
  const std::vector<double> one_diff = {0.1, 0.5, 0.2};
  const std::vector<double> two_diff = {0.3, 0.5, 0.2};
  EXPECT_GT(k.Compute(a, one_diff), k.Compute(a, two_diff));
  EXPECT_NEAR(k.Compute(a, one_diff), std::exp(-1.0 / 3.0), 1e-12);
}

TEST(HammingKernelTest, MagnitudeOfDifferenceIrrelevant) {
  // Unlike RBF, Hamming only asks "same or different" — the categorical
  // semantics.
  HammingKernel k;
  const std::vector<double> a = {0.1};
  EXPECT_DOUBLE_EQ(k.Compute(a, {0.2}), k.Compute(a, {0.9}));
}

TEST(MixedKernelTest, SplitsDimensionsByType) {
  MixedKernel k({false, true});
  k.set_lengthscale(0.5);
  const std::vector<double> a = {0.2, 0.1};
  // Same category, close continuous: high.
  EXPECT_GT(k.Compute(a, {0.25, 0.1}), 0.9);
  // Different category hits the Hamming factor hard.
  EXPECT_LT(k.Compute(a, {0.25, 0.9}), k.Compute(a, {0.25, 0.1}));
  // Continuous distance also matters.
  EXPECT_LT(k.Compute(a, {0.9, 0.1}), k.Compute(a, {0.25, 0.1}));
}

TEST(MixedKernelTest, AllContinuousMatchesMatern) {
  MixedKernel mixed({false, false});
  Matern52Kernel matern;
  mixed.set_lengthscale(0.4);
  matern.set_lengthscale(0.4);
  const std::vector<double> a = {0.3, 0.8}, b = {0.5, 0.1};
  EXPECT_NEAR(mixed.Compute(a, b), matern.Compute(a, b), 1e-12);
}

TEST(MixedKernelTest, AllCategoricalMatchesHamming) {
  MixedKernel mixed({true, true});
  HammingKernel hamming;
  mixed.set_lengthscale(0.7);
  hamming.set_lengthscale(0.7);
  const std::vector<double> a = {0.25, 0.75}, b = {0.25, 0.1};
  EXPECT_NEAR(mixed.Compute(a, b), hamming.Compute(a, b), 1e-12);
}

TEST(KernelTest, NamesAreDistinct) {
  RbfKernel rbf;
  Matern52Kernel matern;
  HammingKernel hamming;
  MixedKernel mixed({true});
  EXPECT_NE(rbf.name(), matern.name());
  EXPECT_NE(matern.name(), hamming.name());
  EXPECT_NE(hamming.name(), mixed.name());
}

}  // namespace
}  // namespace dbtune
