// End-to-end integration tests exercising the full pipeline the way the
// paper's experiments do, at a reduced scale.

#include <gtest/gtest.h>

#include "core/advisor.h"
#include "core/metrics.h"
#include "core/tuning_session.h"
#include "dbms/environment.h"
#include "importance/importance.h"
#include "knobs/catalog.h"
#include "sampling/latin_hypercube.h"
#include "transfer/rgpe.h"
#include "util/stats.h"

namespace dbtune {
namespace {

// Knob selection -> optimization, on the full 197-knob catalog.
TEST(IntegrationTest, KnobSelectionThenOptimization) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 1);

  // Collect samples and rank knobs with SHAP.
  TuningEnvironment sampling_env(&sim);
  Rng rng(2);
  std::vector<Configuration> configs;
  std::vector<double> scores;
  for (const Configuration& c :
       LatinHypercubeSample(sim.space(), 200, rng)) {
    const Observation obs = sampling_env.Evaluate(c);
    configs.push_back(obs.config);
    scores.push_back(obs.score);
  }
  Result<ImportanceInput> input = MakeImportanceInput(
      sim.space(), configs, scores, sim.EffectiveDefault(),
      sampling_env.default_score());
  ASSERT_TRUE(input.ok());
  std::unique_ptr<ImportanceMeasure> shap =
      CreateImportanceMeasure(MeasurementType::kShap, 3);
  Result<std::vector<double>> importance = shap->Rank(*input);
  ASSERT_TRUE(importance.ok());
  const std::vector<size_t> top20 = TopKnobs(*importance, 20);

  // Tuning over the pruned space beats tuning nothing.
  const SessionResult result =
      RunTuningSession(&sim, top20, OptimizerType::kSmac, 50, 4);
  EXPECT_GT(result.final_improvement, 20.0);
}

// Pruned-space tuning beats same-budget full-space tuning (the paper's
// first main finding).
TEST(IntegrationTest, PrunedSpaceBeatsFullSpaceOnBudget) {
  double pruned_total = 0.0, full_total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    DbmsSimulator sim_a(WorkloadId::kSysbench, HardwareInstance::kB, seed);
    const std::vector<size_t> truth = sim_a.surface().TunabilityRanking();
    const std::vector<size_t> top20(truth.begin(), truth.begin() + 20);
    pruned_total +=
        RunTuningSession(&sim_a, top20, OptimizerType::kSmac, 60, seed)
            .final_improvement;

    DbmsSimulator sim_b(WorkloadId::kSysbench, HardwareInstance::kB, seed);
    std::vector<size_t> all(sim_b.space().dimension());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    full_total +=
        RunTuningSession(&sim_b, all, OptimizerType::kSmac, 60, seed)
            .final_improvement;
  }
  EXPECT_GT(pruned_total, full_total);
}

// RGPE transfer against real simulator workloads.
TEST(IntegrationTest, RgpeTransferAcrossWorkloads) {
  const std::vector<size_t> knobs = [] {
    DbmsSimulator probe(WorkloadId::kTpcc, HardwareInstance::kB, 1);
    const std::vector<size_t>& truth = probe.surface().importance_ranking();
    return std::vector<size_t>(truth.begin(), truth.begin() + 10);
  }();

  // Source history: two OLTP workloads.
  ObservationRepository repo;
  for (WorkloadId source : {WorkloadId::kSeats, WorkloadId::kSmallbank}) {
    DbmsSimulator sim(source, HardwareInstance::kB, 5);
    TuningEnvironment env(&sim, knobs);
    Rng rng(6);
    for (int i = 0; i < 30; ++i) env.Evaluate(env.space().SampleUniform(rng));
    repo.AddTask(ObservationRepository::FromHistory(WorkloadName(source),
                                                    env.space(),
                                                    env.history()));
  }

  // Target: TPC-C with RGPE(SMAC).
  DbmsSimulator target(WorkloadId::kTpcc, HardwareInstance::kB, 7);
  TuningEnvironment env(&target, knobs);
  OptimizerOptions options;
  options.seed = 8;
  RgpeOptimizer rgpe(env.space(), options, &repo, TransferBase::kSmac);
  const SessionResult result = RunTuningSession(&env, &rgpe, 40);
  EXPECT_GT(result.final_improvement, 0.0);
}

// The advisor's recommended path works across workload types.
TEST(IntegrationTest, AdvisorOnLatencyWorkload) {
  DbmsSimulator sim(WorkloadId::kJob, HardwareInstance::kB, 9);
  AdvisorOptions options;
  options.importance_samples = 120;
  options.tuning_knobs = 5;
  options.tuning_iterations = 30;
  options.seed = 10;
  Result<AdvisorReport> report = TuneDbms(&sim, options);
  ASSERT_TRUE(report.ok());
  // Latency workload: best latency at most the default.
  EXPECT_LE(report->best_objective, report->default_objective);
  EXPECT_GE(report->improvement_percent, 0.0);
}

// Different hardware instances yield different tuned throughput.
TEST(IntegrationTest, HardwareMattersEndToEnd) {
  auto tune = [](HardwareInstance hw) {
    DbmsSimulator sim(WorkloadId::kTatp, hw, 11);
    const std::vector<size_t>& truth = sim.surface().importance_ranking();
    const std::vector<size_t> top(truth.begin(), truth.begin() + 10);
    DbmsSimulator fresh(WorkloadId::kTatp, hw, 11);
    TuningEnvironment env(&fresh, top);
    OptimizerOptions options;
    options.seed = 12;
    std::unique_ptr<Optimizer> smac =
        CreateOptimizer(OptimizerType::kSmac, env.space(), options);
    RunTuningSession(&env, smac.get(), 30);
    return env.best_objective();
  };
  EXPECT_GT(tune(HardwareInstance::kD), tune(HardwareInstance::kA));
}

}  // namespace
}  // namespace dbtune
