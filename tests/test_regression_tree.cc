#include "surrogate/regression_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace dbtune {
namespace {

// Piecewise target depending only on x0.
FeatureMatrix MakeStepData(std::vector<double>* y, size_t n, Rng& rng) {
  FeatureMatrix x;
  for (size_t i = 0; i < n; ++i) {
    x.push_back({rng.Uniform(), rng.Uniform(), rng.Uniform()});
    y->push_back(x.back()[0] < 0.5 ? 1.0 : 5.0);
  }
  return x;
}

TEST(RegressionTreeTest, RejectsEmptyAndRaggedData) {
  RegressionTree tree;
  std::vector<double> y;
  EXPECT_FALSE(tree.Fit({}, y).ok());
  EXPECT_FALSE(tree.Fit({{1.0, 2.0}, {1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(tree.Fit({{1.0}}, {1.0, 2.0}).ok());
}

TEST(RegressionTreeTest, LearnsStepFunction) {
  Rng rng(1);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 200, rng);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_NEAR(tree.Predict({0.2, 0.5, 0.5}), 1.0, 0.2);
  EXPECT_NEAR(tree.Predict({0.8, 0.5, 0.5}), 5.0, 0.2);
}

TEST(RegressionTreeTest, SplitCountsIdentifyInformativeFeature) {
  Rng rng(2);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 300, rng);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  const auto& counts = tree.split_counts();
  EXPECT_GE(counts[0], 1u);
  // The informative feature dominates the impurity importance.
  const auto& importance = tree.impurity_importance();
  EXPECT_GT(importance[0], 10.0 * (importance[1] + importance[2] + 1e-12));
}

TEST(RegressionTreeTest, ConstantTargetGivesSingleLeaf) {
  RegressionTree tree;
  FeatureMatrix x = {{0.1}, {0.5}, {0.9}, {0.3}};
  std::vector<double> y = {2.0, 2.0, 2.0, 2.0};
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({0.7}), 2.0);
}

TEST(RegressionTreeTest, MinSamplesLeafRespected) {
  RegressionTreeOptions options;
  options.min_samples_leaf = 50;
  RegressionTree tree(options);
  Rng rng(3);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 120, rng);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  // With min_leaf=50 on 120 samples, at most 1 split level is possible.
  EXPECT_LE(tree.num_nodes(), 3u);
}

TEST(RegressionTreeTest, MaxDepthZeroIsLeafOnly) {
  RegressionTreeOptions options;
  options.max_depth = 0;
  RegressionTree tree(options);
  Rng rng(4);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 50, rng);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(RegressionTreeTest, LeafBoxesPartitionUnitCube) {
  Rng rng(5);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 200, rng);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  const auto boxes = tree.LeafBoxes();
  ASSERT_GE(boxes.size(), 2u);
  double total_volume = 0.0;
  for (const auto& box : boxes) {
    ASSERT_EQ(box.lower.size(), 3u);
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_LE(box.lower[d], box.upper[d]);
      EXPECT_GE(box.lower[d], 0.0);
      EXPECT_LE(box.upper[d], 1.0);
    }
    total_volume += box.volume;
  }
  EXPECT_NEAR(total_volume, 1.0, 1e-9);
}

TEST(RegressionTreeTest, PredictionMatchesContainingBox) {
  Rng rng(6);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 200, rng);
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y).ok());
  const auto boxes = tree.LeafBoxes();
  const std::vector<double> probe = {0.3, 0.6, 0.1};
  const double pred = tree.Predict(probe);
  bool matched = false;
  for (const auto& box : boxes) {
    bool inside = true;
    for (size_t d = 0; d < 3; ++d) {
      // Lower bound inclusive at 0, else follow split semantics loosely.
      if (probe[d] < box.lower[d] - 1e-12 || probe[d] > box.upper[d] + 1e-12) {
        inside = false;
        break;
      }
    }
    if (inside && std::abs(box.value - pred) < 1e-12) matched = true;
  }
  EXPECT_TRUE(matched);
}

TEST(RegressionTreeTest, RefitReplacesModel) {
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit({{0.0}, {1.0}, {0.1}, {0.9}}, {0, 10, 0, 10}).ok());
  const double before = tree.Predict({0.05});
  ASSERT_TRUE(tree.Fit({{0.0}, {1.0}, {0.1}, {0.9}}, {5, 5, 5, 5}).ok());
  EXPECT_DOUBLE_EQ(tree.Predict({0.05}), 5.0);
  EXPECT_NE(before, 5.0);
}

TEST(RegressionTreeTest, FeatureSubsamplingStillLearns) {
  RegressionTreeOptions options;
  options.max_features = 1;
  options.seed = 11;
  RegressionTree tree(options);
  Rng rng(7);
  std::vector<double> y;
  const FeatureMatrix x = MakeStepData(&y, 400, rng);
  ASSERT_TRUE(tree.Fit(x, y).ok());
  // With random single-feature tries it still separates the step given
  // enough depth.
  EXPECT_LT(tree.Predict({0.1, 0.5, 0.5}), tree.Predict({0.9, 0.5, 0.5}));
}

}  // namespace
}  // namespace dbtune
