// Exercises every dbtune-lint rule against the fixture files under
// tools/lint_fixtures/ (each rule firing, each allow() suppression) and
// self-checks that the shipped src/ tree lints clean. Paths come from
// compile definitions set in tests/CMakeLists.txt.

#include "dbtune_lint_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace {

using dbtune_lint::Finding;
using dbtune_lint::LintFile;
using dbtune_lint::LintSource;
using dbtune_lint::LintTree;

std::string FixturePath(const std::string& name) {
  return std::string(DBTUNE_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = RulesOf(findings);
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

TEST(LintTest, RandomSeedRuleFires) {
  const auto findings = LintFile(FixturePath("bad_random.cc"), "bad_random.cc");
  // std::rand, std::srand, time(nullptr), std::random_device.
  EXPECT_EQ(CountRule(findings, "random-seed"), 4);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "random-seed") << dbtune_lint::FormatFinding(f);
  }
}

TEST(LintTest, RandomSeedRuleSkipsUtilRandom) {
  // The same content under src/util/random is the one sanctioned home of
  // raw randomness primitives.
  const auto findings =
      LintFile(FixturePath("bad_random.cc"), "util/random.cc");
  EXPECT_EQ(CountRule(findings, "random-seed"), 0);
}

TEST(LintTest, NakedNewRuleFiresButNotOnDeletedFunctions) {
  const auto findings = LintFile(FixturePath("bad_new.cc"), "bad_new.cc");
  EXPECT_EQ(CountRule(findings, "naked-new"), 2);  // one new, one delete
}

TEST(LintTest, UsingNamespaceStdRuleFires) {
  const auto findings =
      LintFile(FixturePath("bad_namespace.cc"), "bad_namespace.cc");
  EXPECT_EQ(CountRule(findings, "using-namespace-std"), 1);
}

TEST(LintTest, IncludeGuardRuleFires) {
  const auto findings = LintFile(FixturePath("bad_guard.h"), "bad_guard.h");
  ASSERT_EQ(CountRule(findings, "include-guard"), 1);
  EXPECT_NE(findings[0].message.find("DBTUNE_BAD_GUARD_H_"),
            std::string::npos);
}

TEST(LintTest, IncludeGuardUsesRelativePath) {
  const std::string content =
      "#ifndef DBTUNE_UTIL_STATUS_H_\n#define DBTUNE_UTIL_STATUS_H_\n"
      "#endif\n";
  EXPECT_TRUE(LintSource("x.h", "util/status.h", content).empty());
  // Same content under another path must demand that path's guard.
  EXPECT_EQ(LintSource("x.h", "core/advisor.h", content).size(), 1u);
}

TEST(LintTest, IostreamRuleFiresOutsideLogging) {
  const auto findings =
      LintFile(FixturePath("bad_iostream.cc"), "bad_iostream.cc");
  EXPECT_EQ(CountRule(findings, "iostream"), 1);
}

TEST(LintTest, IostreamAllowedInUtilLogging) {
  const auto findings =
      LintFile(FixturePath("bad_iostream.cc"), "util/logging.cc");
  EXPECT_EQ(CountRule(findings, "iostream"), 0);
}

TEST(LintTest, RawTimingRuleFires) {
  const auto findings = LintFile(FixturePath("bad_timing.cc"), "bad_timing.cc");
  // steady_clock, system_clock, high_resolution_clock; the allow() line
  // is suppressed.
  EXPECT_EQ(CountRule(findings, "raw-timing"), 3);
}

TEST(LintTest, RawTimingAllowedInObsAndBenchUtil) {
  // src/obs is the sanctioned clock location; bench_util.h wraps
  // google-benchmark timing.
  EXPECT_EQ(CountRule(LintFile(FixturePath("bad_timing.cc"), "obs/clock.cc"),
                      "raw-timing"),
            0);
  EXPECT_EQ(CountRule(LintFile(FixturePath("bad_timing.cc"), "bench_util.h"),
                      "raw-timing"),
            0);
}

TEST(LintTest, PredictInLoopRuleFiresInOptimizerFiles) {
  const auto findings = LintFile(FixturePath("optimizer/bad_predict_loop.cc"),
                                 "optimizer/bad_predict_loop.cc");
  // Braced for body, while body, braceless body; the out-of-loop call,
  // the allow() line, and the batched call are exempt.
  EXPECT_EQ(CountRule(findings, "predict-in-loop"), 3);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "predict-in-loop") << dbtune_lint::FormatFinding(f);
  }
}

TEST(LintTest, PredictInLoopRuleOnlyAppliesUnderOptimizer) {
  // The same content outside src/optimizer (e.g. a surrogate internals
  // file) is allowed to issue scalar predictions in loops.
  const auto findings = LintFile(FixturePath("optimizer/bad_predict_loop.cc"),
                                 "surrogate/bad_predict_loop.cc");
  EXPECT_EQ(CountRule(findings, "predict-in-loop"), 0);
}

TEST(LintTest, PredictInLoopTracksNestingAcrossLines) {
  // A call after every loop has closed must not fire; one in a nested
  // loop across multiple lines must.
  const std::string content =
      "void F(const M& m, const C& c) {\n"
      "  for (size_t i = 0; i < 3; ++i) {\n"
      "    if (c.ok()) {\n"
      "      m.PredictMeanVar(c[i], &a, &b);\n"
      "    }\n"
      "  }\n"
      "  m.PredictMeanVar(c[0], &a, &b);\n"
      "}\n";
  const auto findings = LintSource("x.cc", "optimizer/x.cc", content);
  EXPECT_EQ(CountRule(findings, "predict-in-loop"), 1);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintTest, GpConstructionRuleFiresInOptimizerFiles) {
  const auto findings =
      LintFile(FixturePath("optimizer/bad_gp_construction.cc"),
               "optimizer/bad_gp_construction.cc");
  // Direct ctor, make_unique, and the sparse class; the options struct,
  // the factory call, and the allow() line are exempt.
  EXPECT_EQ(CountRule(findings, "gp-construction"), 3);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "gp-construction") << dbtune_lint::FormatFinding(f);
  }
}

TEST(LintTest, GpConstructionRuleOnlyAppliesUnderOptimizer) {
  // surrogate/ (and tests, benches, the factory itself) may construct
  // the GP classes directly.
  const auto findings =
      LintFile(FixturePath("optimizer/bad_gp_construction.cc"),
               "surrogate/bad_gp_construction.cc");
  EXPECT_EQ(CountRule(findings, "gp-construction"), 0);
}

TEST(LintTest, MetricsExportRuleFiresOutsideObs) {
  const auto findings = LintFile(FixturePath("bad_metrics_export.cc"),
                                 "bad_metrics_export.cc");
  // The MetricsSnapshot forward declaration plus two ToJson mentions;
  // the allow() line is suppressed.
  EXPECT_EQ(CountRule(findings, "metrics-export"), 3);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "metrics-export") << dbtune_lint::FormatFinding(f);
  }
}

TEST(LintTest, MetricsExportRuleAllowedInObs) {
  // src/obs owns the snapshot/serialization surface.
  const auto findings = LintFile(FixturePath("bad_metrics_export.cc"),
                                 "obs/metrics_export.cc");
  EXPECT_EQ(CountRule(findings, "metrics-export"), 0);
}

TEST(LintTest, AllowEscapeHatchSuppressesEveryRule) {
  EXPECT_TRUE(LintFile(FixturePath("allowed.cc"), "allowed.cc").empty());
  EXPECT_TRUE(
      LintFile(FixturePath("allowed_guard.h"), "allowed_guard.h").empty());
}

TEST(LintTest, AllowIsPerRuleNotBlanket) {
  // An allow() for one rule must not mask a different rule on that line.
  const std::string content =
      "int* p = new int(std::rand());  // dbtune-lint: allow(naked-new)\n";
  const auto findings = LintSource("x.cc", "x.cc", content);
  EXPECT_EQ(CountRule(findings, "naked-new"), 0);
  EXPECT_EQ(CountRule(findings, "random-seed"), 1);
}

TEST(LintTest, CommentsAndStringsAreNotScanned) {
  EXPECT_TRUE(LintFile(FixturePath("clean.h"), "clean.h").empty());
  const std::string content =
      "// a new idea about delete and rand()\n"
      "/* using namespace std inside a block comment\n"
      "   spanning lines with new */\n"
      "const char* kText = \"new delete time( rand()\";\n";
  EXPECT_TRUE(LintSource("x.cc", "x.cc", content).empty());
}

TEST(LintTest, FixtureTreeFindsAllViolations) {
  const auto findings = LintTree(DBTUNE_LINT_FIXTURE_DIR);
  EXPECT_EQ(CountRule(findings, "random-seed"), 4);
  EXPECT_EQ(CountRule(findings, "naked-new"), 2);
  EXPECT_EQ(CountRule(findings, "using-namespace-std"), 1);
  EXPECT_EQ(CountRule(findings, "include-guard"), 1);
  EXPECT_EQ(CountRule(findings, "iostream"), 1);
  EXPECT_EQ(CountRule(findings, "raw-timing"), 3);
  EXPECT_EQ(CountRule(findings, "predict-in-loop"), 3);
  EXPECT_EQ(CountRule(findings, "gp-construction"), 3);
  EXPECT_EQ(CountRule(findings, "metrics-export"), 3);
}

// The shipped library tree must lint clean — the same invariant the
// `lint_src` ctest enforces via the CLI, checked here through the API so
// a failure prints the precise findings.
TEST(LintTest, ShippedSourceTreeIsClean) {
  const auto findings = LintTree(DBTUNE_LINT_SRC_DIR);
  for (const Finding& f : findings) {
    ADD_FAILURE() << dbtune_lint::FormatFinding(f);
  }
  EXPECT_TRUE(findings.empty());
}

}  // namespace
