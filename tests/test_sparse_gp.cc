// The sparse (FITC) GP tier: approximation quality against the exact GP,
// deterministic inducing-point selection, batch/scalar equivalence, the
// tiered factory's escalation policy, and the exact-vs-sparse regret
// comparison on the simulator that justifies the default crossover.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/tuning_session.h"
#include "dbms/simulator.h"
#include "optimizer/gp_bo.h"
#include "surrogate/gaussian_process.h"
#include "surrogate/sparse_gaussian_process.h"
#include "surrogate/surrogate_factory.h"
#include "util/random.h"

namespace dbtune {
namespace {

FeatureMatrix MakeInputs(size_t n, size_t d, uint64_t seed) {
  Rng rng(seed);
  FeatureMatrix x(n, std::vector<double>(d));
  for (auto& row : x) {
    for (double& v : row) v = rng.Uniform();
  }
  return x;
}

std::vector<double> SmoothTargets(const FeatureMatrix& x) {
  std::vector<double> y;
  y.reserve(x.size());
  for (const auto& row : x) {
    double s = 0.0;
    for (size_t j = 0; j < row.size(); ++j) {
      s += std::sin(2.0 * row[j]) + 0.3 * row[j];
    }
    y.push_back(s);
  }
  return y;
}

TEST(SparseGaussianProcessTest, InducingSelectionIsDeterministic) {
  const FeatureMatrix x = MakeInputs(120, 4, 7);
  const std::vector<double> y = SmoothTargets(x);
  SparseGaussianProcessOptions options;
  options.num_inducing = 24;

  SparseGaussianProcess a(std::make_unique<Matern52Kernel>(), options);
  SparseGaussianProcess b(std::make_unique<Matern52Kernel>(), options);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());

  EXPECT_EQ(a.inducing_indices(), b.inducing_indices());
  EXPECT_EQ(a.num_inducing(), 24u);
  // Ascending, unique, anchored at the deterministic seed index 0.
  const std::vector<size_t>& ids = a.inducing_indices();
  EXPECT_EQ(ids.front(), 0u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(a.log_marginal_likelihood(), b.log_marginal_likelihood());
}

TEST(SparseGaussianProcessTest, InducingBudgetClampsToTrainingSize) {
  const FeatureMatrix x = MakeInputs(10, 3, 11);
  const std::vector<double> y = SmoothTargets(x);
  SparseGaussianProcessOptions options;
  options.num_inducing = 64;
  SparseGaussianProcess gp(std::make_unique<Matern52Kernel>(), options);
  ASSERT_TRUE(gp.Fit(x, y).ok());
  EXPECT_EQ(gp.num_inducing(), 10u);
}

TEST(SparseGaussianProcessTest, ApproximatesExactPosterior) {
  const FeatureMatrix x = MakeInputs(200, 3, 13);
  const std::vector<double> y = SmoothTargets(x);
  const FeatureMatrix queries = MakeInputs(40, 3, 17);

  GaussianProcess exact(std::make_unique<Matern52Kernel>());
  ASSERT_TRUE(exact.Fit(x, y).ok());

  SparseGaussianProcessOptions options;
  options.num_inducing = 64;
  SparseGaussianProcess sparse(std::make_unique<Matern52Kernel>(), options);
  ASSERT_TRUE(sparse.Fit(x, y).ok());

  // The FITC posterior mean should track the exact one closely on a
  // smooth surface with a third of the points as inducing inputs. The
  // y-range here is ~[-1, 4.5]; 0.15 absolute is a tight envelope.
  double worst = 0.0;
  for (const auto& q : queries) {
    double em = 0.0, ev = 0.0, sm = 0.0, sv = 0.0;
    exact.PredictMeanVar(q, &em, &ev);
    sparse.PredictMeanVar(q, &sm, &sv);
    worst = std::max(worst, std::abs(em - sm));
    EXPECT_GE(sv, 0.0);
  }
  EXPECT_LT(worst, 0.15);
  EXPECT_TRUE(std::isfinite(sparse.log_marginal_likelihood()));
}

TEST(SparseGaussianProcessTest, BatchedPredictMatchesScalarBitwise) {
  const FeatureMatrix x = MakeInputs(150, 5, 19);
  const std::vector<double> y = SmoothTargets(x);
  const FeatureMatrix queries = MakeInputs(33, 5, 23);

  SparseGaussianProcess gp(std::make_unique<Matern52Kernel>());
  ASSERT_TRUE(gp.Fit(x, y).ok());

  std::vector<double> batch_means, batch_vars;
  gp.PredictMeanVarBatch(queries, &batch_means, &batch_vars);
  ASSERT_EQ(batch_means.size(), queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    double mean = 0.0, var = 0.0;
    gp.PredictMeanVar(queries[q], &mean, &var);
    EXPECT_EQ(batch_means[q], mean) << "query " << q;
    EXPECT_EQ(batch_vars[q], var) << "query " << q;
  }
}

TEST(SparseGaussianProcessTest, RefitReplacesModel) {
  const FeatureMatrix x1 = MakeInputs(60, 3, 29);
  const std::vector<double> y1 = SmoothTargets(x1);
  SparseGaussianProcess gp(std::make_unique<Matern52Kernel>());
  ASSERT_TRUE(gp.Fit(x1, y1).ok());
  const double lml1 = gp.log_marginal_likelihood();

  const FeatureMatrix x2 = MakeInputs(90, 3, 31);
  const std::vector<double> y2 = SmoothTargets(x2);
  ASSERT_TRUE(gp.Fit(x2, y2).ok());
  EXPECT_NE(gp.log_marginal_likelihood(), lml1);
  EXPECT_TRUE(gp.Fit(x1, y1).ok());
}

TEST(SparseGaussianProcessTest, RejectsInvalidTrainingData) {
  SparseGaussianProcess gp(std::make_unique<Matern52Kernel>());
  EXPECT_FALSE(gp.Fit({}, {}).ok());
  EXPECT_FALSE(gp.Fit({{0.1, 0.2}, {0.3}}, {1.0, 2.0}).ok());
}

TEST(TieredGpSurrogateTest, AutoEscalatesAtCrossover) {
  SurrogateTierOptions tier;
  tier.sparse_crossover = 50;
  tier.num_inducing = 16;
  TieredGpSurrogate gp([] { return std::make_unique<Matern52Kernel>(); },
                       GaussianProcessOptions{}, tier);

  const FeatureMatrix small = MakeInputs(40, 3, 37);
  ASSERT_TRUE(gp.Fit(small, SmoothTargets(small)).ok());
  EXPECT_FALSE(gp.sparse_active());
  ASSERT_NE(gp.exact(), nullptr);
  EXPECT_EQ(gp.sparse(), nullptr);
  EXPECT_EQ(gp.name(), "GP-Matern52");

  const FeatureMatrix large = MakeInputs(80, 3, 41);
  ASSERT_TRUE(gp.Fit(large, SmoothTargets(large)).ok());
  EXPECT_TRUE(gp.sparse_active());
  ASSERT_NE(gp.sparse(), nullptr);
  EXPECT_EQ(gp.sparse()->num_inducing(), 16u);
  EXPECT_EQ(gp.name(), "SparseGP-Matern52");

  double mean = 0.0, var = 0.0;
  gp.PredictMeanVar(large.front(), &mean, &var);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_GT(var, 0.0);
}

TEST(TieredGpSurrogateTest, ForcedTiersAreRespected) {
  const FeatureMatrix x = MakeInputs(30, 3, 43);
  const std::vector<double> y = SmoothTargets(x);

  SurrogateTierOptions force_sparse;
  force_sparse.tier = SurrogateTier::kSparse;
  TieredGpSurrogate sparse([] { return std::make_unique<Matern52Kernel>(); },
                           GaussianProcessOptions{}, force_sparse);
  ASSERT_TRUE(sparse.Fit(x, y).ok());
  EXPECT_TRUE(sparse.sparse_active());

  SurrogateTierOptions force_exact;
  force_exact.tier = SurrogateTier::kExact;
  force_exact.sparse_crossover = 1;  // would escalate under kAuto
  TieredGpSurrogate exact([] { return std::make_unique<Matern52Kernel>(); },
                          GaussianProcessOptions{}, force_exact);
  ASSERT_TRUE(exact.Fit(x, y).ok());
  EXPECT_FALSE(exact.sparse_active());
}

TEST(TieredGpSurrogateTest, TierNames) {
  EXPECT_STREQ(SurrogateTierName(SurrogateTier::kAuto), "auto");
  EXPECT_STREQ(SurrogateTierName(SurrogateTier::kExact), "exact");
  EXPECT_STREQ(SurrogateTierName(SurrogateTier::kSparse), "sparse");
}

// The crossover policy's justification: a GP-BO session driven by the
// sparse tier must stay within a pinned regret tolerance of the exact
// tier on the simulator at history sizes around (here: well below) the
// crossover — escalating costs fit time, not tuning outcome.
TEST(TieredGpSurrogateTest, SparseRegretTracksExactOnSimulator) {
  struct TierBo final : GpBoOptimizer {
    using GpBoOptimizer::GpBoOptimizer;
    std::string name() const override { return "Tier BO"; }
  };
  const std::vector<size_t> knob_indices = {0, 1, 2, 3, 4, 5};
  const size_t iterations = 40;

  auto run = [&](SurrogateTier tier) {
    DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 9);
    TuningEnvironment env(&sim, knob_indices);
    OptimizerOptions options;
    options.seed = 9;
    SurrogateTierOptions tier_options;
    tier_options.tier = tier;
    tier_options.num_inducing = 16;
    TierBo bo(
        env.space(), options,
        [] { return std::make_unique<Matern52Kernel>(); },
        GaussianProcessOptions{}, tier_options);
    return RunTuningSession(&env, &bo, iterations);
  };

  const SessionResult exact = run(SurrogateTier::kExact);
  const SessionResult sparse = run(SurrogateTier::kSparse);
  ASSERT_EQ(exact.improvement_trace.size(), iterations);
  ASSERT_EQ(sparse.improvement_trace.size(), iterations);
  // Pinned regret tolerance: the sparse session's final improvement may
  // trail the exact session's by at most 5 percentage points (they are
  // not expected to be identical — the surrogates differ).
  EXPECT_GE(sparse.final_improvement, exact.final_improvement - 5.0);
}

}  // namespace
}  // namespace dbtune
