#include "util/status.h"

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad arg").ToString(),
            "InvalidArgument: bad arg");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STRNE(StatusCodeName(StatusCode::kInternal),
               StatusCodeName(StatusCode::kNotFound));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailThenPropagate() {
  DBTUNE_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailThenPropagate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace dbtune
