#include "util/status.h"

#include <gtest/gtest.h>

namespace dbtune {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad arg").ToString(),
            "InvalidArgument: bad arg");
}

TEST(StatusTest, CodeNamesAreDistinct) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STRNE(StatusCodeName(StatusCode::kInternal),
               StatusCodeName(StatusCode::kNotFound));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailThenPropagate() {
  DBTUNE_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

Status SucceedThrough() {
  DBTUNE_RETURN_IF_ERROR(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailThenPropagate();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

TEST(StatusTest, ReturnIfErrorPassesThroughOnOk) {
  EXPECT_EQ(SucceedThrough().message(), "reached");
}

Result<int> ProduceOrFail(bool fail) {
  if (fail) return Status::NotFound("no value");
  return 21;
}

Result<int> DoubleOrPropagate(bool fail) {
  DBTUNE_ASSIGN_OR_RETURN(const int v, ProduceOrFail(fail));
  return v * 2;
}

TEST(StatusTest, AssignOrReturnAssignsOnSuccess) {
  Result<int> r = DoubleOrPropagate(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusTest, AssignOrReturnPropagatesError) {
  Result<int> r = DoubleOrPropagate(true);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "no value");
}

Status AssignToExisting(int* out) {
  DBTUNE_ASSIGN_OR_RETURN(*out, ProduceOrFail(false));
  return Status::OK();
}

TEST(StatusTest, AssignOrReturnAssignsExistingLvalue) {
  int out = 0;
  Status s = AssignToExisting(&out);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(out, 21);
}

Result<std::string> MoveOnlyPath(bool fail) {
  DBTUNE_ASSIGN_OR_RETURN(std::string s, [&]() -> Result<std::string> {
    if (fail) return Status::Internal("gone");
    return std::string("payload");
  }());
  return s + "!";
}

TEST(StatusTest, AssignOrReturnMovesValueOut) {
  Result<std::string> r = MoveOnlyPath(false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "payload!");
  EXPECT_FALSE(MoveOnlyPath(true).ok());
}

// The header promises value()-on-error aborts the process (the library
// is exception-free) and includes the held status's message.
TEST(ResultDeathTest, ValueOnErrorAbortsWithStatusMessage) {
  Result<int> r(Status::NotFound("missing-thing"));
  EXPECT_DEATH({ const int v = r.value(); (void)v; }, "missing-thing");
}

TEST(ResultDeathTest, DereferenceOnErrorAborts) {
  Result<int> r(Status::Internal("kaboom"));
  EXPECT_DEATH({ const int v = *r; (void)v; }, "kaboom");
}

}  // namespace
}  // namespace dbtune
