#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "surrogate/gradient_boosting.h"
#include "surrogate/knn.h"
#include "surrogate/ridge.h"
#include "surrogate/svr.h"
#include "util/random.h"
#include "util/stats.h"

namespace dbtune {
namespace {

struct Dataset {
  FeatureMatrix x;
  std::vector<double> y;
};

Dataset MakeLinear(size_t n, Rng& rng, double noise = 0.02) {
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = {rng.Uniform(), rng.Uniform(), rng.Uniform()};
    data.y.push_back(2.0 * row[0] - 1.0 * row[1] + 0.5 +
                     rng.Gaussian(0.0, noise));
    data.x.push_back(std::move(row));
  }
  return data;
}

Dataset MakeNonlinear(size_t n, Rng& rng, double noise = 0.02) {
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = {rng.Uniform(), rng.Uniform()};
    data.y.push_back(std::sin(6.0 * row[0]) + row[1] * row[1] +
                     rng.Gaussian(0.0, noise));
    data.x.push_back(std::move(row));
  }
  return data;
}

double HeldOutR2(Regressor* model, const Dataset& train, const Dataset& test) {
  if (!model->Fit(train.x, train.y).ok()) return -1.0;
  std::vector<double> predictions;
  for (const auto& row : test.x) predictions.push_back(model->Predict(row));
  return RSquared(test.y, predictions);
}

// --- Gradient boosting --------------------------------------------------

TEST(GradientBoostingTest, FitsNonlinearSurface) {
  Rng rng(1);
  const Dataset train = MakeNonlinear(400, rng);
  const Dataset test = MakeNonlinear(100, rng, 0.0);
  GradientBoosting gb;
  EXPECT_GT(HeldOutR2(&gb, train, test), 0.8);
}

TEST(GradientBoostingTest, MoreRoundsFitBetterInSample) {
  Rng rng(2);
  const Dataset train = MakeNonlinear(200, rng);
  GradientBoostingOptions few;
  few.num_rounds = 5;
  GradientBoostingOptions many;
  many.num_rounds = 150;
  GradientBoosting gb_few(few), gb_many(many);
  ASSERT_TRUE(gb_few.Fit(train.x, train.y).ok());
  ASSERT_TRUE(gb_many.Fit(train.x, train.y).ok());
  std::vector<double> pred_few, pred_many;
  for (const auto& row : train.x) {
    pred_few.push_back(gb_few.Predict(row));
    pred_many.push_back(gb_many.Predict(row));
  }
  EXPECT_GT(RSquared(train.y, pred_many), RSquared(train.y, pred_few));
}

TEST(GradientBoostingTest, RejectsEmpty) {
  GradientBoosting gb;
  EXPECT_FALSE(gb.Fit({}, {}).ok());
}

// --- k-NN -----------------------------------------------------------------

TEST(KnnTest, ExactOnTrainingPointsWithK1) {
  KnnOptions options;
  options.k = 1;
  KnnRegressor knn(options);
  FeatureMatrix x = {{0.0}, {0.5}, {1.0}};
  std::vector<double> y = {1.0, 2.0, 3.0};
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_NEAR(knn.Predict({0.5}), 2.0, 1e-6);
  EXPECT_NEAR(knn.Predict({0.95}), 3.0, 1e-6);
}

TEST(KnnTest, AveragesNeighbours) {
  KnnOptions options;
  options.k = 2;
  options.distance_weighted = false;
  KnnRegressor knn(options);
  FeatureMatrix x = {{0.0}, {1.0}};
  std::vector<double> y = {0.0, 10.0};
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(knn.Predict({0.5}), 5.0);
}

TEST(KnnTest, DistanceWeightingPullsTowardNearest) {
  KnnOptions options;
  options.k = 2;
  options.distance_weighted = true;
  KnnRegressor knn(options);
  FeatureMatrix x = {{0.0}, {1.0}};
  std::vector<double> y = {0.0, 10.0};
  ASSERT_TRUE(knn.Fit(x, y).ok());
  EXPECT_LT(knn.Predict({0.1}), 3.0);
}

TEST(KnnTest, KLargerThanDataIsClamped) {
  KnnOptions options;
  options.k = 100;
  KnnRegressor knn(options);
  ASSERT_TRUE(knn.Fit({{0.0}, {1.0}}, {2.0, 4.0}).ok());
  const double pred = knn.Predict({0.5});
  EXPECT_GE(pred, 2.0);
  EXPECT_LE(pred, 4.0);
}

// --- Ridge ------------------------------------------------------------------

TEST(RidgeTest, RecoversLinearFunction) {
  Rng rng(3);
  const Dataset train = MakeLinear(300, rng);
  const Dataset test = MakeLinear(100, rng, 0.0);
  RidgeOptions options;
  options.alpha = 1e-6;
  RidgeRegression ridge(options);
  EXPECT_GT(HeldOutR2(&ridge, train, test), 0.98);
}

TEST(RidgeTest, HeavyRegularizationShrinksToMean) {
  Rng rng(4);
  const Dataset train = MakeLinear(200, rng);
  RidgeOptions options;
  options.alpha = 1e9;
  RidgeRegression ridge(options);
  ASSERT_TRUE(ridge.Fit(train.x, train.y).ok());
  EXPECT_NEAR(ridge.Predict(train.x[0]), Mean(train.y), 0.01);
}

TEST(RidgeTest, PoorOnNonlinearSurface) {
  Rng rng(5);
  const Dataset train = MakeNonlinear(300, rng);
  const Dataset test = MakeNonlinear(100, rng, 0.0);
  RidgeRegression ridge;
  GradientBoosting gb;
  // A linear model cannot explain sin(6x); this is the Table 9 "RR is
  // worst" phenomenon — trees fit the same surface much better.
  const double ridge_r2 = HeldOutR2(&ridge, train, test);
  EXPECT_LT(ridge_r2, 0.9);
  EXPECT_GT(HeldOutR2(&gb, train, test), ridge_r2);
}

TEST(RidgeTest, ConstantFeatureHandled) {
  RidgeRegression ridge;
  FeatureMatrix x = {{1.0, 0.1}, {1.0, 0.4}, {1.0, 0.9}, {1.0, 0.6}};
  std::vector<double> y = {1.0, 2.0, 4.0, 3.0};
  ASSERT_TRUE(ridge.Fit(x, y).ok());
  EXPECT_GT(ridge.Predict({1.0, 0.8}), ridge.Predict({1.0, 0.2}));
}

// --- SVR ---------------------------------------------------------------------

TEST(SvrTest, FitsLinearWithLinearFeatures) {
  Rng rng(6);
  const Dataset train = MakeLinear(300, rng);
  const Dataset test = MakeLinear(100, rng, 0.0);
  SvrOptions options;
  options.num_fourier_features = 0;  // pure linear SVR
  SupportVectorRegressor svr(options);
  EXPECT_GT(HeldOutR2(&svr, train, test), 0.9);
}

TEST(SvrTest, RbfFeaturesCaptureNonlinearity) {
  Rng rng(7);
  const Dataset train = MakeNonlinear(400, rng);
  const Dataset test = MakeNonlinear(100, rng, 0.0);
  SvrOptions linear;
  linear.num_fourier_features = 0;
  SvrOptions rbf;
  rbf.num_fourier_features = 256;
  rbf.rbf_gamma = 4.0;
  SupportVectorRegressor svr_linear(linear), svr_rbf(rbf);
  const double r2_linear = HeldOutR2(&svr_linear, train, test);
  const double r2_rbf = HeldOutR2(&svr_rbf, train, test);
  EXPECT_GT(r2_rbf, r2_linear);
  EXPECT_GT(r2_rbf, 0.7);
}

TEST(SvrTest, DeterministicForSeed) {
  Rng rng(8);
  const Dataset train = MakeLinear(100, rng);
  SupportVectorRegressor a, b;
  ASSERT_TRUE(a.Fit(train.x, train.y).ok());
  ASSERT_TRUE(b.Fit(train.x, train.y).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.5, 0.5, 0.5}), b.Predict({0.5, 0.5, 0.5}));
}

// --- Interface sweep ---------------------------------------------------------

using Factory = std::function<std::unique_ptr<Regressor>()>;

class RegressorContractTest
    : public ::testing::TestWithParam<std::pair<const char*, Factory>> {};

TEST_P(RegressorContractTest, FitPredictContract) {
  Rng rng(9);
  const Dataset train = MakeLinear(150, rng);
  std::unique_ptr<Regressor> model = GetParam().second();
  EXPECT_FALSE(model->name().empty());
  ASSERT_TRUE(model->Fit(train.x, train.y).ok());
  const double pred = model->Predict({0.5, 0.5, 0.5});
  EXPECT_TRUE(std::isfinite(pred));
  double mean = 0.0, var = -1.0;
  model->PredictMeanVar({0.5, 0.5, 0.5}, &mean, &var);
  EXPECT_TRUE(std::isfinite(mean));
  EXPECT_GE(var, 0.0);
}

TEST_P(RegressorContractTest, RejectsInvalidData) {
  std::unique_ptr<Regressor> model = GetParam().second();
  EXPECT_FALSE(model->Fit({}, {}).ok());
  EXPECT_FALSE(model->Fit({{1.0}, {2.0}}, {1.0}).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, RegressorContractTest,
    ::testing::Values(
        std::make_pair("gb",
                       Factory([] {
                         return std::unique_ptr<Regressor>(
                             std::make_unique<GradientBoosting>());
                       })),
        std::make_pair("knn",
                       Factory([] {
                         return std::unique_ptr<Regressor>(
                             std::make_unique<KnnRegressor>());
                       })),
        std::make_pair("ridge",
                       Factory([] {
                         return std::unique_ptr<Regressor>(
                             std::make_unique<RidgeRegression>());
                       })),
        std::make_pair("svr",
                       Factory([] {
                         return std::unique_ptr<Regressor>(
                             std::make_unique<SupportVectorRegressor>());
                       }))),
    [](const ::testing::TestParamInfo<std::pair<const char*, Factory>>& info) {
      return info.param.first;
    });

}  // namespace
}  // namespace dbtune
