#include "benchmk/surrogate_benchmark.h"

#include <gtest/gtest.h>

#include "benchmk/data_collector.h"
#include "knobs/catalog.h"
#include "util/stats.h"

namespace dbtune {
namespace {

std::vector<size_t> FirstKnobs(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(DataCollectorTest, CollectsRequestedSamples) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kSysbench,
                    HardwareInstance::kB, 1);
  CollectionOptions options;
  options.lhs_samples = 120;
  Result<TuningDataset> dataset =
      CollectDataset(&sim, FirstKnobs(sim.space().dimension()), options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->unit_x.size(), 120u);
  EXPECT_EQ(dataset->objectives.size(), 120u);
  EXPECT_GT(dataset->default_objective, 0.0);
  EXPECT_GT(dataset->simulated_collection_seconds, 0.0);
}

TEST(DataCollectorTest, OptimizerGuidedSamplesAdded) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kTpcc,
                    HardwareInstance::kB, 2);
  CollectionOptions options;
  options.lhs_samples = 60;
  options.optimizer_guided_samples = 20;
  Result<TuningDataset> dataset =
      CollectDataset(&sim, FirstKnobs(sim.space().dimension()), options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->unit_x.size(), 80u);
}

TEST(DataCollectorTest, FailedConfigsGetWorstObjective) {
  DbmsSimulator sim(WorkloadId::kSysbench, HardwareInstance::kB, 3);
  // Tune only the buffer pool: large values crash.
  const size_t bp = *sim.space().KnobIndex("innodb_buffer_pool_size");
  CollectionOptions options;
  options.lhs_samples = 60;
  Result<TuningDataset> dataset = CollectDataset(&sim, {bp}, options);
  ASSERT_TRUE(dataset.ok());
  // Every objective is positive (failed ones substituted).
  for (double obj : dataset->objectives) EXPECT_GT(obj, 0.0);
}

TEST(DataCollectorTest, RejectsZeroSamples) {
  DbmsSimulator sim(SmallTestCatalog(), WorkloadId::kVoter,
                    HardwareInstance::kB, 4);
  CollectionOptions options;
  options.lhs_samples = 0;
  EXPECT_FALSE(CollectDataset(&sim, {0, 1}, options).ok());
}

class SurrogateBenchmarkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<DbmsSimulator>(
        SmallTestCatalog(), WorkloadId::kSysbench, HardwareInstance::kB, 5);
    CollectionOptions options;
    options.lhs_samples = 400;
    options.seed = 6;
    Result<TuningDataset> dataset = CollectDataset(
        sim_.get(), FirstKnobs(sim_->space().dimension()), options);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset.value());
    Result<std::unique_ptr<SurrogateBenchmark>> benchmark =
        SurrogateBenchmark::Build(dataset_);
    ASSERT_TRUE(benchmark.ok());
    benchmark_ = std::move(benchmark.value());
  }

  std::unique_ptr<DbmsSimulator> sim_;
  TuningDataset dataset_;
  std::unique_ptr<SurrogateBenchmark> benchmark_;
};

TEST_F(SurrogateBenchmarkTest, PredictionsCorrelateWithSimulator) {
  Rng rng(7);
  std::vector<double> predicted, actual;
  for (int i = 0; i < 60; ++i) {
    const Configuration c = benchmark_->space().SampleUniform(rng);
    predicted.push_back(benchmark_->PredictObjective(c));
    actual.push_back(sim_->NoiselessObjective(c));
  }
  EXPECT_GT(SpearmanCorrelation(predicted, actual), 0.6);
}

TEST_F(SurrogateBenchmarkTest, EvaluationAccounting) {
  const size_t before = benchmark_->evaluation_count();
  benchmark_->PredictObjective(benchmark_->space().Default());
  EXPECT_EQ(benchmark_->evaluation_count(), before + 1);
  EXPECT_GT(benchmark_->EquivalentRealSeconds(), 0.0);
  // The whole point: the surrogate answers much faster than a 3-minute
  // stress test would.
  EXPECT_LT(benchmark_->evaluation_seconds(),
            benchmark_->EquivalentRealSeconds() / 100.0);
}

TEST_F(SurrogateBenchmarkTest, ScoreDirectionMatchesWorkload) {
  EXPECT_EQ(benchmark_->objective_kind(), ObjectiveKind::kThroughput);
  const Configuration def = benchmark_->space().Default();
  EXPECT_DOUBLE_EQ(benchmark_->Score(def), benchmark_->PredictObjective(def));
}

TEST_F(SurrogateBenchmarkTest, SurrogateSessionImproves) {
  const SessionResult result =
      RunSurrogateSession(benchmark_.get(), OptimizerType::kSmac, 50, 8);
  EXPECT_EQ(result.improvement_trace.size(), 50u);
  EXPECT_GT(result.final_improvement, 0.0);
}

TEST_F(SurrogateBenchmarkTest, PreservesOptimizerOrderingVsRandom) {
  const SessionResult smac =
      RunSurrogateSession(benchmark_.get(), OptimizerType::kSmac, 60, 9);
  const SessionResult random = RunSurrogateSession(
      benchmark_.get(), OptimizerType::kRandomSearch, 60, 9);
  EXPECT_GE(smac.final_improvement, random.final_improvement - 1.0);
}

TEST(SurrogateBenchmarkBuildTest, RejectsEmptyDataset) {
  TuningDataset dataset;
  EXPECT_FALSE(SurrogateBenchmark::Build(dataset).ok());
}

}  // namespace
}  // namespace dbtune
